"""Packaging for the Bean backward-error-analysis reproduction."""

import pathlib

from setuptools import find_packages, setup

HERE = pathlib.Path(__file__).parent
README = HERE / "README.md"

setup(
    name="repro-bean",
    version="1.2.0",
    description=(
        "Reproduction of 'Bean: A Language for Backward Error Analysis' "
        "(Kellison, Zielinski, Bindel, Hsu; PLDI 2025): graded linear type "
        "system, backward error lenses, a flat IR with iterative "
        "checker/interpreter passes, a vectorized batch witness engine, "
        "and a concurrent audit service over a content-addressed "
        "artifact cache."
    ),
    long_description=README.read_text(encoding="utf-8") if README.exists() else "",
    long_description_content_type="text/markdown",
    author="repro maintainers",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=[
        "numpy>=1.22",
    ],
    extras_require={
        "test": [
            "pytest>=7",
            "pytest-xdist>=3",
            "hypothesis>=6",
            "pytest-benchmark>=4",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
            "repro-bean=repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Mathematics",
        "Intended Audience :: Science/Research",
    ],
)
