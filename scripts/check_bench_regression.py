#!/usr/bin/env python
"""Gate benchmark trajectories against committed baselines.

Compares the ``BENCH_<name>.json`` files a benchmark run just emitted
against the committed baselines in ``benchmarks/baselines/`` and fails
(exit 1) when any gated metric regressed beyond the tolerance:

* metrics named ``*_s`` are durations — **lower is better**; a run
  regresses when ``current > baseline * tolerance``;
* metrics named ``*_x`` are speedup ratios — **higher is better**; a
  run regresses when ``current < baseline / tolerance``;
* anything else is reported but never gated.

A trajectory may carry a ``gate_metrics`` list naming the subset the
gate enforces (ratios are far less hardware-sensitive than absolute
seconds, so that is what the repository gates on by default); without
it every recognized metric is gated.

The default tolerance is **1.5x**, sized for shared CI hardware where
scheduling noise on absolute timings is routine; genuine regressions
from algorithmic changes (the kind PR 1/2's 5-75x wins would show if
reverted) overshoot it by an order of magnitude.

Refreshing baselines intentionally::

    PYTHONPATH=src python -m pytest benchmarks/bench_ir.py benchmarks/bench_shard.py benchmarks/bench_serve.py -q
    python scripts/check_bench_regression.py --write-baseline

and commit the changed files under ``benchmarks/baselines/`` with a
justification in the PR description.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
from typing import Dict, List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINES = REPO_ROOT / "benchmarks" / "baselines"
DEFAULT_TOLERANCE = 1.5


def load_trajectory(path: pathlib.Path) -> Optional[dict]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return None
    if not isinstance(payload, dict) or "metrics" not in payload:
        print(f"error: {path} is not a benchmark trajectory", file=sys.stderr)
        return None
    return payload


def metric_direction(name: str) -> Optional[str]:
    """'lower' for durations (_s), 'higher' for ratios (_x), else None."""
    if name.endswith("_s"):
        return "lower"
    if name.endswith("_x") or name.endswith("_speedup"):
        return "higher"
    return None


def compare_trajectory(
    name: str,
    current: dict,
    baseline: dict,
    tolerance: float,
) -> Tuple[List[str], List[str]]:
    """Returns (regressions, notes) for one benchmark trajectory."""
    regressions: List[str] = []
    notes: List[str] = []
    current_metrics: Dict[str, float] = current.get("metrics", {})
    baseline_metrics: Dict[str, float] = baseline.get("metrics", {})
    gated = baseline.get("gate_metrics")
    if gated is None:
        gated = [m for m in baseline_metrics if metric_direction(m)]
    for metric in sorted(baseline_metrics):
        base = baseline_metrics[metric]
        direction = metric_direction(metric)
        if metric not in current_metrics:
            message = f"{name}:{metric} missing from current run"
            if metric in gated:
                regressions.append(message)
            else:
                notes.append(message)
            continue
        cur = current_metrics[metric]
        if direction == "lower":
            ratio = cur / base if base else float("inf")
            verdict = cur > base * tolerance
            shape = f"{cur:.4f}s vs baseline {base:.4f}s ({ratio:.2f}x)"
        elif direction == "higher":
            ratio = base / cur if cur else float("inf")
            verdict = cur < base / tolerance
            shape = f"{cur:.2f}x vs baseline {base:.2f}x"
        else:
            notes.append(f"{name}:{metric} ungated (no _s/_x suffix)")
            continue
        line = f"{name}:{metric} {shape}"
        if metric not in gated:
            notes.append(f"{line} [ungated]")
        elif verdict:
            regressions.append(line)
        else:
            notes.append(f"{line} [ok]")
    for metric in sorted(set(current_metrics) - set(baseline_metrics)):
        notes.append(f"{name}:{metric} new metric (no baseline yet)")
    return regressions, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare BENCH_*.json trajectories against baselines."
    )
    parser.add_argument(
        "--results-dir",
        type=pathlib.Path,
        default=REPO_ROOT,
        help="where the current run's BENCH_*.json live (default: repo root)",
    )
    parser.add_argument(
        "--baseline-dir",
        type=pathlib.Path,
        default=DEFAULT_BASELINES,
        help="committed baselines (default: benchmarks/baselines/)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"regression factor (default {DEFAULT_TOLERANCE}x)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="copy the current trajectories over the baselines and exit",
    )
    args = parser.parse_args(argv)

    current_paths = sorted(args.results_dir.glob("BENCH_*.json"))
    if args.write_baseline:
        if not current_paths:
            print("error: no BENCH_*.json to promote", file=sys.stderr)
            return 1
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for path in current_paths:
            shutil.copy(path, args.baseline_dir / path.name)
            print(f"baseline updated: {args.baseline_dir / path.name}")
        return 0

    baseline_paths = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baseline_paths:
        print(f"error: no baselines under {args.baseline_dir}", file=sys.stderr)
        return 1

    all_regressions: List[str] = []
    for baseline_path in baseline_paths:
        baseline = load_trajectory(baseline_path)
        if baseline is None:
            return 1
        name = baseline_path.stem.replace("BENCH_", "", 1)
        current_path = args.results_dir / baseline_path.name
        if not current_path.exists():
            print(f"FAIL {name}: {current_path} was not emitted")
            all_regressions.append(f"{name}: trajectory missing")
            continue
        current = load_trajectory(current_path)
        if current is None:
            return 1
        regressions, notes = compare_trajectory(
            name, current, baseline, args.tolerance
        )
        for note in notes:
            print(f"  {note}")
        for regression in regressions:
            print(f"FAIL {regression}")
        all_regressions.extend(regressions)

    if all_regressions:
        print(
            f"\n{len(all_regressions)} benchmark regression(s) beyond "
            f"{args.tolerance}x tolerance.\nIf intentional, refresh with: "
            "python scripts/check_bench_regression.py --write-baseline"
        )
        return 1
    print(f"\nbench-gate OK ({args.tolerance}x tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
