"""Schema v4 streaming: rows on the wire, chunked NDJSON, fleet row merge.

Five contracts under test:

* **schema v4 strictness** — ``rows`` payloads stamp version 4,
  section-free payloads still stamp (and render) exactly as before, and
  ``from_json`` refuses every mislabelled version/section combination;
* **stream primitives** — chunk bounds, the associative trailer merge,
  line classification, and :class:`~repro.api.stream.RowStream`
  protocol enforcement (no rows before the header, no duplicate
  trailer, no silent reassembly of a truncated stream);
* **parity** — a drained stream reassembles byte-identical to the
  buffered v4 payload: locally per engine, over HTTP, through the
  remote engine, and through a 4-node fleet split;
* **failure discipline** — a stream cut mid-chunk is
  :class:`~repro.service.client.ClientTruncationError` (never silently
  complete), a post-head server failure is an in-band ``stream_error``
  line, a sick node's already-delivered rows are skipped (not
  duplicated) on failover, and a mixed-version header is rejected with
  a permanent ejection;
* **pool healing** — an ejected node re-joins after its TTL once
  ``/healthz`` answers again, and a failed recheck re-arms the TTL.
"""

from __future__ import annotations

import contextlib
import io
import json
import socket
import tempfile
import threading

import pytest

from repro import api as repro_api
from repro.api import Session
from repro.api.result import (
    BASE_SCHEMA_VERSION,
    SCHEMA_VERSION,
    STATIC_SCHEMA_VERSION,
    AuditResult,
    render_payload,
    render_stream_line,
    stream_header_of_payload,
    stream_trailer_of_payload,
)
from repro.api.stream import (
    RowStream,
    StreamProtocolError,
    chunk_bounds,
    events_of_lines,
    merge_stream_trailers,
    ramp_chunk_bounds,
)
from repro.cli import _parse_precision_bits, main
from repro.service import client as service_client
from repro.service.cache import deactivate
from repro.service.client import ClientStatusError, ClientTruncationError
from repro.service.fleet import FleetDispatcher, FleetError, HashRing, parse_nodes
from repro.service.protocol import http_chunk, http_last_chunk, http_stream_head
from repro.service.server import AuditServer, serve

SOURCE = """DotProd2 (x : vec(2)) (y : vec(2)) : num :=
  let (x0, x1) = x in
  let (y0, y1) = y in
  let v = mul x0 y0 in
  let w = mul x1 y1 in
  add v w
"""


def dot_inputs(n):
    """``n`` deterministic DotProd2 rows with some variety per row."""
    return {
        "x": [[1.0 + 0.5 * i, 2.0 + i % 3] for i in range(n)],
        "y": [[3.0 - 0.25 * i, 4.0 + (i % 5) * 0.125] for i in range(n)],
    }


def buffered(inputs, engine="batch", **kwargs):
    return Session().audit(
        SOURCE, inputs=inputs, engine=engine, rows=True, **kwargs
    )


def cli_json(argv):
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


@contextlib.contextmanager
def fleet(n, **server_kwargs):
    """``n`` audit servers on ephemeral ports, each with its own cache."""
    deactivate()
    handles = []
    dirs = []
    try:
        for _ in range(n):
            cache_dir = tempfile.TemporaryDirectory()
            dirs.append(cache_dir)
            handles.append(
                serve(
                    AuditServer(
                        port=0, cache_dir=cache_dir.name, **server_kwargs
                    )
                )
            )
        yield handles
    finally:
        for handle in handles:
            try:
                handle.stop()
            except Exception:
                pass
        for cache_dir in dirs:
            cache_dir.cleanup()
        deactivate()


def nodes_of(handles):
    return ",".join(f"{h.host}:{h.port}" for h in handles)


def stream_of(host, port, spec, **kwargs):
    return RowStream(
        events_of_lines(service_client.audit_stream(host, port, spec, **kwargs))
    )


@pytest.fixture()
def remote_engine(monkeypatch):
    monkeypatch.delenv("REPRO_NODES", raising=False)
    engine = repro_api.get_engine("remote")
    engine.configure(reset=True)
    yield engine
    engine.configure(reset=True)


@contextlib.contextmanager
def raw_server(handler, accepts=1):
    """A raw socket server feeding its first ``accepts`` connections to
    ``handler``; the listener closes right after, so later connection
    attempts are refused (not hung)."""
    lsock = socket.socket()
    lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    lsock.bind(("127.0.0.1", 0))
    lsock.listen(accepts)
    port = lsock.getsockname()[1]

    def run():
        for _ in range(accepts):
            try:
                conn, _ = lsock.accept()
            except OSError:
                return
            with conn:
                try:
                    handler(conn)
                except OSError:
                    pass
        lsock.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        yield port
    finally:
        try:
            lsock.close()
        except OSError:
            pass
        thread.join(timeout=10)


def drain_request(conn):
    """Read the client's request up to its JSON body (best effort)."""
    data = b""
    while b"\r\n\r\n" not in data:
        part = conn.recv(65536)
        if not part:
            return data
        data += part
    return data


# --------------------------------------------------------------------------
# Schema v4 strictness
# --------------------------------------------------------------------------


class TestSchemaV4:
    def test_rows_payload_stamps_v4_and_roundtrips(self):
        result = buffered(dot_inputs(4))
        payload = result.payload
        assert payload["schema_version"] == SCHEMA_VERSION
        assert len(payload["rows"]) == 4
        for index, row in enumerate(payload["rows"]):
            assert row["row"] == index
            assert set(row["distances"]) == set(payload["params"])
        again = AuditResult.from_json(result.to_json())
        assert again.to_json() == result.to_json()

    def test_section_free_payload_still_stamps_v2(self):
        result = Session().audit(
            SOURCE, inputs=dot_inputs(3), engine="batch"
        )
        assert result.payload["schema_version"] == BASE_SCHEMA_VERSION
        assert "rows" not in result.payload

    def test_from_json_rejects_v2_stamp_with_rows(self):
        payload = buffered(dot_inputs(2)).payload
        mislabelled = dict(payload, schema_version=BASE_SCHEMA_VERSION)
        with pytest.raises(ValueError, match="mislabelled"):
            AuditResult.from_json(json.dumps(mislabelled))

    def test_from_json_rejects_v3_stamp_with_rows(self):
        payload = buffered(dot_inputs(2)).payload
        mislabelled = dict(payload, schema_version=STATIC_SCHEMA_VERSION)
        with pytest.raises(ValueError, match="mislabelled"):
            AuditResult.from_json(json.dumps(mislabelled))

    def test_from_json_rejects_v4_stamp_without_rows(self):
        payload = dict(buffered(dot_inputs(2)).payload)
        del payload["rows"]
        with pytest.raises(ValueError, match="no 'rows' section"):
            AuditResult.from_json(json.dumps(payload))

    def test_from_json_rejects_unknown_version(self):
        payload = dict(buffered(dot_inputs(2)).payload, schema_version=9)
        with pytest.raises(ValueError, match="unsupported"):
            AuditResult.from_json(json.dumps(payload))

    def test_rows_require_a_capable_engine(self):
        with pytest.raises(ValueError, match="per-row witnesses"):
            Session().audit(
                SOURCE,
                inputs={"x": [1.0, 2.0], "y": [3.0, 4.0]},
                engine="interval",
                rows=True,
            )


# --------------------------------------------------------------------------
# Stream primitives
# --------------------------------------------------------------------------


class TestStreamPrimitives:
    def test_chunk_bounds(self):
        assert chunk_bounds(10, 4) == [0, 4, 8, 10]
        assert chunk_bounds(8, 4) == [0, 4, 8]
        assert chunk_bounds(3, 100) == [0, 3]
        assert chunk_bounds(0, 4) == [0, 0]
        with pytest.raises(ValueError):
            chunk_bounds(10, 0)

    def test_ramp_chunk_bounds_opens_small(self):
        assert ramp_chunk_bounds(10_000, 4096, 256) == [0, 256, 4352, 8448, 10_000]
        assert ramp_chunk_bounds(10, 4, 256) == [0, 4, 8, 10]  # small chunks keep
        assert ramp_chunk_bounds(100, 4096, 256) == [0, 100]
        assert ramp_chunk_bounds(0, 4096) == [0, 0]
        with pytest.raises(ValueError):
            ramp_chunk_bounds(10, 4, 0)

    def test_trailer_merge_is_associative_and_strict(self):
        payloads = [
            buffered(
                {k: v[lo:hi] for k, v in dot_inputs(9).items()}
            ).payload
            for lo, hi in ((0, 3), (3, 6), (6, 9))
        ]
        trailers = [stream_trailer_of_payload(p) for p in payloads]
        left = merge_stream_trailers(
            merge_stream_trailers(trailers[0], trailers[1]), trailers[2]
        )
        right = merge_stream_trailers(
            trailers[0], merge_stream_trailers(trailers[1], trailers[2])
        )
        assert left == right
        assert left == stream_trailer_of_payload(
            buffered(dot_inputs(9)).payload
        )
        bad = json.loads(json.dumps(trailers[0]))
        for entry in bad["params"].values():
            entry["bound"] = "1"
        with pytest.raises(StreamProtocolError, match="bound"):
            merge_stream_trailers(trailers[1], bad)

    def test_events_of_lines_requires_header_first(self):
        with pytest.raises(StreamProtocolError, match="header"):
            list(events_of_lines([{"row": 0, "sound": True}]))

    def test_events_of_lines_raises_on_stream_error_line(self):
        payload = buffered(dot_inputs(2)).payload
        lines = [
            stream_header_of_payload(payload),
            {"stream_error": "the pool caught fire"},
        ]
        with pytest.raises(StreamProtocolError, match="caught fire"):
            list(events_of_lines(lines))

    def test_rowstream_rejects_duplicate_trailer(self):
        payload = buffered(dot_inputs(2)).payload
        trailer = stream_trailer_of_payload(payload)
        events = [
            ("header", stream_header_of_payload(payload)),
            ("trailer", trailer),
            ("trailer", trailer),
        ]
        with pytest.raises(StreamProtocolError, match="duplicate"):
            for _ in RowStream(events).events():
                pass

    def test_rowstream_refuses_truncated_reassembly(self):
        payload = buffered(dot_inputs(2)).payload
        events = [
            ("header", stream_header_of_payload(payload)),
            ("row", payload["rows"][0]),
        ]
        stream = RowStream(events)
        with pytest.raises(StreamProtocolError, match="without a complete"):
            stream.payload()


# --------------------------------------------------------------------------
# Local streamed == buffered parity
# --------------------------------------------------------------------------


class TestLocalStreamParity:
    @pytest.mark.parametrize("engine", ["batch", "sharded", "decimal"])
    def test_streamed_reassembles_byte_identical(self, engine):
        inputs = dot_inputs(11)
        want = buffered(inputs, engine=engine).to_json()
        stream = Session().audit(
            SOURCE,
            inputs=inputs,
            engine=engine,
            stream=True,
            stream_chunk_rows=3,
        )
        assert isinstance(stream, RowStream)
        assert stream.text == want

    def test_rows_arrive_before_the_stream_drains(self):
        inputs = dot_inputs(6)
        stream = Session().audit(
            SOURCE,
            inputs=inputs,
            engine="batch",
            stream=True,
            stream_chunk_rows=1,
        )
        rows = stream.rows()
        first = next(rows)
        assert first["row"] == 0
        assert stream.trailer == {}  # far from drained
        assert stream.text == buffered(inputs).to_json()


# --------------------------------------------------------------------------
# Serving: chunked NDJSON over HTTP
# --------------------------------------------------------------------------


class TestServeStream:
    def test_http_stream_parity_and_framing(self):
        inputs = dot_inputs(13)
        want = buffered(inputs).to_json() + "\n"
        with fleet(1, stream_chunk_rows=4) as handles:
            lines = list(
                service_client.audit_stream(
                    handles[0].host,
                    handles[0].port,
                    {"source": SOURCE, "inputs": inputs, "engine": "batch",
                     "stream": True},
                )
            )
            assert lines[0]["n_rows"] == 13
            assert lines[0]["schema_version"] == SCHEMA_VERSION
            assert [obj["row"] for obj in lines[1:-1]] == list(range(13))
            assert "all_sound" in lines[-1]
            stream = RowStream(events_of_lines(iter(lines)))
            assert stream.text + "\n" == want

    def test_buffered_rows_over_http_match_local(self):
        inputs = dot_inputs(5)
        want = buffered(inputs).to_json() + "\n"
        with fleet(1) as handles:
            status, body = service_client.audit(
                handles[0].host,
                handles[0].port,
                {"source": SOURCE, "inputs": inputs, "engine": "batch",
                 "rows": True},
            )
        assert status == 200
        assert body == want

    def test_stream_refusals_are_normal_http_errors(self):
        with fleet(1) as handles:
            host, port = handles[0].host, handles[0].port

            def refusal(spec):
                with pytest.raises(ClientStatusError) as err:
                    list(service_client.audit_stream(host, port, spec))
                return err.value

            err = refusal(
                {"source": SOURCE, "inputs": dot_inputs(2),
                 "engine": "zap", "stream": True}
            )
            assert err.status == 400
            err = refusal(
                {"source": SOURCE, "inputs": {"x": 5, "y": [[1.0, 2.0]]},
                 "engine": "batch", "stream": True}
            )
            assert err.status == 400
            err = refusal(
                {"source": SOURCE,
                 "inputs": {"x": dot_inputs(3)["x"], "y": dot_inputs(2)["y"]},
                 "engine": "batch", "stream": True}
            )
            assert err.status == 400
            err = refusal(
                {"source": SOURCE, "inputs": dot_inputs(2),
                 "engine": "interval", "stream": True}
            )
            assert err.status == 422

    def test_zero_row_stream_is_header_plus_trailer(self):
        with fleet(1) as handles:
            lines = list(
                service_client.audit_stream(
                    handles[0].host,
                    handles[0].port,
                    {"source": SOURCE, "inputs": {"x": [], "y": []},
                     "engine": "batch", "stream": True},
                )
            )
        assert len(lines) == 2
        assert lines[0]["n_rows"] == 0
        assert lines[1]["all_sound"] is True
        assert lines[1]["sound_rows"] == 0

    def test_post_head_failure_is_a_stream_error_line(self):
        inputs = dot_inputs(10)
        inputs["x"][6] = [1.0]  # ragged row in a later chunk
        with fleet(1, stream_chunk_rows=2) as handles:
            stream = stream_of(
                handles[0].host,
                handles[0].port,
                {"source": SOURCE, "inputs": inputs, "engine": "batch",
                 "stream": True},
            )
            rows = stream.rows()
            assert next(rows)["row"] == 0  # the head and chunk 1 landed
            with pytest.raises(StreamProtocolError, match="aborted"):
                for _ in rows:
                    pass

    def test_sweep_bits_over_the_wire(self):
        inputs = dot_inputs(3)
        with fleet(1) as handles:
            host, port = handles[0].host, handles[0].port
            status, body = service_client.audit(
                host, port,
                {"source": SOURCE, "inputs": inputs, "engine": "sweep",
                 "sweep_bits": [8, 24]},
            )
            assert status == 200
            assert sorted(json.loads(body)["per_precision"]) == ["24", "8"]
            status, body = service_client.audit(
                host, port,
                {"source": SOURCE, "inputs": inputs, "engine": "sweep",
                 "sweep_bits": ["wide"]},
            )
            assert status == 400
            status, body = service_client.audit(
                host, port,
                {"source": SOURCE, "inputs": inputs, "engine": "sweep",
                 "sweep_bits": [24, 8]},
            )
            assert status == 422
            assert "strictly increasing" in json.loads(body)["error"]

    def test_bad_interval_hypothesis_is_422(self):
        with fleet(1) as handles:
            status, body = service_client.audit(
                handles[0].host,
                handles[0].port,
                {"source": SOURCE, "engine": "interval",
                 "inputs": {"x": "(1, 1]", "y": "[0, 1]"}},
            )
        assert status == 422
        assert "open end needs lo < hi" in json.loads(body)["error"]

    def test_truncated_chunk_raises_truncation_error(self):
        payload = buffered(dot_inputs(4)).payload
        head = http_stream_head()
        header_line = render_stream_line(stream_header_of_payload(payload))
        row_line = render_stream_line(payload["rows"][0])

        def handler(conn):
            drain_request(conn)
            conn.sendall(head)
            conn.sendall(http_chunk(header_line.encode("utf-8")))
            # A chunk frame that promises more bytes than it delivers.
            frame = http_chunk(row_line.encode("utf-8"))
            conn.sendall(frame[: len(frame) - 4])

        with raw_server(handler) as port:
            with pytest.raises(ClientTruncationError, match="truncated"):
                list(
                    service_client.audit_stream(
                        "127.0.0.1", port,
                        {"source": SOURCE, "inputs": dot_inputs(4),
                         "engine": "batch", "stream": True},
                        timeout=10.0,
                    )
                )

    def test_eof_without_terminal_chunk_raises_truncation_error(self):
        payload = buffered(dot_inputs(4)).payload

        def handler(conn):
            drain_request(conn)
            conn.sendall(http_stream_head())
            conn.sendall(
                http_chunk(
                    render_stream_line(
                        stream_header_of_payload(payload)
                    ).encode("utf-8")
                )
            )
            # Close without the 0-length terminal chunk.

        with raw_server(handler) as port:
            with pytest.raises(ClientTruncationError):
                list(
                    service_client.audit_stream(
                        "127.0.0.1", port,
                        {"source": SOURCE, "inputs": dot_inputs(4),
                         "engine": "batch", "stream": True},
                        timeout=10.0,
                    )
                )


# --------------------------------------------------------------------------
# Fleet: split streams, retry-with-skip, version policing
# --------------------------------------------------------------------------


class TestFleetStream:
    def test_split_stream_is_byte_identical_to_single_node(self):
        inputs = dot_inputs(22)
        want = buffered(inputs).to_json()
        with fleet(4, stream_chunk_rows=3) as handles:
            dispatcher = FleetDispatcher(
                nodes_of(handles), min_rows_per_shard=4, sleep=lambda s: None
            )
            stream = RowStream(
                dispatcher.audit_stream_spec(
                    {"source": SOURCE, "inputs": inputs, "engine": "batch"},
                    split=True,
                )
            )
            assert stream.text == want
            assert [row["row"] for row in stream.payload()["rows"]] == list(
                range(22)
            )
            assert dispatcher.stats["stream_audits"] == 1
            assert dispatcher.stats["sub_requests"] >= 4

    def test_unsplit_stream_is_byte_identical(self):
        inputs = dot_inputs(7)
        want = buffered(inputs).to_json()
        with fleet(2, stream_chunk_rows=2) as handles:
            dispatcher = FleetDispatcher(
                nodes_of(handles), sleep=lambda s: None
            )
            stream = RowStream(
                dispatcher.audit_stream_spec(
                    {"source": SOURCE, "inputs": inputs, "engine": "batch"},
                    split=False,
                )
            )
            assert stream.text == want

    def test_dead_node_fails_over_and_stream_stays_identical(self):
        inputs = dot_inputs(18)
        want = buffered(inputs).to_json()
        with fleet(3, stream_chunk_rows=4) as handles:
            dispatcher = FleetDispatcher(
                nodes_of(handles),
                min_rows_per_shard=4,
                eject_after=1,
                sleep=lambda s: None,
            )
            dispatcher.ensure_probed()
            handles[0].stop()
            stream = RowStream(
                dispatcher.audit_stream_spec(
                    {"source": SOURCE, "inputs": inputs, "engine": "batch"},
                    split=True,
                )
            )
            assert stream.text == want

    def test_failover_skips_rows_the_sick_node_delivered(self):
        inputs = dot_inputs(6)
        payload = buffered(inputs).payload
        want = render_payload(payload)
        partial = (
            http_stream_head()
            + http_chunk(
                render_stream_line(
                    stream_header_of_payload(payload)
                ).encode("utf-8")
            )
            + http_chunk(
                "".join(
                    render_stream_line(row) for row in payload["rows"][:2]
                ).encode("utf-8")
            )
        )

        def handler(conn):
            drain_request(conn)
            conn.sendall(partial)
            # Drop the connection mid-stream: no trailer, no terminal chunk.

        with fleet(1, stream_chunk_rows=2) as handles:
            with raw_server(handler) as sick_port:
                nodes = parse_nodes(
                    f"127.0.0.1:{sick_port},{nodes_of(handles)}"
                )
                sick = nodes[0]
                ring = HashRing(nodes)
                fingerprint = next(
                    f"key{i}"
                    for i in range(512)
                    if ring.preference(f"key{i}")[0] == sick
                )
                dispatcher = FleetDispatcher(
                    nodes,
                    probe=False,
                    retries=0,
                    eject_after=1,
                    sleep=lambda s: None,
                )
                stream = RowStream(
                    dispatcher.audit_stream_spec(
                        {"source": SOURCE, "inputs": inputs,
                         "engine": "batch"},
                        fingerprint=fingerprint,
                        split=False,
                    )
                )
                assert stream.text == want
                rows = stream.payload()["rows"]
                assert [row["row"] for row in rows] == list(range(6))
                assert dispatcher.stats["failovers"] >= 1

    def test_mixed_version_header_is_rejected_permanently(self):
        payload = buffered(dot_inputs(2)).payload
        header = dict(stream_header_of_payload(payload), schema_version=3)
        body = (
            http_stream_head()
            + http_chunk(render_stream_line(header).encode("utf-8"))
            + http_chunk(
                "".join(
                    render_stream_line(row) for row in payload["rows"]
                ).encode("utf-8")
            )
            + http_chunk(
                render_stream_line(
                    stream_trailer_of_payload(payload)
                ).encode("utf-8")
            )
            + http_last_chunk()
        )

        def handler(conn):
            drain_request(conn)
            conn.sendall(body)

        with raw_server(handler) as port:
            dispatcher = FleetDispatcher(
                f"127.0.0.1:{port}",
                probe=False,
                retries=0,
                rejoin_after_s=0.0,
                sleep=lambda s: None,
            )
            with pytest.raises(FleetError, match="schema"):
                for _ in dispatcher.audit_stream_spec(
                    {"source": SOURCE, "inputs": dot_inputs(2),
                     "engine": "batch"},
                    split=False,
                ):
                    pass
            assert len(dispatcher.ejected) == 1
            # Permanent: even a zero TTL never re-admits this build.
            with pytest.raises(FleetError):
                dispatcher.audit_spec(
                    {"source": SOURCE, "inputs": dot_inputs(2),
                     "engine": "batch"}
                )
            assert dispatcher.stats["rejoins"] == 0

    def test_remote_engine_streams_and_matches_buffered(self, remote_engine):
        inputs = dot_inputs(9)
        with fleet(2, stream_chunk_rows=2) as handles:
            remote_engine.configure(
                nodes_of(handles), sleep=lambda s: None
            )
            session = Session()
            want = session.audit(
                SOURCE, inputs=inputs, engine="remote", rows=True
            ).to_json()
            stream = session.audit(
                SOURCE, inputs=inputs, engine="remote", stream=True
            )
            assert isinstance(stream, RowStream)
            assert stream.text == want
            assert stream.text == buffered(inputs).to_json()


# --------------------------------------------------------------------------
# Pool healing: ejected nodes re-join after their TTL
# --------------------------------------------------------------------------


class TestRejoin:
    def test_node_rejoins_after_healthz_recovers(self):
        inputs = dot_inputs(16)
        want = buffered(inputs).to_json() + "\n"
        spec = {"source": SOURCE, "inputs": inputs, "engine": "batch",
                "rows": True}
        with fleet(2) as handles:
            dispatcher = FleetDispatcher(
                nodes_of(handles),
                min_rows_per_shard=4,
                eject_after=1,
                rejoin_after_s=0.0,
                sleep=lambda s: None,
            )
            assert dispatcher.audit_spec(spec, split=True) == want
            dead_port = handles[0].port
            handles[0].stop()
            assert dispatcher.audit_spec(spec, split=True) == want
            assert len(dispatcher.ejected) == 1

            # Still down: the recheck fails and the node stays ejected.
            assert dispatcher.audit_spec(spec, split=True) == want
            assert len(dispatcher.ejected) == 1
            assert dispatcher.stats["rejoins"] == 0

            with tempfile.TemporaryDirectory() as cache_dir:
                revived = serve(
                    AuditServer(port=dead_port, cache_dir=cache_dir)
                )
                try:
                    assert dispatcher.audit_spec(spec, split=True) == want
                    assert dispatcher.stats["rejoins"] == 1
                    assert dispatcher.ejected == {}
                finally:
                    revived.stop()


# --------------------------------------------------------------------------
# CLI: --stream, --rows, --precision-bits
# --------------------------------------------------------------------------


class TestCli:
    def test_parse_precision_bits(self):
        assert _parse_precision_bits("53") == (53, None)
        assert _parse_precision_bits("8,16,24,53") == (None, [8, 16, 24, 53])
        assert _parse_precision_bits("8,") == (None, [8])  # lenient comma
        for bad in ("", "x", "8;16", "8,x"):
            with pytest.raises(ValueError, match="--precision-bits"):
                _parse_precision_bits(bad)

    def test_witness_rows_and_precision_list(self, tmp_path):
        path = tmp_path / "dot.bean"
        path.write_text(SOURCE)
        inputs = json.dumps(dot_inputs(3))
        code, out = cli_json(
            ["witness", str(path), "--batch", "--inputs", inputs,
             "--rows", "--json"]
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert len(payload["rows"]) == 3
        code, out = cli_json(
            ["witness", str(path), "--engine", "sweep", "--inputs", inputs,
             "--precision-bits", "8,24", "--json"]
        )
        assert code == 0
        assert sorted(json.loads(out)["per_precision"]) == ["24", "8"]

    def test_witness_rejects_bad_precision_list(self, tmp_path, capsys):
        path = tmp_path / "dot.bean"
        path.write_text(SOURCE)
        code = main(
            ["witness", str(path), "--engine", "sweep",
             "--inputs", json.dumps(dot_inputs(2)),
             "--precision-bits", "24,8"]
        )
        assert code == 1
        assert "strictly increasing" in capsys.readouterr().err

    def test_client_stream_prints_ndjson(self, tmp_path, capsys):
        path = tmp_path / "dot.bean"
        path.write_text(SOURCE)
        inputs = dot_inputs(5)
        with fleet(1, stream_chunk_rows=2) as handles:
            code = main(
                ["client", str(path),
                 "--host", handles[0].host,
                 "--port", str(handles[0].port),
                 "--inputs", json.dumps(inputs),
                 "--engine", "batch", "--stream"]
            )
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 5 + 2
        header = json.loads(lines[0])
        assert header["n_rows"] == 5
        assert json.loads(lines[-1])["all_sound"] is True
        reassembled = RowStream(
            events_of_lines(json.loads(line) for line in lines)
        )
        assert reassembled.text == buffered(inputs).to_json()


# --------------------------------------------------------------------------
# Interval hypotheses (satellite: per-leaf and open/half-open bounds)
# --------------------------------------------------------------------------


class TestIntervalHypotheses:
    def test_hypotheses_echoed_in_static_bounds(self):
        result = Session().audit(
            SOURCE,
            inputs={"x": "(0, 1000]", "y": ["[1, 2]", "(0.5, 5)"]},
            engine="interval",
        )
        bounds = result.payload["static_bounds"]
        assert bounds["input_hypotheses"] == {
            "x": "(0.0, 1000.0]",
            "y": ["[1.0, 2.0]", "(0.5, 5.0)"],
        }
        assert bounds["input_ranges"]["x"] == [0.0, 1000.0]

    @pytest.mark.parametrize(
        "text, message",
        [
            ("(1, 1]", "open end needs lo < hi"),
            ("[2, 1]", "lo > hi"),
            ("zap]", "expected brackets"),
            ("(0, inf)", "finite"),
        ],
    )
    def test_bad_hypotheses_raise_value_error(self, text, message):
        with pytest.raises(ValueError, match=message):
            Session().audit(
                SOURCE, inputs={"x": text, "y": "[0, 1]"}, engine="interval"
            )

    def test_per_leaf_count_must_match_the_type(self):
        with pytest.raises(ValueError, match="2 numeric leaf"):
            Session().audit(
                SOURCE,
                inputs={"x": ["[1, 2]"], "y": "[0, 1]"},
                engine="interval",
            )
