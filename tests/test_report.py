"""Tests for the one-call analysis report API (repro.analyze)."""

import json
import math

import pytest

from repro import analyze
from repro.core import parse_program

SOURCE = """
Sum3 (x : vec(3)) : num :=
  let (x0, x1, x2) = x in
  let s = add x0 x1 in
  add s x2

Diff (a : num) (b : num) : num :=
  sub a b
"""


@pytest.fixture(scope="module")
def report():
    return analyze(SOURCE, condition_number=1.0)


class TestAnalyze:
    def test_backward_bounds(self, report):
        sum3 = report["Sum3"]
        assert str(sum3.backward_bounds["x"]) == "2ε"
        assert sum3.backward_values["x"] == pytest.approx(
            2 * (2.0**-53) / (1 - 2.0**-53)
        )

    def test_forward_bounds(self, report):
        sum3 = report["Sum3"]
        assert sum3.forward_bound == pytest.approx(sum3.backward_values["x"])
        assert sum3.interval_forward_bound == pytest.approx(sum3.forward_bound)

    def test_subtraction_unbounded_forward(self, report):
        diff = report["Diff"]
        assert diff.forward_bound is None  # positive-data analyzer gives up
        assert math.isinf(diff.interval_forward_bound)  # [0.1,1000] overlaps
        # ... but the backward certificate still exists:
        assert str(diff.backward_bounds["a"]) == "ε"

    def test_derived_forward(self, report):
        sum3 = report["Sum3"]
        assert sum3.derived_forward_bound == pytest.approx(sum3.backward_values["x"])

    def test_flops(self, report):
        assert report["Sum3"].flops == 2
        assert report["Diff"].flops == 1

    def test_accepts_program_objects(self):
        program = parse_program(SOURCE)
        result = analyze(program)
        assert result["Sum3"].flops == 2

    def test_unknown_name(self, report):
        with pytest.raises(KeyError):
            report["Nope"]


class TestRendering:
    def test_describe(self, report):
        text = report.describe()
        assert "Sum3" in text
        assert "backward error bounds" in text
        assert "unbounded (subtraction)" in text

    def test_to_dict_json_safe(self, report):
        payload = json.dumps(report.to_dict())
        decoded = json.loads(payload)
        names = [d["name"] for d in decoded["definitions"]]
        assert names == ["Sum3", "Diff"]
        assert decoded["definitions"][1]["forward_numfuzz_like"] is None

    def test_custom_roundoff(self):
        low = analyze(SOURCE, u=2.0**-24)
        high = analyze(SOURCE, u=2.0**-53)
        assert low["Sum3"].backward_values["x"] > high["Sum3"].backward_values["x"]


class TestCliReport:
    def test_report_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.bean"
        path.write_text(SOURCE)
        assert main(["report", str(path), "--kappa", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "Sum3" in out and "κ" in out

    def test_report_json(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.bean"
        path.write_text(SOURCE)
        assert main(["report", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["definitions"][0]["backward"]["x"]["grade"] == "2ε"
