"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,  # deep-stack worker threads make timings noisy
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=40,
)
# CI parity-smoke profile: a fixed derandomized seed so the engine
# differential harness is reproducible across runs.
settings.register_profile(
    "ci",
    settings.get_profile("repro"),
    derandomize=True,
)
# Nightly soak profile: fresh seeds and a 10x examples budget — the
# schedule-triggered workflow hunts for parity counterexamples the
# per-PR budget cannot reach.
settings.register_profile(
    "nightly",
    settings.get_profile("repro"),
    max_examples=400,
    derandomize=False,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


@pytest.fixture(scope="session")
def example_program():
    from repro.programs.examples import example_program as _program

    return _program()


@pytest.fixture(scope="session")
def example_judgments():
    from repro.programs.examples import example_judgments as _judgments

    return _judgments()
