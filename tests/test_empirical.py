"""Tests for the empirical error-measurement harness."""

import pytest

from repro.analysis.empirical import (
    measure_backward_error,
    measure_forward_error,
    tightness_study,
)
from repro.programs.generators import dot_prod, vec_sum
from repro.programs.examples import example_program


class TestMeasureBackward:
    def test_reports_per_parameter(self):
        observed = measure_backward_error(
            dot_prod(4), {"x": [1.1, 2.2, 3.3, 4.4], "y": [0.5, 0.6, 0.7, 0.8]}
        )
        assert "x" in observed
        assert observed["x"] >= 0.0

    def test_observed_below_static_bound(self):
        from repro.core import check_definition

        definition = vec_sum(8)
        judgment = check_definition(definition)
        observed = measure_backward_error(
            definition, {"x": [0.1 * (i + 1) for i in range(8)]}
        )
        assert observed["x"] <= judgment.grade_of("x").evaluate()

    def test_exact_computation_zero_error(self):
        # Sums of small integers are exact in binary64.
        observed = measure_backward_error(vec_sum(4), {"x": [1.0, 2.0, 3.0, 4.0]})
        assert observed.get("x", 0.0) == 0.0


class TestMeasureForward:
    def test_zero_for_exact(self):
        assert measure_forward_error(vec_sum(3), {"x": [1.0, 2.0, 3.0]}) == 0.0

    def test_positive_for_inexact(self):
        err = measure_forward_error(vec_sum(3), {"x": [0.1, 0.2, 0.3]})
        assert 0.0 < err < 1e-15

    def test_handles_inl_results(self):
        from repro.core import parse_program

        program = parse_program("F (x : num) (y : num) := div x y")
        err = measure_forward_error(
            program["F"], {"x": 1.0, "y": 3.0}, program=program
        )
        assert err < 1e-15

    def test_rejects_structured_results(self):
        # ScaleVec returns a pair; scalar forward error is undefined.
        program = example_program()
        with pytest.raises(TypeError):
            measure_forward_error(
                program["ScaleVec"], {"a": 2.0, "x": [1.0, 2.0]}, program=program
            )


class TestTightnessStudy:
    def test_sum_study(self):
        summary = tightness_study(
            vec_sum(8),
            lambda rng: {"x": [rng.uniform(0.1, 10.0) for _ in range(8)]},
            runs=30,
            seed=1,
        )
        assert summary.sound
        assert 0.0 < summary.max_utilization <= 1.0
        assert summary.mean_utilization <= summary.max_utilization

    def test_str(self):
        summary = tightness_study(
            vec_sum(4),
            lambda rng: {"x": [rng.uniform(1, 2) for _ in range(4)]},
            runs=5,
        )
        assert "violations" in str(summary)

    def test_deterministic(self):
        def sampler(rng):
            return {"x": [rng.uniform(0.5, 1.5) for _ in range(4)]}

        a = tightness_study(vec_sum(4), sampler, runs=10, seed=7)
        b = tightness_study(vec_sum(4), sampler, runs=10, seed=7)
        assert a == b
