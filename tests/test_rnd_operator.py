"""Tests for the explicit rounding operator ``rnd`` (the extension the
paper sketches in Section 2.2.1)."""

from decimal import Decimal

import pytest

from repro.core import (
    NUM,
    BeanTypeError,
    check_program,
    parse_expression,
    parse_program,
)
from repro.core import ast_nodes as A
from repro.core.pathcost import variable_demand
from repro.core.pretty import pretty_expr
from repro.lam_s import VNum, erase_expr, evaluate, type_of
from repro.semantics.witness import run_witness


class TestSyntax:
    def test_parse(self):
        assert parse_expression("rnd x") == A.Rnd(A.Var("x"))

    def test_parse_nested(self):
        e = parse_expression("rnd (add x y)")
        assert isinstance(e, A.Rnd)
        assert isinstance(e.body, A.PrimOp)

    def test_pretty_roundtrip(self):
        for src in ("rnd x", "rnd (rnd x)", "add (rnd x) y"):
            e = parse_expression(src)
            assert parse_expression(pretty_expr(e)) == e


class TestTyping:
    def test_rnd_charges_eps(self):
        j = check_program(parse_program("F (x : num) := rnd x"))["F"]
        assert j.grade_of("x").coeff == 1

    def test_double_rounding_charges_twice(self):
        j = check_program(parse_program("F (x : num) := rnd (rnd x)"))["F"]
        assert j.grade_of("x").coeff == 2

    def test_rnd_composes_with_ops(self):
        j = check_program(
            parse_program("F (x : num) (y : num) := add (rnd x) y")
        )["F"]
        assert j.grade_of("x").coeff == 2  # rnd ε + add ε
        assert j.grade_of("y").coeff == 1

    def test_rnd_requires_num(self):
        with pytest.raises(BeanTypeError, match="num"):
            check_program(parse_program("F (x : num * num) := rnd x"))

    def test_pathcost_oracle_agrees(self):
        expr = parse_expression("add (rnd x) y")
        assert variable_demand(expr, "x").coeff == 2

    def test_lam_s_typing(self):
        assert type_of(parse_expression("rnd x"), {"x": NUM}) == NUM


class TestSemantics:
    def test_ideal_is_identity(self):
        third = Decimal(1) / Decimal(3)
        result = evaluate(parse_expression("rnd x"), {"x": VNum(third)}, mode="ideal")
        assert result.as_decimal() == third

    def test_approx_rounds_to_binary64(self):
        third = Decimal(1) / Decimal(3)
        result = evaluate(parse_expression("rnd x"), {"x": VNum(third)}, mode="approx")
        assert result.as_float() == float(third)
        assert Decimal(result.as_float()) != third

    def test_erasure_keeps_rnd(self):
        erased = erase_expr(parse_expression("rnd (dmul z x)"))
        assert isinstance(erased, A.Rnd)
        assert erased.body.op is A.Op.MUL

    def test_witness_soundness_with_rnd(self):
        program = parse_program(
            "F (x : num) (y : num) := rnd (add (rnd x) (rnd y))"
        )
        report = run_witness(program["F"], {"x": 0.1, "y": 0.2}, program=program)
        assert report.sound

    def test_witness_rnd_of_ideal_intermediate(self):
        # rnd of an already-representable value perturbs nothing.
        program = parse_program("F (x : num) := rnd x")
        report = run_witness(program["F"], {"x": 1.5}, program=program)
        assert report.sound
        assert report.params["x"].distance == 0


class TestAnalyzers:
    def test_forward_analyzer_counts_rnd(self):
        from repro.analysis.forward import forward_error_bound

        program = parse_program("F (x : num) (y : num) := rnd (add x y)")
        check_program(program)
        assert forward_error_bound(program["F"], program).coeff == 2

    def test_interval_analyzer_counts_rnd(self):
        from repro.analysis.intervals import interval_forward_bound

        program = parse_program("F (x : num) (y : num) := rnd (add x y)")
        check_program(program)
        bound = interval_forward_bound(program["F"], program, u=2.0**-53)
        eps = (2.0**-53) / (1 - 2.0**-53)
        assert bound == pytest.approx(2 * eps)
