"""Tests for the generalized solvers (forward substitution, matmul)."""

import random

import pytest

from repro.core import LinearityError, check_definition
from repro.core.types import is_discrete
from repro.lam_s import VInl, VInr, evaluate, vector_value
from repro.programs.solvers import (
    forward_substitution,
    forward_substitution_bound_A,
    forward_substitution_bound_b,
    mat_mul_bound,
    mat_mul_columnwise,
    mat_mul_shared,
)
from repro.semantics.witness import run_witness


def lower_triangular(n, rng):
    """Random row-major lower-triangular matrix with safe pivots."""
    entries = []
    for i in range(n):
        for j in range(n):
            if j < i:
                entries.append(rng.uniform(-2.0, 2.0))
            elif j == i:
                entries.append(rng.uniform(1.0, 3.0) * rng.choice([-1, 1]))
            else:
                entries.append(0.0)
    return entries


class TestForwardSubstitutionBounds:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_closed_forms(self, n):
        judgment = check_definition(forward_substitution(n))
        assert judgment.grade_of("A").coeff == forward_substitution_bound_A(n).coeff
        assert judgment.grade_of("b").coeff == forward_substitution_bound_b(n).coeff

    def test_n2_matches_paper_linsolve(self):
        """n = 2 must reproduce the paper's LinSolve judgment."""
        from fractions import Fraction

        judgment = check_definition(forward_substitution(2))
        assert judgment.grade_of("A").coeff == Fraction(5, 2)
        assert judgment.grade_of("b").coeff == Fraction(3, 2)


class TestForwardSubstitutionSemantics:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_solves_systems(self, n):
        rng = random.Random(n)
        A = lower_triangular(n, rng)
        x_true = [rng.uniform(-3, 3) for _ in range(n)]
        b = [
            sum(A[i * n + j] * x_true[j] for j in range(n)) for i in range(n)
        ]
        definition = forward_substitution(n)
        env = {"A": vector_value(A), "b": vector_value(b)}
        result = evaluate(definition.body, env, mode="approx")
        assert isinstance(result, VInl)
        from repro.lam_s import vector_components

        solution = [c.as_float() for c in vector_components(result.body)]
        for got, want in zip(solution, x_true):
            assert got == pytest.approx(want, rel=1e-12)

    def test_singular_pivot_returns_error(self):
        definition = forward_substitution(3)
        A = [1.0, 0, 0, 2.0, 0.0, 0, 1.0, 1.0, 3.0]  # zero second pivot
        env = {"A": vector_value(A), "b": vector_value([1.0, 2.0, 3.0])}
        result = evaluate(definition.body, env, mode="approx")
        assert isinstance(result, VInr)

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_witness_soundness(self, n):
        rng = random.Random(10 + n)
        report = run_witness(
            forward_substitution(n),
            {
                "A": lower_triangular(n, rng),
                "b": [rng.uniform(-5, 5) for _ in range(n)],
            },
        )
        assert report.sound, report.describe()

    def test_witness_soundness_singular(self):
        report = run_witness(
            forward_substitution(2),
            {"A": [0.0, 0.0, 1.0, 2.0], "b": [1.0, 1.0]},
        )
        assert report.sound
        assert isinstance(report.approx_value, VInr)


class TestMatMul:
    def test_shared_formulation_rejected(self):
        """Single-ΔA matmul is not backward stable; Bean rejects it."""
        with pytest.raises(LinearityError):
            check_definition(mat_mul_shared(2))

    @pytest.mark.parametrize("n", [2, 3])
    def test_columnwise_bounds(self, n):
        judgment = check_definition(mat_mul_columnwise(n))
        for j in range(n):
            assert judgment.grade_of(f"A{j}").coeff == mat_mul_bound(n).coeff

    def test_columnwise_computes_product(self):
        n = 2
        definition = mat_mul_columnwise(n)
        A = [1.0, 2.0, 3.0, 4.0]
        Bm = [5.0, 6.0, 7.0, 8.0]
        env = {
            "A0": vector_value(A),
            "A1": vector_value(A),
            "B": vector_value(Bm),
        }
        from repro.lam_s import vector_components

        result = evaluate(definition.body, env, mode="approx")
        got = [c.as_float() for c in vector_components(result)]
        # Output order: columns j, rows i.
        expected = {
            (0, 0): 1 * 5 + 2 * 7,
            (1, 0): 3 * 5 + 4 * 7,
            (0, 1): 1 * 6 + 2 * 8,
            (1, 1): 3 * 6 + 4 * 8,
        }
        assert got == [
            expected[(0, 0)],
            expected[(1, 0)],
            expected[(0, 1)],
            expected[(1, 1)],
        ]

    def test_columnwise_witness(self):
        definition = mat_mul_columnwise(2)
        rng = random.Random(3)
        A = [rng.uniform(-2, 2) for _ in range(4)]
        Bm = [rng.uniform(-2, 2) for _ in range(4)]
        report = run_witness(
            definition, {"A0": A, "A1": A, "B": Bm}
        )
        assert report.sound

    def test_b_is_discrete(self):
        definition = mat_mul_columnwise(2)
        assert is_discrete(definition.params[-1].ty)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            forward_substitution(0)
        with pytest.raises(ValueError):
            mat_mul_columnwise(1)
        with pytest.raises(ValueError):
            mat_mul_shared(1)
