"""Tests for the NumFuzz-like forward error analyzer, including an
empirical soundness check against real executions."""

import random

import pytest

from repro.analysis.forward import UNBOUNDED, forward_error_bound, forward_error_value
from repro.analysis.metrics import rp
from repro.core import check_program, parse_program
from repro.lam_s import VNum, evaluate
from repro.programs.generators import dot_prod, horner, poly_val, vec_sum


def bound_of(src, name=None):
    program = parse_program(src)
    check_program(program)
    definition = program[name] if name else program.main
    return forward_error_bound(definition, program)


class TestRules:
    def test_input_is_exact(self):
        assert bound_of("F (x : num) := x").coeff == 0

    def test_add_costs_one(self):
        assert bound_of("F (x : num) (y : num) := add x y").coeff == 1

    def test_mul_costs_sum_plus_one(self):
        src = "F (a : num) (b : num) (c : num) := mul (add a b) c"
        assert bound_of(src).coeff == 2  # 1 (add) + 0 + 1 (mul)

    def test_dmul_like_mul(self):
        src = "F (z : !R) (x : num) := dmul z x"
        assert bound_of(src).coeff == 1

    def test_sub_unbounded(self):
        assert bound_of("F (x : num) (y : num) := sub x y") is UNBOUNDED

    def test_div_bounded(self):
        assert bound_of("F (x : num) (y : num) := div x y").coeff == 1

    def test_case_takes_worst_branch(self):
        src = """
        F (s : num + num) (x : num) (y : num) (w : num) :=
          case s of
            inl (a) => add a x
          | inr (b) => mul (mul b y) w
        """
        assert bound_of(src).coeff == 2

    def test_calls_analyzed_through(self):
        src = """
        Mul3 (a : num) (b : num) (c : num) := mul (mul a b) c
        Main (x : num) (y : num) (z : num) := Mul3 x y z
        """
        assert bound_of(src, "Main").coeff == 2

    def test_pair_worst_component(self):
        src = "F (a : num) (b : num) (c : num) := (add a b, c)"
        assert bound_of(src).coeff == 1


class TestTable3Values:
    @pytest.mark.parametrize(
        "make,expected",
        [
            (lambda: vec_sum(500), 499),
            (lambda: dot_prod(500), 500),
            (lambda: horner(500), 1000),
            (lambda: poly_val(100), 101),
        ],
        ids=["Sum500", "DotProd500", "Horner500", "PolyVal100"],
    )
    def test_paper_rows(self, make, expected):
        assert forward_error_bound(make()).coeff == expected

    def test_numeric_value_u52(self):
        value = forward_error_value(vec_sum(500), u=2.0**-52)
        assert value == pytest.approx(1.11e-13, abs=0.005e-13)

    def test_unbounded_value_is_none(self):
        program = parse_program("F (x : num) (y : num) := sub x y")
        assert forward_error_value(program["F"]) is None


class TestEmpiricalSoundness:
    """On positive data, the static bound dominates observed RP error."""

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_sum_bound_holds(self, n):
        rng = random.Random(n)
        definition = vec_sum(n)
        bound = forward_error_bound(definition).evaluate()
        from repro.lam_s.values import vector_value

        xs = [rng.uniform(0.1, 1000.0) for _ in range(n)]
        env = {"x": vector_value(xs)}
        approx = evaluate(definition.body, env, mode="approx").as_float()
        exact = float(evaluate(definition.body, env, mode="ideal").as_decimal())
        assert rp(approx, exact) <= bound

    def test_horner_bound_holds(self):
        rng = random.Random(11)
        definition = horner(8)
        bound = forward_error_bound(definition).evaluate()
        from repro.lam_s.values import vector_value

        env = {
            "a": vector_value([rng.uniform(0.1, 10.0) for _ in range(9)]),
            "z": VNum(rng.uniform(0.1, 2.0)),
        }
        approx = evaluate(definition.body, env, mode="approx").as_float()
        exact = float(evaluate(definition.body, env, mode="ideal").as_decimal())
        assert rp(approx, exact) <= bound
