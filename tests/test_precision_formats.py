"""Tests for simulated reduced-precision formats (binary32/binary16).

Evaluating each operation in binary64 and rounding to p ≤ 25 bits gives
*correctly rounded* p-bit arithmetic (double rounding is innocuous when
53 ≥ 2p + 2), so Bean's bounds instantiated at u = 2⁻ᵖ must hold on
these simulated executions — witness-checked below.
"""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import parse_expression
from repro.lam_s import VNum, evaluate, vector_value
from repro.lam_s.eval import round_to_precision
from repro.programs.generators import dot_prod, horner, vec_sum
from repro.semantics.interp import lens_of_definition
from repro.semantics.witness import run_witness

finite = st.floats(
    min_value=-1e30, max_value=1e30, allow_nan=False
).filter(lambda x: x == 0.0 or abs(x) > 1e-30)


class TestRoundToPrecision:
    def test_identity_at_53(self):
        assert round_to_precision(0.1, 53) == 0.1

    def test_zero(self):
        assert round_to_precision(0.0, 24) == 0.0

    def test_binary32_matches_single_rounding(self):
        import struct

        rng = random.Random(1)
        for _ in range(500):
            x = rng.uniform(-1e6, 1e6)
            via_struct = struct.unpack("f", struct.pack("f", x))[0]
            assert round_to_precision(x, 24) == via_struct

    @given(finite)
    def test_relative_error_within_u(self, x):
        for p in (11, 24):
            r = round_to_precision(x, p)
            assert abs(r - x) <= abs(x) * 2.0**-p

    @given(finite)
    def test_idempotent(self, x):
        r = round_to_precision(x, 24)
        assert round_to_precision(r, 24) == r

    def test_representable_survives(self):
        assert round_to_precision(1.5, 11) == 1.5
        assert round_to_precision(2.0**-14, 11) == 2.0**-14

    def test_nearest_even_tie(self):
        # Exactly halfway between two 2-bit values: 1.25 between 1.0 and 1.5.
        assert round_to_precision(1.25, 2) == 1.0  # even mantissa wins


class TestEvaluatorIntegration:
    def test_low_precision_is_lossier(self):
        env = {"x": vector_value([0.1] * 12)}
        body = vec_sum(12).body
        f64 = evaluate(body, env).as_float()
        f32 = evaluate(body, env, precision_bits=24).as_float()
        f16 = evaluate(body, env, precision_bits=11).as_float()
        exact = 1.2
        assert abs(f16 - exact) > abs(f32 - exact) > 0

    def test_ideal_mode_unaffected(self):
        env = {"x": VNum(0.1), "y": VNum(0.2)}
        a = evaluate(parse_expression("add x y"), env, mode="ideal")
        b = evaluate(
            parse_expression("add x y"), env, mode="ideal", precision_bits=11
        )
        assert a == b

    def test_invalid_widths_rejected(self):
        env = {"x": VNum(1.0)}
        with pytest.raises(ValueError):
            evaluate(parse_expression("x"), env, precision_bits=40)

    def test_stochastic_low_precision_rejected(self):
        env = {"x": VNum(1.0)}
        with pytest.raises(ValueError):
            evaluate(
                parse_expression("x"),
                env,
                rounding="stochastic",
                precision_bits=24,
            )

    def test_rnd_rounds_at_format_width(self):
        expr = parse_expression("rnd x")
        env = {"x": VNum(1.0 + 2.0**-20)}
        out = evaluate(expr, env, precision_bits=11)
        assert out.as_float() == 1.0  # 2^-20 is below half-ulp at p=11


class TestWitnessSoundnessAtLowPrecision:
    @pytest.mark.parametrize(
        "bits,u", [(24, 2.0**-24), (11, 2.0**-11)], ids=["binary32", "binary16"]
    )
    def test_sum(self, bits, u):
        definition = vec_sum(10)
        lens = lens_of_definition(definition, precision_bits=bits)
        rng = random.Random(bits)
        for _ in range(15):
            xs = [rng.uniform(0.1, 10.0) for _ in range(10)]
            report = run_witness(definition, {"x": xs}, lens=lens, u=u)
            assert report.sound, report.describe()

    def test_dot_prod_binary32(self):
        definition = dot_prod(8)
        lens = lens_of_definition(definition, precision_bits=24)
        rng = random.Random(3)
        # Inputs representable in binary32, as Def. 2.1's x ∈ F^n asks.
        xs = [round_to_precision(rng.uniform(-4, 4), 24) for _ in range(8)]
        ys = [round_to_precision(rng.uniform(-4, 4), 24) for _ in range(8)]
        report = run_witness(definition, {"x": xs, "y": ys}, lens=lens, u=2.0**-24)
        assert report.sound

    def test_horner_binary16(self):
        definition = horner(5)
        lens = lens_of_definition(definition, precision_bits=11)
        coeffs = [round_to_precision(0.3 * (i + 1), 11) for i in range(6)]
        report = run_witness(
            definition,
            {"a": coeffs, "z": round_to_precision(0.7, 11)},
            lens=lens,
            u=2.0**-11,
        )
        assert report.sound

    def test_binary64_bound_fails_on_binary16_run(self):
        """Sanity: a 2⁻⁵³ budget is (vastly) too small for p=11 runs —
        the check is real, not vacuous."""
        definition = vec_sum(10)
        lens = lens_of_definition(definition, precision_bits=11)
        xs = [0.1 * (i + 1) + 1e-3 for i in range(10)]
        report = run_witness(definition, {"x": xs}, lens=lens, u=2.0**-53)
        assert not report.sound

    def test_observed_error_scales_with_format(self):
        definition = vec_sum(12)
        xs = [0.1 * (i + 1) + 1e-4 for i in range(12)]
        observed = {}
        for bits in (53, 24, 11):
            lens = lens_of_definition(definition, precision_bits=bits)
            u = 2.0 ** -bits
            report = run_witness(definition, {"x": xs}, lens=lens, u=u)
            assert report.sound
            observed[bits] = float(report.params["x"].distance)
        assert observed[11] > observed[24] > observed[53] >= 0
        assert not math.isinf(observed[11])
