"""Every typing judgment stated in the paper's prose, reproduced exactly.

Sections 2.2 and 4 state precise inferred grades for each example
program; this module asserts our inference derives the same grade (exact
Fraction equality, not numeric closeness), the same result types, and
the numeric values the paper quotes for u = 2⁻⁵³.
"""

import pytest

from repro.core import NUM, Discrete, Sum, Tensor, UNIT
from repro.core.types import matrix, vector
from repro.programs.examples import paper_expected_grades

EXPECTED = paper_expected_grades()

CASES = [
    (name, param, grade)
    for name, grades in EXPECTED.items()
    for param, grade in grades.items()
]


@pytest.mark.parametrize(
    "name,param,expected",
    CASES,
    ids=[f"{n}.{p}" for n, p, _ in CASES],
)
def test_paper_grade(example_judgments, name, param, expected):
    assert example_judgments[name].grade_of(param).coeff == expected.coeff


class TestResultTypes:
    def test_dotprod2(self, example_judgments):
        assert example_judgments["DotProd2"].result == NUM

    def test_matvecex(self, example_judgments):
        assert example_judgments["MatVecEx"].result == vector(2)

    def test_scalevec(self, example_judgments):
        assert example_judgments["ScaleVec"].result == vector(2)

    def test_matvecmul(self, example_judgments):
        assert example_judgments["MatVecMul"].result == vector(2)

    def test_linsolve(self, example_judgments):
        expected = Sum(Tensor(Discrete(NUM), NUM), UNIT)
        assert example_judgments["LinSolve"].result == expected


class TestNumericValues:
    """The numeric readings the paper gives for these judgments."""

    def test_dotprod2_value(self, example_judgments):
        # 3ε/2 at u = 2^-53.
        bound = example_judgments["DotProd2"].grade_of("x").evaluate()
        assert bound == pytest.approx(1.5 * (2.0**-53) / (1 - 2.0**-53))

    def test_smatvecmul_m_is_double_matvecmul(self, example_judgments):
        m_in_pipeline = example_judgments["SMatVecMul"].grade_of("M")
        m_alone = example_judgments["MatVecMul"].grade_of("M")
        assert m_in_pipeline.coeff == 2 * m_alone.coeff

    def test_horner_worse_than_polyval_here(self, example_judgments):
        # Section 4.2's surprise: Horner's max bound exceeds PolyVal's.
        horner = example_judgments["Horner"].grade_of("a")
        polyval = example_judgments["PolyVal"].grade_of("a")
        assert horner.coeff > polyval.coeff

    def test_horneralt_gradient(self, example_judgments):
        # Horner loads high-order coefficients more heavily.
        j = example_judgments["HornerAlt"]
        assert (
            j.grade_of("a0").coeff
            < j.grade_of("a1").coeff
            < j.grade_of("a2").coeff
        )

    def test_polyvalalt_flat_tail(self, example_judgments):
        j = example_judgments["PolyValAlt"]
        assert j.grade_of("a1").coeff == j.grade_of("a2").coeff


class TestContexts:
    def test_discrete_params_in_phi(self, example_judgments):
        j = example_judgments["ScaleVec"]
        assert "a" in j.discrete
        assert "a" not in j.linear

    def test_matvecex_matrix_type(self, example_program):
        assert example_program["MatVecEx"].params[0].ty == matrix(2, 2)

    def test_all_examples_checked(self, example_judgments):
        assert set(EXPECTED) <= set(example_judgments)
