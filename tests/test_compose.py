"""Tests for the compositional audit subsystem (:mod:`repro.compose`).

The contract under test is bit-for-bit: composed judgments must equal
``check_program``'s exactly, and a ``compose=True`` audit's payload must
be byte-identical to the non-composed audit of the same request — the
hypothesis harness below drives both over the random-program generators.
Beyond parity, the beyond-cap call pyramid exercises the one capability
only composition has (flattening past ``MAX_INLINE_OPS``), and the
incremental/watch tests pin the O(diff) invalidation discipline.
"""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from strategies import random_batch_inputs, random_inputs, random_program
from repro.api import Session
from repro.compose import (
    COMPOSE_MAX_INLINE_OPS,
    DefinitionSummary,
    DependencyGraph,
    IncrementalAuditor,
    ParseCache,
    SummaryStore,
    compose_execution_ir,
    composed_judgments,
    composition_plan,
    deep_fingerprints,
    direct_callees,
    reset_default_store,
    split_definition_blocks,
    summary_to_judgment,
    watch_file,
)
from repro.core import check_program, is_discrete, parse_program
from repro.ir.cache import inlined_definition_ir, semantic_definition_ir
from repro.ir.inline import (
    FALLBACK_SIZE_CAP,
    MAX_INLINE_OPS,
    count_ops,
    inline_calls,
    inline_fallback_info,
    walk_ops,
)
from repro.ir.lower import CASE, IROp, Region

_BUDGET = settings().max_examples
_SMALL_BUDGET = max(_BUDGET // 4, 10)

CHAIN = """
Scale (a : num) (b : num) : num := mul a b
Twice (a : num) (b : num) (c : num) : num :=
  let s = Scale a b in add s c
Main (a : num) (b : num) (c : num) (d : num) : num :=
  let t = Twice a b c in add t d
"""

CHAIN_INPUTS = {"a": 1.5, "b": 2.25, "c": 0.5, "d": 3.0}


def pyramid_source(depth: int) -> str:
    """A strictly linear call pyramid: each level calls the previous
    twice (on distinct one-use variables), so the full inline expansion
    doubles per level while the source stays O(depth)."""
    lines = ["P0 (x : num) (c : !num) : num := dmul c x"]
    for k in range(1, depth + 1):
        lines.append(
            f"P{k} (x : num) (c : !num) : num := "
            f"let a = P{k - 1} x c in P{k - 1} a c"
        )
    return "\n".join(lines)


@pytest.fixture(autouse=True)
def fresh_store():
    """Each test composes from an empty process-global store."""
    reset_default_store()
    yield
    reset_default_store()


# --------------------------------------------------------------------------
# Summaries: round-trip and judgment equality
# --------------------------------------------------------------------------


class TestSummaries:
    def test_composed_judgments_match_checker(self):
        program = parse_program(CHAIN)
        reference = check_program(program)
        composed = composed_judgments(program)
        assert set(composed.judgments) == set(reference)
        for name, judgment in reference.items():
            got = composed.judgments[name]
            assert got.result == judgment.result, name
            for p in program[name].params:
                assert str(got.grade_of(p.name)) == str(
                    judgment.grade_of(p.name)
                ), (name, p.name)

    def test_summary_json_round_trip(self):
        program = parse_program(CHAIN)
        composed = composed_judgments(program)
        for name, summary in composed.summaries.items():
            data = json.loads(json.dumps(summary.to_json_dict()))
            rebuilt = DefinitionSummary.from_json_dict(data)
            assert rebuilt == summary, name
            judgment = summary_to_judgment(rebuilt)
            assert judgment.result == composed.judgments[name].result

    def test_summary_version_mismatch_is_loud(self):
        program = parse_program(CHAIN)
        composed = composed_judgments(program)
        data = next(iter(composed.summaries.values())).to_json_dict()
        data["version"] = 999
        with pytest.raises(ValueError, match="version"):
            DefinitionSummary.from_json_dict(data)

    def test_total_ops_predicts_full_expansion_cap(self):
        # The summary's op accounting is what makes lifting the inline
        # cap safe: inlining with max_ops=total_ops must never trip.
        program = parse_program(pyramid_source(6))
        composed = composed_judgments(program)
        top = program["P6"]
        predicted = composed.summaries["P6"].total_ops
        ir = inline_calls(
            semantic_definition_ir(top), program, max_ops=predicted
        )
        assert not ir.has_calls
        assert count_ops(ir.ops) <= predicted

    @given(
        seed=st.integers(0, 2**16),
        n_helpers=st.integers(1, 3),
        allow_div=st.booleans(),
    )
    @settings(max_examples=_SMALL_BUDGET, deadline=None)
    def test_random_program_judgments_compose_exactly(
        self, seed, n_helpers, allow_div
    ):
        spec = random_program(
            seed, n_linear=3, n_helpers=n_helpers, allow_div=allow_div
        )
        reference = check_program(spec.program)
        composed = composed_judgments(spec.program, store=SummaryStore())
        for name, judgment in reference.items():
            got = composed.judgments[name]
            assert got.result == judgment.result, name
            for p in spec.program[name].params:
                if is_discrete(p.ty):
                    continue  # discrete params carry no error grade
                assert str(got.grade_of(p.name)) == str(
                    judgment.grade_of(p.name)
                ), (name, p.name)


# --------------------------------------------------------------------------
# Deep fingerprints and the dependency graph
# --------------------------------------------------------------------------


class TestGraph:
    def test_direct_callees(self):
        program = parse_program(CHAIN)
        assert direct_callees(program["Scale"]) == ()
        assert direct_callees(program["Twice"]) == ("Scale",)
        assert direct_callees(program["Main"]) == ("Twice",)

    def test_deep_fingerprints_stable_across_reparses(self):
        a = deep_fingerprints(parse_program(CHAIN))
        b = deep_fingerprints(parse_program(CHAIN))
        assert a == b

    def test_deep_fingerprints_alpha_invariant(self):
        # Alpha-invariance covers *bound* binders (let/case names);
        # formal parameter names are free — they key the payload's
        # params/grades sections — so only internal renames must agree.
        renamed = CHAIN.replace("let s = Scale a b in add s c",
                                "let w = Scale a b in add w c")
        assert renamed != CHAIN
        assert deep_fingerprints(parse_program(CHAIN)) == deep_fingerprints(
            parse_program(renamed)
        )

    def test_editing_a_leaf_invalidates_exactly_its_dependents(self):
        before = deep_fingerprints(parse_program(CHAIN))
        edited = CHAIN.replace("mul a b", "add a b")
        after = deep_fingerprints(parse_program(edited))
        assert before["Scale"] != after["Scale"]
        assert before["Twice"] != after["Twice"]
        assert before["Main"] != after["Main"]

        # Editing only the top definition leaves the leaves' keys alone.
        edited = CHAIN.replace("add t d", "mul t d")
        after = deep_fingerprints(parse_program(edited))
        assert before["Scale"] == after["Scale"]
        assert before["Twice"] == after["Twice"]
        assert before["Main"] != after["Main"]

    def test_dependency_graph_transitive_dependents(self):
        graph = DependencyGraph(parse_program(CHAIN))
        assert graph.direct_dependents("Scale") == frozenset({"Twice"})
        assert graph.dependents_of("Scale") == frozenset({"Twice", "Main"})
        assert graph.dependents_of("Main") == frozenset()


# --------------------------------------------------------------------------
# Incremental parsing: per-definition block reuse
# --------------------------------------------------------------------------


class TestParseCache:
    def test_split_blocks(self):
        blocks = split_definition_blocks(CHAIN)
        assert len(blocks) == 3
        assert blocks[0].startswith("Scale")
        assert blocks[2].startswith("Main")

    def test_split_rejects_headerless_text(self):
        assert split_definition_blocks("  add x y") is None
        assert split_definition_blocks("") is None

    def test_parse_matches_parse_program(self):
        cached = ParseCache().parse(CHAIN)
        reference = parse_program(CHAIN)
        assert [d.name for d in cached] == [d.name for d in reference]
        assert deep_fingerprints(cached) == deep_fingerprints(reference)

    def test_unchanged_blocks_reuse_objects(self):
        cache = ParseCache()
        first = cache.parse(CHAIN)
        second = cache.parse(CHAIN)
        for a, b in zip(first, second):
            assert a is b

    def test_edit_reparses_only_the_edited_block(self):
        cache = ParseCache()
        first = cache.parse(CHAIN)
        edited = cache.parse(CHAIN.replace("add s c", "mul s c"))
        assert edited["Scale"] is first["Scale"]
        assert edited["Main"] is first["Main"]
        assert edited["Twice"] is not first["Twice"]

    def test_multiple_definitions_on_one_line_fall_back(self):
        source = (
            "A (x : num) : num := add x x "
            "B (y : num) : num := mul y y"
        )
        cached = ParseCache().parse(source)
        reference = parse_program(source)
        assert [d.name for d in cached] == [d.name for d in reference]
        assert deep_fingerprints(cached) == deep_fingerprints(reference)

    def test_syntax_errors_stay_loud(self):
        from repro.core.errors import BeanSyntaxError

        with pytest.raises(BeanSyntaxError):
            ParseCache().parse("Broken (x : num) : num := add x ;")

    def test_duplicate_names_stay_loud(self):
        source = "A (x : num) : num := add x x\nA (y : num) : num := mul y y"
        with pytest.raises(ValueError, match="duplicate"):
            ParseCache().parse(source)

    @given(
        seed=st.integers(0, 2**16),
        n_helpers=st.integers(1, 3),
    )
    @settings(max_examples=_SMALL_BUDGET, deadline=None)
    def test_random_programs_parse_identically(self, seed, n_helpers):
        from repro.core import pretty_program

        spec = random_program(seed, n_helpers=n_helpers)
        source = pretty_program(spec.program)
        assert deep_fingerprints(ParseCache().parse(source)) == (
            deep_fingerprints(parse_program(source))
        )


# --------------------------------------------------------------------------
# The summary store (memory + artifact-cache layers)
# --------------------------------------------------------------------------


class TestStore:
    def test_memory_reuse_within_a_store(self):
        program = parse_program(CHAIN)
        store = SummaryStore()
        first = composed_judgments(program, store=store)
        assert first.built == ("Scale", "Twice", "Main")
        assert first.reused == ()
        second = composed_judgments(program, store=store)
        assert second.built == ()
        assert second.reused == ("Scale", "Twice", "Main")
        assert store.stats["memory_hits"] == 3

    def test_artifact_cache_warm_starts_a_fresh_store(self, tmp_path):
        from repro.service.cache import activate, deactivate

        program = parse_program(CHAIN)
        activate(str(tmp_path))
        try:
            warm = SummaryStore()
            composed_judgments(program, store=warm)
            cold = SummaryStore()  # fresh memory, same artifact cache
            result = composed_judgments(program, store=cold)
            assert result.reused == ("Scale", "Twice", "Main")
            assert cold.stats["artifact_hits"] == 3
        finally:
            deactivate()

    def test_summaries_survive_only_by_content(self):
        # A different program never sees the first one's summaries: the
        # deep fingerprint is the whole key.
        store = SummaryStore()
        composed_judgments(parse_program(CHAIN), store=store)
        edited = CHAIN.replace("mul a b", "add a b")
        result = composed_judgments(parse_program(edited), store=store)
        assert result.built == ("Scale", "Twice", "Main")


# --------------------------------------------------------------------------
# Byte-for-byte parity: composed vs inlined-reference audits
# --------------------------------------------------------------------------


class TestComposedAuditParity:
    def test_scalar_parity_on_the_chain(self):
        session = Session()
        plain = session.audit(CHAIN, "Main", inputs=CHAIN_INPUTS)
        composed = session.audit(
            CHAIN, "Main", inputs=CHAIN_INPUTS, compose=True
        )
        assert composed.to_json() == plain.to_json()
        assert plain.provenance is None
        assert composed.provenance is not None
        assert composed.provenance.execution == "scalar"
        assert "compose" in composed.provenance.describe()

    def test_batch_parity_on_the_chain(self):
        pytest.importorskip("numpy")
        session = Session()
        inputs = {k: [v, v + 1.0] for k, v in CHAIN_INPUTS.items()}
        plain = session.audit(CHAIN, "Main", inputs=inputs, engine="batch")
        composed = session.audit(
            CHAIN, "Main", inputs=inputs, engine="batch", compose=True
        )
        assert composed.to_json() == plain.to_json()
        assert composed.provenance.execution == "shared-inlined"

    def test_rows_section_parity(self):
        pytest.importorskip("numpy")
        session = Session()
        inputs = {k: [v, v + 1.0] for k, v in CHAIN_INPUTS.items()}
        plain = session.audit(
            CHAIN, "Main", inputs=inputs, engine="batch", rows=True
        )
        composed = session.audit(
            CHAIN, "Main", inputs=inputs, engine="batch", rows=True,
            compose=True,
        )
        assert composed.to_json() == plain.to_json()

    def test_compose_rejected_for_incapable_engines(self):
        session = Session()
        with pytest.raises(ValueError, match="cannot compose"):
            session.audit(
                CHAIN,
                "Main",
                inputs=CHAIN_INPUTS,
                engine="recursive",
                compose=True,
            )

    def test_session_level_compose_default(self):
        session = Session(compose=True)
        result = session.audit(CHAIN, "Main", inputs=CHAIN_INPUTS)
        assert result.provenance is not None
        # Per-call override wins over the session default.
        plain = session.audit(
            CHAIN, "Main", inputs=CHAIN_INPUTS, compose=False
        )
        assert plain.provenance is None

    @given(data=st.data())
    @settings(
        max_examples=_SMALL_BUDGET,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_programs_scalar_byte_parity(self, data):
        seed = data.draw(st.integers(0, 2**16), label="seed")
        spec = random_program(
            seed,
            n_helpers=data.draw(st.integers(1, 2), label="n_helpers"),
            allow_div=data.draw(st.booleans(), label="allow_div"),
        )
        inputs = random_inputs(spec, data.draw(st.integers(0, 2**20)))
        session = Session()
        plain = session.audit(
            spec.program, spec.definition.name, inputs=inputs
        )
        composed = session.audit(
            spec.program, spec.definition.name, inputs=inputs, compose=True
        )
        assert composed.to_json() == plain.to_json()

    @given(data=st.data())
    @settings(
        max_examples=_SMALL_BUDGET,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_programs_batch_byte_parity(self, data):
        pytest.importorskip("numpy")
        seed = data.draw(st.integers(0, 2**16), label="seed")
        spec = random_program(
            seed,
            n_helpers=data.draw(st.integers(1, 2), label="n_helpers"),
            allow_div=data.draw(st.booleans(), label="allow_div"),
        )
        n_rows = data.draw(st.integers(2, 4), label="n_rows")
        columns = random_batch_inputs(
            spec, data.draw(st.integers(0, 2**20)), n_rows
        )
        session = Session()
        plain = session.audit(
            spec.program, spec.definition.name, inputs=columns,
            engine="batch",
        )
        composed = session.audit(
            spec.program, spec.definition.name, inputs=columns,
            engine="batch", compose=True,
        )
        assert composed.to_json() == plain.to_json()


# --------------------------------------------------------------------------
# Beyond the inline cap: the audit only composition can plan
# --------------------------------------------------------------------------


class TestBeyondCap:
    DEPTH = 18  # 2^18 call expansion: well past MAX_INLINE_OPS

    def test_reference_path_cannot_flatten(self):
        program = parse_program(pyramid_source(self.DEPTH))
        top = program[f"P{self.DEPTH}"]
        ir = inlined_definition_ir(top, program)
        assert ir.has_calls
        info = inline_fallback_info(ir)
        assert info, "the capped inliner must record why it stopped"
        assert all(e["reason"] == FALLBACK_SIZE_CAP for e in info)

    def test_composition_flattens_past_the_cap(self):
        program = parse_program(pyramid_source(self.DEPTH))
        top = program[f"P{self.DEPTH}"]
        composed = composed_judgments(program)
        predicted = composed.summaries[top.name].total_ops
        assert MAX_INLINE_OPS < predicted <= COMPOSE_MAX_INLINE_OPS
        ir, execution = compose_execution_ir(top, program, composed.summaries)
        assert execution == "lifted-cap"
        assert not ir.has_calls
        assert count_ops(ir.ops) > MAX_INLINE_OPS
        assert inline_fallback_info(ir) == []
        # Grades still compose exactly at this scale: 2^depth ε on x.
        grade = composed.judgments[top.name].grade_of("x")
        assert grade.coeff == 2**self.DEPTH

    def test_composed_grades_match_checker_past_the_cap(self):
        program = parse_program(pyramid_source(self.DEPTH))
        reference = check_program(program)
        composed = composed_judgments(program)
        name = f"P{self.DEPTH}"
        assert str(composed.judgments[name].grade_of("x")) == str(
            reference[name].grade_of("x")
        )

    def test_fallback_section_in_reference_batch_payload(self):
        pytest.importorskip("numpy")
        # A shallow pyramid audits fast; cap the expansion artificially
        # by auditing the deep one only through the payload builder via
        # the engine adapter's fallback probe.
        from repro.api.builtin import _execution_fallbacks

        program = parse_program(pyramid_source(self.DEPTH))
        top = program[f"P{self.DEPTH}"]
        info = _execution_fallbacks(top, program)
        assert info and info[0]["reason"] == FALLBACK_SIZE_CAP

    @pytest.mark.skipif(
        "not config.getoption('--run-soak', default=False) "
        "and not __import__('os').environ.get('REPRO_SOAK')",
        reason="multi-minute beyond-cap end-to-end audit (nightly soak)",
    )
    def test_beyond_cap_pyramid_audits_end_to_end(self):
        pytest.importorskip("numpy")
        session = Session()
        result = session.audit(
            pyramid_source(self.DEPTH),
            f"P{self.DEPTH}",
            inputs={"x": [1.5, 2.0], "c": [1.0, 1.0]},
            engine="batch",
            compose=True,
        )
        assert result.sound
        assert result.provenance.execution == "lifted-cap"
        assert "inline_fallbacks" not in result.payload

    def test_composition_plan_modes(self):
        program = parse_program(CHAIN)
        composed = composed_judgments(program)
        plan = composition_plan(program["Main"], composed.summaries)
        assert [s.callee for s in plan] == ["Twice"]
        assert plan[0].mode == "composed-halves"
        unknown = composition_plan(program["Main"], {})
        assert unknown[0].mode == "unknown-callee"


# --------------------------------------------------------------------------
# The incremental driver and `repro watch`
# --------------------------------------------------------------------------


class TestIncremental:
    def test_first_pass_audits_everything(self):
        auditor = IncrementalAuditor()
        run = auditor.audit_program(CHAIN)
        assert run.audited == ("Scale", "Twice", "Main")
        assert run.reused == ()
        assert run.all_sound

    def test_second_pass_reuses_everything(self):
        auditor = IncrementalAuditor()
        auditor.audit_program(CHAIN)
        run = auditor.audit_program(CHAIN)
        assert run.audited == ()
        assert run.reused == ("Scale", "Twice", "Main")

    def test_edit_invalidates_exactly_downstream(self):
        auditor = IncrementalAuditor()
        auditor.audit_program(CHAIN)
        edited = CHAIN.replace("add s c", "mul s c")  # edits Twice only
        run = auditor.audit_program(edited)
        assert run.audited == ("Twice", "Main")
        assert run.reused == ("Scale",)

    def test_precision_is_part_of_the_result_key(self):
        auditor53 = IncrementalAuditor(precision_bits=53)
        auditor53.audit_program(CHAIN)
        auditor24 = IncrementalAuditor(
            precision_bits=24, store=auditor53.store
        )
        run = auditor24.audit_program(CHAIN)
        # Summaries are precision-independent (shared store reuses
        # them); witness verdicts are not (nothing reused).
        assert run.audited == ("Scale", "Twice", "Main")

    def test_watch_once(self, tmp_path):
        path = tmp_path / "prog.bean"
        path.write_text(CHAIN, encoding="utf-8")
        out = io.StringIO()
        code = watch_file(str(path), once=True, out=out)
        assert code == 0
        line = out.getvalue()
        assert "3 definition(s)" in line
        assert "3 audited" in line
        assert "sound" in line

    def test_watch_error_file(self, tmp_path):
        path = tmp_path / "broken.bean"
        path.write_text("Nope (x : num) : num := add x", encoding="utf-8")
        out = io.StringIO()
        code = watch_file(str(path), once=True, out=out)
        assert code == 1
        assert out.getvalue().startswith("error:")

    def test_watch_missing_file(self, tmp_path):
        out = io.StringIO()
        code = watch_file(str(tmp_path / "missing.bean"), once=True, out=out)
        assert code == 1

    def test_watch_reaudits_on_change(self, tmp_path):
        import os

        path = tmp_path / "prog.bean"
        path.write_text(CHAIN, encoding="utf-8")
        out = io.StringIO()
        watch_file(str(path), once=True, out=out)
        # Same auditor discipline as the loop: a second process-level
        # pass over an edited file re-derives only downstream.
        auditor = IncrementalAuditor()
        auditor.audit_program(path.read_text(encoding="utf-8"))
        path.write_text(
            CHAIN.replace("add t d", "mul t d"), encoding="utf-8"
        )
        os.utime(path)
        run = auditor.audit_program(path.read_text(encoding="utf-8"))
        assert run.audited == ("Main",)
        assert run.reused == ("Scale", "Twice")


# --------------------------------------------------------------------------
# CLI and server surfaces
# --------------------------------------------------------------------------


class TestSurfaces:
    def test_cli_witness_compose_byte_parity(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "prog.bean"
        path.write_text(CHAIN, encoding="utf-8")
        inputs = json.dumps(CHAIN_INPUTS)
        assert main(
            ["witness", str(path), "--name", "Main", "--inputs", inputs,
             "--json"]
        ) == 0
        plain = capsys.readouterr()
        assert main(
            ["witness", str(path), "--name", "Main", "--inputs", inputs,
             "--json", "--compose"]
        ) == 0
        composed = capsys.readouterr()
        assert composed.out == plain.out
        assert "compose:" in composed.err  # provenance goes to stderr
        assert "compose:" not in plain.err

    def test_cli_watch_once(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "prog.bean"
        path.write_text(CHAIN, encoding="utf-8")
        assert main(["watch", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "3 definition(s)" in out

    def test_cli_watch_rejects_bad_interval(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "prog.bean"
        path.write_text(CHAIN, encoding="utf-8")
        assert main(["watch", str(path), "--once", "--interval", "0"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_served_compose_byte_parity_and_stats(self):
        from urllib.request import urlopen

        from repro.service.client import audit
        from repro.service.server import AuditServer, serve

        handle = serve(AuditServer(host="127.0.0.1", port=0))
        try:
            spec = {
                "source": CHAIN,
                "name": "Main",
                "inputs": CHAIN_INPUTS,
                "engine": "ir",
            }
            status, plain = audit(handle.host, handle.port, spec)
            assert status == 200
            status, composed = audit(
                handle.host, handle.port, dict(spec, compose=True)
            )
            assert status == 200
            assert composed == plain
            status, body = audit(
                handle.host, handle.port, dict(spec, compose="yes")
            )
            assert status == 400
            with urlopen(
                f"http://{handle.host}:{handle.port}/stats"
            ) as response:
                stats = json.load(response)
            assert stats["server"]["audits_composed"] == 1
            assert stats["summaries"]["stores"] >= 3
        finally:
            handle.stop()


# --------------------------------------------------------------------------
# Satellite: the iterative IR walkers
# --------------------------------------------------------------------------


class TestIterativeWalkers:
    def test_walk_ops_handles_pathological_nesting(self):
        # 5000 nested case regions: the old recursive walker would
        # exhaust the interpreter stack well before this.
        depth = 5000
        ops = [IROp(0, 0)]
        for _ in range(depth):
            ops = [
                IROp(
                    CASE, 0, 0,
                    aux=(Region(ops, 0, 0), Region([IROp(0, 1)], 0, 0)),
                )
            ]
        assert count_ops(ops) == 2 * depth + 1

    def test_walk_ops_preserves_preorder(self):
        program = parse_program(
            """
            SafeInv (x : num) (y : num) (f : num) : num :=
              let q = div x y in
              case q of inl a => add a f | inr b => add b f
            """
        )
        ir = semantic_definition_ir(program["SafeInv"])
        codes = [op.code for op in walk_ops(ir.ops)]
        assert len(codes) == count_ops(ir.ops)
        assert CASE in codes

    def test_clean_program_has_no_fallbacks(self):
        program = parse_program(CHAIN)
        ir = inlined_definition_ir(program["Main"], program)
        assert inline_fallback_info(ir) == []
