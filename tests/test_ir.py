"""The flat IR subsystem: lowering, iterative sweeps, and engine parity.

Two families of properties:

* **Deep programs without the deepstack hack** — Sum 10000 and
  PolyVal 1000 must check, evaluate, and round-trip the backward lens
  with the *default* recursion limit in force (the IR pipeline's only
  recursion is over case/call nesting, never program length).
* **Engine parity** — the IR checker, evaluator, and backward sweep
  agree with the recursive reference engines result-for-result
  (grades, types, values, perturbed environments, raised errors) on
  randomized programs covering let/pair/case/div/dlet/bang/rnd/call.
"""

from __future__ import annotations

import sys

import pytest

from strategies import random_definition, random_inputs
from repro.core import check_definition, parse_program
from repro.core.checker import check_program
from repro.ir import lower_definition, semantic_definition_ir
from repro.lam_s.eval import evaluate
from repro.programs.generators import poly_val, vec_sum
from repro.semantics.interp import lens_of_definition
from repro.semantics.witness import env_from_pythons, run_witness
from repro.analysis.forward import forward_error_bound
from repro.analysis.intervals import interval_forward_bound


@pytest.fixture
def default_recursion_limit():
    """Pin the stock CPython limit so deep-stack crutches would crash."""
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(1000)
    try:
        yield
    finally:
        sys.setrecursionlimit(old)


@pytest.fixture(scope="module")
def sum_10000():
    return vec_sum(10000)


@pytest.fixture(scope="module")
def polyval_1000():
    return poly_val(1000)


class TestDeepPrograms:
    def test_sum_10000_checks_iteratively(self, default_recursion_limit, sum_10000):
        judgment = check_definition(sum_10000)
        assert judgment.grade_of("x").coeff == 9999

    def test_sum_10000_witness_round_trip(self, default_recursion_limit, sum_10000):
        xs = [0.5 + (i % 17) * 0.25 for i in range(10000)]
        report = run_witness(sum_10000, {"x": xs})
        assert report.sound

    def test_sum_10000_analyzers(self, default_recursion_limit, sum_10000):
        bound = forward_error_bound(sum_10000)
        assert bound is not None and bound.coeff == 9999
        interval = interval_forward_bound(sum_10000, input_range=(0.1, 10.0))
        assert interval > 0

    def test_polyval_1000_checks_iteratively(
        self, default_recursion_limit, polyval_1000
    ):
        judgment = check_definition(polyval_1000)
        # Standard bound for naive polynomial evaluation: (n+1)·ε.
        assert judgment.grade_of("a").coeff == 1001

    def test_polyval_1000_eval_and_lens(self, default_recursion_limit, polyval_1000):
        coeffs = [0.5 + (i % 7) * 0.125 for i in range(1001)]
        lens = lens_of_definition(polyval_1000)
        env = env_from_pythons(polyval_1000, {"a": coeffs, "z": 1.0078125})
        approx = lens.approx(env)
        perturbed = lens.backward(env, approx)
        # Property 2 end-to-end: the ideal run on the perturbed inputs
        # reproduces the approximate result.
        from repro.lam_s.values import values_close

        assert values_close(lens.ideal(perturbed), approx)


class TestLoweringShape:
    def test_let_chain_is_flat(self):
        definition = vec_sum(500)
        ir = semantic_definition_ir(definition)
        assert not ir.has_cases and not ir.has_calls
        assert ir.vectorizable
        # n-1 adds plus the projection ops; no op for any let binder.
        assert len(ir.ops) == 499 + 2 * 499

    def test_case_programs_are_vectorizable(self):
        program = parse_program(
            """
            F (x : num) (y : num) (z : num) :=
              let q = div x y in
              case q of inl v => v | inr e => z
            """
        )
        # Data-dependent control flow (div + case) runs with branch
        # masks and per-row screening — inside the vectorizable
        # fragment since the full-language batch engine.
        ir = lower_definition(program["F"])
        assert ir.has_cases and ir.vectorizable

    def test_calls_are_not_vectorizable_until_inlined(self):
        program = parse_program(
            """
            Double (x : num) := add x x

            F (a : num) (b : num) := mul (Double a) (Double b)
            """
        )
        from repro.ir import inline_calls, semantic_definition_ir

        ir = semantic_definition_ir(program["F"])
        assert ir.has_calls and not ir.vectorizable
        inlined = inline_calls(ir, program)
        assert not inlined.has_calls and inlined.vectorizable
        # Caller parameter and result slots survive the splice.
        assert [p.slot for p in inlined.params] == [p.slot for p in ir.params]
        assert inlined.result == ir.result

    def test_inline_guards_leave_calls_in_place(self):
        from repro.core import Definition, NUM, Param, Program
        from repro.core import builders as B
        from repro.ir import inline_calls, semantic_definition_ir

        # Arity mismatch must keep failing at run time, not inline time.
        callee = Definition("G", [Param("a", NUM), Param("b", NUM)],
                            B.add("a", "b"))
        caller = Definition("F", [Param("x", NUM)],
                            B.call("G", B.var("x")))
        program = Program([callee, caller])
        ir = inline_calls(semantic_definition_ir(caller), program)
        assert ir.has_calls and not ir.vectorizable
        # A size guard refusal also leaves the call in place.
        wide = inline_calls(
            semantic_definition_ir(caller), Program([callee, caller]),
            max_ops=0,
        )
        assert wide.has_calls

    def test_checked_lowering_rejects_what_checker_rejects(self):
        from repro.core import BeanTypeError, LinearityError

        bad = parse_program("F (x : num) := add x x").definitions[0]
        with pytest.raises(LinearityError):
            check_definition(bad)
        shadow = parse_program(
            "F (x : num) (y : num) := let x = rnd y in x"
        ).definitions[0]
        with pytest.raises(BeanTypeError, match="shadows"):
            check_definition(shadow)


class TestEngineParity:
    @pytest.mark.parametrize("seed", range(30))
    def test_checker_parity(self, seed):
        spec = random_definition(seed, n_linear=5, n_steps=5)
        d = spec.definition
        j_ir = check_definition(d, engine="ir")
        j_rec = check_definition(d, engine="recursive")
        assert j_ir.result == j_rec.result
        assert j_ir.linear.domain() == j_rec.linear.domain()
        for name, binding in j_rec.linear.items():
            assert j_ir.linear[name].grade == binding.grade
            assert j_ir.linear[name].ty == binding.ty

    @pytest.mark.parametrize("seed", range(20))
    def test_eval_parity(self, seed):
        spec = random_definition(seed)
        inputs = random_inputs(spec, seed + 1000)
        env = env_from_pythons(spec.definition, inputs)
        for mode in ("approx", "ideal"):
            v_ir = evaluate(spec.definition.body, env, mode=mode, engine="ir")
            v_rec = evaluate(
                spec.definition.body, env, mode=mode, engine="recursive"
            )
            assert repr(v_ir) == repr(v_rec)

    @pytest.mark.parametrize("seed", range(20))
    def test_backward_parity(self, seed):
        # n_linear=6, n_steps=4 keeps the pool big enough that the
        # generator's div+case tail triggers regularly.
        spec = random_definition(seed, n_linear=6, n_steps=4)
        inputs = random_inputs(spec, seed + 2000)
        d = spec.definition
        env = env_from_pythons(d, inputs)
        lens_ir = lens_of_definition(d, engine="ir")
        lens_rec = lens_of_definition(d, engine="recursive")
        target = lens_ir.approx(env)
        assert repr(target) == repr(lens_rec.approx(env))
        try:
            p_ir = lens_ir.backward(env, target)
            err_ir = None
        except Exception as exc:  # noqa: BLE001 - compared below
            p_ir, err_ir = None, repr(exc)
        try:
            p_rec = lens_rec.backward(env, target)
            err_rec = None
        except Exception as exc:  # noqa: BLE001
            p_rec, err_rec = None, repr(exc)
        assert err_ir == err_rec
        if p_ir is not None:
            assert set(p_ir) == set(p_rec)
            for name in p_ir:
                assert repr(p_ir[name]) == repr(p_rec[name])

    def test_case_with_unused_payloads_keeps_outer_grade(self):
        # Regression: the scrutinee absorbs the case's own downstream
        # grade even when neither branch uses its payload binder.
        program = parse_program(
            """
            F (s : num + num) (c1 : num) (c2 : num) :=
              let z = (case s of inl a => c1 | inr b => c2) in
              rnd z
            """
        )
        j_ir = check_program(program)["F"]
        j_rec = check_definition(program["F"], engine="recursive")
        assert j_ir.grade_of("s") == j_rec.grade_of("s")
        assert j_ir.grade_of("s").coeff == 1  # ε from the rnd

    def test_dead_let_binding_stays_strict(self):
        # Regression: `let y = z in x` must read z eagerly — both
        # engines raise for an unbound z even though y is never used.
        from repro.core import builders as B
        from repro.lam_s.eval import EvalError
        from repro.lam_s.values import VNum

        expr = B.let_("y", B.var("z"), B.var("x"))
        env = {"x": VNum(1.0)}
        with pytest.raises(EvalError, match="unbound variable 'z'"):
            evaluate(expr, env, engine="recursive")
        with pytest.raises(EvalError, match="unbound variable 'z'"):
            evaluate(expr, env, engine="ir")

    def test_call_parity(self):
        program = parse_program(
            """
            Scale (c : !num) (v : num) : num := dmul c v
            Main (x : num) (y : num) (c : !num) :=
              let a = Scale c x in
              let b = Scale c y in
              add a b
            """
        )
        judgments = check_program(program)
        assert judgments["Main"].grade_of("x").coeff == 2
        d = program["Main"]
        env = env_from_pythons(d, {"x": 1.5, "y": -2.25, "c": 3.25})
        lens_ir = lens_of_definition(d, program=program, engine="ir")
        lens_rec = lens_of_definition(d, program=program, engine="recursive")
        target = lens_ir.approx(env)
        p_ir = lens_ir.backward(env, target)
        p_rec = lens_rec.backward(env, target)
        for name in p_ir:
            assert repr(p_ir[name]) == repr(p_rec[name])

    @pytest.mark.parametrize("seed", range(10))
    def test_analyzer_parity(self, seed):
        # The forward analyzer's recursive walker is gone (its rules are
        # pinned by closed forms in test_forward.py); the interval
        # analyzer keeps a recursive reference, compared bit for bit.
        from repro.analysis.intervals import interval_forward_bound

        spec = random_definition(seed, n_linear=5, n_steps=5)
        d = spec.definition
        via_ast = interval_forward_bound(d, method="recursive")
        via_ir = interval_forward_bound(d, method="ir")
        assert via_ast == via_ir

    def test_witness_on_ir_path_matches_recursive(self):
        d = vec_sum(50)
        xs = [0.5 + 0.125 * i for i in range(50)]
        rep_ir = run_witness(d, {"x": xs}, lens=lens_of_definition(d, engine="ir"))
        rep_rec = run_witness(
            d, {"x": xs}, lens=lens_of_definition(d, engine="recursive")
        )
        assert rep_ir.sound and rep_rec.sound
        assert str(rep_ir.params["x"].distance) == str(rep_rec.params["x"].distance)
        assert repr(rep_ir.params["x"].perturbed) == repr(
            rep_rec.params["x"].perturbed
        )


class TestProgramCache:
    def test_judgments_cached_by_identity(self):
        d = vec_sum(64)
        j1 = check_definition(d)
        j2 = check_definition(d)
        assert j1 is j2
        # A structurally equal but distinct definition gets its own entry.
        assert check_definition(vec_sum(64)) is not j1

    def test_program_check_cached(self):
        program = parse_program("F (x : num) := rnd x")
        assert check_program(program) is check_program(program)
