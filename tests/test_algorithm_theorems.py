"""Algorithmic soundness & completeness (Theorems 5.1 / 5.2) and the
weakening lemma (Lemma G.1), on randomized well-typed programs."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import check_definition
from repro.core.context import Binding, LinearContext
from repro.core.declarative import is_derivable
from repro.core.grades import Grade
from repro.core.types import is_discrete
from strategies import random_definition

seeds = st.integers(min_value=0, max_value=10_000)
sizes = st.tuples(
    st.integers(min_value=1, max_value=5),  # linear params
    st.integers(min_value=0, max_value=2),  # discrete params
    st.integers(min_value=1, max_value=10),  # steps
)


def _judgment_contexts(spec):
    judgment = check_definition(spec.definition)
    gamma = LinearContext(
        {
            p.name: Binding(judgment.grade_of(p.name), p.ty)
            for p in spec.definition.params
            if not is_discrete(p.ty)
        }
    )
    return judgment, gamma


@given(seeds, sizes)
def test_soundness_inferred_judgment_is_derivable(seed, size):
    """Theorem 5.1: what the algorithm infers is a real derivation."""
    n_lin, n_disc, steps = size
    spec = random_definition(seed, n_linear=n_lin, n_discrete=n_disc, n_steps=steps)
    judgment, gamma = _judgment_contexts(spec)
    assert is_derivable(
        judgment.discrete, gamma, spec.definition.body, judgment.result
    )


@given(seeds, sizes, st.integers(min_value=1, max_value=7))
def test_completeness_weaker_contexts_also_derivable(seed, size, extra):
    """Lemma G.1 / Theorem 5.2: adding grade slack keeps derivability, and
    inference from the weaker skeleton returns a subcontext of it."""
    n_lin, n_disc, steps = size
    spec = random_definition(seed, n_linear=n_lin, n_discrete=n_disc, n_steps=steps)
    judgment, gamma = _judgment_contexts(spec)
    weaker = gamma.shift(Grade(extra))
    assert is_derivable(
        judgment.discrete, weaker, spec.definition.body, judgment.result
    )
    assert judgment.linear.is_subcontext_of(weaker)


@given(seeds, sizes)
def test_tightness_strictly_tighter_context_fails(seed, size):
    """The inferred context is minimal: subtracting anything from a
    *used* variable's grade breaks derivability."""
    n_lin, n_disc, steps = size
    spec = random_definition(seed, n_linear=n_lin, n_discrete=n_disc, n_steps=steps)
    judgment, gamma = _judgment_contexts(spec)
    for name, binding in judgment.linear.items():
        if binding.grade.coeff == 0:
            continue
        tightened = LinearContext(
            {
                n: Binding(
                    Grade(b.grade.coeff / 2) if n == name else b.grade, b.ty
                )
                for n, b in gamma.items()
            }
        )
        assert not is_derivable(
            judgment.discrete, tightened, spec.definition.body, judgment.result
        )
        break  # one variable suffices per example


@given(seeds)
def test_inference_deterministic(seed):
    spec = random_definition(seed)
    j1 = check_definition(spec.definition)
    j2 = check_definition(spec.definition)
    assert j1.linear == j2.linear
    assert j1.result == j2.result
