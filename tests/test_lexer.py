"""Tests for the Bean tokenizer."""

import pytest

from repro.core.errors import BeanSyntaxError
from repro.core.lexer import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]  # drop EOF


class TestTokens:
    def test_empty_input_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == TokenKind.EOF

    def test_keywords(self):
        assert texts("let in dlet case of inl inr") == [
            "let", "in", "dlet", "case", "of", "inl", "inr",
        ]
        assert all(t.kind == TokenKind.KEYWORD for t in tokenize("let in")[:-1])

    def test_identifiers(self):
        toks = tokenize("foo x0 a_b x'")
        assert [t.text for t in toks[:-1]] == ["foo", "x0", "a_b", "x'"]
        assert all(t.kind == TokenKind.IDENT for t in toks[:-1])

    def test_R_is_keyword(self):
        assert tokenize("R")[0].kind == TokenKind.KEYWORD

    def test_integers(self):
        toks = tokenize("42 7")
        assert [t.text for t in toks[:-1]] == ["42", "7"]
        assert all(t.kind == TokenKind.INT for t in toks[:-1])

    def test_symbols(self):
        assert texts(":= => ( ) , : = | ! + *") == [
            ":=", "=>", "(", ")", ",", ":", "=", "|", "!", "+", "*",
        ]

    def test_assign_not_split(self):
        toks = tokenize("x := y")
        assert toks[1].text == ":="

    def test_line_comment(self):
        assert texts("x // the rest is ignored\ny") == ["x", "y"]

    def test_hash_comment(self):
        assert texts("x # ignored\ny") == ["x", "y"]

    def test_unexpected_character(self):
        with pytest.raises(BeanSyntaxError):
            tokenize("x ` y")

    def test_contract_symbols(self):
        assert texts("@ / 3") == ["@", "/", "3"]


class TestPositions:
    def test_line_tracking(self):
        toks = tokenize("a\nb\n  c")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 1)
        assert (toks[2].line, toks[2].column) == (3, 3)

    def test_error_carries_position(self):
        with pytest.raises(BeanSyntaxError) as exc:
            tokenize("ok\n   $")
        assert exc.value.line == 2
        assert exc.value.column == 4


class TestTokenHelpers:
    def test_is_keyword(self):
        tok = Token(TokenKind.KEYWORD, "let", 1, 1)
        assert tok.is_keyword("let")
        assert not tok.is_keyword("in")

    def test_is_symbol(self):
        tok = Token(TokenKind.SYMBOL, "(", 1, 1)
        assert tok.is_symbol("(")
        assert not tok.is_symbol(")")

    def test_describe_eof(self):
        assert Token(TokenKind.EOF, "", 1, 1).describe() == "end of input"
