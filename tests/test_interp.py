"""Tests for the lens interpreter: the pairing property (Lemma D.7)
and backward-map behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import parse_program
from repro.lam_s import VNum, erase_expr, evaluate, values_close, vector_value
from repro.semantics.interp import lens_of_definition, lens_of_program
from repro.semantics.lens import LensDomainError
from strategies import random_definition, random_inputs


class TestPairing:
    """U_ap⟦e⟧ = ⟦Λ(e)⟧_ap and U_id⟦e⟧ = ⟦Λ(e)⟧_id (Lemma D.7):
    the lens's forward/approximate components coincide with the Λ_S
    operational semantics of the erased program."""

    @given(st.integers(min_value=0, max_value=4000))
    def test_approx_component(self, seed):
        spec = random_definition(seed)
        lens = lens_of_definition(spec.definition)
        env = {k: VNum(v) for k, v in random_inputs(spec, seed + 9).items()}
        via_lens = lens.approx(env)
        via_opsem = evaluate(erase_expr(spec.definition.body), env, mode="approx")
        assert values_close(via_lens, via_opsem)

    @given(st.integers(min_value=0, max_value=4000))
    def test_ideal_component(self, seed):
        spec = random_definition(seed)
        lens = lens_of_definition(spec.definition)
        env = {k: VNum(v) for k, v in random_inputs(spec, seed + 9).items()}
        via_lens = lens.ideal(env)
        via_opsem = evaluate(erase_expr(spec.definition.body), env, mode="ideal")
        assert values_close(via_lens, via_opsem)


class TestBackwardMap:
    def test_discrete_params_never_perturbed(self, example_program):
        lens = lens_of_program(example_program, "ScaleVec")
        env = {"a": VNum(3.0), "x": vector_value([1.0, 2.0])}
        out = lens.approx(env)
        perturbed = lens.backward(env, out)
        assert perturbed["a"] == env["a"]

    def test_linear_params_perturbed_not_original(self, example_program):
        lens = lens_of_program(example_program, "DotProd2")
        env = {"x": vector_value([1.1, 2.2]), "y": vector_value([3.3, 4.4])}
        out = lens.approx(env)
        perturbed = lens.backward(env, out)
        # The witness differs from the input (rounding happened) ...
        assert perturbed["x"] != env["x"]
        # ... but reproduces the float output exactly under ideal eval.
        assert values_close(lens.ideal(perturbed), out)

    def test_backward_domain_error_wrong_branch(self, example_program):
        from repro.lam_s import UNIT_VALUE, VInr

        lens = lens_of_program(example_program, "LinSolve")
        env = {
            "A": vector_value([2.0, 0.0, 1.0, 3.0]),
            "b": vector_value([4.0, 5.0]),
        }
        # The run takes the inl branch; an inr target is out of domain.
        with pytest.raises(LensDomainError):
            lens.backward(env, VInr(UNIT_VALUE))

    def test_backward_unknown_target_shape(self, example_program):
        lens = lens_of_program(example_program, "DotProd2")
        env = {"x": vector_value([1.0, 2.0]), "y": vector_value([3.0, 4.0])}
        with pytest.raises(LensDomainError):
            # Sign-flipped target: infinite distance from the output.
            lens.backward(env, VNum(-lens.approx(env).as_float()))

    def test_case_backward_follows_taken_branch(self, example_program):
        lens = lens_of_program(example_program, "LinSolve")
        env = {
            "A": vector_value([0.0, 0.0, 1.0, 3.0]),  # singular
            "b": vector_value([4.0, 5.0]),
        }
        out = lens.approx(env)
        perturbed = lens.backward(env, out)
        # Error branch: nothing needed perturbing.
        assert values_close(lens.ideal(perturbed), out)

    def test_call_composition(self, example_program):
        lens = lens_of_program(example_program, "SMatVecMul")
        env = {
            "M": vector_value([4.0, 1.0, 2.0, 3.0]),
            "v": vector_value([0.5, 0.25]),
            "u": vector_value([1.0, -2.0]),
            "a": VNum(3.0),
            "b": VNum(0.125),
        }
        out = lens.approx(env)
        perturbed = lens.backward(env, out)
        assert values_close(lens.ideal(perturbed), out)
        for name in ("v", "a", "b"):
            assert perturbed[name] == env[name]  # discrete: untouched


class TestConstruction:
    def test_lens_of_program_defaults_to_main(self, example_program):
        lens = lens_of_program(example_program)
        assert lens.definition.name == example_program.main.name

    def test_lens_of_definition_without_program(self):
        program = parse_program("F (x : num) (y : num) := add x y")
        lens = lens_of_definition(program["F"])
        env = {"x": VNum(1.0), "y": VNum(2.0)}
        assert lens.approx(env).as_float() == 3.0

    def test_backward_rejects_unknown_names(self, example_program):
        lens = lens_of_program(example_program, "DotProd2")
        env = {"x": vector_value([1.0, 2.0]), "y": vector_value([3.0, 4.0])}
        out = lens.approx(env)
        perturbed = lens.backward(env, out)
        assert set(perturbed) == {"x", "y"}
