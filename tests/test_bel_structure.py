"""Tests for the structural morphisms of Bel (Appendix B.2 / C)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lam_s.values import UNIT_VALUE, VInl, VInr, VNum, VPair
from repro.semantics.lens import (
    associator,
    associator_inverse,
    check_property_1,
    check_property_2,
    compose,
    distributor,
    symmetry,
    unitor_left,
)
from repro.semantics.spaces import GradedSpace, NumSpace, UnitSpace

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False).filter(
    lambda x: x == 0.0 or abs(x) > 1e-6
)


def assert_laws(lens, x, y):
    msg = check_property_1(lens, x, y)
    assert msg is None, msg
    msg = check_property_2(lens, x, y)
    assert msg is None, msg


def spaces():
    return NumSpace(), GradedSpace(NumSpace(), 1e-12), NumSpace()


class TestAssociator:
    @given(finite, finite, finite)
    def test_laws(self, a, b, c):
        x, y, z = spaces()
        lens = associator(x, y, z)
        v = VPair(VNum(a), VPair(VNum(b), VNum(c)))
        assert_laws(lens, v, lens.approx(v))

    @given(finite, finite, finite)
    def test_isomorphism(self, a, b, c):
        x, y, z = spaces()
        forward = associator(x, y, z)
        backward = associator_inverse(x, y, z)
        v = VPair(VNum(a), VPair(VNum(b), VNum(c)))
        assert backward.forward(forward.forward(v)) == v
        w = VPair(VPair(VNum(a), VNum(b)), VNum(c))
        assert forward.forward(backward.forward(w)) == w

    @given(finite, finite, finite)
    def test_round_trip_is_identity_lens(self, a, b, c):
        x, y, z = spaces()
        lens = compose(associator_inverse(x, y, z), associator(x, y, z))
        v = VPair(VNum(a), VPair(VNum(b), VNum(c)))
        assert lens.forward(v) == v
        assert lens.backward(v, v) == v


class TestUnitor:
    @given(finite)
    def test_laws(self, a):
        lens = unitor_left(NumSpace())
        v = VPair(UNIT_VALUE, VNum(a))
        assert_laws(lens, v, VNum(a))

    @given(finite, finite)
    def test_perturbed_target(self, a, b):
        # The infinite slack of I is what makes Property 1 hold even for
        # far-away targets on the X side.
        lens = unitor_left(NumSpace())
        v = VPair(UNIT_VALUE, VNum(a))
        if (a > 0) == (b > 0) and a != 0 and b != 0:
            assert_laws(lens, v, VNum(b))


class TestSymmetry:
    @given(finite, finite)
    def test_laws(self, a, b):
        lens = symmetry(NumSpace(), GradedSpace(NumSpace(), 1e-13))
        v = VPair(VNum(a), VNum(b))
        assert_laws(lens, v, lens.approx(v))

    @given(finite, finite)
    def test_involution(self, a, b):
        lens = symmetry(NumSpace(), NumSpace())
        v = VPair(VNum(a), VNum(b))
        assert lens.forward(lens.forward(v)) == v


class TestDistributor:
    def _lens(self):
        return distributor(NumSpace(), NumSpace(), UnitSpace())

    @given(finite, finite)
    def test_laws_inl(self, a, b):
        lens = self._lens()
        v = VPair(VNum(a), VInl(VNum(b)))
        assert_laws(lens, v, lens.approx(v))

    @given(finite)
    def test_laws_inr(self, a):
        lens = self._lens()
        v = VPair(VNum(a), VInr(UNIT_VALUE))
        assert_laws(lens, v, lens.approx(v))

    def test_forward_shape(self):
        lens = self._lens()
        out = lens.forward(VPair(VNum(1.0), VInl(VNum(2.0))))
        assert out == VInl(VPair(VNum(1.0), VNum(2.0)))

    def test_backward_restores_shape(self):
        lens = self._lens()
        v = VPair(VNum(1.0), VInl(VNum(2.0)))
        t = VInl(VPair(VNum(1.5), VNum(2.5)))
        assert lens.backward(v, t) == VPair(VNum(1.5), VInl(VNum(2.5)))

    def test_requires_finite_summand_slack(self):
        from repro.semantics.spaces import UnitObjectI

        with pytest.raises(ValueError):
            distributor(NumSpace(), UnitObjectI(), NumSpace())
