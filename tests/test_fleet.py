"""The fleet failure-mode suite: client taxonomy, hashing, merge, dispatch.

Four contracts under test:

* **the client's failure taxonomy** is trustworthy: wall-clock deadlines
  fire against drip-feeding peers, truncated bodies are never accepted
  as complete, and a server killed mid-request surfaces as the
  retryable :class:`~repro.service.client.ClientConnectionError` —
  the dispatcher's eject-vs-retry decisions build on these;
* **consistent hashing** is stable: placement is insertion-order
  independent, adding a node moves only ~1/N of the keys (all of them
  *to* the new node), and the preference order is the failover order;
* **the merge** replicates the single-node batch payload byte for byte
  and refuses header/bound mismatches loudly;
* **fleet dispatch** is byte-identical to a single-node audit — split
  or unsplit, even after a node dies mid-run — and a mixed-version
  node is rejected, never merged.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import socket
import struct
import tempfile
import threading
import time

import pytest

from repro import api as repro_api
from repro.api.result import render_payload
from repro.cli import main
from repro.semantics.shard import shard_bounds
from repro.service import client as service_client
from repro.service.cache import deactivate
from repro.service.client import (
    ClientConnectionError,
    ClientDeadlineError,
    ClientTruncationError,
)
from repro.service.fleet import (
    FleetDispatcher,
    FleetError,
    HashRing,
    Node,
    merge_batch_payloads,
    parse_nodes,
)
from repro.service.server import AuditServer, serve

SAFEDIV = os.path.join(
    os.path.dirname(__file__), "..", "examples", "bean", "safediv4.bean"
)

BATCH_INPUTS = {
    "x": [[1, 2, 3, 4], [2, 3, 4, 5], [1, 1, 1, 1]],
    "y": [[1, 1, 2, 2], [0, 1, 1, 2], [4, 3, 2, 1]],
    "f": [[1, 1, 1, 1], [2, 2, 2, 2], [3, 3, 3, 3]],
}
SCALAR_INPUTS = {k: v[0] for k, v in BATCH_INPUTS.items()}

#: 20 rows — wide enough to split three ways, with zero divisors
#: scattered across shards so fallback rows survive the merge offsets.
WIDE_INPUTS = {
    "x": [[1 + 0.5 * i, 2, 3 + i % 3, 4] for i in range(20)],
    "y": [[0 if i % 7 == 5 else 1, 1 + 0.25 * i, 2, 2] for i in range(20)],
    "f": [[1, 1, 1 + i % 5, 1] for i in range(20)],
}


def cli_json(argv):
    """Run the CLI in-process, capturing stdout."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


@contextlib.contextmanager
def fleet(n):
    """``n`` audit servers on ephemeral ports, each with its own cache."""
    deactivate()
    handles = []
    dirs = []
    try:
        for _ in range(n):
            cache_dir = tempfile.TemporaryDirectory()
            dirs.append(cache_dir)
            handles.append(
                serve(AuditServer(port=0, cache_dir=cache_dir.name))
            )
        yield handles
    finally:
        for handle in handles:
            try:
                handle.stop()
            except Exception:
                pass
        for cache_dir in dirs:
            cache_dir.cleanup()
        deactivate()


def nodes_of(handles):
    return ",".join(f"{h.host}:{h.port}" for h in handles)


@pytest.fixture()
def remote_engine(monkeypatch):
    """The ``remote`` engine with clean config before and after."""
    monkeypatch.delenv("REPRO_NODES", raising=False)
    engine = repro_api.get_engine("remote")
    engine.configure(reset=True)
    yield engine
    engine.configure(reset=True)


# --------------------------------------------------------------------------
# Client failure taxonomy (raw-socket peers standing in for sick servers)
# --------------------------------------------------------------------------


@contextlib.contextmanager
def one_shot_server(handler):
    """A listening socket whose first connection is fed to ``handler``."""
    lsock = socket.socket()
    lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    lsock.bind(("127.0.0.1", 0))
    lsock.listen(1)
    port = lsock.getsockname()[1]

    def run():
        try:
            conn, _ = lsock.accept()
        except OSError:
            return
        with conn:
            try:
                handler(conn)
            except OSError:
                pass

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        yield port
    finally:
        lsock.close()
        thread.join(timeout=10)


class TestClientFailureTaxonomy:
    def test_connection_refused(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ClientConnectionError, match="cannot reach"):
            service_client.request(
                "127.0.0.1", port, "GET", "/healthz", timeout=2
            )

    def test_deadline_is_wall_clock_under_drip_feed(self):
        # One byte every 0.1s: a per-socket-operation timeout of 0.5s
        # would never fire; the wall-clock deadline must.
        def drip(conn):
            conn.recv(65536)
            while True:
                conn.sendall(b"H")
                time.sleep(0.1)

        with one_shot_server(drip) as port:
            start = time.monotonic()
            with pytest.raises(ClientDeadlineError, match="deadline of"):
                service_client.request(
                    "127.0.0.1", port, "GET", "/healthz", timeout=0.5
                )
            elapsed = time.monotonic() - start
        assert 0.4 <= elapsed < 5

    def test_deadline_against_silent_server(self):
        def silent(conn):
            conn.recv(65536)
            time.sleep(3)

        with one_shot_server(silent) as port:
            with pytest.raises(ClientDeadlineError):
                service_client.request(
                    "127.0.0.1", port, "GET", "/healthz", timeout=0.3
                )

    def test_missing_content_length_on_2xx_is_truncation(self):
        # Our server always sends Content-Length; a 2xx without one
        # means the response was cut — reading to EOF and accepting
        # whatever arrived would silently truncate the payload.
        def no_length(conn):
            conn.recv(65536)
            conn.sendall(b"HTTP/1.1 200 OK\r\n\r\n{\"sound\": true}")

        with one_shot_server(no_length) as port:
            with pytest.raises(ClientTruncationError, match="Content-Length"):
                service_client.request(
                    "127.0.0.1", port, "GET", "/healthz", timeout=5
                )

    def test_non_2xx_without_content_length_still_parses(self):
        def terse_error(conn):
            conn.recv(65536)
            conn.sendall(b"HTTP/1.1 422 Unprocessable\r\n\r\n{\"error\": \"no\"}")

        with one_shot_server(terse_error) as port:
            status, body = service_client.request(
                "127.0.0.1", port, "GET", "/healthz", timeout=5
            )
        assert status == 422
        assert body == b"{\"error\": \"no\"}"

    def test_short_body_is_truncation(self):
        def short_body(conn):
            conn.recv(65536)
            conn.sendall(
                b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort"
            )

        with one_shot_server(short_body) as port:
            with pytest.raises(
                ClientTruncationError, match="got 5 of 100 bytes"
            ):
                service_client.request(
                    "127.0.0.1", port, "GET", "/healthz", timeout=5
                )

    def test_cut_header_block_is_truncation(self):
        def cut_headers(conn):
            conn.recv(65536)
            conn.sendall(b"HTTP/1.1 200 OK\r\nContent-Le")

        with one_shot_server(cut_headers) as port:
            with pytest.raises(
                ClientTruncationError, match="header terminator"
            ):
                service_client.request(
                    "127.0.0.1", port, "GET", "/healthz", timeout=5
                )

    def test_server_killed_mid_request_is_connection_error(self):
        # Regression: the server dies (RST) while the client is still
        # sending a large body.  The resulting BrokenPipeError /
        # ConnectionResetError after a *partial* send must surface as
        # the retryable ClientConnectionError, not a generic OSError.
        def kill_mid_request(conn):
            conn.recv(1024)
            conn.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),  # RST on close
            )
            conn.close()

        body = b"x" * (32 * 1024 * 1024)  # far beyond the socket buffers
        with one_shot_server(kill_mid_request) as port:
            with pytest.raises(ClientConnectionError, match="died mid-"):
                service_client.request(
                    "127.0.0.1", port, "POST", "/audit", body, timeout=30
                )


# --------------------------------------------------------------------------
# Consistent hashing
# --------------------------------------------------------------------------


def _nodes(n):
    return [Node("10.0.0.%d" % i, 9000) for i in range(1, n + 1)]


KEYS = ["program-%d" % i for i in range(2000)]


class TestHashRing:
    def test_placement_is_insertion_order_independent(self):
        nodes = _nodes(4)
        forward = HashRing(nodes)
        backward = HashRing(reversed(nodes))
        for key in KEYS[:200]:
            assert forward.node_for(key) == backward.node_for(key)

    def test_every_node_owns_a_fair_share(self):
        ring = HashRing(_nodes(4))
        counts = {node: 0 for node in ring.nodes}
        for key in KEYS:
            counts[ring.node_for(key)] += 1
        for count in counts.values():
            assert count > len(KEYS) * 0.05

    def test_adding_a_node_moves_about_one_over_n(self):
        ring = HashRing(_nodes(4))
        before = {key: ring.node_for(key) for key in KEYS}
        newcomer = Node("10.0.0.99", 9000)
        ring.add(newcomer)
        moved = [key for key in KEYS if ring.node_for(key) != before[key]]
        # Expected 1/5 of the keys; allow generous slack either side.
        assert 0.05 < len(moved) / len(KEYS) < 0.45
        # Consistency: a key that moved can only have moved TO the
        # newcomer — no survivor's warm cache is invalidated.
        assert all(ring.node_for(key) == newcomer for key in moved)

    def test_removing_a_node_strands_only_its_keys(self):
        ring = HashRing(_nodes(4))
        before = {key: ring.node_for(key) for key in KEYS}
        victim = ring.nodes[0]
        ring.remove(victim)
        for key in KEYS:
            if before[key] != victim:
                assert ring.node_for(key) == before[key]

    def test_preference_tail_is_the_failover_order(self):
        ring = HashRing(_nodes(4))
        for key in KEYS[:50]:
            order = ring.preference(key)
            assert order[0] == ring.node_for(key)
            shrunk = HashRing(_nodes(4))
            shrunk.remove(order[0])
            assert shrunk.node_for(key) == order[1]

    def test_empty_ring_raises(self):
        with pytest.raises(FleetError, match="empty"):
            HashRing().node_for("anything")


class TestParseNodes:
    def test_commas_and_whitespace(self):
        assert parse_nodes("a:1,b:2 c:3") == (
            Node("a", 1), Node("b", 2), Node("c", 3),
        )

    def test_duplicates_collapse_order_preserved(self):
        assert parse_nodes(["a:1", "b:2", Node("a", 1)]) == (
            Node("a", 1), Node("b", 2),
        )

    @pytest.mark.parametrize(
        "bad", ["justahost", "a:notaport", "a:0", "a:70000", ""]
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(FleetError):
            parse_nodes(bad)


# --------------------------------------------------------------------------
# The merge
# --------------------------------------------------------------------------


def _witness_payload(inputs):
    code, out = cli_json(
        ["witness", SAFEDIV, "--inputs", json.dumps(inputs), "--json",
         "--batch"]
    )
    assert code == 0
    return json.loads(out), out


def _sliced(inputs, lo, hi):
    return {name: rows[lo:hi] for name, rows in inputs.items()}


class TestMergeBatchPayloads:
    def test_merge_replicates_single_node_bytes(self):
        _, full_out = _witness_payload(WIDE_INPUTS)
        bounds = shard_bounds(20, 3)
        parts = [
            _witness_payload(_sliced(WIDE_INPUTS, lo, hi))[0]
            for lo, hi in zip(bounds, bounds[1:])
        ]
        merged = merge_batch_payloads(parts)
        assert render_payload(merged) + "\n" == full_out

    def test_header_mismatch_is_loud(self):
        part, _ = _witness_payload(BATCH_INPUTS)
        other = dict(part)
        other["u"] = "2^-24"
        with pytest.raises(FleetError, match="'u' differs"):
            merge_batch_payloads([part, other])

    def test_bound_mismatch_is_loud(self):
        part, _ = _witness_payload(BATCH_INPUTS)
        other = json.loads(json.dumps(part))
        name = next(iter(other["params"]))
        other["params"][name]["bound"] = "9999"
        with pytest.raises(FleetError, match="bound for"):
            merge_batch_payloads([part, other])

    def test_non_batch_payload_is_rejected(self):
        code, out = cli_json(
            ["witness", SAFEDIV, "--inputs", json.dumps(SCALAR_INPUTS),
             "--json"]
        )
        assert code == 0
        with pytest.raises(FleetError, match="non-batch"):
            merge_batch_payloads([json.loads(out)])

    def test_nothing_to_merge(self):
        with pytest.raises(FleetError, match="nothing to merge"):
            merge_batch_payloads([])


# --------------------------------------------------------------------------
# Fleet dispatch against live nodes
# --------------------------------------------------------------------------


class TestFleetDispatch:
    def test_split_audit_byte_identical_to_single_node(self):
        _, golden = _witness_payload(WIDE_INPUTS)
        with fleet(3) as handles:
            dispatcher = FleetDispatcher(
                nodes_of(handles), min_rows_per_shard=4, spill_depth=None
            )
            body = dispatcher.audit_spec(
                {
                    "source": open(SAFEDIV).read(),
                    "inputs": WIDE_INPUTS,
                    "engine": "batch",
                }
            )
        assert body == golden
        assert dispatcher.stats["split_audits"] == 1
        assert dispatcher.stats["sub_requests"] == 3

    def test_unsplit_small_batch_byte_identical(self):
        _, golden = _witness_payload(BATCH_INPUTS)
        with fleet(2) as handles:
            dispatcher = FleetDispatcher(
                nodes_of(handles), spill_depth=None
            )  # 3 rows < 2 * min_rows_per_shard: dispatch unsplit
            body = dispatcher.audit_spec(
                {
                    "source": open(SAFEDIV).read(),
                    "inputs": BATCH_INPUTS,
                    "engine": "batch",
                }
            )
        assert body == golden
        assert dispatcher.stats["split_audits"] == 0
        assert dispatcher.stats["sub_requests"] == 1

    def test_same_program_lands_on_the_same_node(self):
        # Cache locality: repeated audits of one program hit one node's
        # prepared-program table, not a random node per request.
        with fleet(3) as handles:
            dispatcher = FleetDispatcher(
                nodes_of(handles), spill_depth=None
            )
            spec = {"source": open(SAFEDIV).read(), "inputs": SCALAR_INPUTS}
            for _ in range(3):
                dispatcher.audit_spec(spec)
            audits = sorted(
                handle.server.stats["audits"] for handle in handles
            )
        assert audits == [0, 0, 3]

    def test_node_death_mid_batch_redispatches_bitwise_equal(self):
        _, golden = _witness_payload(WIDE_INPUTS)
        with fleet(3) as handles:
            dispatcher = FleetDispatcher(
                nodes_of(handles),
                min_rows_per_shard=4,
                retries=1,
                eject_after=1,
                spill_depth=None,
                sleep=lambda _s: None,
            )
            dispatcher.ensure_probed()  # all three healthy...
            dead = Node(handles[1].host, handles[1].port)
            handles[1].stop()  # ...then one dies mid-run
            body = dispatcher.audit_spec(
                {
                    "source": open(SAFEDIV).read(),
                    "inputs": WIDE_INPUTS,
                    "engine": "batch",
                }
            )
        assert body == golden
        assert dead in dispatcher.ejected
        assert dispatcher.stats["failovers"] >= 1
        assert len(dispatcher.nodes) == 2

    def test_probe_ejects_unreachable_pool_up_front(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        dispatcher = FleetDispatcher(f"127.0.0.1:{port}", spill_depth=None)
        with pytest.raises(FleetError, match="no healthy nodes"):
            dispatcher.audit_spec(
                {"source": open(SAFEDIV).read(), "inputs": SCALAR_INPUTS}
            )
        assert dispatcher.ejected

    def test_4xx_rejection_is_loud_not_retried(self):
        with fleet(2) as handles:
            dispatcher = FleetDispatcher(
                nodes_of(handles), spill_depth=None
            )
            with pytest.raises(FleetError, match="rejected the audit"):
                dispatcher.audit_spec(
                    {"source": "this is not bean", "inputs": {}}
                )
        # Deterministic rejection: no retry, no failover to the peer.
        assert dispatcher.stats["sub_requests"] == 1
        assert dispatcher.stats["failovers"] == 0

    def test_mixed_version_node_rejected_loudly(self):
        foreign = json.dumps(
            {"schema_version": 99, "definition": "SafeDiv4", "sound": True}
        ).encode("utf-8")
        head = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(foreign)).encode() + b"\r\n"
            b"Connection: close\r\n\r\n"
        )
        lsock = socket.socket()
        lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        lsock.bind(("127.0.0.1", 0))
        lsock.listen(5)
        port = lsock.getsockname()[1]
        stop = threading.Event()

        def run():
            while not stop.is_set():
                try:
                    conn, _ = lsock.accept()
                except OSError:
                    return
                with conn:
                    try:
                        conn.recv(65536)
                        conn.sendall(head + foreign)
                    except OSError:
                        pass

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        try:
            dispatcher = FleetDispatcher(
                f"127.0.0.1:{port}", spill_depth=None
            )
            with pytest.raises(FleetError, match="mixed-version fleet"):
                dispatcher.audit_spec(
                    {"source": open(SAFEDIV).read(), "inputs": SCALAR_INPUTS}
                )
            assert Node("127.0.0.1", port) in dispatcher.ejected
        finally:
            stop.set()
            lsock.close()
            thread.join(timeout=10)

    def test_spill_reroutes_a_backlogged_owner(self, monkeypatch):
        dispatcher = FleetDispatcher(
            "a:1,b:2", probe=False, spill_depth=4
        )
        baseline = dispatcher._route_order("some-program")
        owner, peer = baseline[0], baseline[1]
        depths = {owner: 9, peer: 0}
        monkeypatch.setattr(
            dispatcher, "_queue_depth", lambda node: depths[node]
        )
        assert dispatcher._route_order("some-program")[0] == peer
        assert dispatcher.stats["spills"] == 1
        depths[owner] = 3  # below spill_depth: locality wins again
        assert dispatcher._route_order("some-program")[0] == owner


# --------------------------------------------------------------------------
# The ``remote`` engine and its CLI surfaces
# --------------------------------------------------------------------------


class TestRemoteEngine:
    def test_session_audit_via_env_pool(self, remote_engine, monkeypatch):
        _, golden = _witness_payload(WIDE_INPUTS)
        with fleet(2) as handles:
            monkeypatch.setenv("REPRO_NODES", nodes_of(handles))
            result = repro_api.Session().audit(
                open(SAFEDIV).read(), inputs=WIDE_INPUTS, engine="remote"
            )
            assert result.to_json() + "\n" == golden
            assert "fleet audit" in result.report.describe()
            assert nodes_of(handles).split(",")[0] in result.report.describe()

    def test_client_cli_byte_identical(self, remote_engine):
        _, golden = _witness_payload(WIDE_INPUTS)
        with fleet(2) as handles:
            code, out = cli_json(
                [
                    "client", SAFEDIV, "--engine", "remote",
                    "--nodes", nodes_of(handles),
                    "--inputs", json.dumps(WIDE_INPUTS),
                ]
            )
        assert out == golden
        assert code == 0

    def test_witness_cli_byte_identical(self, remote_engine):
        _, golden = _witness_payload(WIDE_INPUTS)
        with fleet(2) as handles:
            code, out = cli_json(
                [
                    "witness", SAFEDIV, "--engine", "remote",
                    "--nodes", nodes_of(handles),
                    "--inputs", json.dumps(WIDE_INPUTS), "--json",
                ]
            )
        assert out == golden
        assert code == 0

    def test_witness_cli_human_report(self, remote_engine):
        with fleet(1) as handles:
            code, out = cli_json(
                [
                    "witness", SAFEDIV, "--engine", "remote",
                    "--nodes", nodes_of(handles),
                    "--inputs", json.dumps(BATCH_INPUTS),
                ]
            )
        assert code == 0
        assert "fleet audit" in out
        assert "nodes" in out

    def test_unconfigured_remote_engine_fails_loudly(self, remote_engine):
        with pytest.raises(ValueError, match="node pool"):
            repro_api.Session().audit(
                open(SAFEDIV).read(), inputs=SCALAR_INPUTS, engine="remote"
            )

    def test_client_cli_without_nodes_is_an_error(self, remote_engine, capsys):
        code, _out = cli_json(
            [
                "client", SAFEDIV, "--engine", "remote",
                "--inputs", json.dumps(SCALAR_INPUTS),
            ]
        )
        assert code == 1
        assert "needs a node pool" in capsys.readouterr().err


# --------------------------------------------------------------------------
# Nightly soak (opt-in: REPRO_SOAK=1)
# --------------------------------------------------------------------------


@pytest.mark.skipif(
    not os.environ.get("REPRO_SOAK"),
    reason="fleet soak is opt-in: set REPRO_SOAK=1",
)
class TestFleetSoak:
    def test_two_node_fleet_soak(self):
        clients = 4
        requests_each = 25
        _, golden_wide = _witness_payload(WIDE_INPUTS)
        _, golden_small = _witness_payload(BATCH_INPUTS)
        goldens = [
            (WIDE_INPUTS, golden_wide),
            (BATCH_INPUTS, golden_small),
        ]
        source = open(SAFEDIV).read()
        failures = []
        with fleet(2) as handles:
            dispatcher = FleetDispatcher(
                nodes_of(handles), min_rows_per_shard=4, spill_depth=None
            )

            def worker(worker_id):
                for i in range(requests_each):
                    inputs, golden = goldens[(worker_id + i) % len(goldens)]
                    try:
                        body = dispatcher.audit_spec(
                            {
                                "source": source,
                                "inputs": inputs,
                                "engine": "batch",
                            }
                        )
                    except FleetError as exc:
                        failures.append((worker_id, i, str(exc)))
                        continue
                    if body != golden:
                        failures.append((worker_id, i, "byte mismatch"))

            threads = [
                threading.Thread(target=worker, args=(w,))
                for w in range(clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not failures
        assert dispatcher.stats["audits"] == clients * requests_each
        assert not dispatcher.ejected
