"""Strict linearity: the programs Bean must reject — and the escape
hatches it provides (Section 2.2.3, Remark 1)."""

import pytest

from repro.core import (
    LinearityError,
    check_program,
    parse_program,
)
from repro.core.grades import ZERO


class TestRejections:
    def test_duplicated_operand(self):
        # f(x) = x + x: x used twice.
        with pytest.raises(LinearityError):
            check_program(parse_program("F (x : num) := add x x"))

    def test_paper_remark_1(self):
        # f(x, y) = x*y + y is backward stable but rejected (Remark 1).
        with pytest.raises(LinearityError):
            check_program(
                parse_program("F (x : num) (y : num) := add (mul x y) y")
            )

    def test_quadratic_with_mul_rejected(self):
        # h(x, a, b) = a*x^2 + b*x with mul: x appears in both terms.
        src = """
        H (x : num) (a : num) (b : num) :=
          let x2 = mul x x in
          let t1 = mul a x2 in
          let t2 = mul b x in
          add t1 t2
        """
        with pytest.raises(LinearityError):
            check_program(parse_program(src))

    def test_duplication_through_pair(self):
        with pytest.raises(LinearityError):
            check_program(parse_program("F (x : num) := (x, x)"))

    def test_duplication_through_let(self):
        src = """
        F (x : num) :=
          let y = add x x in
          y
        """
        with pytest.raises(LinearityError):
            check_program(parse_program(src))

    def test_duplication_across_call_arguments(self):
        src = """
        G (a : num) (b : num) := add a b
        F (x : num) := G x x
        """
        with pytest.raises(LinearityError):
            check_program(parse_program(src))

    def test_error_message_names_variable(self):
        with pytest.raises(LinearityError, match="x"):
            check_program(parse_program("F (x : num) := add x x"))


class TestEscapeHatches:
    def test_quadratic_with_dmul_accepted(self):
        # The paper's fix (Section 2.2.3): make x discrete, assign error
        # to the coefficients only.  h(x,a,b) = a*x^2 + b*x IS typeable.
        src = """
        H (x : !R) (a : num) (b : num) :=
          let t1p = dmul x a in
          let t1 = dmul x t1p in
          let t2 = dmul x b in
          add t1 t2
        """
        j = check_program(parse_program(src))["H"]
        # a: 2 dmuls + add = 3ε; b: 1 dmul + add = 2ε.
        assert j.grade_of("a").coeff == 3
        assert j.grade_of("b").coeff == 2

    def test_bang_then_reuse_discretely(self):
        # LinSolve's pattern: promote a computed value, then reuse it.
        src = """
        F (x : num) (a : num) (b : num) :=
          dlet z = !x in
          let t1 = dmul z a in
          let t2 = dmul z b in
          add t1 t2
        """
        j = check_program(parse_program(src))["F"]
        assert j.grade_of("x") == ZERO  # no error ever assigned to x

    def test_discrete_param_reused_freely(self):
        src = """
        F (z : !R) (a : num) (b : num) :=
          let t1 = dmul z a in
          let t2 = dmul z b in
          add t1 t2
        """
        check_program(parse_program(src))  # does not raise

    def test_case_branches_may_share(self):
        # Only one branch executes, so sharing across branches is fine.
        src = """
        F (s : num + unit) (x : num) :=
          case s of
            inl (a) => add a x
          | inr (u) => add x x2
        """
        # ... but this one still duplicates x within nothing; make a
        # correct version:
        src = """
        F (s : num + num) (x : num) :=
          case s of
            inl (a) => add a x
          | inr (b) => sub b x
        """
        j = check_program(parse_program(src))["F"]
        assert j.grade_of("x").coeff == 1

    def test_unused_linear_variable_is_fine(self):
        # Weakening: unused variables simply get bound 0.
        j = check_program(parse_program("F (x : num) (y : num) := x"))["F"]
        assert j.grade_of("y") == ZERO
