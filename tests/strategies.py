"""Random well-typed Bean program generation for property-based tests.

:func:`random_definition` builds straight-line numeric programs by
construction, so every generated program is well-typed and strictly
linear by design:

* ``n_linear`` linear ``num`` parameters and ``n_discrete`` discrete
  parameters form the initial *pool* of one-use values;
* each step draws one or two unused values from the pool, combines them
  with a random primitive (``dmul`` uses a discrete variable on the
  left; all discrete variables are reusable), lets the result, and puts
  it back in the pool;
* optionally, results are promoted with ``!``/``dlet`` and reused
  discretely, and a final ``div``+``case`` exercises the coproduct path;
* the program returns the last bound value (or a pair of the last two).

The companion :func:`random_inputs` draws inputs that avoid exact zeros,
overflow, and underflow — the regime the paper's standard rounding model
assumes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.core import NUM, Definition, Param
from repro.core import builders as B
from repro.core.types import DNUM

__all__ = [
    "random_definition",
    "random_inputs",
    "random_batch_inputs",
    "batch_row",
    "DefinitionSpec",
]


class DefinitionSpec:
    """A generated definition plus the metadata tests need."""

    def __init__(self, definition: Definition, linear: List[str], discrete: List[str]):
        self.definition = definition
        self.linear = linear
        self.discrete = discrete

    def __repr__(self) -> str:
        from repro.core import pretty_definition

        return pretty_definition(self.definition)


def random_definition(
    seed: int,
    *,
    n_linear: int = 3,
    n_discrete: int = 1,
    n_steps: int = 6,
    allow_case: bool = True,
    allow_promote: bool = True,
) -> DefinitionSpec:
    """Generate a well-typed, strictly linear Bean definition."""
    rng = random.Random(seed)
    n_linear = max(1, n_linear)
    linear_params = [f"x{i}" for i in range(n_linear)]
    discrete_params = [f"z{i}" for i in range(n_discrete)]

    pool: List[str] = list(linear_params)  # one-use numeric values
    discretes: List[str] = list(discrete_params)  # reusable numeric values
    bindings: List[Tuple[str, object]] = []
    counter = 0

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    def draw() -> str:
        return pool.pop(rng.randrange(len(pool)))

    for _ in range(n_steps):
        choice = rng.random()
        if choice < 0.15 and discretes and pool:
            # dmul: discrete on the left, pool value on the right.
            name = fresh("d")
            bindings.append((name, B.dmul(rng.choice(discretes), draw())))
            pool.append(name)
        elif choice < 0.25 and allow_promote and len(pool) >= 2:
            # Promote a pool value to a reusable discrete variable
            # (keep at least one linear value in the pool).
            value = draw()
            banged = fresh("bq")
            dname = fresh("dz")
            bindings.append((banged, B.bang(value)))
            bindings.append(("__dlet__" + dname, banged))
            discretes.append(dname)
        elif choice < 0.32 and pool:
            # Explicit rounding step (the §2.2.1 extension).
            name = fresh("rn")
            bindings.append((name, B.rnd(draw())))
            pool.append(name)
        elif len(pool) >= 2:
            op = rng.choice([B.add, B.sub, B.mul])
            name = fresh("t")
            bindings.append((name, op(draw(), draw())))
            pool.append(name)
        elif pool and discretes:
            name = fresh("d")
            bindings.append((name, B.dmul(rng.choice(discretes), draw())))
            pool.append(name)

    assert pool, "generator invariant: the pool never drains completely"

    if allow_case and rng.random() < 0.4 and len(pool) >= 2:
        # A division feeding a case: both branches return num + unit.
        quotient = fresh("q")
        bindings.append((quotient, B.div(draw(), draw())))
        payload = fresh("p")
        result_expr: object = B.case(
            quotient,
            payload,
            B.inl(payload),
            "err",
            B.inr("err", NUM),
        )
    else:
        if len(pool) >= 2 and rng.random() < 0.3:
            result_expr = B.pair(draw(), draw())
        else:
            result_expr = B.var(draw())

    # Assemble: thread dlet promotions correctly.
    expr = result_expr
    for name, bound in reversed(bindings):
        if name.startswith("__dlet__"):
            expr = B.dlet(name[len("__dlet__"):], bound, expr)
        else:
            expr = B.let_(name, bound, expr)

    params = [Param(p, NUM) for p in linear_params] + [
        Param(z, DNUM) for z in discrete_params
    ]
    definition = Definition(f"Gen{seed & 0xFFFF}", params, expr)
    return DefinitionSpec(definition, linear_params, discrete_params)


def random_inputs(
    spec: DefinitionSpec, seed: int, *, positive: bool = False
) -> Dict[str, float]:
    """Draw benign inputs (no zeros, no overflow) for a generated spec."""
    rng = random.Random(seed)

    def draw() -> float:
        magnitude = rng.uniform(0.5, 4.0)
        if positive:
            return magnitude
        return magnitude if rng.random() < 0.5 else -magnitude

    inputs: Dict[str, float] = {}
    for name in spec.linear:
        inputs[name] = draw()
    for name in spec.discrete:
        inputs[name] = draw()
    return inputs


def random_batch_inputs(
    spec: DefinitionSpec, seed: int, n_rows: int, *, positive: bool = False
):
    """Draw ``n_rows`` benign environments as batch columns.

    Returns a mapping from parameter name to a float64 array of shape
    ``(n_rows,)`` — the input format of
    :class:`repro.semantics.batch.BatchWitnessEngine`.  Row ``i`` of
    every column taken together is one scalar environment, recoverable
    with :func:`batch_row`.
    """
    import numpy as np

    rng = random.Random(seed)
    columns = {}
    for name in spec.linear + spec.discrete:
        values = []
        for _ in range(n_rows):
            magnitude = rng.uniform(0.5, 4.0)
            if not positive and rng.random() < 0.5:
                magnitude = -magnitude
            values.append(magnitude)
        columns[name] = np.array(values, dtype=np.float64)
    return columns


def batch_row(columns, i: int) -> Dict[str, float]:
    """Extract environment ``i`` from batch columns as plain scalars."""
    return {name: float(col[i]) for name, col in columns.items()}
