"""Random well-typed Bean program generation for property-based tests.

:func:`random_definition` builds straight-line numeric programs by
construction, so every generated program is well-typed and strictly
linear by design:

* ``n_linear`` linear ``num`` parameters and ``n_discrete`` discrete
  parameters form the initial *pool* of one-use values;
* each step draws one or two unused values from the pool, combines them
  with a random primitive (``dmul`` uses a discrete variable on the
  left; all discrete variables are reusable), lets the result, and puts
  it back in the pool;
* optionally, results are promoted with ``!``/``dlet`` and reused
  discretely; ``allow_div`` adds mid-program guarded quotients
  (``div`` feeding an inline ``case`` whose ``inr`` branch substitutes
  a fallback pool value — asymmetric linear use across branches), and
  a final ``div``+``case`` exercises the coproduct result path;
* the program returns the last bound value (or a pair of the last two).

:func:`random_program` wraps a generated main with generated *helper*
definitions and emits ``call`` steps into the main — the fuzz surface
for the IR call-inlining pass.

The companion :func:`random_inputs` draws inputs that avoid exact zeros,
overflow, and underflow — the regime the paper's standard rounding model
assumes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core import NUM, Definition, Param, Program
from repro.core import builders as B
from repro.core.types import DNUM

__all__ = [
    "random_definition",
    "random_program",
    "random_inputs",
    "random_batch_inputs",
    "batch_row",
    "DefinitionSpec",
    "ProgramSpec",
]


class DefinitionSpec:
    """A generated definition plus the metadata tests need."""

    #: The surrounding program (None for standalone definitions); set by
    #: :func:`random_program` so batch/witness helpers can treat both
    #: spec kinds uniformly.
    program: Optional[Program] = None

    def __init__(self, definition: Definition, linear: List[str], discrete: List[str]):
        self.definition = definition
        self.linear = linear
        self.discrete = discrete

    def __repr__(self) -> str:
        from repro.core import pretty_definition

        return pretty_definition(self.definition)


class ProgramSpec(DefinitionSpec):
    """A generated *program*: helper definitions plus a calling main."""

    def __init__(
        self,
        program: Program,
        definition: Definition,
        linear: List[str],
        discrete: List[str],
    ):
        super().__init__(definition, linear, discrete)
        self.program = program


def random_definition(
    seed: int,
    *,
    n_linear: int = 3,
    n_discrete: int = 1,
    n_steps: int = 6,
    allow_case: bool = True,
    allow_promote: bool = True,
    allow_div: bool = False,
) -> DefinitionSpec:
    """Generate a well-typed, strictly linear Bean definition.

    ``allow_div`` (off by default, so historical seed streams are
    stable) adds mid-program guarded quotients: ``div`` feeding an
    inline ``case`` that substitutes a fallback pool value on the
    ``inr`` branch.
    """
    rng = random.Random(seed)
    n_linear = max(1, n_linear)
    linear_params = [f"x{i}" for i in range(n_linear)]
    discrete_params = [f"z{i}" for i in range(n_discrete)]

    pool: List[str] = list(linear_params)  # one-use numeric values
    discretes: List[str] = list(discrete_params)  # reusable numeric values
    bindings: List[Tuple[str, object]] = []
    counter = 0

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    def draw() -> str:
        return pool.pop(rng.randrange(len(pool)))

    for _ in range(n_steps):
        choice = rng.random()
        if allow_div and choice < 0.3 and len(pool) >= 3:
            # Guarded quotient: div feeding an inline case.  The inr
            # branch returns a fallback pool value (its unit payload
            # stays unused), so the branches consume different linear
            # variables — the asymmetric-use shape case typing allows.
            numer, denom, fall = draw(), draw(), draw()
            v, e = fresh("v"), fresh("e")
            w = fresh("w")
            bindings.append(
                (w, B.case(B.div(numer, denom), v, B.var(v), e, B.var(fall)))
            )
            pool.append(w)
        elif choice < 0.15 and discretes and pool:
            # dmul: discrete on the left, pool value on the right.
            name = fresh("d")
            bindings.append((name, B.dmul(rng.choice(discretes), draw())))
            pool.append(name)
        elif choice < 0.25 and allow_promote and len(pool) >= 2:
            # Promote a pool value to a reusable discrete variable
            # (keep at least one linear value in the pool).
            value = draw()
            banged = fresh("bq")
            dname = fresh("dz")
            bindings.append((banged, B.bang(value)))
            bindings.append(("__dlet__" + dname, banged))
            discretes.append(dname)
        elif choice < 0.32 and pool:
            # Explicit rounding step (the §2.2.1 extension).
            name = fresh("rn")
            bindings.append((name, B.rnd(draw())))
            pool.append(name)
        elif len(pool) >= 2:
            op = rng.choice([B.add, B.sub, B.mul])
            name = fresh("t")
            bindings.append((name, op(draw(), draw())))
            pool.append(name)
        elif pool and discretes:
            name = fresh("d")
            bindings.append((name, B.dmul(rng.choice(discretes), draw())))
            pool.append(name)

    assert pool, "generator invariant: the pool never drains completely"

    if allow_case and rng.random() < 0.4 and len(pool) >= 2:
        # A division feeding a case: both branches return num + unit.
        quotient = fresh("q")
        bindings.append((quotient, B.div(draw(), draw())))
        payload = fresh("p")
        result_expr: object = B.case(
            quotient,
            payload,
            B.inl(payload),
            "err",
            B.inr("err", NUM),
        )
    else:
        if len(pool) >= 2 and rng.random() < 0.3:
            result_expr = B.pair(draw(), draw())
        else:
            result_expr = B.var(draw())

    # Assemble: thread dlet promotions correctly.
    expr = result_expr
    for name, bound in reversed(bindings):
        if name.startswith("__dlet__"):
            expr = B.dlet(name[len("__dlet__"):], bound, expr)
        else:
            expr = B.let_(name, bound, expr)

    params = [Param(p, NUM) for p in linear_params] + [
        Param(z, DNUM) for z in discrete_params
    ]
    definition = Definition(f"Gen{seed & 0xFFFF}", params, expr)
    return DefinitionSpec(definition, linear_params, discrete_params)


def random_program(
    seed: int,
    *,
    n_linear: int = 3,
    n_discrete: int = 1,
    n_steps: int = 5,
    n_helpers: int = 1,
    allow_div: bool = False,
) -> ProgramSpec:
    """Generate a program of helper definitions plus a calling main.

    Helpers are small straight-line definitions (one or two linear
    parameters, optionally one discrete); the main's step loop mixes
    plain arithmetic with ``call`` steps whose arguments consume pool
    values (and pass the main's discrete variables through to discrete
    helper parameters).  Everything is well-typed and strictly linear
    by construction, like :func:`random_definition`.
    """
    from repro.core import check_definition

    rng = random.Random(seed ^ 0x5EED)
    helpers: List[Tuple[Definition, int, int]] = []  # (def, n_lin, n_disc)
    for h in range(max(1, n_helpers)):
        h_linear = rng.randint(1, 2)
        h_discrete = rng.randint(0, min(1, n_discrete))
        for attempt in range(32):
            h_spec = random_definition(
                (seed * 31 + h + attempt * 977) & 0x7FFFFFFF,
                n_linear=h_linear,
                n_discrete=h_discrete,
                n_steps=rng.randint(1, 3),
                allow_case=False,
                allow_promote=False,
                allow_div=allow_div,
            )
            # The main splices call results into num arithmetic, so the
            # helper must return num (the generator sometimes ends on a
            # pair).
            if check_definition(h_spec.definition).result == NUM:
                break
        helper = Definition(
            f"Help{seed & 0xFFFF}_{h}",
            h_spec.definition.params,
            h_spec.definition.body,
        )
        helpers.append((helper, h_linear, h_discrete))

    linear_params = [f"x{i}" for i in range(max(1, n_linear))]
    discrete_params = [f"z{i}" for i in range(n_discrete)]
    pool: List[str] = list(linear_params)
    discretes: List[str] = list(discrete_params)
    bindings: List[Tuple[str, object]] = []
    counter = 0

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    def draw() -> str:
        return pool.pop(rng.randrange(len(pool)))

    callable_helpers = [
        (d, nl, nd) for d, nl, nd in helpers if nd == 0 or discretes
    ]
    for _ in range(n_steps):
        choice = rng.random()
        if choice < 0.45 and callable_helpers:
            helper, h_lin, h_disc = rng.choice(callable_helpers)
            if len(pool) < h_lin:
                continue
            args = []
            for p in helper.params:
                from repro.core.types import is_discrete

                if is_discrete(p.ty):
                    args.append(B.var(rng.choice(discretes)))
                else:
                    args.append(B.var(draw()))
            name = fresh("c")
            bindings.append((name, B.call(helper.name, *args)))
            pool.append(name)
        elif len(pool) >= 2:
            op = rng.choice([B.add, B.sub, B.mul])
            name = fresh("t")
            bindings.append((name, op(draw(), draw())))
            pool.append(name)
        elif pool and discretes:
            name = fresh("d")
            bindings.append((name, B.dmul(rng.choice(discretes), draw())))
            pool.append(name)

    assert pool, "generator invariant: the pool never drains completely"
    result_expr = B.var(pool.pop(rng.randrange(len(pool))))
    expr = result_expr
    for name, bound in reversed(bindings):
        expr = B.let_(name, bound, expr)
    params = [Param(p, NUM) for p in linear_params] + [
        Param(z, DNUM) for z in discrete_params
    ]
    main = Definition(f"Main{seed & 0xFFFF}", params, expr)
    program = Program([d for d, _, _ in helpers] + [main])
    return ProgramSpec(program, main, linear_params, discrete_params)


def random_inputs(
    spec: DefinitionSpec, seed: int, *, positive: bool = False
) -> Dict[str, float]:
    """Draw benign inputs (no zeros, no overflow) for a generated spec."""
    rng = random.Random(seed)

    def draw() -> float:
        magnitude = rng.uniform(0.5, 4.0)
        if positive:
            return magnitude
        return magnitude if rng.random() < 0.5 else -magnitude

    inputs: Dict[str, float] = {}
    for name in spec.linear:
        inputs[name] = draw()
    for name in spec.discrete:
        inputs[name] = draw()
    return inputs


def random_batch_inputs(
    spec: DefinitionSpec, seed: int, n_rows: int, *, positive: bool = False
):
    """Draw ``n_rows`` benign environments as batch columns.

    Returns a mapping from parameter name to a float64 array of shape
    ``(n_rows,)`` — the input format of
    :class:`repro.semantics.batch.BatchWitnessEngine`.  Row ``i`` of
    every column taken together is one scalar environment, recoverable
    with :func:`batch_row`.
    """
    import numpy as np

    rng = random.Random(seed)
    columns = {}
    for name in spec.linear + spec.discrete:
        values = []
        for _ in range(n_rows):
            magnitude = rng.uniform(0.5, 4.0)
            if not positive and rng.random() < 0.5:
                magnitude = -magnitude
            values.append(magnitude)
        columns[name] = np.array(values, dtype=np.float64)
    return columns


def batch_row(columns, i: int) -> Dict[str, float]:
    """Extract environment ``i`` from batch columns as plain scalars."""
    return {name: float(col[i]) for name, col in columns.items()}
