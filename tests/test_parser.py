"""Tests for the Bean parser and pattern desugaring."""

import pytest

from repro.core import ast_nodes as A
from repro.core.errors import BeanSyntaxError
from repro.core.parser import parse_expression, parse_program, parse_type
from repro.core.types import (
    NUM,
    UNIT,
    Discrete,
    Sum,
    Tensor,
    matrix,
    vector,
)


class TestTypes:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("num", NUM),
            ("R", NUM),
            ("unit", UNIT),
            ("!num", Discrete(NUM)),
            ("!R", Discrete(NUM)),
            ("num * num", Tensor(NUM, NUM)),
            ("num ⊗ num", Tensor(NUM, NUM)),
            ("num + unit", Sum(NUM, UNIT)),
            ("vec(2)", vector(2)),
            ("vec(5)", vector(5)),
            ("mat(2,2)", matrix(2, 2)),
            ("(num * num) + unit", Sum(Tensor(NUM, NUM), UNIT)),
            ("!(R * R)", Discrete(Tensor(NUM, NUM))),
        ],
    )
    def test_parse(self, source, expected):
        assert parse_type(source) == expected

    def test_tensor_right_associative(self):
        assert parse_type("num * num * num") == Tensor(NUM, Tensor(NUM, NUM))

    def test_trailing_input_rejected(self):
        with pytest.raises(BeanSyntaxError):
            parse_type("num num")

    def test_bad_type(self):
        with pytest.raises(BeanSyntaxError):
            parse_type("let")


class TestExpressions:
    def test_var(self):
        assert parse_expression("x") == A.Var("x")

    def test_unit(self):
        assert parse_expression("()") == A.UnitVal()

    def test_pair(self):
        assert parse_expression("(x, y)") == A.Pair(A.Var("x"), A.Var("y"))

    def test_triple_is_balanced(self):
        e = parse_expression("(a, b, c)")
        assert e == A.Pair(A.Var("a"), A.Pair(A.Var("b"), A.Var("c")))

    def test_quad_is_balanced(self):
        e = parse_expression("(a, b, c, d)")
        assert e == A.Pair(
            A.Pair(A.Var("a"), A.Var("b")), A.Pair(A.Var("c"), A.Var("d"))
        )

    def test_bang(self):
        assert parse_expression("!x") == A.Bang(A.Var("x"))

    @pytest.mark.parametrize(
        "kw,op", [("add", A.Op.ADD), ("sub", A.Op.SUB), ("mul", A.Op.MUL),
                   ("dmul", A.Op.DMUL), ("div", A.Op.DIV)]
    )
    def test_primops(self, kw, op):
        assert parse_expression(f"{kw} x y") == A.PrimOp(op, A.Var("x"), A.Var("y"))

    def test_primop_on_parenthesized(self):
        e = parse_expression("add (mul a b) c")
        assert isinstance(e.left, A.PrimOp)

    def test_let(self):
        e = parse_expression("let v = add x y in v")
        assert isinstance(e, A.Let)
        assert e.name == "v"

    def test_dlet(self):
        e = parse_expression("dlet z = !x in dmul z y")
        assert isinstance(e, A.DLet)

    def test_let_pair(self):
        e = parse_expression("let (a, b) = p in add a b")
        assert isinstance(e, A.LetPair)
        assert (e.left, e.right) == ("a", "b")

    def test_nested_pattern_desugars(self):
        e = parse_expression("let ((a, b), (c, d)) = p in add a d")
        assert isinstance(e, A.LetPair)
        # fresh intermediate names, then nested pair-lets
        assert isinstance(e.body, A.LetPair)

    def test_inl_default_unit(self):
        e = parse_expression("inl x")
        assert e == A.Inl(A.Var("x"), UNIT)

    def test_inl_with_annotation(self):
        e = parse_expression("inl{num * num} x")
        assert e.other == Tensor(NUM, NUM)

    def test_inr_with_annotation(self):
        e = parse_expression("inr{num} ()")
        assert e == A.Inr(A.UnitVal(), NUM)

    def test_case(self):
        e = parse_expression("case s of inl (a) => a | inr (b) => b")
        assert isinstance(e, A.Case)
        assert (e.left_name, e.right_name) == ("a", "b")

    def test_case_without_parens(self):
        e = parse_expression("case s of inl a => a | inr b => b")
        assert isinstance(e, A.Case)

    def test_call(self):
        e = parse_expression("Foo x y")
        assert e == A.Call("Foo", [A.Var("x"), A.Var("y")])

    def test_call_with_pair_argument(self):
        e = parse_expression("Foo (x, y) z")
        assert len(e.args) == 2

    def test_trailing_tokens_rejected(self):
        with pytest.raises(BeanSyntaxError):
            parse_expression("x )")

    def test_error_position(self):
        with pytest.raises(BeanSyntaxError) as exc:
            parse_expression("let = x in y")
        assert exc.value.line == 1


class TestDefinitions:
    def test_simple_definition(self):
        prog = parse_program("Id (x : num) : num := x")
        d = prog["Id"]
        assert d.params[0] == A.Param("x", NUM)
        assert d.declared_result == NUM
        assert d.body == A.Var("x")

    def test_without_result_annotation(self):
        prog = parse_program("Id (x : num) := x")
        assert prog["Id"].declared_result is None

    def test_discrete_parameter(self):
        prog = parse_program("F (z : !R) (x : num) := dmul z x")
        assert prog["F"].params[0].ty == Discrete(NUM)

    def test_pattern_parameter_desugars(self):
        prog = parse_program("F ((a, b) : vec(2)) := add a b")
        d = prog["F"]
        assert len(d.params) == 1
        assert isinstance(d.body, A.LetPair)

    def test_discrete_pattern_parameter_uses_dlet(self):
        prog = parse_program("F ((a, b) : !(R * R)) (x : num) := dmul a x")
        assert isinstance(prog["F"].body, A.DLetPair)

    def test_two_definitions_with_call(self):
        prog = parse_program(
            """
            Double (x : num) := add x x
            Main (x : num) (y : num) := Double x
            """
        )
        assert isinstance(prog["Main"].body, A.Call)

    def test_call_boundary_before_next_definition(self):
        # The classic ambiguity: a trailing call must not swallow the
        # next definition's name.
        prog = parse_program(
            """
            F (x : num) := x
            G (x : num) := F x
            H (x : num) := G x
            """
        )
        assert len(prog.definitions) == 3
        assert prog["G"].body == A.Call("F", [A.Var("x")])

    def test_empty_program_rejected(self):
        with pytest.raises(BeanSyntaxError):
            parse_program("   // nothing here\n")

    def test_duplicate_definitions_rejected(self):
        with pytest.raises(ValueError):
            parse_program("F (x : num) := x\nF (y : num) := y")
