"""Unit tests for the error-free-transformation kernels.

:mod:`repro.semantics.eft` is the exact-arithmetic layer under the
batch engine's default backward/ideal sweeps, so its contract is
checked here directly against the 60-digit ``Decimal`` semantics:

* TwoSum and TwoProd are **error-free**: ``hi + lo`` represents the
  real-number sum/product of two floats exactly.
* The composed double-double ops (add/sub/mul/div/sqrt) keep relative
  error well under ``2^-100`` — orders beyond the ``1e-26``/``1e-28``
  margins the batch screens rely on.
* The helper predicates (``is_zero``, ``sign_positive``,
  ``range_suspect``, ``where``) behave exactly as the screens assume.
"""

from __future__ import annotations

import decimal
from decimal import Decimal

import numpy as np
import pytest

from repro.semantics import eft


def _rand(seed: int, n: int = 256, scale: int = 40) -> np.ndarray:
    rng = np.random.default_rng(seed)
    mant = rng.uniform(-1.0, 1.0, n)
    expo = rng.integers(-scale, scale, n).astype(float)
    out = mant * np.exp2(expo)
    out[0] = 0.0  # always include an exact zero
    return out


def _dd_dec(x: eft.DD, i: int) -> Decimal:
    return Decimal(float(x.hi[i])) + Decimal(float(x.lo[i]))


def _rel_err(got: Decimal, want: Decimal) -> Decimal:
    if want == 0:
        return abs(got)
    return abs((got - want) / want)


#: dd ops carry at most ~10·2^-106 relative error; 2^-100 is a safely
#: testable ceiling far inside the batch screens' 1e-26 margins.
_TOL = Decimal(2) ** -100


class TestErrorFree:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_two_sum_exact(self, seed):
        a, b = _rand(seed), _rand(seed + 100)
        s, e = eft.two_sum(a, b)
        with decimal.localcontext() as ctx:
            ctx.prec = 80
            for i in range(a.size):
                want = Decimal(float(a[i])) + Decimal(float(b[i]))
                got = Decimal(float(s[i])) + Decimal(float(e[i]))
                assert got == want, i

    @pytest.mark.parametrize("seed", [4, 5, 6])
    def test_two_prod_exact(self, seed):
        a, b = _rand(seed, scale=30), _rand(seed + 100, scale=30)
        p, e = eft.two_prod(a, b)
        with decimal.localcontext() as ctx:
            ctx.prec = 80
            for i in range(a.size):
                want = Decimal(float(a[i])) * Decimal(float(b[i]))
                got = Decimal(float(p[i])) + Decimal(float(e[i]))
                assert got == want, i

    def test_from_float_is_exact(self):
        a = _rand(7)
        x = eft.from_float(a)
        assert np.array_equal(x.hi, a)
        assert not x.lo.any()


class TestDoubleDouble:
    @pytest.mark.parametrize("seed", [10, 11])
    def test_add_sub_mul_accuracy(self, seed):
        a, b = _rand(seed, scale=30), _rand(seed + 50, scale=30)
        x, y = eft.from_float(a), eft.from_float(b)
        cases = {
            "add": (eft.dd_add(x, y), lambda p, q: p + q),
            "sub": (eft.dd_sub(x, y), lambda p, q: p - q),
            "mul": (eft.dd_mul(x, y), lambda p, q: p * q),
        }
        with decimal.localcontext() as ctx:
            ctx.prec = 80
            for name, (got, op) in cases.items():
                for i in range(a.size):
                    want = op(Decimal(float(a[i])), Decimal(float(b[i])))
                    assert _rel_err(_dd_dec(got, i), want) <= _TOL, (name, i)

    def test_div_accuracy(self):
        a, b = _rand(12, scale=30), _rand(13, scale=30)
        b[b == 0.0] = 1.0  # the engine screens exact-zero divisors
        q = eft.dd_div(eft.from_float(a), eft.from_float(b))
        with decimal.localcontext() as ctx:
            ctx.prec = 80
            for i in range(a.size):
                want = Decimal(float(a[i])) / Decimal(float(b[i]))
                assert _rel_err(_dd_dec(q, i), want) <= _TOL, i

    def test_sqrt_accuracy_and_zero(self):
        a = np.abs(_rand(14, scale=30))
        r = eft.dd_sqrt(eft.from_float(a))
        assert r.hi[a == 0.0].tolist() == [0.0] * int((a == 0.0).sum())
        with decimal.localcontext() as ctx:
            ctx.prec = 80
            for i in range(a.size):
                if a[i] == 0.0:
                    continue
                want = Decimal(float(a[i])).sqrt()
                assert _rel_err(_dd_dec(r, i), want) <= _TOL, i

    def test_neg_abs(self):
        a = _rand(15)
        x = eft.from_float(a)
        n = eft.dd_neg(x)
        assert np.array_equal(n.hi, -a)
        m = eft.dd_abs(eft.dd_neg(eft.dd_abs(x)))
        assert np.array_equal(m.hi, np.abs(a))

    def test_double_double_beats_float(self):
        # The motivating case: a sum that cancels at float precision is
        # still held exactly by the dd pair.
        big = np.array([1.0])
        tiny = np.array([2.0**-70])
        s = eft.dd_add(eft.from_float(big), eft.from_float(tiny))
        back = eft.dd_add(s, eft.from_float(-big))
        assert _dd_dec(back, 0) == Decimal(2) ** -70


class TestPredicates:
    def test_is_zero_and_sign(self):
        x = eft.DD(np.array([0.0, 1.0, -2.0, 0.0]),
                   np.array([0.0, 0.0, 0.0, 1e-300]))
        assert eft.is_zero(x).tolist() == [True, False, False, False]
        # hi decides when nonzero; lo breaks the tie at hi == 0.
        assert eft.sign_positive(x).tolist() == [False, True, False, True]

    def test_range_suspect(self):
        x = eft.from_float(
            np.array([1.0, np.inf, np.nan, 1e301, 1e-301, 0.0])
        )
        assert eft.range_suspect(x).tolist() == [
            False, True, True, True, True, False
        ]

    def test_where_merges_componentwise(self):
        left = eft.DD(np.array([1.0, 2.0]), np.array([0.1, 0.2]))
        right = eft.DD(np.array([3.0, 4.0]), np.array([0.3, 0.4]))
        out = eft.where(np.array([True, False]), left, right)
        assert out.hi.tolist() == [1.0, 4.0]
        assert out.lo.tolist() == [0.1, 0.4]
