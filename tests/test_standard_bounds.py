"""Tests for the literature worst-case bounds (Table 1's Std. column)."""

import pytest

from repro.analysis.standard_bounds import (
    HIGHAM_CITATIONS,
    standard_bound_grade,
    standard_bound_value,
)
from repro.core import check_definition
from repro.programs.generators import BENCHMARK_FAMILIES


class TestClosedForms:
    @pytest.mark.parametrize(
        "family,n,coeff",
        [
            ("DotProd", 20, 20),
            ("Sum", 50, 49),
            ("Horner", 20, 40),
            ("PolyVal", 10, 11),
            ("MatVecMul", 5, 5),
        ],
    )
    def test_grades(self, family, n, coeff):
        assert standard_bound_grade(family, n).coeff == coeff

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            standard_bound_grade("QR", 5)

    def test_numeric_value(self):
        # The paper's printed DotProd-20 value.
        assert standard_bound_value("DotProd", 20) == pytest.approx(
            2.22e-15, abs=0.005e-15
        )

    def test_custom_roundoff(self):
        v53 = standard_bound_value("Sum", 100, 2.0**-53)
        v52 = standard_bound_value("Sum", 100, 2.0**-52)
        assert v52 == pytest.approx(2 * v53, rel=1e-12)


class TestAgreementWithInference:
    """The central Table 1 claim: Bean == Std. for every family."""

    @pytest.mark.parametrize("family", list(BENCHMARK_FAMILIES))
    def test_inference_matches_literature(self, family):
        n = {"MatVecMul": 4}.get(family, 12)
        judgment = check_definition(BENCHMARK_FAMILIES[family](n))
        assert judgment.max_linear_grade().coeff == standard_bound_grade(
            family, n
        ).coeff


class TestCitations:
    def test_every_family_cited(self):
        assert set(HIGHAM_CITATIONS) == set(BENCHMARK_FAMILIES)

    def test_citations_mention_higham(self):
        assert all("Higham" in c for c in HIGHAM_CITATIONS.values())
