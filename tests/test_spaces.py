"""Tests for slack distance spaces and the RP metric (Def. 6.1, App. B)."""

import math
from decimal import Decimal

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.grades import Grade
from repro.core.types import NUM, UNIT, Discrete, Sum, vector
from repro.lam_s.values import UNIT_VALUE, VInl, VInr, VNum, VPair
from repro.semantics.spaces import (
    INF,
    NEG_INF,
    DiscreteSpace,
    GradedSpace,
    NumSpace,
    SumSpace,
    TensorSpace,
    UnitObjectI,
    UnitSpace,
    ext_sub,
    grade_bound,
    rp_distance,
    space_of_type,
    type_distance,
)

nonzero = st.floats(min_value=1e-100, max_value=1e100).map(lambda x: x)


class TestExtendedArithmetic:
    def test_inf_minus_finite(self):
        assert ext_sub(INF, Decimal(5)) == INF

    def test_inf_minus_inf(self):
        # ∞ - a = ∞ for any a, including ∞ (Definition 6.1's convention).
        assert ext_sub(INF, INF) == INF

    def test_finite_minus_inf(self):
        assert ext_sub(Decimal(5), INF) == NEG_INF

    def test_finite_minus_finite(self):
        assert ext_sub(Decimal(5), Decimal(2)) == Decimal(3)


class TestRPMetric:
    def test_equal_points(self):
        assert rp_distance(VNum(1.5), VNum(1.5)) == 0

    def test_both_zero(self):
        assert rp_distance(VNum(0.0), VNum(0.0)) == 0

    def test_zero_vs_nonzero(self):
        assert rp_distance(VNum(0.0), VNum(1.0)) == INF

    def test_opposite_signs(self):
        assert rp_distance(VNum(1.0), VNum(-1.0)) == INF

    def test_value(self):
        d = rp_distance(VNum(math.e), VNum(1.0))
        assert abs(float(d) - 1.0) < 1e-12

    def test_negative_pair(self):
        d = rp_distance(VNum(-2.0), VNum(-1.0))
        assert abs(float(d) - math.log(2)) < 1e-12

    @given(nonzero, nonzero)
    def test_symmetry(self, x, y):
        d1 = rp_distance(VNum(x), VNum(y))
        d2 = rp_distance(VNum(y), VNum(x))
        # Equality up to the 60-digit working precision of ln.
        assert abs(d1 - d2) <= Decimal("1e-50") * (1 + max(d1, d2))

    @given(nonzero, nonzero, nonzero)
    def test_triangle_inequality(self, x, y, z):
        dxz = rp_distance(VNum(x), VNum(z))
        dxy = rp_distance(VNum(x), VNum(y))
        dyz = rp_distance(VNum(y), VNum(z))
        assert dxz <= dxy + dyz + Decimal("1e-25") * (1 + dxz)

    @given(nonzero, nonzero)
    def test_identity_of_indiscernibles(self, x, y):
        if rp_distance(VNum(x), VNum(y)) == 0:
            assert Decimal(x) == Decimal(y)

    def test_non_number_rejected(self):
        with pytest.raises(TypeError):
            rp_distance(UNIT_VALUE, VNum(1.0))


class TestBaseSpaces:
    def test_num_space(self):
        s = NumSpace()
        assert s.slack == 0
        assert s.contains(VNum(1.0))
        assert not s.contains(UNIT_VALUE)

    def test_discrete_space(self):
        s = DiscreteSpace(NumSpace())
        assert s.distance(VNum(1.0), VNum(1.0)) == 0
        assert s.distance(VNum(1.0), VNum(1.0000001)) == INF

    def test_unit_space(self):
        s = UnitSpace()
        assert s.distance(UNIT_VALUE, UNIT_VALUE) == 0
        assert s.slack == 0

    def test_unit_object_I_has_infinite_slack(self):
        s = UnitObjectI()
        assert s.slack == INF
        assert s.excess(UNIT_VALUE, UNIT_VALUE) == NEG_INF


class TestTensorSpace:
    def test_distance_equation_21(self):
        # With zero slacks, the tensor distance is the max of components.
        s = TensorSpace(NumSpace(), NumSpace())
        a = VPair(VNum(1.0), VNum(1.0))
        b = VPair(VNum(2.0), VNum(4.0))
        expected = max(
            rp_distance(VNum(1.0), VNum(2.0)), rp_distance(VNum(1.0), VNum(4.0))
        )
        assert abs(s.distance(a, b) - expected) <= Decimal("1e-50")

    def test_distance_with_slack_cross_terms(self):
        # d = max{d_X + r_Y, d_Y + r_X} for finite slacks (Equation 21).
        s = TensorSpace(GradedSpace(NumSpace(), 2), GradedSpace(NumSpace(), 5))
        a = VPair(VNum(1.0), VNum(1.0))
        b = VPair(VNum(math.e), VNum(1.0))
        assert abs(float(s.distance(a, b)) - (1.0 + 5.0)) < 1e-9

    def test_excess_equation_22(self):
        left = GradedSpace(NumSpace(), Decimal(3))
        right = GradedSpace(NumSpace(), Decimal(7))
        s = TensorSpace(left, right)
        a = VPair(VNum(1.0), VNum(1.0))
        b = VPair(VNum(math.e), VNum(1.0))
        expected = max(left.excess(a.left, b.left), right.excess(a.right, b.right))
        assert s.excess(a, b) == expected

    def test_slack_sums(self):
        s = TensorSpace(GradedSpace(NumSpace(), 2), GradedSpace(NumSpace(), 3))
        assert s.slack == 5

    def test_slack_with_infinite_component(self):
        s = TensorSpace(UnitObjectI(), GradedSpace(NumSpace(), 3))
        assert s.slack == 3

    def test_infinite_component_distance(self):
        s = TensorSpace(NumSpace(), NumSpace())
        a = VPair(VNum(1.0), VNum(1.0))
        b = VPair(VNum(-1.0), VNum(1.0))
        assert s.distance(a, b) == INF


class TestSumSpace:
    def test_matching_tags(self):
        s = SumSpace(NumSpace(), UnitSpace())
        assert s.distance(VInl(VNum(1.0)), VInl(VNum(1.0))) == 0
        assert s.distance(VInr(UNIT_VALUE), VInr(UNIT_VALUE)) == 0

    def test_mismatched_tags_infinite(self):
        s = SumSpace(NumSpace(), UnitSpace())
        assert s.distance(VInl(VNum(1.0)), VInr(UNIT_VALUE)) == INF

    def test_slack_shift_equation_35(self):
        s = SumSpace(GradedSpace(NumSpace(), 2), GradedSpace(NumSpace(), 3))
        d = s.distance(VInl(VNum(1.0)), VInl(VNum(1.0)))
        assert d == 3  # d_X + r_Y
        assert s.slack == 5

    def test_requires_finite_slack(self):
        with pytest.raises(ValueError):
            SumSpace(UnitObjectI(), NumSpace())


class TestGradedSpace:
    def test_shifts_slack_not_distance(self):
        s = GradedSpace(NumSpace(), Decimal("0.5"))
        assert s.slack == Decimal("0.5")
        assert s.distance(VNum(1.0), VNum(math.e)) == rp_distance(
            VNum(1.0), VNum(math.e)
        )

    def test_excess_subtracts_grade(self):
        s = GradedSpace(NumSpace(), Decimal(1))
        e = s.excess(VNum(1.0), VNum(math.e))
        assert abs(float(e)) < 1e-9  # distance 1 - grade 1

    def test_nested_grading_accumulates(self):
        s = GradedSpace(GradedSpace(NumSpace(), 1), 2)
        assert s.slack == 3


class TestTypeInterpretation:
    def test_num(self):
        assert isinstance(space_of_type(NUM), NumSpace)

    def test_discrete(self):
        assert isinstance(space_of_type(Discrete(NUM)), DiscreteSpace)

    def test_vector_contains(self):
        from repro.lam_s.values import vector_value

        assert space_of_type(vector(4)).contains(vector_value([1, 2, 3, 4]))

    def test_sum(self):
        s = space_of_type(Sum(NUM, UNIT))
        assert s.contains(VInl(VNum(1.0)))
        assert s.contains(VInr(UNIT_VALUE))
        assert not s.contains(VNum(1.0))

    def test_type_distance_on_vectors(self):
        from repro.lam_s.values import vector_value

        a = vector_value([1.0, 2.0])
        b = vector_value([1.0, 2.0 * math.e])
        d = type_distance(vector(2), a, b)
        assert abs(float(d) - 1.0) < 1e-12


class TestGradeBound:
    def test_matches_float_evaluation(self):
        g = Grade(20)
        assert float(grade_bound(g, 2.0**-53)) == pytest.approx(g.evaluate())

    def test_exactness(self):
        # Decimal bound is computed at 60 digits, not float-rounded.
        b = grade_bound(Grade(1), 2.0**-53)
        assert b > 0
        assert str(b)[:6] == "1.1102"
