"""Tests for the repro-bean command-line interface."""

import json

import pytest

from repro.cli import _parse_roundoff, main

DOTPROD = """
DotProd2 (x : vec(2)) (y : vec(2)) : num :=
  let (x0, x1) = x in
  let (y0, y1) = y in
  let v = mul x0 y0 in
  let w = mul x1 y1 in
  add v w
"""


@pytest.fixture()
def bean_file(tmp_path):
    path = tmp_path / "prog.bean"
    path.write_text(DOTPROD)
    return str(path)


class TestRoundoffParsing:
    def test_caret(self):
        assert _parse_roundoff("2^-53") == 2.0**-53

    def test_double_star(self):
        assert _parse_roundoff("2**-24") == 2.0**-24

    def test_literal(self):
        assert _parse_roundoff("1e-8") == 1e-8


class TestCheck:
    def test_check_prints_judgment(self, bean_file, capsys):
        assert main(["check", bean_file]) == 0
        out = capsys.readouterr().out
        assert "DotProd2" in out
        assert "3ε/2" in out

    def test_check_json(self, bean_file, capsys):
        assert main(["check", bean_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        bounds = payload["definitions"][0]["bounds"]
        assert bounds["x"]["grade"] == "3ε/2"
        assert bounds["x"]["coefficient"] == [3, 2]
        assert payload["definitions"][0]["flops"] == 3

    def test_check_custom_roundoff(self, bean_file, capsys):
        assert main(["check", bean_file, "--u", "2^-24", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        u = 2.0**-24
        expected = 1.5 * u / (1 - u)
        assert payload["definitions"][0]["bounds"]["x"]["bound"] == pytest.approx(
            expected
        )

    def test_syntax_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.bean"
        bad.write_text("F (x : num := x")
        assert main(["check", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_type_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.bean"
        bad.write_text("F (x : num) := add x x")
        assert main(["check", str(bad)]) == 1
        assert "two subexpressions" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["check", "/nonexistent.bean"]) == 1


class TestWitness:
    def test_witness_sound_run(self, bean_file, capsys):
        code = main(
            [
                "witness",
                bean_file,
                "--inputs",
                '{"x": [1.5, 2.25], "y": [3.1, -0.7]}',
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "soundness theorem holds on this run: True" in out

    def test_witness_named_definition(self, bean_file):
        code = main(
            [
                "witness",
                bean_file,
                "--name",
                "DotProd2",
                "--inputs",
                '{"x": [1.0, 2.0], "y": [3.0, 4.0]}',
            ]
        )
        assert code == 0

    BATCH_INPUTS = '{"x": [[1.5, 2.25], [0.5, 4.0]], "y": [[3.1, -0.7], [2.0, 1.25]]}'

    def test_witness_exact_backend_bytes_identical(self, bean_file, capsys):
        payloads = {}
        for backend in ("eft", "decimal"):
            code = main(
                [
                    "witness",
                    bean_file,
                    "--batch",
                    "--inputs",
                    self.BATCH_INPUTS,
                    "--exact-backend",
                    backend,
                    "--json",
                ]
            )
            assert code == 0
            payloads[backend] = json.loads(capsys.readouterr().out)
        assert payloads["eft"].pop("exact_backend") == "eft"
        assert payloads["decimal"].pop("exact_backend") == "decimal"
        assert payloads["eft"] == payloads["decimal"]

    def test_witness_decimal_engine(self, bean_file, capsys):
        code = main(
            [
                "witness",
                bean_file,
                "--engine",
                "decimal",
                "--inputs",
                self.BATCH_INPUTS,
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "decimal"
        assert payload["exact_backend"] == "decimal"

    def test_witness_bad_exact_backend_error_line(self, bean_file, capsys):
        code = main(
            [
                "witness",
                bean_file,
                "--batch",
                "--inputs",
                self.BATCH_INPUTS,
                "--exact-backend",
                "quadruple",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "exact_backend must be 'eft' or 'decimal'" in err


class TestExamples:
    def test_examples_lists_all(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        for name in ("DotProd2", "LinSolve", "SMatVecMul", "HornerAlt"):
            assert name in out


class TestTables:
    def test_table1_fast(self, capsys):
        assert main(["table1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "2.22e-15" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "1.11e-13" in out


class TestFmtAndErase:
    def test_fmt_roundtrips(self, bean_file, capsys):
        assert main(["fmt", bean_file]) == 0
        printed = capsys.readouterr().out
        from repro.core import check_program, parse_program

        judgments = check_program(parse_program(printed))
        assert str(judgments["DotProd2"].grade_of("x")) == "3ε/2"

    def test_erase_drops_modalities(self, tmp_path, capsys):
        src = tmp_path / "h.bean"
        src.write_text(
            "Horner (a : vec(3)) (z : !R) : num :=\n"
            "  let (a0, a1, a2) = a in\n"
            "  let y1 = dmul z a2 in\n"
            "  let y2 = add a1 y1 in\n"
            "  let y3 = dmul z y2 in\n"
            "  add a0 y3\n"
        )
        assert main(["erase", str(src)]) == 0
        printed = capsys.readouterr().out
        assert "dmul" not in printed  # erased to mul
        assert "!" not in printed  # modalities gone
        assert "mul z" in printed

    def test_fmt_rejects_ill_typed(self, tmp_path, capsys):
        bad = tmp_path / "bad.bean"
        bad.write_text("F (x : num) := add x x")
        assert main(["fmt", str(bad)]) == 1
