"""Fast checks of the table drivers (full runs live in benchmarks/)."""

import pytest

from repro.bench.table1 import PAPER_TABLE1, format_table1, run_table1
from repro.bench.table2 import PAPER_TABLE2, format_table2, run_table2
from repro.bench.table3 import PAPER_TABLE3, format_table3, run_table3


@pytest.fixture(scope="module")
def table1_small():
    sizes = {
        "DotProd": [20, 50],
        "Horner": [20, 50],
        "PolyVal": [10, 20],
        "MatVecMul": [5, 10],
        "Sum": [50, 100],
    }
    return run_table1(sizes=sizes)


class TestTable1:
    def test_bean_equals_std_everywhere(self, table1_small):
        assert all(r.grades_match_std for r in table1_small)

    def test_matches_paper_printed_values(self, table1_small):
        for row in table1_small:
            assert row.matches_paper, f"{row.family}-{row.size}"

    def test_ops_column(self, table1_small):
        by_key = {(r.family, r.size): r.ops for r in table1_small}
        assert by_key[("DotProd", 20)] == 39
        assert by_key[("PolyVal", 10)] == 65
        assert by_key[("MatVecMul", 5)] == 45
        assert by_key[("Sum", 50)] == 49
        assert by_key[("Horner", 20)] == 40

    def test_formatting(self, table1_small):
        text = format_table1(table1_small)
        assert "Benchmark" in text and "2.22e-15" in text

    def test_paper_catalog_complete(self):
        assert sum(len(v) for v in PAPER_TABLE1.values()) == 20


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table2(samples=8)

    def test_bean_bounds_match_paper(self, rows):
        for row in rows:
            assert row.bean_bound == pytest.approx(
                PAPER_TABLE2[row.benchmark], abs=0.01e-15
            )

    def test_dynamic_orders_of_magnitude(self, rows):
        by_name = {r.benchmark: r for r in rows}
        assert by_name["sin"].dynamic_bound < 1e-15
        assert 1e-10 < by_name["cos"].dynamic_bound < 1e-7

    def test_bean_is_fast(self, rows):
        for row in rows:
            assert row.bean_ms < 100  # paper reports ~1ms; allow CI slack

    def test_formatting(self, rows):
        text = format_table2(rows)
        assert "Fu et al." in text and "quoted" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table3()

    def test_all_three_tools_match_paper(self, rows):
        for row in rows:
            paper = PAPER_TABLE3[row.family]
            for value in (row.bean_forward, row.numfuzz_like, row.gappa_like):
                assert value == pytest.approx(paper, rel=5e-3)

    def test_tools_agree_tightly(self, rows):
        for row in rows:
            assert row.bean_forward == pytest.approx(row.numfuzz_like, rel=1e-12)
            assert row.bean_forward == pytest.approx(row.gappa_like, rel=1e-9)

    def test_ops_column(self, rows):
        by_family = {r.family: r.ops for r in rows}
        assert by_family == {
            "Sum": 499,
            "DotProd": 999,
            "Horner": 1000,
            "PolyVal": 5150,
        }

    def test_formatting(self, rows):
        text = format_table3(rows)
        assert "NumFuzz~" in text and "Gappa~" in text
