"""Tests for Bean's type grammar and the vector/matrix shorthands."""

import pytest

from repro.core.types import (
    DNUM,
    NUM,
    UNIT,
    Discrete,
    Sum,
    Tensor,
    is_discrete,
    matrix,
    strip_discrete,
    tensor_leaves,
    tensor_of,
    vector,
)


class TestBasics:
    def test_structural_equality(self):
        assert Tensor(NUM, NUM) == Tensor(NUM, NUM)
        assert Tensor(NUM, UNIT) != Tensor(UNIT, NUM)

    def test_hashable(self):
        assert len({NUM, UNIT, Tensor(NUM, NUM), Tensor(NUM, NUM)}) == 3

    def test_dnum(self):
        assert DNUM == Discrete(NUM)

    def test_str_renderings(self):
        assert str(NUM) == "num"
        assert str(UNIT) == "unit"
        assert str(Discrete(NUM)) == "m(num)"
        assert str(Tensor(NUM, NUM)) == "(num ⊗ num)"
        assert str(Sum(NUM, UNIT)) == "(num + unit)"

    def test_is_discrete(self):
        assert is_discrete(DNUM)
        assert not is_discrete(NUM)
        assert not is_discrete(Tensor(DNUM, DNUM))

    def test_strip_discrete(self):
        assert strip_discrete(DNUM) == NUM
        assert strip_discrete(NUM) == NUM


class TestVectors:
    def test_vector_one(self):
        assert vector(1) == NUM

    def test_vector_two(self):
        assert vector(2) == Tensor(NUM, NUM)

    def test_vector_three_is_balanced(self):
        assert vector(3) == Tensor(NUM, Tensor(NUM, NUM))

    def test_vector_four_is_balanced(self):
        assert vector(4) == Tensor(Tensor(NUM, NUM), Tensor(NUM, NUM))

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 17, 100])
    def test_vector_leaf_count(self, n):
        assert sum(1 for _ in tensor_leaves(vector(n))) == n

    def test_vector_depth_logarithmic(self):
        def depth(ty):
            if isinstance(ty, Tensor):
                return 1 + max(depth(ty.left), depth(ty.right))
            return 0

        assert depth(vector(1024)) == 10

    def test_vector_invalid(self):
        with pytest.raises(ValueError):
            vector(0)

    def test_tensor_of_empty(self):
        with pytest.raises(ValueError):
            tensor_of(())


class TestMatrices:
    def test_matrix_2x2(self):
        row = Tensor(NUM, NUM)
        assert matrix(2, 2) == Tensor(row, row)

    def test_matrix_leaf_count(self):
        assert sum(1 for _ in tensor_leaves(matrix(3, 4))) == 12

    def test_matrix_rows_are_vectors(self):
        m = matrix(2, 3)
        assert m.left == vector(3)
        assert m.right == vector(3)


class TestTensorLeaves:
    def test_order_left_to_right(self):
        ty = Tensor(Tensor(NUM, UNIT), DNUM)
        assert list(tensor_leaves(ty)) == [NUM, UNIT, DNUM]

    def test_single_leaf(self):
        assert list(tensor_leaves(NUM)) == [NUM]
