"""Tests for the float-level error metrics."""

import math

import pytest

from repro.analysis.metrics import (
    componentwise_backward_error,
    relative_error,
    rp,
    ulps_between,
)


class TestRP:
    def test_equal(self):
        assert rp(2.5, 2.5) == 0.0

    def test_both_zero(self):
        assert rp(0.0, 0.0) == 0.0

    def test_sign_mismatch(self):
        assert rp(1.0, -1.0) == math.inf

    def test_zero_one_side(self):
        assert rp(0.0, 1.0) == math.inf

    def test_log_ratio(self):
        assert rp(math.e, 1.0) == pytest.approx(1.0)

    def test_agrees_with_decimal_version(self):
        from repro.lam_s.values import VNum
        from repro.semantics.spaces import rp_distance

        assert rp(3.7, 2.9) == pytest.approx(float(rp_distance(VNum(3.7), VNum(2.9))))


class TestRelativeError:
    def test_zero_exact_zero_approx(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_zero_exact_nonzero_approx(self):
        assert relative_error(1.0, 0.0) == math.inf

    def test_value(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)


class TestComponentwise:
    def test_max_taken(self):
        d = componentwise_backward_error([1.0, 2.0], [1.0, 2.0 * math.e])
        assert d == pytest.approx(1.0)

    def test_empty(self):
        assert componentwise_backward_error([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            componentwise_backward_error([1.0], [1.0, 2.0])


class TestUlps:
    def test_adjacent(self):
        assert ulps_between(1.0, math.nextafter(1.0, 2.0)) == 1

    def test_same(self):
        assert ulps_between(2.5, 2.5) == 0

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            ulps_between(math.nan, 1.0)
