"""Fuzzing the front end: arbitrary input must fail *cleanly*.

The lexer/parser/checker pipeline may reject garbage, but only ever with
a Bean diagnostic (never an internal exception), and accepted programs
must be deterministic to re-check.
"""

import string

from hypothesis import example, given
from hypothesis import strategies as st

from repro.core import (
    BeanError,
    check_program,
    parse_expression,
    parse_program,
)

# Text biased towards Bean's alphabet so some inputs get deep into the
# parser rather than dying at the first character.
bean_alphabet = st.sampled_from(
    list(string.ascii_lowercase[:8])
    + ["let", "in", "dlet", "case", "of", "inl", "inr", "add", "mul",
       "dmul", "num", "vec", "(", ")", ",", ":", ":=", "=>", "=", "|",
       "!", "*", "+", " ", "\n", "1", "2"]
)
bean_soup = st.lists(bean_alphabet, min_size=0, max_size=40).map(" ".join)
raw_text = st.text(max_size=60)


class TestFrontEndRobustness:
    @given(bean_soup)
    @example("F (x : num) := add x")  # missing operand
    @example("F (x := x")  # truncated header
    @example("let x = in y")
    def test_parse_program_fails_cleanly(self, text):
        try:
            program = parse_program(text)
        except BeanError:
            return
        # If parsing succeeded, checking must also fail cleanly or pass.
        try:
            check_program(program)
        except BeanError:
            pass

    @given(raw_text)
    def test_arbitrary_text(self, text):
        try:
            parse_program(text)
        except BeanError:
            pass

    @given(bean_soup)
    def test_parse_expression_fails_cleanly(self, text):
        try:
            parse_expression(text)
        except BeanError:
            pass

    @given(bean_soup)
    def test_parsing_is_deterministic(self, text):
        def attempt():
            try:
                return ("ok", parse_program(text))
            except BeanError as exc:
                return ("err", str(exc))

        first = attempt()
        second = attempt()
        assert first[0] == second[0]
        if first[0] == "err":
            assert first[1] == second[1]
