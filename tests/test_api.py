"""The public audit API: Session, engine registry, versioned results.

Four contracts under test:

* **registry** — the four built-in engines resolve by name with honest
  capability flags; unknown names raise the one
  :class:`~repro.api.UnknownEngineError` (listing the registered
  names) on every surface — Python, CLI stderr, HTTP 400; engines
  registered at runtime are first-class on *all* surfaces, including
  the served-vs-CLI byte-parity harness;
* **Session** — owns the cross-cutting state (precision, roundoff,
  cache dir, workers) and produces the same bits the CLI and server
  emit;
* **AuditResult** — stamps ``schema_version``, round-trips through
  ``to_json``/``from_json``, and rejects foreign versions;
* **deprecation shims** — every legacy entry point (``run_witness``,
  ``run_witness_batch``, ``run_witness_sharded``, ``perform_audit``)
  emits exactly one :class:`DeprecationWarning` per call and returns
  results bitwise identical to the Session API, on
  hypothesis-generated programs.
"""

from __future__ import annotations

import contextlib
import dataclasses
import io
import json
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from strategies import batch_row, random_batch_inputs, random_program
from repro import api
from repro.api import (
    AuditResult,
    ScalarLensEngine,
    Session,
    UnknownEngineError,
)

from test_engine_parity import assert_witness_reports_equal

_BUDGET = max(settings().max_examples // 4, 10)

SOURCE = """
DotProd2 (x : vec(2)) (y : vec(2)) : num :=
  let (x0, x1) = x in
  let (y0, y1) = y in
  let v = mul x0 y0 in
  let w = mul x1 y1 in
  add v w
"""
SCALAR_INPUTS = {"x": [1.5, 2.25], "y": [3.1, -0.7]}
BATCH_INPUTS = {
    "x": [[1.5, 2.25], [2.0, 1.0], [0.5, -4.0]],
    "y": [[3.1, -0.7], [1.0, 1.0], [2.0, 8.0]],
}


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------


class TestRegistry:
    def test_builtins_registered_in_order(self):
        names = api.engine_names()
        assert names[0] == "ir"  # the default engine leads
        assert set(names) >= {"ir", "recursive", "batch", "sharded"}

    def test_capability_flags(self):
        engines = api.engines()
        assert not engines["ir"].caps.batched
        assert engines["recursive"].caps.reference
        assert engines["batch"].caps.batched
        assert engines["batch"].caps.needs_numpy
        assert engines["sharded"].caps.multiprocess
        assert engines["sharded"].caps.batched
        assert engines["interval"].caps.static
        assert engines["forward"].caps.static
        assert not engines["interval"].caps.batched
        assert engines["sweep"].caps.batched
        assert not engines["sweep"].caps.static
        assert engines["remote"].caps.remote
        assert engines["remote"].caps.batched
        assert not engines["remote"].caps.needs_numpy
        for name in ("ir", "recursive", "batch", "sharded"):
            assert not engines[name].caps.static
            assert not engines[name].caps.remote

    def test_engines_returns_snapshot(self):
        snapshot = api.engines()
        snapshot["bogus"] = snapshot["ir"]
        assert "bogus" not in api.engine_names()

    def test_get_engine_unknown_lists_names(self):
        with pytest.raises(UnknownEngineError) as excinfo:
            api.get_engine("warp")
        message = str(excinfo.value)
        assert "unknown engine 'warp'" in message
        for name in api.engine_names():
            assert name in message
        assert excinfo.value.engine == "warp"
        assert excinfo.value.known == api.engine_names()
        # Pre-registry callers caught ValueError; that must keep working.
        assert isinstance(excinfo.value, ValueError)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @api.register_engine("ir")
            class Clash(ScalarLensEngine):
                pass

    def test_register_replace_and_unregister(self):
        original = api.get_engine("ir")

        @api.register_engine("ir", replace=True, description="swapped")
        class Replacement(ScalarLensEngine):
            pass

        try:
            assert api.get_engine("ir").caps.description == "swapped"
        finally:
            # Restore in place: replacing an existing name keeps its
            # registry position, so engine ordering survives this test.
            api.register_engine(
                "ir", replace=True, **dataclasses.asdict(original.caps)
            )(original)
        assert api.get_engine("ir") is original
        assert api.engine_names()[0] == "ir"

    def test_unregister_unknown_raises(self):
        with pytest.raises(UnknownEngineError):
            api.unregister_engine("warp")

    def test_engine_protocol(self):
        for engine in api.engines().values():
            assert isinstance(engine, api.Engine)

    def test_legacy_engines_constant_tracks_registry(self):
        from repro.service import audit as legacy

        assert legacy.ENGINES == api.engine_names()

        @api.register_engine("test-tracking")
        class Tracking(ScalarLensEngine):
            pass

        try:
            assert "test-tracking" in legacy.ENGINES
        finally:
            api.unregister_engine("test-tracking")
        assert "test-tracking" not in legacy.ENGINES

    def test_format_engine_table_lists_every_engine(self):
        table = api.format_engine_table()
        for name in api.engine_names():
            assert f"`{name}`" in table


# --------------------------------------------------------------------------
# Session
# --------------------------------------------------------------------------


class TestSession:
    def test_parse_check_audit_pipeline(self):
        session = Session()
        program = session.parse(SOURCE)
        judgments = session.check(program)
        assert str(judgments["DotProd2"].grade_of("x")) == "3ε/2"
        result = session.audit(program, inputs=SCALAR_INPUTS)
        assert result.sound and not result.batch
        assert result.engine == "ir"
        assert result.definition == "DotProd2"

    def test_audit_accepts_source_text(self):
        result = Session().audit(SOURCE, inputs=SCALAR_INPUTS)
        assert result.sound

    def test_every_registered_engine_audits(self, monkeypatch):
        monkeypatch.delenv("REPRO_NODES", raising=False)
        session = Session(workers=2)
        program = session.parse(SOURCE)
        for name, engine in session.engines().items():
            if engine.caps.remote:
                # Remote engines dispatch to external serve nodes; with
                # no pool configured the audit must fail loudly (the
                # CLI/server render ValueError as error:/422).
                api.get_engine(name).configure(reset=True)
                with pytest.raises(ValueError, match="node pool"):
                    session.audit(program, inputs=BATCH_INPUTS, engine=name)
                continue
            if engine.caps.static:
                # Static analyzers take hypotheses, and only positive
                # ones admit a finite bound (mixed signs may cancel).
                inputs = {"x": [0.5, 4.0], "y": [0.5, 4.0]}
            elif engine.caps.batched:
                inputs = BATCH_INPUTS
            else:
                inputs = SCALAR_INPUTS
            result = session.audit(program, inputs=inputs, engine=name)
            assert result.sound, name
            assert result.engine == name
            assert result.batch == engine.caps.batched

    def test_unknown_engine_raises(self):
        with pytest.raises(UnknownEngineError):
            Session().audit(SOURCE, inputs=SCALAR_INPUTS, engine="warp")

    def test_session_defaults_and_overrides(self):
        session = Session(precision_bits=24)
        assert session.roundoff == 2.0**-24
        result = session.audit(SOURCE, inputs=SCALAR_INPUTS)
        assert result.payload["precision_bits"] == 24
        assert result.payload["u"] == 2.0**-24
        # Per-call overrides never mutate the session.
        override = session.audit(
            SOURCE, inputs=SCALAR_INPUTS, precision_bits=53, u="2^-53"
        )
        assert override.payload["precision_bits"] == 53
        assert override.payload["u"] == 2.0**-53
        assert session.precision_bits == 24

    def test_roundoff_spellings(self):
        assert Session(u="2^-24").roundoff == 2.0**-24
        assert Session(u="2**-24").roundoff == 2.0**-24
        assert Session(u=1e-8).roundoff == 1e-8

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            Session(precision_bits=0)
        with pytest.raises(ValueError):
            Session(workers=0)

    def test_invalid_per_call_overrides_rejected(self):
        # The overrides face the same bounds as the constructor — a bad
        # value must fail at the API boundary, not audit with u=1.0 or
        # crash deep in the process pool.
        session = Session()
        with pytest.raises(ValueError, match="precision_bits"):
            session.audit(SOURCE, inputs=SCALAR_INPUTS, precision_bits=0)
        with pytest.raises(ValueError, match="workers"):
            session.audit(
                SOURCE, inputs=BATCH_INPUTS, engine="sharded", workers=0
            )

    def test_cli_renders_bad_flags_as_error_lines(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "prog.bean"
        path.write_text(SOURCE)
        for flags in (["--precision-bits", "0"], ["--workers", "0"]):
            code = main(
                [
                    "witness", str(path),
                    "--inputs", json.dumps(SCALAR_INPUTS), *flags,
                ]
            )
            assert code == 1
            assert capsys.readouterr().err.startswith("error:")

    def test_cache_dir_activates_artifact_cache(self, tmp_path):
        from repro.ir.cache import persistent_cache
        from repro.service.cache import deactivate

        deactivate()
        try:
            session = Session(cache_dir=str(tmp_path / "cache"))
            result = session.audit(SOURCE, inputs=SCALAR_INPUTS)
            assert result.sound
            assert persistent_cache() is not None
        finally:
            deactivate()

    def test_session_reuse_is_bitwise_stable(self):
        session = Session()
        program = session.parse(SOURCE)
        first = session.audit(program, inputs=SCALAR_INPUTS)
        second = session.audit(program, inputs=SCALAR_INPUTS)
        assert first.to_json() == second.to_json()


# --------------------------------------------------------------------------
# AuditResult: the versioned schema
# --------------------------------------------------------------------------


class TestAuditResult:
    def test_schema_version_stamped(self):
        # Witness payloads carry no v3 section, so they keep emitting
        # the base version byte-for-byte; static/sweep payloads carry
        # one and stamp the v3 version.
        result = Session().audit(SOURCE, inputs=SCALAR_INPUTS)
        assert result.schema_version == api.BASE_SCHEMA_VERSION
        assert list(result.payload)[0] == "schema_version"
        static = Session().audit(SOURCE, inputs={}, engine="forward")
        assert static.schema_version == api.STATIC_SCHEMA_VERSION
        assert list(static.payload)[0] == "schema_version"

    def test_to_json_from_json_roundtrip_scalar(self):
        result = Session().audit(SOURCE, inputs=SCALAR_INPUTS)
        rebuilt = AuditResult.from_json(result.to_json())
        assert rebuilt.payload == result.payload
        assert rebuilt.sound == result.sound
        assert rebuilt.batch == result.batch
        assert rebuilt.report is None
        assert rebuilt.to_json() == result.to_json()

    def test_to_json_from_json_roundtrip_batch(self):
        result = Session().audit(
            SOURCE, inputs=BATCH_INPUTS, engine="batch"
        )
        rebuilt = AuditResult.from_json(result.to_json())
        assert rebuilt.batch and rebuilt.sound == result.sound
        assert rebuilt.payload == result.payload

    @pytest.mark.parametrize(
        "text",
        [
            "[]",
            "{}",
            json.dumps({"schema_version": 1, "sound": True}),
            json.dumps({"schema_version": 999, "sound": True}),
            # A v2 stamp must not smuggle v3 sections past old readers…
            json.dumps(
                {"schema_version": 2, "sound": True, "static_bounds": {}}
            ),
            json.dumps(
                {"schema_version": 2, "all_sound": True, "per_precision": {}}
            ),
            # …and a v3 stamp without any v3 section is mislabelled
            # (this build emits section-free payloads as v2).
            json.dumps({"schema_version": 3, "sound": True}),
        ],
    )
    def test_from_json_rejects_foreign_payloads(self, text):
        with pytest.raises(ValueError):
            AuditResult.from_json(text)

    def test_v3_roundtrips_static_and_sweep(self):
        session = Session()
        static = session.audit(
            SOURCE, inputs={"x": [0.5, 4.0], "y": [0.5, 4.0]},
            engine="interval",
        )
        rebuilt = AuditResult.from_json(static.to_json())
        assert rebuilt.payload == static.payload
        assert rebuilt.static and not rebuilt.batch
        assert rebuilt.static_bounds == static.static_bounds
        sweep = session.audit(SOURCE, inputs=BATCH_INPUTS, engine="sweep")
        rebuilt = AuditResult.from_json(sweep.to_json())
        assert rebuilt.payload == sweep.payload
        assert rebuilt.batch and not rebuilt.static
        assert rebuilt.per_precision == sweep.per_precision


# --------------------------------------------------------------------------
# Uniform unknown-engine failures on the CLI and HTTP surfaces
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def served():
    from repro.service.cache import deactivate
    from repro.service.server import AuditServer, serve

    deactivate()
    handle = serve(AuditServer(port=0))
    try:
        yield handle
    finally:
        handle.stop()
        deactivate()


class TestUnknownEngineSurfaces:
    def test_http_maps_unknown_engine_to_400(self, served):
        from repro.service.client import audit

        status, body = audit(
            served.host,
            served.port,
            {"source": SOURCE, "inputs": SCALAR_INPUTS, "engine": "warp"},
        )
        assert status == 400
        message = json.loads(body)["error"]
        assert message == str(UnknownEngineError("warp", api.engine_names()))

    def test_http_400_lists_runtime_registered_engines(self, served):
        from repro.service.client import audit

        @api.register_engine("test-listed")
        class Listed(ScalarLensEngine):
            pass

        try:
            status, body = audit(
                served.host,
                served.port,
                {"source": SOURCE, "inputs": SCALAR_INPUTS, "engine": "warp"},
            )
        finally:
            api.unregister_engine("test-listed")
        assert status == 400
        assert "test-listed" in json.loads(body)["error"]

    def test_cli_renders_unknown_engine_as_error_line(self, tmp_path, capsys):
        # The argparse choices come from the registry, so an unknown
        # name never reaches the audit; register a transient engine,
        # build the spec against it, then unregister to hit the
        # audit-time failure the CLI must render as `error:`, not a
        # traceback.
        from repro.cli import main

        path = tmp_path / "prog.bean"
        path.write_text(SOURCE)

        @api.register_engine("test-vanishing")
        class Vanishing(ScalarLensEngine):
            def audit(self, request):
                api.unregister_engine("test-vanishing")
                return api.get_engine("test-vanishing").audit(request)

        try:
            code = main(
                [
                    "witness", str(path),
                    "--inputs", json.dumps(SCALAR_INPUTS),
                    "--engine", "test-vanishing",
                ]
            )
        finally:
            with contextlib.suppress(UnknownEngineError):
                api.unregister_engine("test-vanishing")
        assert code == 1
        err = capsys.readouterr().err
        assert "error: unknown engine 'test-vanishing'" in err

    def test_cli_rejects_unregistered_engine_choice(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "prog.bean"
        path.write_text(SOURCE)
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "witness", str(path),
                    "--inputs", json.dumps(SCALAR_INPUTS),
                    "--engine", "warp",
                ]
            )
        assert excinfo.value.code == 2  # argparse usage error
        assert "--engine" in capsys.readouterr().err


# --------------------------------------------------------------------------
# A dummy engine registered only here is first-class on every surface
# --------------------------------------------------------------------------


class TestRuntimeRegisteredEngineParity:
    @pytest.fixture()
    def mirror_engine(self):
        @api.register_engine(
            "mirror", description="test-only scalar engine (IR lens)"
        )
        class Mirror(ScalarLensEngine):
            lens_engine = "ir"

        try:
            yield "mirror"
        finally:
            api.unregister_engine("mirror")

    def test_session_audits_dummy_engine(self, mirror_engine):
        result = Session().audit(
            SOURCE, inputs=SCALAR_INPUTS, engine=mirror_engine
        )
        assert result.sound
        assert result.engine == mirror_engine
        # Same lens, same bits — only the engine stamp differs.
        reference = Session().audit(SOURCE, inputs=SCALAR_INPUTS)
        patched = dict(result.payload, engine="ir")
        assert patched == reference.payload

    def test_served_equals_cli_for_dummy_engine(
        self, served, mirror_engine, tmp_path
    ):
        from repro.cli import main
        from repro.service.client import audit

        status, body = audit(
            served.host,
            served.port,
            {"source": SOURCE, "inputs": SCALAR_INPUTS, "engine": mirror_engine},
        )
        assert status == 200
        path = tmp_path / "prog.bean"
        path.write_text(SOURCE)
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main(
                [
                    "witness", str(path),
                    "--inputs", json.dumps(SCALAR_INPUTS),
                    "--json", "--engine", mirror_engine,
                ]
            )
        assert code == 0
        assert body == buffer.getvalue()  # byte-for-byte, newline included
        assert json.loads(body)["engine"] == mirror_engine


# --------------------------------------------------------------------------
# Deprecation shims: one warning, identical bits
# --------------------------------------------------------------------------


def _single_deprecation(record):
    warns = [w for w in record if w.category is DeprecationWarning]
    assert len(warns) == 1, [str(w.message) for w in record]
    return warns[0]


class TestLegacyShims:
    @given(data=st.data())
    @settings(max_examples=_BUDGET, deadline=None)
    def test_run_witness_shim_bitwise_equals_session(self, data):
        import repro

        seed = data.draw(st.integers(0, 2**16), label="seed")
        spec = random_program(seed, n_helpers=1)
        columns = random_batch_inputs(spec, seed + 1, 1)
        row = batch_row(columns, 0)
        with pytest.warns(DeprecationWarning) as record:
            legacy = repro.run_witness(
                spec.definition, row, program=spec.program
            )
        _single_deprecation(record)
        session_report = Session().audit(
            spec.program, spec.definition.name, inputs=row, engine="ir"
        ).report
        assert_witness_reports_equal(legacy, session_report, ctx="shim")

    @given(data=st.data())
    @settings(max_examples=_BUDGET, deadline=None)
    def test_run_witness_batch_shim_bitwise_equals_session(self, data):
        import repro

        seed = data.draw(st.integers(0, 2**16), label="seed")
        n_rows = data.draw(st.integers(1, 3), label="n_rows")
        spec = random_program(seed, n_helpers=1)
        columns = random_batch_inputs(spec, seed + 1, n_rows)
        with pytest.warns(DeprecationWarning) as record:
            legacy = repro.run_witness_batch(
                spec.definition, columns, program=spec.program
            )
        _single_deprecation(record)
        result = Session().audit(
            spec.program,
            spec.definition.name,
            inputs={k: v.tolist() for k, v in columns.items()},
            engine="batch",
        )
        assert list(legacy.sound) == result.payload["sound"]
        assert list(legacy.exact) == result.payload["exact"]
        assert {
            k: str(v) for k, v in legacy.param_max_distance.items()
        } == {
            k: v["max_distance"] for k, v in result.payload["params"].items()
        }

    def test_run_witness_sharded_shim_bitwise_equals_session(self):
        import repro

        spec = random_program(3, n_helpers=1, allow_div=True)
        columns = random_batch_inputs(spec, 5, 6)
        with pytest.warns(DeprecationWarning) as record:
            legacy = repro.run_witness_sharded(
                spec.definition, columns, program=spec.program, workers=2
            )
        _single_deprecation(record)
        result = Session().audit(
            spec.program,
            spec.definition.name,
            inputs={k: v.tolist() for k, v in columns.items()},
            engine="sharded",
            workers=2,
        )
        assert list(legacy.sound) == result.payload["sound"]
        assert list(legacy.exact) == result.payload["exact"]

    @given(data=st.data())
    @settings(max_examples=_BUDGET, deadline=None)
    def test_perform_audit_shim_bitwise_equals_session(self, data):
        from repro.service.audit import perform_audit

        seed = data.draw(st.integers(0, 2**16), label="seed")
        engine = data.draw(
            st.sampled_from(
                [
                    name
                    for name, eng in api.engines().items()
                    if not (
                        eng.caps.multiprocess
                        or eng.caps.reference
                        or eng.caps.remote
                    )
                ]
            ),
            label="engine",
        )
        spec = random_program(seed, n_helpers=1)
        columns = random_batch_inputs(spec, seed + 1, 2)
        if api.engines()[engine].caps.batched:
            inputs = {k: v.tolist() for k, v in columns.items()}
        else:
            inputs = batch_row(columns, 0)
        with pytest.warns(DeprecationWarning) as record:
            legacy = perform_audit(spec.program, inputs=inputs, engine=engine)
        _single_deprecation(record)
        result = Session().audit(spec.program, inputs=inputs, engine=engine)
        assert legacy.payload == result.payload
        assert legacy.to_json() == result.to_json()
        assert (legacy.sound, legacy.batch) == (result.sound, result.batch)

    def test_internal_paths_do_not_warn(self):
        # The CLI and server run on the Session API; a plain witness run
        # through them must not trip the legacy shims.
        from repro.cli import main

        import os
        import tempfile

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            buffer = io.StringIO()
            with tempfile.TemporaryDirectory() as tmp:
                path = os.path.join(tmp, "prog.bean")
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(SOURCE)
                with contextlib.redirect_stdout(buffer):
                    code = main(
                        [
                            "witness", path,
                            "--inputs", json.dumps(SCALAR_INPUTS), "--json",
                        ]
                    )
            assert code == 0


# --------------------------------------------------------------------------
# Package ergonomics: lazy names are discoverable
# --------------------------------------------------------------------------


class TestPackageSurface:
    def test_lazy_names_appear_in_dir(self):
        import repro

        listing = dir(repro)
        for name in (
            "BatchWitnessEngine",
            "BatchWitnessReport",
            "run_witness_sharded",
            "run_witness_batch",
            "Session",
            "AuditResult",
        ):
            assert name in listing, name

    def test_lazy_api_names_resolve(self):
        import repro

        assert repro.Session is Session
        assert repro.AuditResult is AuditResult
        assert repro.BatchWitnessEngine is not None

    def test_unknown_attribute_still_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.no_such_name

    def test_readme_engine_table_in_sync(self):
        # The README's registry table is generated output — registering
        # an engine updates format_engine_table(), and this assertion
        # forces the README to follow.
        import pathlib

        readme = (
            pathlib.Path(__file__).parent.parent / "README.md"
        ).read_text(encoding="utf-8")
        assert api.format_engine_table() in readme
