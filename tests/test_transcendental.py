"""Tests for the glibc-style sin/cos kernels (Table 2 programs)."""

import math
from decimal import Decimal, localcontext

import pytest

from repro.core import check_definition
from repro.lam_s import evaluate, vector_value, VNum
from repro.programs.transcendental import (
    COS_COEFFICIENTS,
    COS_EXPECTED_GRADE,
    SIN_COEFFICIENTS,
    SIN_EXPECTED_GRADE,
    TABLE2_RANGE,
    cos_kernel,
    glibc_cos,
    glibc_sin,
    sin_ideal,
    sin_kernel,
)

POINTS = [0.0001, 0.00037, 0.001, 0.0042, 0.01]


class TestInferredGrades:
    def test_sin_grade_13eps(self):
        judgment = check_definition(glibc_sin())
        assert judgment.max_linear_grade().coeff == SIN_EXPECTED_GRADE.coeff == 13

    def test_cos_grade_12eps(self):
        judgment = check_definition(glibc_cos())
        assert judgment.max_linear_grade().coeff == COS_EXPECTED_GRADE.coeff == 12

    def test_paper_numeric_values(self):
        assert SIN_EXPECTED_GRADE.evaluate() == pytest.approx(1.44e-15, abs=0.01e-15)
        assert COS_EXPECTED_GRADE.evaluate() == pytest.approx(1.33e-15, abs=0.01e-15)


class TestKernelAccuracy:
    @pytest.mark.parametrize("x", POINTS)
    def test_sin_kernel_matches_libm(self, x):
        # On [1e-4, 1e-2] the degree-13 Taylor kernel is fully accurate.
        assert sin_kernel(x) == pytest.approx(math.sin(x), rel=1e-15)

    @pytest.mark.parametrize("x", POINTS)
    def test_cos_kernel_matches_libm(self, x):
        assert cos_kernel(x) == pytest.approx(math.cos(x), rel=1e-15)

    @pytest.mark.parametrize("x", POINTS)
    def test_ideal_matches_kernel_to_roundoff(self, x):
        with localcontext() as ctx:
            ctx.prec = 50
            ideal = sin_ideal(Decimal(x))
        assert float(ideal) == pytest.approx(sin_kernel(x), rel=1e-13)


class TestBeanProgramsMatchKernels:
    """The Bean encodings evaluate (approximately) to the float kernels."""

    @pytest.mark.parametrize("x", POINTS)
    def test_sin_program_evaluates_like_kernel(self, x):
        definition = glibc_sin()
        env = {
            "s": vector_value([x] + SIN_COEFFICIENTS),
            "x": VNum(x),
            "w": VNum(x * x),
        }
        result = evaluate(definition.body, env, mode="approx")
        assert result.as_float() == sin_kernel(x)

    @pytest.mark.parametrize("x", POINTS)
    def test_cos_program_evaluates_like_kernel(self, x):
        definition = glibc_cos()
        env = {
            "c": vector_value(COS_COEFFICIENTS),
            "w": VNum(x * x),
        }
        result = evaluate(definition.body, env, mode="approx")
        assert result.as_float() == cos_kernel(x)


class TestRange:
    def test_table2_range(self):
        assert TABLE2_RANGE == (0.0001, 0.01)

    def test_coefficient_counts(self):
        assert len(SIN_COEFFICIENTS) == 6
        assert len(COS_COEFFICIENTS) == 7
