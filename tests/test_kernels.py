"""Tests for the BLAS-style kernel library (programs/kernels.py)."""

import random
from fractions import Fraction

import pytest

from repro.core import LinearityError, check_definition
from repro.core.pathcost import variable_demand
from repro.lam_s import evaluate, vector_value, vector_components
from repro.programs.generators import dot_prod
from repro.programs.kernels import (
    axpy,
    axpy_bounds,
    continued_fraction,
    norm_squared,
    norm_squared_bound,
    scal,
    scal_bound,
    weighted_sum,
    weighted_sum_bound,
)
from repro.semantics.witness import run_witness


class TestScal:
    @pytest.mark.parametrize("n", [1, 2, 5, 9])
    def test_bound(self, n):
        judgment = check_definition(scal(n))
        assert judgment.grade_of("x").coeff == scal_bound().coeff

    def test_computes(self):
        definition = scal(3)
        env = {"a": vector_value([2.0]), "x": vector_value([1.0, 2.0, 3.0])}
        from repro.lam_s import VNum

        env["a"] = VNum(2.0)
        out = evaluate(definition.body, env, mode="approx")
        assert [c.as_float() for c in vector_components(out)] == [2.0, 4.0, 6.0]

    def test_witness(self):
        report = run_witness(scal(4), {"a": 1.7, "x": [1.0, -2.0, 3.0, -4.0]})
        assert report.sound


class TestAxpy:
    @pytest.mark.parametrize("n", [1, 2, 6])
    def test_bounds(self, n):
        judgment = check_definition(axpy(n))
        want_x, want_y = axpy_bounds()
        assert judgment.grade_of("x").coeff == want_x.coeff
        assert judgment.grade_of("y").coeff == want_y.coeff

    def test_n2_matches_svecadd_judgment(self, example_judgments):
        """axpy(2) generalizes the paper's SVecAdd: same grades."""
        judgment = check_definition(axpy(2))
        paper = example_judgments["SVecAdd"]
        assert judgment.grade_of("x").coeff == paper.grade_of("x").coeff
        assert judgment.grade_of("y").coeff == paper.grade_of("y").coeff

    def test_witness(self):
        report = run_witness(
            axpy(3), {"a": 0.3, "x": [1.0, 2.0, 3.0], "y": [-1.0, 0.5, 2.0]}
        )
        assert report.sound


class TestNormSquared:
    @pytest.mark.parametrize("n", [1, 3])
    def test_rejected_for_linearity(self, n):
        """Remark 1 live: backward stable but untypeable."""
        with pytest.raises(LinearityError):
            check_definition(norm_squared(n))

    @pytest.mark.parametrize("n", [2, 5])
    def test_two_copy_alternative_types(self, n):
        """dot_prod(x, x) with split allocation is the typeable route."""
        judgment = check_definition(dot_prod(n, alloc="both"))
        assert judgment.grade_of("x").coeff == norm_squared_bound(n).coeff

    def test_two_copy_witness_on_equal_vectors(self):
        definition = dot_prod(4, alloc="both")
        xs = [1.5, -2.0, 0.5, 3.0]
        report = run_witness(definition, {"x": xs, "y": xs})
        assert report.sound


class TestWeightedSum:
    @pytest.mark.parametrize("n", [1, 2, 8])
    def test_bound(self, n):
        judgment = check_definition(weighted_sum(n))
        assert judgment.grade_of("w").coeff == weighted_sum_bound(n).coeff

    def test_witness(self):
        rng = random.Random(2)
        n = 5
        report = run_witness(
            weighted_sum(n),
            {
                "w": [rng.uniform(0.1, 1.0) for _ in range(n)],
                "z": [rng.uniform(-1.0, 1.0) for _ in range(n)],
            },
        )
        assert report.sound


class TestContinuedFraction:
    @pytest.mark.parametrize("depth", [1, 2, 3, 4])
    def test_innermost_coefficient_closed_form(self, depth):
        """a_k and the deepest b absorb (3k/2)·ε."""
        judgment = check_definition(continued_fraction(depth))
        for k in range(1, depth + 1):
            assert judgment.grade_of(f"a{k}").coeff == Fraction(3 * k, 2)
        assert judgment.grade_of(f"b{depth}").coeff == Fraction(3 * depth, 2)
        assert judgment.grade_of("b0").coeff == 1

    def test_middle_denominators(self):
        judgment = check_definition(continued_fraction(4))
        for k in (1, 2, 3):
            assert judgment.grade_of(f"b{k}").coeff == Fraction(3 * k, 2) + 1

    def test_pathcost_agrees(self):
        definition = continued_fraction(3)
        judgment = check_definition(definition)
        for p in definition.params:
            assert (
                variable_demand(definition.body, p.name).coeff
                == judgment.grade_of(p.name).coeff
            )

    def test_evaluates_golden_ratio_tail(self):
        # 1 + 1/(1 + 1/(1 + 1/1)) = 1 + 1/(1 + 1/2) = 1 + 3/5... compute.
        definition = continued_fraction(3)
        from repro.lam_s import VInl, VNum

        env = {f"b{k}": VNum(1.0) for k in range(4)}
        env.update({f"a{k}": VNum(1.0) for k in range(1, 4)})
        out = evaluate(definition.body, env, mode="approx")
        assert isinstance(out, VInl)
        assert out.body.as_float() == pytest.approx(1 + 1 / (1 + 1 / (1 + 1 / 1.0)))

    def test_zero_denominator_traps(self):
        definition = continued_fraction(2)
        from repro.lam_s import VInr, VNum

        env = {
            "b0": VNum(1.0),
            "b1": VNum(-1.0),
            "b2": VNum(1.0),
            "a1": VNum(1.0),
            "a2": VNum(1.0),
        }
        # b1 + a2/b2 = -1 + 1 = 0 -> outer division traps.
        out = evaluate(definition.body, env, mode="approx")
        assert isinstance(out, VInr)

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_witness(self, depth):
        rng = random.Random(depth)
        inputs = {f"b{k}": rng.uniform(1.0, 3.0) for k in range(depth + 1)}
        inputs.update({f"a{k}": rng.uniform(0.5, 2.0) for k in range(1, depth + 1)})
        report = run_witness(continued_fraction(depth), inputs)
        assert report.sound, report.describe()
