"""Golden regression tests: the exact digits the paper prints.

Unlike :mod:`test_bench_tables` (which checks closeness), these pin the
*formatted* numbers so any drift in grade arithmetic, unit-roundoff
handling, or formatting shows up as a diff against the paper's tables.
"""

import pytest

from repro.bench.table1 import format_table1, run_table1
from repro.bench.table3 import format_table3, run_table3

TABLE1_GOLDEN_CELLS = [
    # (family, size, printed bound) — every cell of the paper's Table 1.
    ("DotProd", 20, "2.22e-15"),
    ("DotProd", 50, "5.55e-15"),
    ("DotProd", 100, "1.11e-14"),
    ("DotProd", 500, "5.55e-14"),
    ("Horner", 20, "4.44e-15"),
    ("Horner", 50, "1.11e-14"),
    ("Horner", 100, "2.22e-14"),
    ("Horner", 500, "1.11e-13"),
    ("PolyVal", 10, "1.22e-15"),
    ("PolyVal", 20, "2.33e-15"),
    ("PolyVal", 50, "5.66e-15"),
    ("PolyVal", 100, "1.12e-14"),
    ("MatVecMul", 5, "5.55e-16"),
    ("MatVecMul", 10, "1.11e-15"),
    ("MatVecMul", 20, "2.22e-15"),
    ("MatVecMul", 50, "5.55e-15"),
    ("Sum", 50, "5.44e-15"),
    ("Sum", 100, "1.10e-14"),
    ("Sum", 500, "5.54e-14"),
    ("Sum", 1000, "1.11e-13"),
]


@pytest.fixture(scope="module")
def table1_rows():
    # Only the bound values matter here; reuse the smaller sizes where
    # possible but include every golden cell.
    sizes = {}
    for family, n, _ in TABLE1_GOLDEN_CELLS:
        sizes.setdefault(family, []).append(n)
    return {(r.family, r.size): r for r in run_table1(sizes=sizes)}


class TestTable1Golden:
    @pytest.mark.parametrize(
        "family,size,printed",
        TABLE1_GOLDEN_CELLS,
        ids=[f"{f}-{n}" for f, n, _ in TABLE1_GOLDEN_CELLS],
    )
    def test_cell(self, table1_rows, family, size, printed):
        row = table1_rows[(family, size)]
        assert f"{row.bean_bound:.2e}" == printed
        assert f"{row.std_bound:.2e}" == printed

    def test_formatted_table_contains_all_values(self, table1_rows):
        text = format_table1(list(table1_rows.values()))
        for _, _, printed in TABLE1_GOLDEN_CELLS:
            assert printed in text


class TestTable3Golden:
    def test_exact_printed_digits(self):
        rows = {r.family: r for r in run_table3()}
        golden = {
            "Sum": "1.11e-13",
            "DotProd": "1.11e-13",
            "Horner": "2.22e-13",
            "PolyVal": "2.24e-14",
        }
        for family, printed in golden.items():
            row = rows[family]
            assert f"{row.bean_forward:.2e}" == printed
            assert f"{row.numfuzz_like:.2e}" == printed
            assert f"{row.gappa_like:.2e}" == printed

    def test_formatted(self):
        text = format_table3(run_table3())
        assert "2.24e-14" in text


class TestTable2Golden:
    def test_bean_column_digits(self):
        from repro.programs.transcendental import (
            COS_EXPECTED_GRADE,
            SIN_EXPECTED_GRADE,
        )

        assert f"{SIN_EXPECTED_GRADE.evaluate():.2e}" == "1.44e-15"
        assert f"{COS_EXPECTED_GRADE.evaluate():.2e}" == "1.33e-15"
