"""Tests for blame traces (repro.core.explain / repro-bean explain)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import check_definition, check_program, parse_program
from repro.core.explain import explain_variable, format_trace
from repro.core.types import is_discrete
from repro.programs.generators import dot_prod, horner, vec_sum
from strategies import random_definition


def trace_of(src, var, name=None):
    program = parse_program(src)
    judgments = check_program(program)
    definition = program[name] if name else program.main
    return explain_variable(judgments[definition.name], definition, var, program=program)


class TestCharges:
    def test_single_op(self):
        trace = trace_of("F (x : num) (y : num) := add x y", "x")
        assert str(trace.total) == "ε"
        assert len(trace.charges) == 1
        assert trace.charges[0].reason == "operand of add"

    def test_chain_attributes_via(self):
        src = """
        F (x : num) (y : num) (w : num) :=
          let v = mul x y in
          add v w
        """
        trace = trace_of(src, "x")
        assert str(trace.total) == "3ε/2"
        assert [str(c.grade) for c in trace.charges] == ["ε/2", "ε"]
        assert trace.charges[1].via == "v"

    def test_rnd_charge(self):
        trace = trace_of("F (x : num) := rnd x", "x")
        assert trace.charges[0].reason == "explicit rounding"

    def test_dmul_linear_side_only(self):
        trace = trace_of("F (z : !R) (x : num) := dmul z x", "x")
        assert str(trace.total) == "ε"

    def test_unused_variable_empty_trace(self):
        trace = trace_of("F (x : num) (y : num) := x", "y")
        assert trace.total.is_zero
        assert trace.charges == []

    def test_charges_sum_to_total(self):
        trace = trace_of(
            "F (x : num) (y : num) (w : num) := add (mul x y) (rnd w)", "w"
        )
        assert trace.check()

    def test_case_worst_branch(self):
        src = """
        F (s : num + num) (x : num) (w : num) :=
          case s of
            inl (a) => add a x
          | inr (b) => mul b w
        """
        trace = trace_of(src, "x")
        assert str(trace.total) == "ε"


class TestAgainstInference:
    @pytest.mark.parametrize(
        "make,param",
        [
            (lambda: dot_prod(6), "x"),
            (lambda: vec_sum(9), "x"),
            (lambda: horner(4), "a"),
        ],
        ids=["dotprod", "sum", "horner"],
    )
    def test_generators(self, make, param):
        definition = make()
        judgment = check_definition(definition)
        trace = explain_variable(judgment, definition, param)
        assert trace.total.coeff == judgment.grade_of(param).coeff
        assert trace.check()

    def test_paper_examples(self, example_program, example_judgments):
        for definition in example_program:
            judgment = example_judgments[definition.name]
            for p in definition.params:
                if is_discrete(p.ty):
                    continue
                trace = explain_variable(
                    judgment, definition, p.name, program=example_program
                )
                # explain_variable internally asserts agreement; also:
                assert trace.total.coeff == judgment.grade_of(p.name).coeff

    @given(st.integers(min_value=0, max_value=8000))
    def test_random_programs(self, seed):
        spec = random_definition(seed, n_linear=3, n_discrete=1, n_steps=7)
        judgment = check_definition(spec.definition)
        for param in spec.linear:
            explain_variable(judgment, spec.definition, param)
            # the function raises AssertionError on any disagreement


class TestRendering:
    def test_format_contains_grades_and_sites(self):
        trace = trace_of("F (x : num) (y : num) := add x y", "x")
        text = format_trace(trace)
        assert "x : ε" in text
        assert "add x y" in text

    def test_format_empty(self):
        trace = trace_of("F (x : num) (y : num) := x", "y")
        assert "no backward error" in format_trace(trace)

    def test_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.bean"
        path.write_text("F (x : num) (y : num) := add (mul x y) w2\n")
        path.write_text(
            "F (x : num) (y : num) (w : num) := add (mul x y) w\n"
        )
        assert main(["explain", str(path)]) == 0
        out = capsys.readouterr().out
        assert "x : 3ε/2" in out
        assert "operand of mul" in out
