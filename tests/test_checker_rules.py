"""Per-rule tests of the inference algorithm (Figure 7)."""

import pytest

from repro.core import (
    DNUM,
    NUM,
    UNIT,
    BeanTypeError,
    Definition,
    Discrete,
    Param,
    Sum,
    Tensor,
    UnboundVariableError,
    check_definition,
    check_program,
    infer,
    parse_expression,
    parse_program,
)
from repro.core.context import DiscreteContext, Skeleton
from repro.core.grades import EPS, HALF_EPS, ZERO, Grade


def infer_src(source, *, linear=None, discrete=None):
    expr = parse_expression(source)
    skel = Skeleton(linear or {})
    phi = DiscreteContext(discrete or {})
    return infer(expr, phi, skel)


class TestVar:
    def test_linear_var_gets_zero_grade(self):
        ctx, ty = infer_src("x", linear={"x": NUM})
        assert ty == NUM
        assert ctx["x"].grade == ZERO

    def test_discrete_var_empty_context(self):
        ctx, ty = infer_src("z", discrete={"z": DNUM})
        assert ty == DNUM
        assert len(ctx) == 0

    def test_unbound(self):
        with pytest.raises(UnboundVariableError):
            infer_src("nope")

    def test_unused_variables_dropped(self):
        ctx, _ = infer_src("x", linear={"x": NUM, "y": NUM})
        assert "y" not in ctx


class TestUnitAndPairs:
    def test_unit(self):
        ctx, ty = infer_src("()")
        assert ty == UNIT
        assert len(ctx) == 0

    def test_pair_types_tensor(self):
        _, ty = infer_src("(x, y)", linear={"x": NUM, "y": UNIT})
        assert ty == Tensor(NUM, UNIT)

    def test_pair_contexts_disjoint(self):
        from repro.core import LinearityError

        with pytest.raises(LinearityError):
            infer_src("(x, x)", linear={"x": NUM})


class TestInjections:
    def test_inl_default(self):
        _, ty = infer_src("inl x", linear={"x": NUM})
        assert ty == Sum(NUM, UNIT)

    def test_inr_annotated(self):
        _, ty = infer_src("inr{num * num} x", linear={"x": NUM})
        assert ty == Sum(Tensor(NUM, NUM), NUM)


class TestArithmetic:
    def test_add_charges_eps_each(self):
        ctx, ty = infer_src("add x y", linear={"x": NUM, "y": NUM})
        assert ty == NUM
        assert ctx["x"].grade == EPS
        assert ctx["y"].grade == EPS

    def test_sub_charges_eps_each(self):
        ctx, _ = infer_src("sub x y", linear={"x": NUM, "y": NUM})
        assert ctx["x"].grade == EPS

    def test_mul_charges_half_eps_each(self):
        ctx, _ = infer_src("mul x y", linear={"x": NUM, "y": NUM})
        assert ctx["x"].grade == HALF_EPS
        assert ctx["y"].grade == HALF_EPS

    def test_div_result_is_sum(self):
        ctx, ty = infer_src("div x y", linear={"x": NUM, "y": NUM})
        assert ty == Sum(NUM, UNIT)
        assert ctx["x"].grade == HALF_EPS

    def test_dmul_discrete_left_free(self):
        ctx, ty = infer_src(
            "dmul z x", linear={"x": NUM}, discrete={"z": DNUM}
        )
        assert ty == NUM
        assert ctx["x"].grade == EPS
        assert "z" not in ctx

    def test_dmul_requires_discrete_left(self):
        with pytest.raises(BeanTypeError, match="discrete"):
            infer_src("dmul x y", linear={"x": NUM, "y": NUM})

    def test_add_requires_numbers(self):
        with pytest.raises(BeanTypeError):
            infer_src("add x y", linear={"x": UNIT, "y": NUM})

    def test_nested_operands_accumulate(self):
        # add (mul x y) w: x and y get ε/2 (mul) + ε (outer add).
        ctx, _ = infer_src(
            "add (mul x y) w", linear={"x": NUM, "y": NUM, "w": NUM}
        )
        assert ctx["x"].grade.coeff == HALF_EPS.coeff + 1
        assert ctx["w"].grade == EPS


class TestLets:
    def test_let_pushes_body_grade(self):
        # v is consumed by add (grade ε), pushed onto mul's context.
        ctx, _ = infer_src(
            "let v = mul x y in add v w",
            linear={"x": NUM, "y": NUM, "w": NUM},
        )
        assert ctx["x"].grade.coeff == HALF_EPS.coeff + 1

    def test_let_unused_binding_pushes_zero(self):
        ctx, _ = infer_src(
            "let v = mul x y in w", linear={"x": NUM, "y": NUM, "w": NUM}
        )
        assert ctx["x"].grade == HALF_EPS
        assert ctx["w"].grade == ZERO

    def test_let_shadowing_rejected(self):
        with pytest.raises(BeanTypeError, match="shadows"):
            infer_src("let x = y in x", linear={"x": NUM, "y": NUM})

    def test_letpair_pushes_max_of_components(self):
        # a is consumed by add (ε), b unused: push max(ε, 0) = ε onto p.
        ctx, _ = infer_src(
            "let (a, b) = p in add a w",
            linear={"p": Tensor(NUM, NUM), "w": NUM},
        )
        assert ctx["p"].grade == EPS

    def test_letpair_on_non_tensor(self):
        with pytest.raises(BeanTypeError, match="tensor"):
            infer_src("let (a, b) = x in a", linear={"x": NUM})

    def test_letpair_duplicate_pattern_names(self):
        from repro.core import LinearityError

        with pytest.raises(LinearityError):
            infer_src("let (a, a) = p in a", linear={"p": Tensor(NUM, NUM)})

    def test_dlet_requires_discrete_type(self):
        with pytest.raises(BeanTypeError, match="discrete"):
            infer_src("dlet z = x in z", linear={"x": NUM})

    def test_dlet_of_banged_value(self):
        ctx, ty = infer_src("dlet z = !x in dmul z y", linear={"x": NUM, "y": NUM})
        assert ty == NUM
        # x's grade stays 0: no error pushed through the discrete binding.
        assert ctx["x"].grade == ZERO
        assert ctx["y"].grade == EPS

    def test_dletpair_on_tensor_of_discretes(self):
        ctx, ty = infer_src(
            "dlet (u, v) = p in dmul u x",
            linear={"p": Tensor(DNUM, DNUM), "x": NUM},
        )
        assert ty == NUM

    def test_dletpair_on_discrete_tensor(self):
        ctx, ty = infer_src(
            "dlet (u, v) = p in dmul u x",
            linear={"p": Discrete(Tensor(NUM, NUM)), "x": NUM},
        )
        assert ty == NUM

    def test_dletpair_on_plain_tensor_rejected(self):
        with pytest.raises(BeanTypeError):
            infer_src(
                "dlet (u, v) = p in u", linear={"p": Tensor(NUM, NUM)}
            )


class TestBang:
    def test_bang_types_discrete(self):
        _, ty = infer_src("!x", linear={"x": NUM})
        assert ty == Discrete(NUM)

    def test_bang_keeps_context(self):
        ctx, _ = infer_src("!x", linear={"x": NUM})
        assert "x" in ctx


class TestCase:
    SRC = "case s of inl (a) => add a x | inr (b) => add b x"

    def test_case_branch_types_must_match(self):
        with pytest.raises(BeanTypeError, match="disagree"):
            infer_src(
                "case s of inl (a) => a | inr (b) => ()",
                linear={"s": Sum(NUM, NUM)},
            )

    def test_case_scrutinee_shifted_by_branch_grade(self):
        ctx, _ = infer_src(self.SRC, linear={"s": Sum(NUM, NUM), "x": NUM})
        # each branch charges its payload ε, pushed onto s.
        assert ctx["s"].grade == EPS

    def test_case_shared_branch_variable_max(self):
        # x is used in both branches: not a linearity violation (only one
        # branch runs); grades merge with max.
        ctx, _ = infer_src(self.SRC, linear={"s": Sum(NUM, NUM), "x": NUM})
        assert ctx["x"].grade == EPS

    def test_case_requires_sum(self):
        with pytest.raises(BeanTypeError, match="sum"):
            infer_src("case x of inl (a) => a | inr (b) => b", linear={"x": NUM})


class TestCalls:
    PROGRAM = """
    Double (x : num) : num := add x x
    """

    def test_unknown_call(self):
        with pytest.raises(UnboundVariableError, match="unknown"):
            infer_src("Nope x", linear={"x": NUM})

    def test_call_composes_grades(self):
        prog = parse_program(
            """
            AddBoth (x : num) (y : num) := add x y
            Main (a : num) (b : num) := AddBoth (mul a b) a
            """
        )
        # 'a' appears twice across arguments: linearity violation.
        from repro.core import LinearityError

        with pytest.raises(LinearityError):
            check_program(prog)

    def test_call_pushes_param_grade(self):
        prog = parse_program(
            """
            AddBoth (x : num) (y : num) := add x y
            Main (a : num) (b : num) (c : num) := AddBoth (mul a b) c
            """
        )
        j = check_program(prog)["Main"]
        # a: ε/2 from mul + ε pushed by AddBoth's x-grade.
        assert j.grade_of("a").coeff == HALF_EPS.coeff + 1
        assert j.grade_of("c") == EPS

    def test_call_arity_mismatch(self):
        prog = parse_program(
            """
            Double (x : num) := add x x
            """
        )
        # add x x is itself a linearity violation; checked first.
        from repro.core import LinearityError

        with pytest.raises(LinearityError):
            check_program(prog)

    def test_call_argument_type_mismatch(self):
        prog = parse_program(
            """
            First ((a, b) : vec(2)) := a
            Main (x : num) := First x
            """
        )
        with pytest.raises(BeanTypeError, match="type"):
            check_program(prog)


class TestDefinitions:
    def test_declared_result_checked(self):
        prog = parse_program("F (x : num) : unit := x")
        with pytest.raises(BeanTypeError, match="declares result"):
            check_program(prog)

    def test_duplicate_parameter(self):
        d = Definition("F", [Param("x", NUM), Param("x", NUM)], parse_expression("x"))
        with pytest.raises(BeanTypeError, match="duplicate"):
            check_definition(d)

    def test_judgment_grade_of_unknown_param(self):
        prog = parse_program("F (x : num) := x")
        j = check_program(prog)["F"]
        with pytest.raises(KeyError):
            j.grade_of("nope")

    def test_judgment_grade_of_discrete_param(self):
        prog = parse_program("F (z : !R) (x : num) := dmul z x")
        j = check_program(prog)["F"]
        with pytest.raises(BeanTypeError, match="discrete"):
            j.grade_of("z")

    def test_unused_param_grade_zero(self):
        prog = parse_program("F (x : num) (y : num) := x")
        j = check_program(prog)["F"]
        assert j.grade_of("y") == ZERO

    def test_max_linear_grade_empty(self):
        prog = parse_program("F (z : !R) := ()")
        j = check_program(prog)["F"]
        assert j.max_linear_grade() == Grade(0)

    def test_format_contains_grades(self):
        prog = parse_program("F (x : num) (y : num) := add x y")
        j = check_program(prog)["F"]
        text = j.format()
        assert "x :ε" in text and "⊢ F : num" in text
