"""The serving layer: fingerprints, the artifact cache, the audit server.

Three contracts under test:

* **fingerprints** are canonical: stable across parses (the parser's
  fresh-name counter must not leak into keys), alpha-invariant, and
  sensitive to everything semantic (structure, types, grades, kinds);
* **the artifact cache** is safe: corrupted/truncated entries are
  transparently recomputed (never raised), writes are atomic under
  concurrency, entries survive process restarts, eviction bounds size;
* **the served audit path** is bitwise identical to the CLI: for all
  four engines the response body equals the ``repro witness --json``
  stdout for the same audit, byte for byte.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import subprocess
import sys
import tempfile
import threading

import pytest

from repro import api as repro_api
from repro.cli import main
from repro.core import parse_program
from repro.core.checker import check_program
from repro.ir.cache import (
    inlined_definition_ir,
    persistent_cache,
    semantic_definition_ir,
)
from repro.service.cache import ArtifactCache, activate, deactivate
from repro.service.fingerprint import (
    fingerprint_definition,
    fingerprint_program,
    fingerprint_source,
)
from repro.service import client as service_client
from repro.service.server import AuditServer, serve

SAFEDIV = os.path.join(
    os.path.dirname(__file__), "..", "examples", "bean", "safediv4.bean"
)

DOTPROD = """
DotProd2 (x : vec(2)) (y : vec(2)) : num :=
  let (x0, x1) = x in
  let (y0, y1) = y in
  let v = mul x0 y0 in
  let w = mul x1 y1 in
  add v w
"""

BATCH_INPUTS = {
    "x": [[1, 2, 3, 4], [2, 3, 4, 5], [1, 1, 1, 1]],
    "y": [[1, 1, 2, 2], [0, 1, 1, 2], [4, 3, 2, 1]],
    "f": [[1, 1, 1, 1], [2, 2, 2, 2], [3, 3, 3, 3]],
}
SCALAR_INPUTS = {k: v[0] for k, v in BATCH_INPUTS.items()}


@pytest.fixture()
def no_persistence():
    """Ensure a test starts and ends without an active artifact cache."""
    deactivate()
    yield
    deactivate()


def cli_json(argv):
    """Run the CLI in-process, capturing stdout."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


# --------------------------------------------------------------------------
# Fingerprints
# --------------------------------------------------------------------------


class TestFingerprint:
    def test_stable_across_parses(self):
        p1 = parse_program(DOTPROD)
        p2 = parse_program(DOTPROD)
        assert fingerprint_program(p1) == fingerprint_program(p2)

    def test_stable_under_fresh_name_drift(self):
        # Desugared call arguments mint fresh names from a process-global
        # counter; interleaving another parse shifts the counter.
        source = "H (x : num) (y : num) : num := add (mul x y) y"
        p1 = parse_program(source)
        parse_program(DOTPROD)  # bump the fresh-name counter
        p2 = parse_program(source)
        assert p1.main.body is not p2.main.body
        assert fingerprint_definition(p1.main, p1) == fingerprint_definition(
            p2.main, p2
        )

    def test_alpha_invariant(self):
        a = parse_program("F (x : num) : num := let t = add x x in mul t t")
        b = parse_program("F (x : num) : num := let s = add x x in mul s s")
        assert fingerprint_program(a) == fingerprint_program(b)

    def test_sensitive_to_structure(self):
        a = parse_program("F (x : num) : num := add x x")
        b = parse_program("F (x : num) : num := mul x x")
        assert fingerprint_program(a) != fingerprint_program(b)

    def test_sensitive_to_parameter_names(self):
        # Parameter names are free names: callers address them in the
        # inputs mapping, so they are semantic, not alpha-convertible.
        a = parse_program("F (x : num) : num := add x x")
        b = parse_program("F (y : num) : num := add y y")
        assert fingerprint_program(a) != fingerprint_program(b)

    def test_sensitive_to_kind_and_options(self):
        p = parse_program(DOTPROD)
        plain = fingerprint_definition(p.main, p)
        kinded = fingerprint_definition(p.main, p, kind="inlined-ir")
        optioned = fingerprint_definition(
            p.main, p, options={"precision_bits": 24}
        )
        assert len({plain, kinded, optioned}) == 3

    def test_deep_programs_fingerprint_iteratively(self):
        from repro.programs.generators import BENCHMARK_FAMILIES

        deep = BENCHMARK_FAMILIES["Sum"](5000)
        # A recursive walk would blow the default recursion limit here.
        assert fingerprint_definition(deep)

    def test_source_fingerprint(self):
        assert fingerprint_source("abc") == fingerprint_source("abc")
        assert fingerprint_source("abc") != fingerprint_source("abd")
        assert fingerprint_source("abc", kind="x") != fingerprint_source(
            "abc", kind="y"
        )


# --------------------------------------------------------------------------
# The artifact cache
# --------------------------------------------------------------------------


class TestArtifactCache:
    def test_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        p = parse_program(DOTPROD)
        key = cache.key_for("semantic-ir", p.main)
        assert cache.load(key) is None
        ir = semantic_definition_ir(p.main)
        assert cache.store(key, ir)
        loaded = cache.load(key)
        assert loaded is not None
        assert len(loaded.ops) == len(ir.ops)
        assert cache.stats["hits"] == 1

    def test_corrupted_entry_recomputes(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("ab" * 32, {"value": 1})
        path = cache._path("ab" * 32)
        blob = open(path, "rb").read()
        # Flip a byte inside the pickled payload: digest check must fail.
        open(path, "wb").write(blob[:-3] + bytes([blob[-3] ^ 0xFF]) + blob[-2:])
        assert cache.load("ab" * 32) is None
        assert cache.stats["corrupt"] == 1
        assert not os.path.exists(path)  # bad entries are dropped

    def test_truncated_entry_recomputes(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("cd" * 32, list(range(100)))
        path = cache._path("cd" * 32)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        assert cache.load("cd" * 32) is None
        assert cache.stats["corrupt"] == 1

    def test_garbage_entry_recomputes(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache._path("ef" * 32)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        open(path, "wb").write(b"not an artifact at all")
        assert cache.load("ef" * 32) is None

    def test_valid_header_bad_pickle_recomputes(self, tmp_path):
        import hashlib

        cache = ArtifactCache(tmp_path)
        path = cache._path("01" * 32)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = b"\x80\x05but-not-really-pickle"
        digest = hashlib.sha256(payload).hexdigest().encode()
        open(path, "wb").write(
            b"repro-artifact-v1\n" + digest + b"\n" + payload
        )
        assert cache.load("01" * 32) is None
        assert cache.stats["corrupt"] == 1

    def test_get_builds_once_then_hits(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        p = parse_program(DOTPROD)
        calls = []

        def build():
            calls.append(1)
            return {"n": len(calls)}

        first = cache.get("judgment", p.main, None, build)
        second = cache.get("judgment", p.main, None, build)
        assert first == second == {"n": 1}
        assert len(calls) == 1

    def test_unpicklable_value_skips_persistence(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        p = parse_program(DOTPROD)
        value = cache.get("judgment", p.main, None, lambda: lambda: None)
        assert callable(value)
        assert len(cache) == 0  # nothing persisted, nothing raised

    def test_concurrent_writers_never_corrupt(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = "77" * 32
        payload = list(range(5000))
        errors = []

        def writer():
            try:
                for _ in range(20):
                    other = ArtifactCache(tmp_path)
                    other.store(key, payload)
                    loaded = cache.load(key)
                    # A reader may only ever see a whole entry or a miss.
                    assert loaded is None or loaded == payload
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.load(key) == payload
        assert cache.stats["corrupt"] == 0

    def test_stale_tmp_files_are_swept(self, tmp_path):
        # A writer killed between mkstemp and rename leaves a .tmp file
        # no *.art accounting sees; prune must reclaim it eventually.
        cache = ArtifactCache(tmp_path, max_bytes=10_000_000)
        cache.store("ab" * 32, {"v": 1})
        bucket = os.path.join(cache.objects_dir, "ab")
        orphan = os.path.join(bucket, "tmp_orphan.tmp")
        open(orphan, "wb").write(b"half-written")
        os.utime(orphan, (1, 1))  # ancient: clearly not in flight
        fresh = os.path.join(bucket, "tmp_fresh.tmp")
        open(fresh, "wb").write(b"in flight")
        cache.prune(10_000_000)
        assert not os.path.exists(orphan)
        assert os.path.exists(fresh)  # recent writers are left alone
        assert cache.load("ab" * 32) == {"v": 1}

    def test_eviction_bounds_size(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=4096)
        for i in range(40):
            cache.store(f"{i:02d}" + "a" * 60, os.urandom(512))
        assert cache.size_bytes() <= 4096
        assert cache.stats["evicted"] > 0

    def test_hits_survive_process_restart(self, tmp_path):
        script = (
            "import sys\n"
            "from repro.core import parse_program\n"
            "from repro.core.checker import check_program\n"
            "from repro.ir.cache import inlined_definition_ir\n"
            "from repro.service.cache import activate\n"
            "cache = activate(sys.argv[1])\n"
            "program = parse_program(open(sys.argv[2]).read())\n"
            "check_program(program)\n"
            "inlined_definition_ir(program.main, program)\n"
            "print(cache.stats['hits'], cache.stats['misses'])\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(__file__), "..", "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        runs = []
        for _ in range(2):
            out = subprocess.run(
                [sys.executable, "-c", script, str(tmp_path), SAFEDIV],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            runs.append(tuple(int(x) for x in out.stdout.split()))
        (cold_hits, cold_misses), (warm_hits, warm_misses) = runs
        assert cold_hits == 0 and cold_misses > 0
        assert warm_hits > 0 and warm_misses == 0


# --------------------------------------------------------------------------
# The persistent layer behind the identity caches
# --------------------------------------------------------------------------


class TestPersistentLayer:
    def test_activate_idempotent_for_same_root(self, tmp_path, no_persistence):
        first = activate(tmp_path)
        second = activate(tmp_path)
        assert first is second
        assert persistent_cache() is first

    def test_warm_start_equals_cold_artifacts(self, tmp_path, no_persistence):
        source = open(SAFEDIV).read()
        cold_program = parse_program(source)
        cold_judgments = check_program(cold_program)
        cold_ir = inlined_definition_ir(cold_program.main, cold_program)

        cache = activate(tmp_path)
        warm_once = parse_program(source)
        check_program(warm_once)
        inlined_definition_ir(warm_once.main, warm_once)  # populate disk

        warm_program = parse_program(source)
        warm_judgments = check_program(warm_program)
        warm_ir = inlined_definition_ir(warm_program.main, warm_program)
        assert cache.stats["hits"] > 0
        name = warm_program.main.name
        assert str(cold_judgments[name].grade_of("x")) == str(
            warm_judgments[name].grade_of("x")
        )
        assert [op.code for op in warm_ir.ops] == [
            op.code for op in cold_ir.ops
        ]
        assert warm_ir.result == cold_ir.result

    def test_sharded_with_cache_dir_matches_batch(
        self, tmp_path, no_persistence
    ):
        from repro.semantics.batch import BatchWitnessEngine
        from repro.semantics.shard import run_witness_sharded

        program = parse_program(open(SAFEDIV).read())
        definition = program.main
        engine = BatchWitnessEngine(definition, program)
        batch = engine.run(BATCH_INPUTS)
        for _round in range(2):  # cold then warm cache
            sharded = run_witness_sharded(
                definition,
                BATCH_INPUTS,
                program=program,
                workers=2,
                cache_dir=str(tmp_path),
            )
            assert list(sharded.sound) == list(batch.sound)
            assert list(sharded.exact) == list(batch.exact)
            assert {
                k: str(v) for k, v in sharded.param_max_distance.items()
            } == {k: str(v) for k, v in batch.param_max_distance.items()}
        assert len(ArtifactCache(tmp_path)) > 0


# --------------------------------------------------------------------------
# The audit server
# --------------------------------------------------------------------------


@pytest.fixture(scope="class")
def audit_server():
    deactivate()
    with tempfile.TemporaryDirectory() as cache_dir:
        handle = serve(AuditServer(port=0, cache_dir=cache_dir))
        try:
            yield handle
        finally:
            handle.stop()
            deactivate()


def served_audit(handle, spec):
    return service_client.audit(handle.host, handle.port, spec)


class TestAuditServer:
    @pytest.mark.parametrize("engine", repro_api.engine_names())
    def test_served_bitwise_equals_cli(self, audit_server, engine):
        source = open(SAFEDIV).read()
        caps = repro_api.engines()[engine].caps
        if caps.remote:
            pytest.skip(
                "remote dispatches to external serve nodes; "
                "covered by tests/test_fleet.py"
            )
        inputs = BATCH_INPUTS if caps.batched else SCALAR_INPUTS
        status, body = served_audit(
            audit_server,
            {"source": source, "inputs": inputs, "engine": engine, "workers": 2},
        )
        assert status == 200
        argv = [
            "witness", SAFEDIV, "--inputs", json.dumps(inputs), "--json",
        ]
        if engine in ("batch", "sharded"):
            argv.append("--batch")  # exercise the legacy flag spelling
        else:
            argv += ["--engine", engine]
        if caps.multiprocess:
            argv += ["--workers", "2"]
        code, out = cli_json(argv)
        assert body == out  # byte-for-byte, trailing newline included
        assert code == 0
        assert json.loads(body)["engine"] == engine

    def test_low_precision_and_custom_u(self, audit_server):
        source = open(SAFEDIV).read()
        status, body = served_audit(
            audit_server,
            {
                "source": source,
                "inputs": BATCH_INPUTS,
                "engine": "batch",
                "precision_bits": 24,
                "u": "2^-24",
            },
        )
        assert status == 200
        code, out = cli_json(
            [
                "witness", SAFEDIV, "--inputs", json.dumps(BATCH_INPUTS),
                "--json", "--batch", "--precision-bits", "24", "--u", "2^-24",
            ]
        )
        assert body == out

    def test_named_definition(self, audit_server):
        source = DOTPROD + "\nMain (z : num) (w : num) : num := add z w\n"
        status, body = served_audit(
            audit_server,
            {
                "source": source,
                "name": "DotProd2",
                "inputs": {"x": [1.5, 2.25], "y": [3.1, -0.7]},
            },
        )
        assert status == 200
        assert json.loads(body)["definition"] == "DotProd2"

    def test_unsound_rows_still_audit(self, audit_server):
        # A divisor of exactly zero routes through inl/inr fallback and
        # the audit still completes; soundness is reported per row.
        status, body = served_audit(
            audit_server,
            {
                "source": open(SAFEDIV).read(),
                "inputs": BATCH_INPUTS,
                "engine": "batch",
            },
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["n_rows"] == 3
        assert payload["sound_rows"] == sum(payload["sound"])

    def test_coalesces_concurrent_preparations(self):
        deactivate()
        handle = serve(AuditServer(port=0))
        try:
            # A program the server has never seen, hit by many clients
            # at once: preparation must run exactly once.
            source = DOTPROD.replace("DotProd2", "DotProdCoalesce")
            spec = {
                "source": source,
                "inputs": {"x": [1.0, 2.0], "y": [3.0, 4.0]},
            }
            results = []
            errors = []

            def worker():
                try:
                    results.append(served_audit(handle, spec))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert {status for status, _ in results} == {200}
            assert len({body for _, body in results}) == 1
            stats = handle.server.stats
            assert stats["prep_misses"] == 1
            assert stats["prep_hits"] == 7
        finally:
            handle.stop()
            deactivate()

    def test_health_and_stats(self, audit_server):
        health = service_client.healthz(audit_server.host, audit_server.port)
        assert health["status"] == "ok"
        status, raw = service_client.request(
            audit_server.host, audit_server.port, "GET", "/stats"
        )
        assert status == 200
        stats = json.loads(raw)
        assert "server" in stats and "cache" in stats
        # Engine-aware scheduling exposes both pools' queue depths.
        queues = stats["queues"]
        for pool in ("light", "heavy"):
            assert queues[pool]["workers"] >= 1
            assert queues[pool]["depth"] >= 0

    def test_bad_heavy_threads_rejected(self):
        from repro.cli import main
        from repro.service.server import AuditServer

        with pytest.raises(ValueError):
            AuditServer(heavy_threads=0)
        # The CLI renders the same failure as an error line, not a
        # ThreadPoolExecutor traceback.
        assert main(["serve", "--port", "0", "--heavy-threads", "0"]) == 1

    def test_engine_aware_pool_routing(self, audit_server):
        source = open(SAFEDIV).read()
        before = dict(audit_server.server.stats)
        status, _ = served_audit(
            audit_server,
            {"source": source, "inputs": SCALAR_INPUTS, "engine": "ir"},
        )
        assert status == 200
        status, _ = served_audit(
            audit_server,
            {"source": source, "inputs": SCALAR_INPUTS, "engine": "forward"},
        )
        assert status == 200
        status, _ = served_audit(
            audit_server,
            {"source": source, "inputs": BATCH_INPUTS, "engine": "batch"},
        )
        assert status == 200
        after = audit_server.server.stats
        # Scalar and static audits stay on the light pool; the batched
        # audit crossed to the bounded heavy pool.
        assert after["audits_light"] - before["audits_light"] == 2
        assert after["audits_heavy"] - before["audits_heavy"] == 1

    def test_malformed_body_is_400(self, audit_server):
        status, raw = service_client.request(
            audit_server.host, audit_server.port, "POST", "/audit",
            b"this is not json",
        )
        assert status == 400
        assert "error" in json.loads(raw)

    @pytest.mark.parametrize(
        "spec",
        [
            {},
            {"source": "F (x : num) := add x x"},  # no inputs
            {"source": "", "inputs": {}},
            {"source": "F (x : num) := x", "inputs": {}, "engine": "warp"},
            {"source": "F (x : num) := x", "inputs": {}, "workers": 0},
            {"source": "F (x : num) := x", "inputs": {}, "precision_bits": 0},
            {"source": "F (x : num) := x", "inputs": {}, "bogus_field": 1},
            {"source": "F (x : num) := x", "inputs": [], "u": None},
            # Overflowing roundoff spellings must 400, not drop the
            # connection (regression: OverflowError escaped the handler).
            {"source": "F (x : num) := x", "inputs": {"x": 1}, "u": "2^99999"},
            {"source": "F (x : num) := x", "inputs": {"x": 1}, "u": "huge"},
            # bool is an int subclass; it must not pass the int checks.
            {"source": "F (x : num) := x", "inputs": {"x": 1},
             "precision_bits": True},
            {"source": "F (x : num) := x", "inputs": {"x": 1},
             "engine": "sharded", "workers": True},
            # A client cannot dictate an unbounded process-pool size.
            {"source": "F (x : num) := x", "inputs": {"x": 1},
             "engine": "sharded", "workers": 10_000},
        ],
    )
    def test_invalid_specs_are_400(self, audit_server, spec):
        status, body = served_audit(audit_server, spec)
        assert status == 400
        assert "error" in json.loads(body)

    def test_bean_errors_are_422(self, audit_server):
        # Parse error.
        status, _ = served_audit(
            audit_server,
            {"source": "F (x : num := x", "inputs": {"x": 1.0}},
        )
        assert status == 422
        # Type error (same variable twice).
        status, _ = served_audit(
            audit_server,
            {"source": "F (x : num) : num := add x x", "inputs": {"x": 1.0}},
        )
        assert status == 422
        # Missing input for a parameter.
        status, body = served_audit(
            audit_server,
            {"source": DOTPROD, "inputs": {"x": [1.0, 2.0]}},
        )
        assert status == 422
        assert "y" in json.loads(body)["error"]

    def test_unknown_path_and_method(self, audit_server):
        status, _ = service_client.request(
            audit_server.host, audit_server.port, "GET", "/nope"
        )
        assert status == 404
        status, _ = service_client.request(
            audit_server.host, audit_server.port, "GET", "/audit"
        )
        assert status == 405

    def test_client_cli_round_trip(self, audit_server):
        code, out = cli_json(
            [
                "client", SAFEDIV,
                "--host", audit_server.host,
                "--port", str(audit_server.port),
                "--inputs", json.dumps(BATCH_INPUTS),
                "--batch", "--workers", "2",
            ]
        )
        ref_code, ref_out = cli_json(
            [
                "witness", SAFEDIV, "--inputs", json.dumps(BATCH_INPUTS),
                "--json", "--batch", "--workers", "2",
            ]
        )
        assert out == ref_out
        assert code == ref_code == 0

    def test_client_cli_unreachable_server(self):
        code, _out = cli_json(
            [
                "client", SAFEDIV, "--port", "1",
                "--inputs", json.dumps(SCALAR_INPUTS), "--timeout", "2",
            ]
        )
        assert code == 1


# --------------------------------------------------------------------------
# Nightly soak (opt-in: REPRO_SOAK=1)
# --------------------------------------------------------------------------


@pytest.mark.skipif(
    not os.environ.get("REPRO_SOAK"),
    reason="soak workload only runs in the nightly pipeline (REPRO_SOAK=1)",
)
class TestServeSoak:
    def test_concurrent_clients_bitwise_stable(self):
        deactivate()
        clients = int(os.environ.get("REPRO_SOAK_CLIENTS", "8"))
        requests_each = int(os.environ.get("REPRO_SOAK_REQUESTS", "25"))
        source = open(SAFEDIV).read()
        with tempfile.TemporaryDirectory() as cache_dir:
            handle = serve(AuditServer(port=0, cache_dir=cache_dir))
            try:
                # The golden bodies, one per non-reference engine (the
                # soak mix mirrors production traffic; the quadratic
                # reference engine has its own parity coverage).
                soak_engines = [
                    name
                    for name, eng in repro_api.engines().items()
                    if not (eng.caps.reference or eng.caps.remote)
                ]
                golden = {}
                for engine in soak_engines:
                    caps = repro_api.engines()[engine].caps
                    inputs = BATCH_INPUTS if caps.batched else SCALAR_INPUTS
                    argv = [
                        "witness", SAFEDIV, "--inputs", json.dumps(inputs),
                        "--json",
                    ]
                    if caps.batched:
                        argv.append("--batch")
                    if caps.multiprocess:
                        argv += ["--workers", "2"]
                    _, golden[engine] = cli_json(argv)
                failures = []

                def worker(worker_id: int):
                    for i in range(requests_each):
                        engine = soak_engines[
                            (worker_id + i) % len(soak_engines)
                        ]
                        batched = repro_api.engines()[engine].caps.batched
                        spec = {
                            "source": source,
                            "inputs": BATCH_INPUTS if batched else SCALAR_INPUTS,
                            "engine": engine,
                            "workers": 2,
                        }
                        status, body = served_audit(handle, spec)
                        if status != 200 or body != golden[engine]:
                            failures.append((worker_id, i, engine, status))

                threads = [
                    threading.Thread(target=worker, args=(w,))
                    for w in range(clients)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                assert not failures
                stats = handle.server.stats
                assert stats["audits"] == clients * requests_each
            finally:
                handle.stop()
                deactivate()
