"""Tests for the typing-context algebra (Section 3.2 operations)."""

import pytest

from repro.core.context import Binding, DiscreteContext, LinearContext, Skeleton
from repro.core.errors import BeanTypeError, LinearityError
from repro.core.grades import EPS, HALF_EPS, ZERO, Grade
from repro.core.types import NUM, UNIT, Tensor


def ctx(**named):
    return LinearContext({k: Binding(g, t) for k, (g, t) in named.items()})


class TestLinearContext:
    def test_empty(self):
        empty = LinearContext()
        assert len(empty) == 0
        assert "x" not in empty
        assert str(empty) == "∅"

    def test_bind_and_lookup(self):
        c = LinearContext().bind("x", EPS, NUM)
        assert "x" in c
        assert c["x"].grade == EPS
        assert c["x"].ty == NUM

    def test_bind_existing_rejected(self):
        c = LinearContext().bind("x", EPS, NUM)
        with pytest.raises(LinearityError):
            c.bind("x", ZERO, NUM)

    def test_remove(self):
        c = ctx(x=(EPS, NUM), y=(ZERO, NUM))
        assert "x" not in c.remove("x")
        assert "y" in c.remove("x")
        # Removing absent names is allowed (Γ \ {x, y} semantics).
        assert len(c.remove("nope")) == 2

    def test_immutability(self):
        c = LinearContext()
        c.bind("x", EPS, NUM)
        assert "x" not in c


class TestDisjointUnion:
    def test_union(self):
        c = ctx(x=(EPS, NUM)).disjoint_union(ctx(y=(ZERO, NUM)))
        assert set(c) == {"x", "y"}

    def test_overlap_is_linearity_error(self):
        with pytest.raises(LinearityError, match="x"):
            ctx(x=(EPS, NUM)).disjoint_union(ctx(x=(ZERO, NUM)))

    def test_union_with_empty(self):
        c = ctx(x=(EPS, NUM))
        assert c.disjoint_union(LinearContext()) == c


class TestShift:
    def test_shift_adds_to_every_grade(self):
        c = ctx(x=(EPS, NUM), y=(HALF_EPS, NUM)).shift(EPS)
        assert c["x"].grade == Grade(2)
        assert c["y"].grade.coeff == EPS.coeff + HALF_EPS.coeff

    def test_shift_zero_is_identity(self):
        c = ctx(x=(EPS, NUM))
        assert c.shift(ZERO) is c

    def test_shift_empty(self):
        assert len(LinearContext().shift(EPS)) == 0


class TestMergeMax:
    def test_pointwise_max(self):
        a = ctx(x=(EPS, NUM), y=(ZERO, NUM))
        b = ctx(x=(HALF_EPS, NUM), z=(EPS, NUM))
        m = a.merge_max(b)
        assert m["x"].grade == EPS
        assert m["y"].grade == ZERO
        assert m["z"].grade == EPS

    def test_type_conflict_rejected(self):
        with pytest.raises(BeanTypeError):
            ctx(x=(EPS, NUM)).merge_max(ctx(x=(EPS, UNIT)))


class TestSubcontext:
    def test_reflexive(self):
        c = ctx(x=(EPS, NUM))
        assert c.is_subcontext_of(c)

    def test_tighter_grades(self):
        tight = ctx(x=(HALF_EPS, NUM))
        loose = ctx(x=(EPS, NUM))
        assert tight.is_subcontext_of(loose)
        assert not loose.is_subcontext_of(tight)

    def test_smaller_domain(self):
        small = ctx(x=(EPS, NUM))
        big = ctx(x=(EPS, NUM), y=(ZERO, NUM))
        assert small.is_subcontext_of(big)
        assert not big.is_subcontext_of(small)

    def test_type_mismatch(self):
        assert not ctx(x=(EPS, NUM)).is_subcontext_of(ctx(x=(EPS, UNIT)))


class TestSkeleton:
    def test_from_context(self):
        sk = ctx(x=(EPS, NUM), y=(ZERO, Tensor(NUM, NUM))).skeleton()
        assert sk["x"] == NUM
        assert set(sk) == {"x", "y"}

    def test_with_zero_grades(self):
        sk = Skeleton({"x": NUM})
        c = sk.with_zero_grades()
        assert c["x"].grade == ZERO

    def test_bind(self):
        sk = Skeleton().bind("x", NUM)
        assert "x" in sk
        assert sk.get("y") is None


class TestDiscreteContext:
    def test_bind_lookup(self):
        phi = DiscreteContext().bind("z", NUM)
        assert phi["z"] == NUM
        assert "w" not in phi

    def test_str(self):
        assert str(DiscreteContext()) == "∅"
        assert "z : num" in str(DiscreteContext().bind("z", NUM))

    def test_equality(self):
        assert DiscreteContext({"z": NUM}) == DiscreteContext({"z": NUM})
        assert DiscreteContext({"z": NUM}) != DiscreteContext({"z": UNIT})
