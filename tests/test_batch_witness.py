"""Batch witness engine: bitwise agreement with the scalar loop.

The contract of :class:`repro.semantics.batch.BatchWitnessEngine` is not
"approximately the same" — it is the *same computation*: identical float
forward values, identical Decimal perturbed inputs and distances,
identical soundness verdicts, row for row, as looping
:func:`repro.semantics.witness.run_witness`.  These tests enforce that
on 1000 random environments (the satellite acceptance bar), on the
paper's vector benchmarks, and on the scalar-fallback path.
"""

from __future__ import annotations

import numpy as np
import pytest

from strategies import batch_row, random_batch_inputs, random_definition
from repro.programs.generators import dot_prod, horner, vec_sum
from repro.semantics.batch import BatchWitnessEngine, run_witness_batch
from repro.semantics.witness import run_witness


def _assert_bitwise_equal(batch_report, reference, i):
    got = batch_report[i]
    assert got.sound == reference.sound
    assert got.exact_match == reference.exact_match
    assert repr(got.approx_value) == repr(reference.approx_value)
    assert repr(got.ideal_on_perturbed) == repr(reference.ideal_on_perturbed)
    assert set(got.params) == set(reference.params)
    for name, ref_witness in reference.params.items():
        witness = got.params[name]
        assert str(witness.distance) == str(ref_witness.distance)
        assert str(witness.bound) == str(ref_witness.bound)
        assert witness.grade == ref_witness.grade
        assert repr(witness.perturbed) == repr(ref_witness.perturbed)
        assert repr(witness.original) == repr(ref_witness.original)


class TestBitwiseAgreement:
    def test_1000_random_environments(self):
        """The headline property: 1000 envs, batch ≡ loop, bit for bit."""
        spec = random_definition(11, n_linear=4, n_steps=7, allow_case=False)
        engine = BatchWitnessEngine(spec.definition)
        assert engine.vectorized
        columns = random_batch_inputs(spec, seed=77, n_rows=1000)
        report = engine.run(columns)
        assert report.n_rows == 1000
        for i in range(1000):
            reference = run_witness(
                spec.definition, batch_row(columns, i), u=engine.u,
                lens=engine.lens,
            )
            _assert_bitwise_equal(report, reference, i)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_programs_small_batches(self, seed):
        spec = random_definition(seed, allow_case=False)
        engine = BatchWitnessEngine(spec.definition)
        columns = random_batch_inputs(spec, seed=seed + 500, n_rows=60)
        report = engine.run(columns)
        for i in range(60):
            reference = run_witness(
                spec.definition, batch_row(columns, i), u=engine.u,
                lens=engine.lens,
            )
            _assert_bitwise_equal(report, reference, i)

    @pytest.mark.parametrize(
        "definition",
        [vec_sum(50), dot_prod(16), horner(12)],
        ids=["Sum50", "DotProd16", "Horner12"],
    )
    def test_vector_benchmarks(self, definition):
        from repro.semantics.batch import _leaf_count

        rng = np.random.default_rng(3)
        n_rows = 50
        columns = {}
        for p in definition.params:
            k = _leaf_count(p.ty)
            columns[p.name] = (
                rng.uniform(0.5, 4.0, (n_rows, k))
                if k > 1
                else rng.uniform(0.5, 4.0, n_rows)
            )
        engine = BatchWitnessEngine(definition)
        assert engine.vectorized
        report = engine.run(columns)
        assert report.all_sound
        for i in range(0, n_rows, 7):
            row = {
                p.name: (
                    list(columns[p.name][i])
                    if columns[p.name].ndim == 2
                    else float(columns[p.name][i])
                )
                for p in definition.params
            }
            reference = run_witness(definition, row, u=engine.u, lens=engine.lens)
            _assert_bitwise_equal(report, reference, i)


class TestRndLowPrecisionRegression:
    """rnd on a raw parameter under reduced precision (PR 3 regression).

    The backward map for ``rnd`` hands the *rounded float array* through
    as the parameter's perturbed value; with ``precision_bits < 53``
    that array differs from the original, and the vectorized distance
    screen used to mix it (float64) with the Decimal originals and raise
    ``TypeError`` instead of converting exactly like the scalar path.
    """

    @pytest.mark.parametrize("precision_bits", [11, 24, 53])
    def test_rnd_param_distance_bitwise(self, precision_bits):
        from repro.core import parse_program

        program = parse_program(
            "RndId (x0 : num) : num := let r = rnd x0 in r"
        )
        engine = BatchWitnessEngine(
            program.main, program, precision_bits=precision_bits
        )
        columns = {"x0": np.array([3.45547648, -1.97200053, 0.125, 1e-30])}
        report = engine.run(columns)
        assert report.fallback_rows == 0
        for i in range(4):
            reference = run_witness(
                program.main,
                {"x0": float(columns["x0"][i])},
                program=program,
                u=engine.u,
                lens=engine.lens,
            )
            _assert_bitwise_equal(report, reference, i)


class TestFallbacks:
    def test_case_programs_vectorize_without_fallback(self):
        # Div + case used to drop the whole batch to the scalar loop;
        # the full-language engine runs them with branch masks — zero
        # fallback rows on benign inputs — and still agrees bitwise.
        found = 0
        for seed in range(200):
            spec = random_definition(seed, n_linear=6, n_steps=4)
            engine = BatchWitnessEngine(spec.definition)
            assert engine.vectorized
            if not engine.ir.has_cases:
                continue
            found += 1
            columns = random_batch_inputs(spec, seed=seed + 900, n_rows=12)
            report = engine.run(columns)
            assert report.fallback_rows == 0
            for i in range(12):
                reference = run_witness(
                    spec.definition, batch_row(columns, i), u=engine.u,
                    lens=engine.lens,
                )
                _assert_bitwise_equal(report, reference, i)
            if found >= 3:
                break
        assert found >= 3

    def test_zero_divisor_rows_fall_back_rowwise(self):
        # A zero divisor sends only the affected row down the scalar
        # path (where it takes the inr branch); the rest stay batched.
        found = False
        for seed in range(200):
            spec = random_definition(seed, n_linear=6, n_steps=4)
            engine = BatchWitnessEngine(spec.definition)
            if not engine.ir.has_cases:
                continue
            found = True
            break
        assert found
        columns = random_batch_inputs(spec, seed=31, n_rows=10)
        # The generated case always divides two pool variables; zeroing
        # every input in one row forces its divisor to zero.
        for name in columns:
            columns[name] = columns[name].copy()
            columns[name][6] = 0.0
        report = engine.run(columns)
        assert 1 <= report.fallback_rows < 10
        for i in range(10):
            try:
                reference = run_witness(
                    spec.definition, batch_row(columns, i), u=engine.u,
                    lens=engine.lens,
                )
            except Exception as exc:  # noqa: BLE001 - error parity below
                assert type(report.errors[i]) is type(exc)
                assert str(report.errors[i]) == str(exc)
                continue
            _assert_bitwise_equal(report, reference, i)

    def test_zero_rows_fall_back_rowwise(self):
        # An exact zero intermediate puts only the offending row on the
        # scalar path; the others stay vectorized.  Sum of (x0, -x0, x2)
        # hits s == 0 in the first add.
        spec = random_definition(0, n_linear=3, n_steps=3, allow_case=False)
        engine = BatchWitnessEngine(spec.definition)
        if not engine.vectorized:
            pytest.skip("generator did not produce a vectorizable program")
        columns = random_batch_inputs(spec, seed=5, n_rows=20)
        # Force a risky row: make every input zero in row 4.
        for name in columns:
            columns[name] = columns[name].copy()
            columns[name][4] = 0.0
        report = engine.run(columns)
        assert report.fallback_rows >= 1
        for i in (3, 4, 5):
            try:
                reference = run_witness(
                    spec.definition, batch_row(columns, i), u=engine.u,
                    lens=engine.lens,
                )
            except Exception as exc:  # noqa: BLE001 - error parity below
                with pytest.raises(type(exc)):
                    report[i]
                continue
            _assert_bitwise_equal(report, reference, i)

    def test_engine_adopts_lens_configuration(self):
        # Regression: a caller-provided lens defines the arithmetic —
        # its precision_bits must drive the vectorized sweep, and a
        # stochastic lens must configure the vectorized rounding replay.
        from repro.semantics.interp import lens_of_definition

        definition = vec_sum(8)
        lens24 = lens_of_definition(definition, precision_bits=24)
        engine = BatchWitnessEngine(definition, lens=lens24)
        assert engine.precision_bits == 24
        xs = np.linspace(0.5, 4.0, 8)
        report = engine.run({"x": np.tile(xs, (4, 1))})
        reference = run_witness(
            definition, {"x": list(xs)}, u=engine.u, lens=lens24
        )
        _assert_bitwise_equal(report, reference, 0)
        stochastic = lens_of_definition(definition, rounding="stochastic")
        st_engine = BatchWitnessEngine(definition, lens=stochastic)
        assert st_engine.vectorized
        assert st_engine.rounding == "stochastic"

    def test_stochastic_rounding_vectorizes_and_replays_the_stream(self):
        # Stochastic rounding decisions are keyed by operand bits, not
        # by a sequential RNG, so the batched sweep reproduces the
        # scalar stream per row — no whole-batch fallback anymore.
        definition = vec_sum(8)
        engine = BatchWitnessEngine(definition, rounding="stochastic", seed=9)
        assert engine.vectorized
        rng = np.random.default_rng(2)
        columns = {"x": rng.uniform(0.5, 4.0, (6, 8))}
        report = engine.run(columns)
        assert report.fallback_rows == 0
        for i in range(6):
            reference = run_witness(
                definition, {"x": list(columns["x"][i])}, u=engine.u,
                lens=engine.lens,
            )
            _assert_bitwise_equal(report, reference, i)


class TestRowErrors:
    def test_nonfinite_rows_match_scalar_loop_error_for_error(self):
        # Non-finite data drives the primitive backward maps into
        # Decimal signals (inf/inf, NaN comparisons).  The report must
        # record the *same* exception, type and message, on the same
        # rows the scalar loop raises on — and stay bitwise on the rest.
        spec = random_definition(5, n_linear=4, n_steps=6, allow_case=False)
        engine = BatchWitnessEngine(spec.definition)
        columns = random_batch_inputs(spec, seed=41, n_rows=12)
        poisons = {1: float("inf"), 4: float("nan"), 7: float("-inf")}
        for name in columns:
            columns[name] = columns[name].copy()
            for row, value in poisons.items():
                columns[name][row] = value
        report = engine.run(columns)
        assert report.fallback_rows >= len(poisons)
        raised = 0
        for i in range(12):
            try:
                reference = run_witness(
                    spec.definition, batch_row(columns, i), u=engine.u,
                    lens=engine.lens,
                )
            except Exception as exc:  # noqa: BLE001 - exact parity below
                raised += 1
                assert type(report.errors[i]) is type(exc)
                assert str(report.errors[i]) == str(exc)
                assert not report.sound[i]
                with pytest.raises(type(exc)):
                    report[i]
                continue
            assert i not in report.errors
            _assert_bitwise_equal(report, reference, i)
        assert raised >= 1  # the poison actually bit

    def test_exact_zero_forward_values_match_scalar_loop(self):
        # An exact-zero intermediate diverts the row to the scalar path;
        # whether that path certifies or raises, the report must mirror
        # it row for row (usually d = 0, identity perturbation).
        spec = random_definition(11, n_linear=4, n_steps=7, allow_case=False)
        engine = BatchWitnessEngine(spec.definition)
        columns = random_batch_inputs(spec, seed=13, n_rows=10)
        for name in columns:
            columns[name] = columns[name].copy()
            columns[name][3] = 0.0
        report = engine.run(columns)
        assert report.fallback_rows >= 1
        for i in range(10):
            try:
                reference = run_witness(
                    spec.definition, batch_row(columns, i), u=engine.u,
                    lens=engine.lens,
                )
            except Exception as exc:  # noqa: BLE001
                assert type(report.errors[i]) is type(exc)
                continue
            _assert_bitwise_equal(report, reference, i)

    def test_lens_domain_error_is_captured_row_for_row(self, monkeypatch):
        # Bean's type discipline makes LensDomainError unreachable for
        # well-typed programs on self-consistent targets, so force one:
        # make the addition backward map refuse zero sums, as it would
        # for a genuinely incomparable target.  The capture machinery
        # must record it on exactly the offending rows.
        import repro.semantics.interp as interp_mod
        from repro.semantics.lens import LensDomainError

        real_add_backward = interp_mod.add_backward

        def strict_add_backward(x1, x2, x3):
            if x1 + x2 == 0:
                raise LensDomainError("add backward: zero sum refused")
            return real_add_backward(x1, x2, x3)

        monkeypatch.setattr(interp_mod, "add_backward", strict_add_backward)
        definition = vec_sum(4)
        rng = np.random.default_rng(8)
        columns = {"x": rng.uniform(0.5, 4.0, (8, 4))}
        # Row 2 sums to zero at the first add: x0 + x1 == 0.
        columns["x"][2, 0], columns["x"][2, 1] = 1.5, -1.5
        engine = BatchWitnessEngine(definition)
        report = engine.run(columns)
        assert 2 in report.errors
        assert isinstance(report.errors[2], LensDomainError)
        assert "zero sum refused" in str(report.errors[2])
        assert not report.sound[2] and not report.all_sound
        with pytest.raises(LensDomainError):
            report[2]
        # Every other row is untouched by the patch and stays bitwise.
        for i in (0, 1, 3):
            reference = run_witness(
                definition, {"x": list(columns["x"][i])}, u=engine.u,
                lens=engine.lens,
            )
            _assert_bitwise_equal(report, reference, i)

    def test_nonfinite_row_is_captured_not_fatal(self):
        # Regression: one inf row must not abort the batch — the other
        # rows keep their reports and the bad row records its error.
        definition = vec_sum(5)
        rng = np.random.default_rng(1)
        columns = {"x": rng.uniform(0.5, 4.0, (6, 5))}
        columns["x"][2, 0] = float("inf")
        engine = BatchWitnessEngine(definition)
        report = engine.run(columns)
        assert not report.all_sound
        assert 2 in report.errors
        with pytest.raises(Exception):
            report[2]
        for i in (0, 1, 3, 4, 5):
            reference = run_witness(
                definition,
                {"x": list(columns["x"][i])},
                u=engine.u,
                lens=engine.lens,
            )
            _assert_bitwise_equal(report, reference, i)


class TestDecimalConversionMemo:
    def test_no_array_converted_twice(self, monkeypatch):
        # Regression for the latent slow-path waste: the ideal sweep
        # used to re-convert pass-through float arrays the backward
        # sweep (or a sibling op) had already pushed through _to_dec.
        # The phases now share one id-keyed memo, so within a run every
        # distinct float array is converted at most once.
        from repro.semantics import batch as batch_module

        real = batch_module._to_dec
        counts: dict = {}

        def counting(a):
            counts[id(a)] = counts.get(id(a), 0) + 1
            return real(a)

        monkeypatch.setattr(batch_module, "_to_dec", counting)
        spec = random_definition(11, n_linear=4, n_steps=7, allow_case=False)
        engine = BatchWitnessEngine(spec.definition, exact_backend="decimal")
        assert engine.vectorized
        columns = random_batch_inputs(spec, seed=77, n_rows=40)
        report = engine.run(columns)
        assert report.n_rows == 40
        # Distances/maxima force the phase-4 conversions too.
        assert set(report.param_max_distance) == {p.name for p in spec.definition.params}
        assert counts, "expected the decimal backend to convert arrays"
        assert max(counts.values()) == 1, (
            "an array crossed _to_dec more than once: the cross-phase "
            "memo regressed"
        )


class TestAggregates:
    def test_report_aggregates(self):
        definition = vec_sum(10)
        rng = np.random.default_rng(0)
        columns = {"x": rng.uniform(0.5, 4.0, (30, 10))}
        report = run_witness_batch(definition, columns)
        assert report.all_sound
        assert report.sound_count == 30
        assert len(report) == 30
        assert report.param_max_distance["x"] <= report.param_bound["x"]
        text = report.describe()
        assert "Sum10" in text and "30/30" in text

    def test_input_validation(self):
        definition = vec_sum(10)
        engine = BatchWitnessEngine(definition)
        with pytest.raises(KeyError):
            engine.run({})
        with pytest.raises(ValueError, match="shape"):
            engine.run({"x": np.zeros((5, 3))})
        # An explicitly 2-D empty with the wrong width is still a shape
        # bug, not a vacuously sound batch.
        with pytest.raises(ValueError, match="shape"):
            engine.run({"x": np.zeros((0, 3))})

    @pytest.mark.parametrize(
        "empty", [[], np.zeros((0, 10)), np.zeros(0)],
        ids=["list", "2d", "1d"],
    )
    def test_empty_environment_list_returns_empty_report(self, empty):
        # Regression: an empty batch used to trip NumPy's zero-size
        # array ops (an empty list has no row shape to infer).  It must
        # produce an empty — vacuously sound — report instead.
        report = run_witness_batch(vec_sum(10), {"x": empty})
        assert report.n_rows == 0
        assert len(report) == 0
        assert report.all_sound  # vacuously: no rows, no errors
        assert report.sound_count == 0
        assert report.fallback_rows == 0
        assert list(report) == []
        assert report.param_max_distance["x"] == 0
        assert "0/0" in report.describe()
        with pytest.raises(IndexError):
            report[0]

    def test_empty_batch_on_scalar_path_program(self):
        # The empty short-circuit must also cover non-vectorized
        # engines (here: a definition whose call cannot be inlined
        # because the engine was built without its program).
        from repro.core import Definition, NUM, Param, Program
        from repro.core import builders as B
        from repro.semantics.interp import lens_of_program

        double = Definition("Double", [Param("a", NUM)], B.rnd("a"))
        caller = Definition("F", [Param("x", NUM)], B.call("Double", B.var("x")))
        program = Program([double, caller])
        lens = lens_of_program(program, "F")
        engine = BatchWitnessEngine(caller, lens=lens)  # no program: no inline
        assert not engine.vectorized
        report = engine.run({"x": []})
        assert report.n_rows == 0 and report.all_sound
