"""Property-based verification of the backward error lens laws.

Every primitive lens (Appendix C) and every categorical construction
(Appendix A/B) must satisfy, wherever ``d(f̃(x), y) < ∞``:

* Property 1:  d_X(x, b(x,y)) − r_X  ≤  d_Y(f̃(x), y) − r_Y
* Property 2:  f(b(x, y)) = y

We check these pointwise on randomized inputs, with targets drawn as the
lens's own approximate output (the composition-relevant case) and as
independently perturbed values (the general case).
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lam_s.values import UNIT_VALUE, VInl, VInr, VNum, VPair
from repro.semantics.lens import (
    LensDomainError,
    check_property_1,
    check_property_2,
    compose,
    copair,
    grade_lens,
    identity_lens,
    inj1,
    inj2,
    proj1,
    proj2,
    tensor,
)
from repro.semantics.primitives import (
    lens_add,
    lens_div,
    lens_dmul,
    lens_mul,
    lens_sub,
)
from repro.semantics.spaces import NumSpace, UnitSpace

finite = st.floats(min_value=-1e8, max_value=1e8, allow_nan=False).filter(
    lambda x: x == 0.0 or abs(x) > 1e-8
)
scale = st.floats(min_value=-1e-13, max_value=1e-13)

PRIMITIVES = {
    "add": lens_add(),
    "sub": lens_sub(),
    "mul": lens_mul(),
    "div": lens_div(),
    "dmul": lens_dmul(),
}


def assert_laws(lens, x, y):
    msg = check_property_1(lens, x, y)
    assert msg is None, msg
    msg = check_property_2(lens, x, y)
    assert msg is None, msg


class TestPrimitiveLenses:
    @pytest.mark.parametrize("name", list(PRIMITIVES))
    @given(finite, finite)
    def test_laws_at_own_output(self, name, a, b):
        """Target = the lens's own approximate output (Theorem 3.1's use)."""
        lens = PRIMITIVES[name]
        x = VPair(VNum(a), VNum(b))
        y = lens.approx(x)
        assert_laws(lens, x, y)

    @pytest.mark.parametrize("name", list(PRIMITIVES))
    @given(finite, finite, scale)
    def test_laws_at_perturbed_target(self, name, a, b, delta):
        """Target = e^δ-perturbed approximate output (general domain)."""
        lens = PRIMITIVES[name]
        x = VPair(VNum(a), VNum(b))
        y = lens.approx(x)
        if isinstance(y, VNum):
            y = VNum(y.as_float() * math.exp(delta))
        elif isinstance(y, VInl):
            y = VInl(VNum(y.body.as_float() * math.exp(delta)))
        assert_laws(lens, x, y)

    def test_add_zero_case(self):
        lens = lens_add()
        x = VPair(VNum(1.0), VNum(-1.0))
        assert_laws(lens, x, VNum(0.0))

    def test_div_by_zero_case(self):
        lens = lens_div()
        x = VPair(VNum(3.0), VNum(0.0))
        y = lens.approx(x)
        assert y == VInr(UNIT_VALUE)
        assert_laws(lens, x, y)

    def test_dmul_leaves_first_operand(self):
        lens = lens_dmul()
        x = VPair(VNum(3.0), VNum(5.0))
        back = lens.backward(x, VNum(15.0000000001))
        assert back.left.as_float() == 3.0

    def test_mul_negative_signs_preserved(self):
        lens = lens_mul()
        x = VPair(VNum(-2.0), VNum(3.0))
        y = lens.approx(x)
        back = lens.backward(x, y)
        assert back.left.as_float() < 0
        assert back.right.as_float() > 0

    def test_div_negative_signs_preserved(self):
        lens = lens_div()
        x = VPair(VNum(-6.0), VNum(3.0))
        y = lens.approx(x)
        back = lens.backward(x, y)
        assert back.left.as_float() < 0
        assert_laws(lens, x, y)

    def test_backward_domain_error_on_sign_flip(self):
        lens = lens_add()
        x = VPair(VNum(1.0), VNum(2.0))
        with pytest.raises(LensDomainError):
            lens.backward(x, VNum(-3.0))


class TestCategoryStructure:
    @given(finite)
    def test_identity_laws(self, a):
        lens = identity_lens(NumSpace())
        assert_laws(lens, VNum(a), VNum(a))

    @given(finite, finite, finite)
    def test_composition_preserves_laws(self, a, b, c):
        """(mul ∘ (D_{ε/2}(add) ⊗ id)) — the composite the Mul typing
        rule denotes (the inner add is lifted by the operand grade, just
        as Figure 3 charges ε/2 + r to mul operands)."""
        add = lens_add()
        mul = lens_mul()
        half = mul.source.right.r
        lifted = grade_lens(add, half)
        idn = identity_lens(mul.source.right)
        lens = compose(mul, tensor(lifted, idn))
        x = VPair(VPair(VNum(a), VNum(b)), VNum(c))
        y = lens.approx(x)
        assert_laws(lens, x, y)

    def test_composition_rejects_slack_mismatch(self):
        """Feeding a zero-slack output into a graded input without the
        D_r lift is categorically ill-typed; compose refuses it."""
        with pytest.raises(ValueError, match="slack"):
            compose(lens_mul(), tensor(lens_add(), identity_lens(lens_mul().source.right)))

    @given(finite, finite, finite, finite)
    def test_tensor_preserves_laws(self, a, b, c, d):
        lens = tensor(lens_add(), lens_mul())
        x = VPair(VPair(VNum(a), VNum(b)), VPair(VNum(c), VNum(d)))
        y = lens.approx(x)
        assert_laws(lens, x, y)

    @given(finite, finite)
    def test_projections(self, a, b):
        p1 = proj1(NumSpace(), NumSpace())
        p2 = proj2(NumSpace(), NumSpace())
        x = VPair(VNum(a), VNum(b))
        assert_laws(p1, x, VNum(a))
        assert_laws(p2, x, VNum(b))
        assert p1.forward(x) == VNum(a)

    def test_projection_requires_equal_slack(self):
        from repro.semantics.spaces import GradedSpace

        with pytest.raises(ValueError):
            proj1(GradedSpace(NumSpace(), 1), NumSpace())

    @given(finite)
    def test_injections(self, a):
        i1 = inj1(NumSpace(), UnitSpace())
        x = VNum(a)
        assert_laws(i1, x, VInl(x))
        i2 = inj2(UnitSpace(), NumSpace())
        assert_laws(i2, x, VInr(x))

    @given(finite, finite)
    def test_copair(self, a, b):
        # [add, id] : (R ⊗ R) + R → R-ish; use matching targets.
        add = lens_add()
        idn = identity_lens(NumSpace())
        lens = copair(add, idn)
        left = VInl(VPair(VNum(a), VNum(b)))
        assert_laws(lens, left, lens.approx(left))
        right = VInr(VNum(a))
        assert_laws(lens, right, lens.approx(right))

    @given(finite, finite)
    def test_graded_functor_preserves_laws(self, a, b):
        lens = grade_lens(lens_add(), 1e-10)
        x = VPair(VNum(a), VNum(b))
        assert_laws(lens, x, lens.approx(x))

    @given(finite, finite)
    def test_composition_backward_threads_approximant(self, a, b):
        """b(x, z) = b₁(x, b₂(f̃₁(x), z)) — Equation 18, directly."""
        add = lens_add()
        idn = identity_lens(add.target)
        lens = compose(idn, add)
        x = VPair(VNum(a), VNum(b))
        y = lens.approx(x)
        expected = add.backward(x, idn.backward(add.approx(x), y))
        assert lens.backward(x, y) == expected
