"""Tests for stochastic rounding (the probabilistic backward error
setting of Connolly et al. 2021, which the paper lists as future work)."""

import random
from decimal import Decimal, localcontext

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import parse_expression
from repro.lam_s import VNum, evaluate, vector_value
from repro.lam_s.eval import stochastic_round
from repro.programs.generators import dot_prod, vec_sum
from repro.semantics.interp import lens_of_definition
from repro.semantics.witness import run_witness


class TestStochasticRound:
    def test_representable_value_unchanged(self):
        rng = random.Random(0)
        assert stochastic_round(Decimal("1.5"), rng) == 1.5

    def test_rounds_to_neighbour(self):
        import math

        with localcontext() as ctx:
            ctx.prec = 50
            exact = Decimal(0.1) + Decimal(0.2)
        nearest = float(exact)
        neighbours = {
            nearest,
            math.nextafter(nearest, math.inf),
            math.nextafter(nearest, -math.inf),
        }
        rng = random.Random(7)
        for _ in range(50):
            assert stochastic_round(exact, rng) in neighbours

    def test_unbiased_in_expectation(self):
        # A value exactly halfway between two floats rounds each way
        # about half the time.
        import math

        lo = 1.0
        hi = math.nextafter(1.0, 2.0)
        mid = (Decimal(lo) + Decimal(hi)) / 2
        rng = random.Random(123)
        ups = sum(stochastic_round(mid, rng) == hi for _ in range(2000))
        assert 800 < ups < 1200

    def test_error_within_two_u(self):
        rng = random.Random(5)
        for _ in range(200):
            x = Decimal(rng.uniform(0.5, 2.0)) + Decimal(rng.random()) / 10**20
            rounded = stochastic_round(x, rng)
            rel = abs(Decimal(rounded) - x) / x
            assert rel <= 2 * Decimal(2) ** -53


class TestEvaluatorIntegration:
    def test_deterministic_per_seed(self):
        expr = parse_expression("add x y")
        env = {"x": VNum(0.1), "y": VNum(0.2)}
        a = evaluate(expr, env, rounding="stochastic", seed=4)
        b = evaluate(expr, env, rounding="stochastic", seed=4)
        assert a == b

    def test_seed_changes_results_somewhere(self):
        definition = vec_sum(24)
        env = {"x": vector_value([0.1] * 24)}
        results = {
            evaluate(definition.body, env, rounding="stochastic", seed=s).as_float()
            for s in range(8)
        }
        assert len(results) > 1  # some seed disagrees

    def test_compositional_purity(self):
        """Evaluating a subterm standalone sees the same roundings as the
        full run — the property the lens backward map depends on."""
        full = parse_expression("let v = add x y in mul v z")
        sub = parse_expression("add x y")
        env = {"x": VNum(0.1), "y": VNum(0.2), "z": VNum(3.0)}
        v_standalone = evaluate(sub, env, rounding="stochastic", seed=9)
        v_in_full = evaluate(
            parse_expression("let v = add x y in v"),
            env,
            rounding="stochastic",
            seed=9,
        )
        assert v_standalone == v_in_full
        # And the full program is consistent with composing by hand.
        full_result = evaluate(full, env, rounding="stochastic", seed=9)
        manual = evaluate(
            parse_expression("mul v z"),
            {"v": v_standalone, "z": VNum(3.0)},
            rounding="stochastic",
            seed=9,
        )
        assert full_result == manual

    def test_unknown_rounding_mode(self):
        with pytest.raises(ValueError):
            evaluate(parse_expression("x"), {"x": VNum(1.0)}, rounding="up")

    def test_ideal_mode_ignores_rounding_flag(self):
        expr = parse_expression("add x y")
        env = {"x": VNum(0.1), "y": VNum(0.2)}
        a = evaluate(expr, env, mode="ideal")
        b = evaluate(expr, env, mode="ideal", rounding="stochastic", seed=3)
        assert a == b


class TestSoundnessUnderStochasticRounding:
    """Bean's bounds hold for stochastic rounding at effective roundoff
    2u: |δ| ≤ 2u ⇒ the e^δ model with ε' = 2u/(1−2u) covers it."""

    EFFECTIVE_U = 2.0**-52  # 2 · 2⁻⁵³

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_sum_witnesses(self, seed):
        definition = vec_sum(8)
        lens = lens_of_definition(definition, rounding="stochastic", seed=seed)
        rng = random.Random(seed)
        xs = [rng.uniform(0.1, 100.0) for _ in range(8)]
        report = run_witness(
            definition, {"x": xs}, lens=lens, u=self.EFFECTIVE_U
        )
        assert report.sound, report.describe()

    @settings(max_examples=15)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_dot_prod_witnesses(self, seed):
        definition = dot_prod(6)
        lens = lens_of_definition(definition, rounding="stochastic", seed=seed)
        rng = random.Random(seed + 1)
        report = run_witness(
            definition,
            {
                "x": [rng.uniform(-10, 10) for _ in range(6)],
                "y": [rng.uniform(-10, 10) for _ in range(6)],
            },
            lens=lens,
            u=self.EFFECTIVE_U,
        )
        assert report.sound, report.describe()
