"""Tests for the grade monoid (Section 3.2)."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.grades import (
    EPS,
    HALF_EPS,
    ZERO,
    Grade,
    eps_from_roundoff,
    unit_roundoff,
)

nonneg_fractions = st.fractions(min_value=0, max_value=1000)


class TestConstruction:
    def test_zero(self):
        assert ZERO.coeff == 0
        assert ZERO.is_zero

    def test_eps(self):
        assert EPS.coeff == 1

    def test_half_eps(self):
        assert HALF_EPS.coeff == Fraction(1, 2)

    def test_from_int(self):
        assert Grade(3).coeff == 3

    def test_from_fraction(self):
        assert Grade(Fraction(7, 2)).coeff == Fraction(7, 2)

    def test_from_grade(self):
        assert Grade(EPS) == EPS

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Grade(-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            EPS.coeff = Fraction(2)  # type: ignore[misc]


class TestMonoid:
    def test_add(self):
        assert (EPS + HALF_EPS).coeff == Fraction(3, 2)

    def test_add_int(self):
        assert (EPS + 2).coeff == 3

    def test_radd(self):
        assert (2 + EPS).coeff == 3

    def test_identity(self):
        assert EPS + ZERO == EPS

    def test_scalar_multiplication(self):
        assert (EPS * 4).coeff == 4
        assert (4 * HALF_EPS).coeff == 2

    @given(nonneg_fractions, nonneg_fractions, nonneg_fractions)
    def test_associativity(self, a, b, c):
        assert (Grade(a) + Grade(b)) + Grade(c) == Grade(a) + (Grade(b) + Grade(c))

    @given(nonneg_fractions, nonneg_fractions)
    def test_commutativity(self, a, b):
        assert Grade(a) + Grade(b) == Grade(b) + Grade(a)


class TestOrder:
    def test_le(self):
        assert HALF_EPS <= EPS
        assert not EPS <= HALF_EPS

    def test_lt_gt(self):
        assert ZERO < HALF_EPS < EPS
        assert EPS > HALF_EPS > ZERO

    @given(nonneg_fractions, nonneg_fractions, nonneg_fractions)
    def test_order_respects_addition(self, a, b, c):
        # The preorder is monotone for the monoid operation.
        if Grade(a) <= Grade(b):
            assert Grade(a) + Grade(c) <= Grade(b) + Grade(c)


class TestRendering:
    @pytest.mark.parametrize(
        "coeff,text",
        [
            (0, "0"),
            (1, "ε"),
            (2, "2ε"),
            (Fraction(1, 2), "ε/2"),
            (Fraction(3, 2), "3ε/2"),
            (Fraction(5, 4), "5ε/4"),
        ],
    )
    def test_str(self, coeff, text):
        assert str(Grade(coeff)) == text


class TestEvaluation:
    def test_unit_roundoff_default(self):
        assert unit_roundoff() == 2.0**-53

    def test_unit_roundoff_single(self):
        assert unit_roundoff(24) == 2.0**-24

    def test_unit_roundoff_invalid(self):
        with pytest.raises(ValueError):
            unit_roundoff(0)

    def test_eps_from_roundoff(self):
        u = 2.0**-53
        assert eps_from_roundoff(u) == u / (1 - u)

    def test_eps_from_roundoff_invalid(self):
        with pytest.raises(ValueError):
            eps_from_roundoff(1.5)
        with pytest.raises(ValueError):
            eps_from_roundoff(0.0)

    def test_evaluate_binary64(self):
        # 20ε at u = 2^-53 is the paper's DotProd-20 bound, 2.22e-15.
        value = Grade(20).evaluate()
        assert abs(value - 2.22e-15) < 0.005e-15

    def test_evaluate_other_precision(self):
        u = 2.0**-24
        assert Grade(2).evaluate(u) == pytest.approx(2 * u / (1 - u))

    def test_zero_evaluates_to_zero(self):
        assert ZERO.evaluate() == 0.0
