"""Tests for the Table 1 benchmark program generators."""

import math

import pytest

from repro.core import check_definition, check_program, count_flops
from repro.core.ast_nodes import Program
from repro.programs.generators import (
    BENCHMARK_FAMILIES,
    TABLE1_SIZES,
    dot_prod,
    expected_flops,
    horner,
    mat_vec_mul,
    poly_val,
    vec_sum,
)

SMALL_SIZES = {
    "DotProd": [1, 2, 3, 7, 20],
    "Horner": [1, 2, 5, 11],
    "PolyVal": [1, 2, 5, 9],
    "MatVecMul": [2, 3, 5],
    "Sum": [2, 3, 8, 50],
    "SafeDiv": [2, 3, 5, 9],
}

CLOSED_FORM_GRADE = {
    "DotProd": lambda n: n,
    "Horner": lambda n: 2 * n,
    "PolyVal": lambda n: n + 1,
    "MatVecMul": lambda n: n,
    "Sum": lambda n: n - 1,
    # n-1 adds on each quotient plus div's ε/2 on both operands.
    "SafeDiv": lambda n: (2 * n - 1) / 2,
}

CASES = [(f, n) for f, sizes in SMALL_SIZES.items() for n in sizes]


@pytest.mark.parametrize("family,n", CASES, ids=[f"{f}-{n}" for f, n in CASES])
def test_flops_match_paper_formula(family, n):
    definition = BENCHMARK_FAMILIES[family](n)
    assert count_flops(definition.body) == expected_flops(family, n)


@pytest.mark.parametrize("family,n", CASES, ids=[f"{f}-{n}" for f, n in CASES])
def test_inferred_grade_closed_form(family, n):
    definition = BENCHMARK_FAMILIES[family](n)
    judgment = check_definition(definition)
    assert judgment.max_linear_grade().coeff == CLOSED_FORM_GRADE[family](n)


class TestTable1Catalog:
    def test_all_families_listed(self):
        # Every Table 1 family has a generator; SafeDiv (the div+case
        # batch-engine stress kernel) is a generator-only family.
        assert set(TABLE1_SIZES) <= set(BENCHMARK_FAMILIES)
        assert set(BENCHMARK_FAMILIES) - set(TABLE1_SIZES) == {"SafeDiv"}

    def test_sizes_match_paper(self):
        assert TABLE1_SIZES["DotProd"] == [20, 50, 100, 500]
        assert TABLE1_SIZES["Sum"] == [50, 100, 500, 1000]

    def test_expected_flops_unknown_family(self):
        with pytest.raises(ValueError):
            expected_flops("Nope", 3)


class TestOrders:
    @pytest.mark.parametrize("n", [4, 8, 16, 33])
    def test_balanced_sum_logarithmic(self, n):
        judgment = check_definition(vec_sum(n, order="balanced"))
        assert judgment.max_linear_grade().coeff == math.ceil(math.log2(n))

    def test_balanced_same_flop_count(self):
        assert count_flops(vec_sum(33, order="balanced").body) == 32

    def test_balanced_dotprod(self):
        judgment = check_definition(dot_prod(8, order="balanced"))
        # 1 dmul + log2(8) adds on the critical path.
        assert judgment.max_linear_grade().coeff == 1 + 3

    def test_unknown_order(self):
        with pytest.raises(ValueError):
            vec_sum(8, order="mystery")


class TestAllocations:
    def test_dotprod_both_splits_error(self):
        judgment = check_definition(dot_prod(4, alloc="both"))
        from fractions import Fraction

        expected = Fraction(1, 2) + 3  # ε/2 per mul + 3 adds
        assert judgment.grade_of("x").coeff == expected
        assert judgment.grade_of("y").coeff == expected

    def test_dotprod_single_discrete_y(self):
        from repro.core.types import is_discrete

        definition = dot_prod(4)
        assert is_discrete(definition.params[1].ty)

    def test_unknown_alloc(self):
        with pytest.raises(ValueError):
            dot_prod(4, alloc="nope")


class TestValidation:
    def test_dot_prod_needs_positive_n(self):
        with pytest.raises(ValueError):
            dot_prod(0)

    def test_sum_needs_two(self):
        with pytest.raises(ValueError):
            vec_sum(1)

    def test_matvec_needs_two(self):
        with pytest.raises(ValueError):
            mat_vec_mul(1)

    def test_horner_positive_degree(self):
        with pytest.raises(ValueError):
            horner(0)

    def test_polyval_positive_degree(self):
        with pytest.raises(ValueError):
            poly_val(0)


class TestEdgeSizes:
    def test_dotprod_1(self):
        judgment = check_definition(dot_prod(1))
        assert judgment.max_linear_grade().coeff == 1  # one dmul, no adds

    def test_generated_definitions_are_self_contained(self):
        # Generated definitions type-check inside a fresh program too.
        program = Program([dot_prod(3), vec_sum(4)])
        judgments = check_program(program)
        assert len(judgments) == 2

    def test_matvec_per_element_grades_uniform(self):
        judgment = check_definition(mat_vec_mul(3))
        assert judgment.grade_of("M").coeff == 3
