"""Tests for Λ_S: erasure, simple typing (Fig. 5), inlining, hygiene."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import NUM, UNIT, Discrete, Sum, Tensor, parse_expression, parse_program
from repro.core import ast_nodes as A
from repro.core.checker import check_program
from repro.lam_s import (
    Const,
    check_erased_definition,
    erase_definition,
    erase_expr,
    erase_type,
    evaluate,
    inline_calls,
    type_of,
    values_close,
    VNum,
)
from strategies import random_definition, random_inputs


class TestTypeErasure:
    def test_strips_modalities(self):
        assert erase_type(Discrete(NUM)) == NUM
        assert erase_type(Discrete(Tensor(NUM, NUM))) == Tensor(NUM, NUM)

    def test_recursive(self):
        ty = Sum(Tensor(Discrete(NUM), NUM), UNIT)
        assert erase_type(ty) == Sum(Tensor(NUM, NUM), UNIT)

    def test_idempotent(self):
        ty = Tensor(Discrete(NUM), Discrete(UNIT))
        assert erase_type(erase_type(ty)) == erase_type(ty)


class TestTermErasure:
    def test_bang_disappears(self):
        assert erase_expr(parse_expression("!x")) == A.Var("x")

    def test_dmul_becomes_mul(self):
        erased = erase_expr(parse_expression("dmul z x"))
        assert erased == A.PrimOp(A.Op.MUL, A.Var("z"), A.Var("x"))

    def test_dlet_becomes_let(self):
        erased = erase_expr(parse_expression("dlet z = !x in z"))
        assert erased == A.Let("z", A.Var("x"), A.Var("z"))

    def test_dletpair_becomes_letpair(self):
        erased = erase_expr(parse_expression("dlet (a, b) = p in a"))
        assert isinstance(erased, A.LetPair)

    def test_case_preserved(self):
        erased = erase_expr(
            parse_expression("case s of inl (a) => a | inr (b) => b")
        )
        assert isinstance(erased, A.Case)

    def test_injection_annotations_erased(self):
        erased = erase_expr(A.Inl(A.Var("x"), Discrete(NUM)))
        assert erased.other == NUM


class TestLemmaD1:
    """Erasure preserves typing (Lemma D.1), checked per program."""

    def test_paper_examples(self, example_program):
        check_program(example_program)  # Bean-typeable
        signatures = {}
        for definition in example_program:
            erased = erase_definition(definition)
            signatures[definition.name] = check_erased_definition(
                erased, signatures
            )

    @given(st.integers(min_value=0, max_value=5000))
    def test_random_programs(self, seed):
        spec = random_definition(seed)
        erased = erase_definition(spec.definition)
        check_erased_definition(erased)  # must not raise


class TestSimpleTyping:
    def test_const(self):
        assert type_of(Const(3.5)) == NUM

    def test_dmul_rejected_in_lam_s(self):
        from repro.core import BeanTypeError

        with pytest.raises(BeanTypeError, match="dmul"):
            type_of(parse_expression("dmul x y"), {"x": NUM, "y": NUM})

    def test_unbound(self):
        from repro.core import UnboundVariableError

        with pytest.raises(UnboundVariableError):
            type_of(A.Var("ghost"))

    def test_div_type(self):
        ty = type_of(parse_expression("div x y"), {"x": NUM, "y": NUM})
        assert ty == Sum(NUM, UNIT)

    def test_branch_mismatch(self):
        from repro.core import BeanTypeError

        expr = parse_expression("case s of inl (a) => a | inr (b) => ()")
        with pytest.raises(BeanTypeError):
            type_of(expr, {"s": Sum(NUM, NUM)})


class TestInlining:
    SRC = """
    Square (z : !R) (x : num) := dmul z x
    Main (z : !R) (x : num) (y : num) := add (Square z x) y
    """

    def test_inlining_removes_calls(self):
        program = parse_program(self.SRC)
        inlined = inline_calls(program["Main"].body, program)
        assert not any(
            isinstance(e, A.Call) for e in A.subexpressions(inlined)
        )

    def test_inlining_preserves_semantics(self):
        program = parse_program(self.SRC)
        env = {"z": VNum(3.0), "x": VNum(4.0), "y": VNum(5.0)}
        direct = evaluate(program["Main"].body, env, mode="approx", program=program)
        inlined = evaluate(
            inline_calls(program["Main"].body, program), env, mode="approx"
        )
        assert values_close(direct, inlined)

    def test_hygiene_no_capture(self):
        # The callee binds 'tmp'; the caller passes a variable of the
        # same name — inlined bodies must rename their binders.
        program = parse_program(
            """
            Inner (a : num) (b : num) := let tmp = add a b in tmp
            Outer (tmp : num) (x : num) := Inner tmp x
            """
        )
        inlined = inline_calls(program["Outer"].body, program)
        env = {"tmp": VNum(1.5), "x": VNum(2.5)}
        result = evaluate(inlined, env, mode="approx")
        assert result.as_float() == 4.0

    def test_unknown_call_rejected(self):
        with pytest.raises(ValueError):
            inline_calls(A.Call("Ghost", [A.Var("x")]), None)

    @given(st.integers(min_value=0, max_value=2000))
    def test_erasure_and_eval_consistency(self, seed):
        """Direct eval with Bean constructs == eval of the erasure."""
        spec = random_definition(seed)
        inputs = random_inputs(spec, seed + 1)
        env = {k: VNum(v) for k, v in inputs.items()}
        direct = evaluate(spec.definition.body, env, mode="approx")
        erased = evaluate(erase_expr(spec.definition.body), env, mode="approx")
        assert values_close(direct, erased)
