"""Pretty-printer round-trip tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import parse_expression, parse_program, pretty_program
from repro.core.pretty import pretty_definition, pretty_expr, pretty_type
from repro.core.types import NUM, UNIT, Discrete, Sum, Tensor
from repro.programs.examples import EXAMPLES_SOURCE
from repro.programs.generators import dot_prod, vec_sum
from strategies import random_definition


class TestTypeRendering:
    @pytest.mark.parametrize(
        "ty,text",
        [
            (NUM, "num"),
            (UNIT, "unit"),
            (Discrete(NUM), "!num"),
            (Tensor(NUM, NUM), "(num * num)"),
            (Sum(NUM, UNIT), "(num + unit)"),
            (Discrete(Tensor(NUM, NUM)), "!(num * num)"),
        ],
    )
    def test_render(self, ty, text):
        assert pretty_type(ty) == text

    @pytest.mark.parametrize(
        "ty",
        [NUM, UNIT, Discrete(NUM), Tensor(NUM, Sum(NUM, UNIT)), Discrete(Tensor(NUM, NUM))],
    )
    def test_roundtrip(self, ty):
        from repro.core import parse_type

        assert parse_type(pretty_type(ty)) == ty


class TestExpressionRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "x",
            "()",
            "(x, y)",
            "!x",
            "add x y",
            "dmul z (mul x y)",
            "let v = add x y in v",
            "dlet z = !x in dmul z y",
            "let (a, b) = p in add a b",
            "case s of inl (a) => a | inr (b) => b",
            "inl x",
            "inr{num} ()",
            "Foo x (y, z)",
        ],
    )
    def test_parse_pretty_parse(self, source):
        expr = parse_expression(source)
        assert parse_expression(pretty_expr(expr)) == expr


class TestProgramRoundTrip:
    def test_paper_examples_roundtrip(self):
        program = parse_program(EXAMPLES_SOURCE)
        reparsed = parse_program(pretty_program(program))
        assert len(reparsed.definitions) == len(program.definitions)
        for a, b in zip(program, reparsed):
            assert a.name == b.name
            assert a.params == b.params

    def test_generated_programs_roundtrip_semantically(self):
        from repro.core import check_definition

        for definition in (dot_prod(5), vec_sum(6)):
            printed = pretty_definition(definition)
            reparsed = parse_program(printed)[definition.name]
            j1 = check_definition(definition)
            j2 = check_definition(reparsed)
            assert j1.result == j2.result
            for p in definition.params:
                from repro.core.types import is_discrete

                if not is_discrete(p.ty):
                    assert j1.grade_of(p.name) == j2.grade_of(p.name)

    @given(st.integers(min_value=0, max_value=5000))
    def test_random_asts_roundtrip(self, seed):
        definition = random_definition(seed).definition
        printed = pretty_definition(definition)
        reparsed = parse_program(printed)[definition.name]
        assert reparsed.body == definition.body
        assert reparsed.params == definition.params

    def test_deep_program_prints_without_overflow(self):
        text = pretty_definition(vec_sum(800))
        assert text.count("let") >= 800
