"""Tests for stability contracts (``@`` grade annotations on parameters)."""

import pytest

from repro.core import (
    BeanTypeError,
    check_program,
    parse_program,
    pretty_program,
)
from repro.core.grades import Grade
from fractions import Fraction

OK = """
DotProd2 (x : vec(2) @ 3/2) (y : vec(2) @ 2) : num :=
  let (x0, x1) = x in
  let (y0, y1) = y in
  let v = mul x0 y0 in
  let w = mul x1 y1 in
  add v w
"""


class TestParsing:
    def test_integer_annotation(self):
        program = parse_program("F (x : num @ 2) := add x y2\nG (x : num @ 2) (w : num) := add x w")
        assert program["G"].params[0].declared_grade == Grade(2)

    def test_fraction_annotation(self):
        program = parse_program(OK)
        assert program["DotProd2"].params[0].declared_grade == Grade(Fraction(3, 2))

    def test_no_annotation_is_none(self):
        program = parse_program("F (x : num) := x")
        assert program["F"].params[0].declared_grade is None

    def test_zero_denominator_rejected(self):
        from repro.core import BeanSyntaxError

        with pytest.raises(BeanSyntaxError):
            parse_program("F (x : num @ 1/0) := x")


class TestChecking:
    def test_satisfied_contract(self):
        judgments = check_program(parse_program(OK))
        assert judgments["DotProd2"].grade_of("x").coeff == Fraction(3, 2)

    def test_exact_boundary_accepted(self):
        src = OK.replace("@ 2", "@ 3/2")  # y's true grade is exactly 3ε/2
        check_program(parse_program(src))

    def test_violated_contract(self):
        src = OK.replace("@ 3/2", "@ 1")
        with pytest.raises(BeanTypeError, match="stability contract violated"):
            check_program(parse_program(src))

    def test_violation_message_names_grades(self):
        src = OK.replace("@ 3/2", "@ 1")
        with pytest.raises(BeanTypeError, match="3ε/2"):
            check_program(parse_program(src))

    def test_contract_on_discrete_param_rejected(self):
        src = "F (z : !R @ 1) (x : num) := dmul z x"
        with pytest.raises(BeanTypeError, match="discrete"):
            check_program(parse_program(src))

    def test_unused_param_trivially_satisfies(self):
        src = "F (x : num @ 0) (y : num) := y"
        check_program(parse_program(src))

    def test_zero_contract_on_used_param(self):
        src = "F (x : num @ 0) (y : num) := add x y"
        with pytest.raises(BeanTypeError, match="contract"):
            check_program(parse_program(src))


class TestPrinting:
    def test_roundtrip(self):
        program = parse_program(OK)
        printed = pretty_program(program)
        assert "@ 3/2" in printed
        reparsed = parse_program(printed)
        assert reparsed["DotProd2"].params == program["DotProd2"].params

    def test_integer_contract_prints_without_denominator(self):
        program = parse_program("F (x : num @ 2) (y : num) := add x y")
        assert "@ 2)" in pretty_program(program)
