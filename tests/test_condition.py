"""Tests for condition numbers and forward-from-backward conversion."""

import math

import pytest

from repro.analysis.condition import (
    condition_number_dot_product,
    condition_number_polynomial,
    condition_number_sum,
    forward_bound_from_backward,
)
from repro.core.grades import Grade


class TestSum:
    def test_positive_data_is_one(self):
        assert condition_number_sum([1.0, 2.0, 3.0]) == 1.0

    def test_cancellation_blows_up(self):
        assert condition_number_sum([1.0, -0.999999]) > 1e5

    def test_exact_zero_is_inf(self):
        assert condition_number_sum([1.0, -1.0]) == math.inf


class TestDotProduct:
    def test_positive_data_is_one(self):
        assert condition_number_dot_product([1.0, 2.0], [3.0, 4.0]) == 1.0

    def test_orthogonal_is_inf(self):
        # The paper's Section 2.1.2 motivating case.
        assert condition_number_dot_product([1.0, 1.0], [1.0, -1.0]) == math.inf

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            condition_number_dot_product([1.0], [1.0, 2.0])


class TestPolynomial:
    def test_positive_coefficients_at_positive_point(self):
        assert condition_number_polynomial([1.0, 2.0, 3.0], 0.5) == 1.0

    def test_mixed_signs_amplifies(self):
        kappa = condition_number_polynomial([1.0, -1.0], 0.999999)
        assert kappa > 1e5

    def test_root_is_inf(self):
        assert condition_number_polynomial([1.0, -1.0], 1.0) == math.inf


class TestConversion:
    def test_kappa_one_passthrough(self):
        grade = Grade(499)
        assert forward_bound_from_backward(grade, 1.0, 2.0**-52) == pytest.approx(
            1.11e-13, abs=0.005e-13
        )

    def test_kappa_scales(self):
        grade = Grade(10)
        assert forward_bound_from_backward(grade, 7.0) == pytest.approx(
            7 * grade.evaluate()
        )

    def test_negative_kappa_rejected(self):
        with pytest.raises(ValueError):
            forward_bound_from_backward(Grade(1), -1.0)
