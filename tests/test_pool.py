"""Persistent shard-worker pool: parity, crash recovery, transport.

The contract under test is byte-for-byte: a pooled sharded audit must
produce exactly the bytes of the spawn-per-audit path (which is itself
pinned against the single-process batch engine in ``test_shard.py`` and
``test_engine_parity.py``) — including when a worker is SIGKILLed
mid-audit and the pool restarts + re-dispatches.  Beyond parity this
module covers the pool's own machinery: the fingerprint-keyed
prepared-program LRU (hits, misses, evictions, the ``need-program``
reconciliation round-trip), shared-memory segment hygiene on success
*and* error paths, the pickle transport fallback, and the Session /
stats surfaces.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

np = pytest.importorskip("numpy")

from strategies import random_batch_inputs, random_program
from repro.api import Session
from repro.programs.generators import safe_div_sum, vec_sum
from repro.semantics.batch import run_witness_batch
from repro.semantics.pool import ShardWorkerPool
from repro.semantics.shard import run_witness_sharded, shard_bounds

_BUDGET = settings().max_examples
#: Every example spins a full multiprocess audit through warm workers;
#: keep the per-PR budget small (the nightly profile scales it back up).
_POOL_BUDGET = max(_BUDGET // 8, 5)

CHAIN = """
Scale (a : num) (b : num) : num := mul a b
Twice (a : num) (b : num) (c : num) : num :=
  let s = Scale a b in add s c
Main (a : num) (b : num) (c : num) (d : num) : num :=
  let t = Twice a b c in add t d
"""


@pytest.fixture(scope="module")
def pool():
    """One warm two-worker pool shared by the read-only parity tests."""
    with ShardWorkerPool(2, mp_context="spawn") as p:
        yield p


def _poisoned_columns(n_rows: int = 23, width: int = 6):
    rng = np.random.default_rng(11)
    columns = {"x": rng.uniform(0.5, 4.0, (n_rows, width))}
    for bad in (0, 9, 22):
        columns["x"][bad, 0] = float("inf")
    return columns


def _assert_report_parity(pooled, single):
    assert list(pooled.sound) == list(single.sound)
    assert list(pooled.exact) == list(single.exact)
    assert set(pooled.errors) == set(single.errors)
    assert pooled.fallback_rows == single.fallback_rows
    assert {k: str(v) for k, v in pooled.param_max_distance.items()} == {
        k: str(v) for k, v in single.param_max_distance.items()
    }


class TestPooledParity:
    def test_matches_batch_and_spawn_with_errors(self, pool):
        definition = vec_sum(6)
        columns = _poisoned_columns()
        single = run_witness_batch(definition, columns)
        spawned = run_witness_sharded(definition, columns, workers=2)
        pooled = run_witness_sharded(
            definition, columns, workers=2, pool=pool
        )
        _assert_report_parity(pooled, single)
        _assert_report_parity(pooled, spawned)
        assert set(pooled.errors) == {0, 9, 22}

    def test_decimal_backend_parity(self, pool):
        definition = safe_div_sum(5)
        rng = np.random.default_rng(7)
        columns = {
            name: rng.uniform(0.5, 4.0, (9, 5)) for name in ("x", "y", "f")
        }
        columns["y"][4, 2] = 0.0  # one inr row, mid-shard
        single = run_witness_batch(
            definition, columns, exact_backend="decimal"
        )
        pooled = run_witness_sharded(
            definition, columns, workers=2, pool=pool,
            exact_backend="decimal",
        )
        _assert_report_parity(pooled, single)
        assert pooled.fallback_rows >= 1

    def test_repeat_audit_hits_prepared_table(self, pool):
        definition = vec_sum(4)
        rng = np.random.default_rng(5)
        columns = {"x": rng.uniform(0.5, 4.0, (8, 4))}
        run_witness_sharded(definition, columns, workers=2, pool=pool)
        before = pool.stats()
        pooled = run_witness_sharded(
            definition, columns, workers=2, pool=pool
        )
        after = pool.stats()
        # The second audit of a known fingerprint is all warm: every
        # shard hits the worker's prepared table, no blob is re-sent.
        assert after["prepared_hits"] - before["prepared_hits"] == 2
        assert after["prepared_misses"] == before["prepared_misses"]
        single = run_witness_batch(definition, columns)
        _assert_report_parity(pooled, single)

    def test_force_pickle_transport_parity(self, pool):
        definition = vec_sum(3)
        rng = np.random.default_rng(9)
        columns = {"x": rng.uniform(0.5, 4.0, (7, 3))}
        single = run_witness_batch(definition, columns)
        before = pool.stats()["pickle_fallbacks"]
        pool._force_pickle = True
        try:
            pooled = run_witness_sharded(
                definition, columns, workers=2, pool=pool
            )
        finally:
            pool._force_pickle = False
        _assert_report_parity(pooled, single)
        assert pool.stats()["pickle_fallbacks"] > before

    def test_shards_beyond_pool_width_are_clamped(self, pool):
        # run_witness_sharded clamps shards to the pool width …
        definition = vec_sum(3)
        rng = np.random.default_rng(13)
        columns = {"x": rng.uniform(0.5, 4.0, (10, 3))}
        pooled = run_witness_sharded(
            definition, columns, workers=8, pool=pool
        )
        _assert_report_parity(pooled, run_witness_batch(definition, columns))
        # … and the pool itself refuses an oversized direct dispatch.
        with pytest.raises(ValueError, match="exceed"):
            pool.run_shards(
                definition, None, columns, shard_bounds(10, 3),
                u=2.0 ** -53, engine_options={},
            )


class TestCrashRecovery:
    def test_sigkill_mid_audit_restarts_and_matches(self, pool):
        definition = vec_sum(6)
        columns = _poisoned_columns()
        single = run_witness_batch(definition, columns)
        before = pool.stats()["restarts"]
        pool._test_crash_next = 0  # SIGKILL worker 0 before its dispatch
        pooled = run_witness_sharded(
            definition, columns, workers=2, pool=pool
        )
        assert pool.stats()["restarts"] > before
        _assert_report_parity(pooled, single)
        # The restarted worker lost its prepared table; a repeat audit
        # re-sends the blob to it and still merges identically.
        again = run_witness_sharded(
            definition, columns, workers=2, pool=pool
        )
        _assert_report_parity(again, single)
        assert pool.stats()["workers_alive"] == 2


class TestSharedMemoryHygiene:
    def test_segments_unlinked_after_success(self, pool):
        from multiprocessing.shared_memory import SharedMemory

        definition = vec_sum(4)
        rng = np.random.default_rng(17)
        columns = {"x": rng.uniform(0.5, 4.0, (6, 4))}
        run_witness_sharded(definition, columns, workers=2, pool=pool)
        assert pool.stats()["shm_bytes_in_flight"] == 0
        assert pool._last_segments  # the audit did use shared memory
        for name in pool._last_segments:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)

    def test_segments_unlinked_after_worker_error(self, pool):
        from multiprocessing.shared_memory import SharedMemory

        definition = vec_sum(4)
        rng = np.random.default_rng(19)
        columns = {"x": rng.uniform(0.5, 4.0, (6, 4))}
        with pytest.raises(TypeError):
            pool.run_shards(
                definition, None, columns, shard_bounds(6, 2),
                u=2.0 ** -53,
                engine_options={"bogus_engine_option": 1},
            )
        assert pool.stats()["shm_bytes_in_flight"] == 0
        for name in pool._last_segments:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)
        # The pool survives the failed audit.
        pooled = run_witness_sharded(
            definition, columns, workers=2, pool=pool
        )
        _assert_report_parity(pooled, run_witness_batch(definition, columns))


class TestPreparedLRU:
    def test_eviction_at_capacity_one(self):
        defs = {"a": vec_sum(3), "b": vec_sum(4)}
        rng = np.random.default_rng(23)
        cols = {
            "a": {"x": rng.uniform(0.5, 4.0, (5, 3))},
            "b": {"x": rng.uniform(0.5, 4.0, (5, 4))},
        }
        with ShardWorkerPool(1, mp_context="spawn", max_prepared=1) as p:
            for key in ("a", "b", "a"):
                report = p.run_shards(
                    defs[key], None, cols[key], shard_bounds(5, 1),
                    u=2.0 ** -53, engine_options={},
                )
                assert len(report) == 1
            stats = p.stats()
            # a, b, a: every dispatch misses (capacity one), and both
            # the b and the second-a insert evict the previous entry.
            assert stats["prepared_hits"] == 0
            assert stats["prepared_misses"] == 3
            assert stats["prepared_evictions"] == 2

    def test_need_program_roundtrip_after_desync(self):
        # Force the parent's known-fingerprint view to run ahead of the
        # worker's LRU: the worker answers ``need-program`` and the pool
        # re-dispatches with the blob instead of failing the shard.
        defs = {"a": vec_sum(3), "b": vec_sum(4)}
        rng = np.random.default_rng(29)
        cols = {
            "a": {"x": rng.uniform(0.5, 4.0, (5, 3))},
            "b": {"x": rng.uniform(0.5, 4.0, (5, 4))},
        }
        with ShardWorkerPool(1, mp_context="spawn", max_prepared=1) as p:
            fp_a, reusable = p._program_key(defs["a"], None)
            assert reusable
            for key in ("a", "b"):
                p.run_shards(
                    defs[key], None, cols[key], shard_bounds(5, 1),
                    u=2.0 ** -53, engine_options={},
                )
            # The worker evicted a's program; lie to the parent that it
            # is still prepared.
            p._known[0][fp_a] = None
            pooled = p.run_shards(
                defs["a"], None, cols["a"], shard_bounds(5, 1),
                u=2.0 ** -53, engine_options={},
            )
            single = run_witness_batch(defs["a"], cols["a"])
            assert list(pooled[0][0]) == list(single.sound)
            assert list(pooled[0][1]) == list(single.exact)


class TestLifecycle:
    def test_close_is_idempotent_and_kills_workers(self):
        p = ShardWorkerPool(1, mp_context="spawn")
        definition = vec_sum(3)
        rng = np.random.default_rng(31)
        columns = {"x": rng.uniform(0.5, 4.0, (4, 3))}
        p.run_shards(
            definition, None, columns, shard_bounds(4, 1),
            u=2.0 ** -53, engine_options={},
        )
        assert p.stats()["workers_alive"] == 1
        p.close()
        p.close()
        assert p.stats()["workers_alive"] == 0
        with pytest.raises(RuntimeError):
            p.run_shards(
                definition, None, columns, shard_bounds(4, 1),
                u=2.0 ** -53, engine_options={},
            )

    def test_workers_start_lazily(self):
        with ShardWorkerPool(2, mp_context="spawn") as p:
            assert p.stats()["workers_alive"] == 0


class TestSessionPool:
    def test_session_pooled_audit_byte_parity(self, pool):
        inputs = {
            "a": [1.5, 2.5, 0.5, 3.0],
            "b": [2.0, 1.0, 4.0, 0.25],
            "c": [0.5, 3.0, 1.0, 2.0],
            "d": [1.0, 1.0, 2.0, 0.125],
        }
        plain = Session(workers=2).audit(
            CHAIN, "Main", inputs=inputs, engine="sharded"
        )
        with Session(workers=2, pool=pool) as session:
            assert session.pool_stats() is not None
            pooled = session.audit(
                CHAIN, "Main", inputs=inputs, engine="sharded"
            )
        assert pooled.to_json() == plain.to_json()
        # A borrowed pool is not closed with the session.
        assert pool.stats()["workers_alive"] == 2

    def test_session_owned_pool_lifecycle(self):
        with Session(workers=2, pool=True) as session:
            assert session.pool_stats() is None  # lazy: no audit yet
            result = session.audit(
                CHAIN,
                "Main",
                inputs={"a": [1.0, 2.0], "b": [2.0, 1.0],
                        "c": [0.5, 3.0], "d": [1.0, 4.0]},
                engine="sharded",
            )
            assert result.sound
            stats = session.pool_stats()
            assert stats is not None and stats["audits"] >= 1
            # Scalar audits must not touch (or create) the pool.
            session.audit(
                CHAIN, "Main",
                inputs={"a": 1.0, "b": 2.0, "c": 0.5, "d": 1.0},
            )
            assert session.pool_stats()["audits"] == stats["audits"]
        # close() shut the owned pool down and dropped the reference.
        assert session.pool_stats() is None


class TestPooledCompose:
    def test_sharded_compose_byte_parity(self, pool):
        inputs = {
            "a": [1.5, 2.5, 0.5, 3.0],
            "b": [2.0, 1.0, 4.0, 0.25],
            "c": [0.5, 3.0, 1.0, 2.0],
            "d": [1.0, 1.0, 2.0, 0.125],
        }
        session = Session(workers=2)
        plain = session.audit(CHAIN, "Main", inputs=inputs, engine="sharded")
        composed = session.audit(
            CHAIN, "Main", inputs=inputs, engine="sharded", compose=True
        )
        assert composed.to_json() == plain.to_json()
        assert composed.provenance is not None
        with Session(workers=2, pool=pool) as pooled_session:
            pooled = pooled_session.audit(
                CHAIN, "Main", inputs=inputs, engine="sharded", compose=True
            )
        assert pooled.to_json() == plain.to_json()

    @given(data=st.data())
    @settings(
        max_examples=_POOL_BUDGET,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_programs_pooled_compose_byte_parity(self, data, pool):
        # Both audits run on the warm pool; compose must not change a
        # byte of the payload (the pooled-vs-spawn byte parity itself is
        # pinned by the deterministic tests above).
        seed = data.draw(st.integers(0, 2**16), label="seed")
        spec = random_program(
            seed,
            n_helpers=data.draw(st.integers(1, 2), label="n_helpers"),
            allow_div=data.draw(st.booleans(), label="allow_div"),
        )
        n_rows = data.draw(st.integers(2, 4), label="n_rows")
        columns = random_batch_inputs(
            spec, data.draw(st.integers(0, 2**20)), n_rows
        )
        with Session(workers=2, pool=pool) as session:
            plain = session.audit(
                spec.program, spec.definition.name, inputs=columns,
                engine="sharded",
            )
            composed = session.audit(
                spec.program, spec.definition.name, inputs=columns,
                engine="sharded", compose=True,
            )
        assert composed.to_json() == plain.to_json()
