"""End-to-end checks of backward error soundness (Theorem 3.1).

For randomized programs and inputs: run binary64, construct the witness
with the backward map, and verify (1) the ideal semantics on the witness
reproduces the binary64 output and (2) every linear input moved at most
its inferred grade, with discrete inputs unmoved.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.programs.generators import dot_prod, horner, mat_vec_mul, poly_val, vec_sum
from repro.semantics.witness import run_witness
from strategies import random_definition, random_inputs


class TestRandomPrograms:
    @given(st.integers(min_value=0, max_value=50_000))
    def test_random_generated_programs(self, seed):
        spec = random_definition(seed, n_linear=4, n_discrete=2, n_steps=7)
        inputs = random_inputs(spec, seed + 1)
        report = run_witness(spec.definition, inputs)
        assert report.sound, report.describe()

    @given(st.integers(min_value=0, max_value=50_000))
    def test_random_positive_inputs(self, seed):
        spec = random_definition(seed, n_linear=3, n_discrete=1, n_steps=9)
        inputs = random_inputs(spec, seed + 2, positive=True)
        report = run_witness(spec.definition, inputs)
        assert report.sound, report.describe()


class TestBenchmarkFamilies:
    @pytest.mark.parametrize("n", [2, 5, 16])
    def test_dot_prod(self, n):
        rng = random.Random(n)
        report = run_witness(
            dot_prod(n),
            {
                "x": [rng.uniform(-5, 5) for _ in range(n)],
                "y": [rng.uniform(-5, 5) for _ in range(n)],
            },
        )
        assert report.sound

    @pytest.mark.parametrize("n", [2, 8, 32])
    def test_sum(self, n):
        rng = random.Random(n)
        report = run_witness(
            vec_sum(n), {"x": [rng.uniform(0.1, 10) for _ in range(n)]}
        )
        assert report.sound

    def test_sum_with_cancellation(self):
        # Mixed signs stress the add backward map's ratio construction.
        report = run_witness(vec_sum(4), {"x": [5.0, -4.9999, 3.0, -3.0001]})
        assert report.sound

    @pytest.mark.parametrize("n", [1, 4, 10])
    def test_horner(self, n):
        rng = random.Random(n)
        report = run_witness(
            horner(n),
            {"a": [rng.uniform(0.5, 2) for _ in range(n + 1)], "z": 1.37},
        )
        assert report.sound

    @pytest.mark.parametrize("n", [1, 3, 6])
    def test_poly_val(self, n):
        rng = random.Random(n)
        report = run_witness(
            poly_val(n),
            {"a": [rng.uniform(0.5, 2) for _ in range(n + 1)], "z": 0.73},
        )
        assert report.sound

    @pytest.mark.parametrize("n", [2, 4])
    def test_mat_vec(self, n):
        rng = random.Random(n)
        report = run_witness(
            mat_vec_mul(n),
            {
                "M": [rng.uniform(-3, 3) for _ in range(n * n)],
                "z": [rng.uniform(-3, 3) for _ in range(n)],
            },
        )
        assert report.sound


class TestEdgeCases:
    def test_exactly_zero_dot_product(self):
        """Orthogonal vectors: the forward error is unbounded but the
        backward witness still exists (the paper's motivating case)."""
        report = run_witness(
            dot_prod(2, alloc="both"), {"x": [1.0, 1.0], "y": [1.0, -1.0]}
        )
        assert report.approx_value.as_float() == 0.0
        assert report.sound

    def test_zero_component(self):
        report = run_witness(vec_sum(3), {"x": [0.0, 2.0, 3.0]})
        assert report.sound

    def test_tiny_and_huge_mixture(self):
        report = run_witness(vec_sum(3), {"x": [1e-200, 1e200, 1.0]})
        assert report.sound

    def test_negative_everything(self):
        report = run_witness(vec_sum(4), {"x": [-1.0, -2.0, -3.0, -4.0]})
        assert report.sound

    def test_report_describe_readable(self):
        report = run_witness(vec_sum(2), {"x": [1.0, 2.0]})
        text = report.describe()
        assert "results match" in text
        assert "ok" in text

    def test_witness_distances_below_bounds_with_margin(self):
        """Bounds are worst-case; single runs use a fraction of them."""
        rng = random.Random(3)
        n = 16
        report = run_witness(
            vec_sum(n), {"x": [rng.uniform(1, 2) for _ in range(n)]}
        )
        w = report.params["x"]
        assert w.distance <= w.bound

    def test_missing_input_rejected(self):
        with pytest.raises(KeyError):
            run_witness(vec_sum(2), {})


class TestPaperExamples:
    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_linsolve_random_systems(self, seed):
        from repro.programs.examples import example_program as prog_fn

        program = prog_fn()
        rng = random.Random(seed)
        a00 = rng.uniform(0.5, 3) * rng.choice([-1, 1])
        a11 = rng.uniform(0.5, 3) * rng.choice([-1, 1])
        report = run_witness(
            program["LinSolve"],
            {
                "A": [a00, 0.0, rng.uniform(-2, 2), a11],
                "b": [rng.uniform(-4, 4), rng.uniform(-4, 4)],
            },
            program=program,
        )
        assert report.sound, report.describe()

    def test_all_examples_one_shot(self, example_program):
        cases = {
            "DotProd2": {"x": [1.5, -2.5], "y": [0.5, 3.0]},
            "MatVecEx": {"A": [1.0, 2.0, 3.0, 4.0], "z": [0.5, 0.25]},
            "ScaleVec": {"a": 2.0, "x": [1.0, -1.0]},
            "SVecAdd": {"a": 2.0, "x": [1.0, 2.0], "y": [3.0, 4.0]},
            "InnerProduct": {"u": [1.0, 2.0], "v": [3.0, 4.0]},
            "MatVecMul": {"M": [1.0, 2.0, 3.0, 4.0], "v": [0.5, 0.25]},
            "SMatVecMul": {
                "M": [1.0, 2.0, 3.0, 4.0],
                "v": [0.5, 0.25],
                "u": [1.0, 1.0],
                "a": 2.0,
                "b": 3.0,
            },
            "PolyVal": {"a": [1.0, 2.0, 3.0], "z": 0.5},
            "Horner": {"a": [1.0, 2.0, 3.0], "z": 0.5},
            "PolyValAlt": {"z": 0.5, "a0": 1.0, "a1": 2.0, "a2": 3.0},
            "HornerAlt": {"z": 0.5, "a0": 1.0, "a1": 2.0, "a2": 3.0},
            "LinSolve": {"A": [2.0, 0.0, 1.0, 3.0], "b": [4.0, 5.0]},
        }
        for name, inputs in cases.items():
            report = run_witness(
                example_program[name], inputs, program=example_program
            )
            assert report.sound, f"{name}: {report.describe()}"


class TestTightness:
    def test_sequential_sum_near_worst_case(self):
        """A contrived input pattern drives observed backward error to a
        visible fraction of the static bound (it cannot exceed it)."""
        n = 24
        xs = [1.0] + [2.0 ** (-i % 3) + 1e-3 for i in range(n - 1)]
        report = run_witness(vec_sum(n), {"x": xs})
        w = report.params["x"]
        assert report.sound
        assert w.distance > 0  # rounding genuinely happened
        assert float(w.distance) < float(w.bound)

    def test_math_isfinite_everywhere(self):
        report = run_witness(vec_sum(3), {"x": [1.0, 2.0, 3.0]})
        for w in report.params.values():
            assert math.isfinite(float(w.bound))
