"""Tests for runtime values and their helpers."""

from decimal import Decimal

import pytest

from repro.lam_s.values import (
    UNIT_VALUE,
    VInl,
    VInr,
    VNum,
    VPair,
    to_decimal,
    values_close,
    vector_components,
    vector_value,
)


class TestConversion:
    def test_float_to_decimal_exact(self):
        assert to_decimal(0.1) == Decimal(0.1)

    def test_int(self):
        assert to_decimal(7) == Decimal(7)

    def test_decimal_passthrough(self):
        d = Decimal("1.5")
        assert to_decimal(d) is d

    def test_vnum_accessors(self):
        v = VNum(2.5)
        assert v.as_float() == 2.5
        assert v.as_decimal() == Decimal("2.5")


class TestVectors:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13])
    def test_roundtrip(self, n):
        data = [float(i + 1) for i in range(n)]
        packed = vector_value(data)
        assert [c.as_float() for c in vector_components(packed)] == data

    def test_shape_matches_type(self):
        from repro.core.types import vector
        from repro.semantics.spaces import space_of_type

        packed = vector_value([1.0, 2.0, 3.0])
        assert space_of_type(vector(3)).contains(packed)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            vector_value([])

    def test_components_of_non_vector(self):
        with pytest.raises(TypeError):
            vector_components(VInl(VNum(1.0)))


class TestValuesClose:
    def test_unit(self):
        assert values_close(UNIT_VALUE, UNIT_VALUE)

    def test_equal_numbers(self):
        assert values_close(VNum(1.5), VNum(Decimal("1.5")))

    def test_nearby_numbers(self):
        assert values_close(VNum(Decimal("1")), VNum(Decimal("1") + Decimal("1e-40")))

    def test_distant_numbers(self):
        assert not values_close(VNum(1.0), VNum(1.0 + 1e-10))

    def test_zero_vs_nonzero(self):
        assert not values_close(VNum(0.0), VNum(1e-300))

    def test_zero_vs_zero(self):
        assert values_close(VNum(0.0), VNum(Decimal(0)))

    def test_pairs(self):
        assert values_close(VPair(VNum(1.0), VNum(2.0)), VPair(VNum(1.0), VNum(2.0)))
        assert not values_close(VPair(VNum(1.0), VNum(2.0)), VPair(VNum(1.0), VNum(3.0)))

    def test_injections(self):
        assert values_close(VInl(VNum(1.0)), VInl(VNum(1.0)))
        assert not values_close(VInl(VNum(1.0)), VInr(VNum(1.0)))

    def test_shape_mismatch(self):
        assert not values_close(VNum(1.0), UNIT_VALUE)
