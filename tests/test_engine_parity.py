"""Cross-engine differential harness: five engines, one bit pattern.

The repository now certifies the soundness theorem through five
engines — the recursive reference interpreters (``engine="recursive"``),
the iterative IR sweeps (``engine="ir"``), the vectorized
:class:`~repro.semantics.batch.BatchWitnessEngine`, the multiprocess
:func:`~repro.semantics.shard.run_witness_sharded`, and the **served**
path (``repro serve`` dispatching the same audits over HTTP) — and the
contract between them is not "approximately equal": identical float
approximants, identical Decimal perturbed inputs and distances,
identical verdicts, identical captured exceptions, row for row.  For
the served engine the contract is byte-level: the response body equals
the ``repro witness --json`` stdout for the same audit.

This module is the fuzz oracle for that contract.  Hypothesis drives
randomly generated well-typed Bean programs across the *whole* language
surface the batch engine now vectorizes — ``case``, ``div``, defined
function ``call``s (exercising the IR inlining pass), promotion, ``rnd``,
stochastic rounding — plus adversarial inputs (exact zeros, infinities,
NaNs) that force per-row scalar fallback and error capture.

Run with a fixed seed in CI via ``HYPOTHESIS_PROFILE=ci`` (derandomized;
see ``conftest.py``).
"""

from __future__ import annotations

import contextlib
import io
import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from strategies import (
    batch_row,
    random_batch_inputs,
    random_definition,
    random_program,
)
from repro.api import engines as registered_engines
from repro.semantics.batch import BatchWitnessEngine
from repro.semantics.interp import lens_of_definition
from repro.semantics.witness import run_witness

#: Engine sets derived from the registry's capability flags — never a
#: hand-maintained name list.  "Fast" engines go into hypothesis inner
#: loops; reference interpreters and process pools are too slow for
#: that and get fixed-seed coverage instead.  Remote engines dispatch
#: to external serve nodes and are exercised by tests/test_fleet.py,
#: not the in-process parity loops.
FAST_ENGINES = [
    name
    for name, engine in registered_engines().items()
    if not (
        engine.caps.multiprocess
        or engine.caps.reference
        or engine.caps.remote
    )
]
SLOW_ENGINES = [
    name
    for name, engine in registered_engines().items()
    if (engine.caps.multiprocess or engine.caps.reference)
    and not engine.caps.remote
]

#: Examples budgets scale with the loaded hypothesis profile (40 for
#: the default/ci profiles, 400 under HYPOTHESIS_PROFILE=nightly), so
#: the schedule-triggered soak deepens the search without code changes.
_BUDGET = settings().max_examples
_SMALL_BUDGET = max(_BUDGET // 4, 10)


def assert_witness_reports_equal(got, reference, ctx=""):
    """Bitwise equality of two scalar WitnessReports."""
    assert got.sound == reference.sound, ctx
    assert got.exact_match == reference.exact_match, ctx
    assert repr(got.approx_value) == repr(reference.approx_value), ctx
    assert repr(got.ideal_on_perturbed) == repr(reference.ideal_on_perturbed), ctx
    assert set(got.params) == set(reference.params), ctx
    for name, ref_witness in reference.params.items():
        witness = got.params[name]
        assert str(witness.distance) == str(ref_witness.distance), (ctx, name)
        assert str(witness.bound) == str(ref_witness.bound), (ctx, name)
        assert witness.grade == ref_witness.grade, (ctx, name)
        assert repr(witness.perturbed) == repr(ref_witness.perturbed), (ctx, name)
        assert repr(witness.original) == repr(ref_witness.original), (ctx, name)


def assert_batch_matches_scalar_loop(report, spec, engine, columns, n_rows):
    """Every batch row equals the scalar loop — verdict, values, errors."""
    for i in range(n_rows):
        try:
            reference = run_witness(
                spec.definition,
                batch_row(columns, i),
                program=spec.program,
                u=engine.u,
                lens=engine.lens,
            )
        except Exception as exc:  # noqa: BLE001 - exact error parity below
            captured = report.errors.get(i)
            assert captured is not None, (i, type(exc), exc)
            assert type(captured) is type(exc), i
            assert str(captured) == str(exc), i
            assert not report.sound[i]
            with pytest.raises(type(exc)):
                report[i]
            continue
        assert i not in report.errors, (i, report.errors.get(i))
        assert bool(report.sound[i]) == reference.sound, i
        assert bool(report.exact[i]) == reference.exact_match, i
        assert_witness_reports_equal(report[i], reference, ctx=i)


@st.composite
def engine_cases(draw):
    """A generated program spec plus an engine configuration."""
    kind = draw(
        st.sampled_from(["flat", "case", "div", "call", "stochastic", "lowprec"])
    )
    seed = draw(st.integers(0, 2**16))
    n_linear = draw(st.integers(1, 4))
    n_steps = draw(st.integers(1, 6))
    n_discrete = draw(st.integers(0, 2))
    engine_options = {}
    if kind == "call":
        spec = random_program(
            seed,
            n_linear=max(2, n_linear),
            n_discrete=max(1, n_discrete),
            n_steps=n_steps,
            n_helpers=draw(st.integers(1, 2)),
            allow_div=draw(st.booleans()),
        )
    else:
        spec = random_definition(
            seed,
            n_linear=n_linear + (2 if kind == "div" else 0),
            n_discrete=n_discrete,
            n_steps=n_steps,
            allow_case=kind in ("case", "div"),
            allow_div=kind == "div",
        )
    if kind == "stochastic":
        engine_options = {"rounding": "stochastic", "seed": draw(st.integers(0, 99))}
    elif kind == "lowprec":
        engine_options = {"precision_bits": draw(st.sampled_from([11, 24]))}
    return spec, engine_options


@given(case=engine_cases(), data=st.data())
@settings(max_examples=_BUDGET, deadline=None)
def test_engines_bitwise_agree(case, data):
    """The differential property: recursive ≡ IR ≡ batch, bit for bit."""
    spec, engine_options = case
    n_rows = data.draw(st.integers(2, 5), label="n_rows")
    input_seed = data.draw(st.integers(0, 2**20), label="input_seed")
    inject = data.draw(
        st.sampled_from([None, "zero", "inf", "nan"]), label="inject"
    )
    columns = random_batch_inputs(spec, input_seed, n_rows)
    if inject is not None:
        poison = {"zero": 0.0, "inf": float("inf"), "nan": float("nan")}[inject]
        for name in columns:
            columns[name] = columns[name].copy()
            columns[name][1] = poison

    engine = BatchWitnessEngine(spec.definition, spec.program, **engine_options)
    report = engine.run(columns)
    assert report.n_rows == n_rows

    # Batch vs the scalar loop on every row (including captured errors).
    assert_batch_matches_scalar_loop(report, spec, engine, columns, n_rows)

    # IR vs recursive reference engines on one clean row (row 0 is never
    # poisoned): same lens semantics, structurally different execution.
    recursive_lens = lens_of_definition(
        spec.definition,
        program=spec.program,
        engine="recursive",
        **engine_options,
    )
    row = batch_row(columns, 0)
    ir_report = run_witness(
        spec.definition, row, program=spec.program, u=engine.u, lens=engine.lens
    )
    recursive_report = run_witness(
        spec.definition, row, program=spec.program, u=engine.u,
        lens=recursive_lens,
    )
    assert_witness_reports_equal(recursive_report, ir_report, ctx="recursive")


@given(data=st.data())
@settings(max_examples=_SMALL_BUDGET, deadline=None)
def test_call_programs_see_through_inlining(data):
    """Programs with calls vectorize (no whole-batch scalar fallback)."""
    seed = data.draw(st.integers(0, 2**16))
    spec = random_program(seed, n_helpers=2, allow_div=data.draw(st.booleans()))
    engine = BatchWitnessEngine(spec.definition, spec.program)
    assert engine.vectorized
    columns = random_batch_inputs(spec, seed + 1, 4)
    report = engine.run(columns)
    assert report.fallback_rows == 0
    assert_batch_matches_scalar_loop(report, spec, engine, columns, 4)


class TestShardedParity:
    """The multiprocess engine against the in-process engines.

    Process pools are too slow for a hypothesis inner loop; fixed seeds
    keep this deterministic while still covering the call/div/case
    surface.
    """

    @pytest.mark.parametrize("seed", [3, 11])
    def test_sharded_equals_batch_and_loop(self, seed):
        from repro.semantics.shard import run_witness_sharded

        spec = random_program(seed, n_helpers=1, allow_div=True)
        engine = BatchWitnessEngine(spec.definition, spec.program)
        columns = random_batch_inputs(spec, seed + 7, 9)
        # Poison one mid-shard row so error capture crosses the merge.
        for name in columns:
            columns[name] = columns[name].copy()
            columns[name][4] = float("inf")
        batch = engine.run(columns)
        sharded = run_witness_sharded(
            spec.definition, columns, program=spec.program, workers=3
        )
        assert list(sharded.sound) == list(batch.sound)
        assert list(sharded.exact) == list(batch.exact)
        assert set(sharded.errors) == set(batch.errors)
        for i in sharded.errors:
            assert type(sharded.errors[i]) is type(batch.errors[i])
            assert str(sharded.errors[i]) == str(batch.errors[i])
        assert {k: str(v) for k, v in sharded.param_max_distance.items()} == {
            k: str(v) for k, v in batch.param_max_distance.items()
        }
        # Materialized rows rebuild through the scalar runner: bitwise.
        for i in (0, 8):
            assert_witness_reports_equal(sharded[i], batch[i], ctx=i)


class TestExactBackendParity:
    """The EFT double-double kernels against the Decimal reference.

    The batch engine's backward/ideal sweeps run on error-free
    transformations by default; the contract is that every observable —
    verdicts, exact-match flags, Decimal distance strings, per-param
    maxima, perturbed-value reprs, captured error types/messages, and
    the ``fallback_rows`` accounting — is *bit-for-bit* what the
    original 50-digit Decimal implementation produces.
    """

    @staticmethod
    def _compare(eft, dec, n_rows):
        assert eft.exact_backend == "eft"
        assert dec.exact_backend == "decimal"
        assert list(eft.sound) == list(dec.sound)
        assert list(eft.exact) == list(dec.exact)
        assert eft.fallback_rows == dec.fallback_rows
        assert set(eft.errors) == set(dec.errors)
        for i in eft.errors:
            assert type(eft.errors[i]) is type(dec.errors[i]), i
            assert str(eft.errors[i]) == str(dec.errors[i]), i
        assert {k: str(v) for k, v in eft.param_max_distance.items()} == {
            k: str(v) for k, v in dec.param_max_distance.items()
        }
        for i in range(n_rows):
            if i in eft.errors:
                continue
            assert_witness_reports_equal(eft[i], dec[i], ctx=i)

    @given(case=engine_cases(), data=st.data())
    @settings(max_examples=_BUDGET, deadline=None)
    def test_eft_equals_decimal_bitwise(self, case, data):
        spec, engine_options = case
        n_rows = data.draw(st.integers(2, 5), label="n_rows")
        input_seed = data.draw(st.integers(0, 2**20), label="input_seed")
        inject = data.draw(
            st.sampled_from([None, "zero", "inf", "nan"]), label="inject"
        )
        columns = random_batch_inputs(spec, input_seed, n_rows)
        if inject is not None:
            poison = {"zero": 0.0, "inf": float("inf"), "nan": float("nan")}[inject]
            for name in columns:
                columns[name] = columns[name].copy()
                columns[name][1] = poison
        reports = {}
        for backend in ("eft", "decimal"):
            engine = BatchWitnessEngine(
                spec.definition,
                spec.program,
                exact_backend=backend,
                **engine_options,
            )
            reports[backend] = engine.run(columns)
        self._compare(reports["eft"], reports["decimal"], n_rows)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_sharded_eft_equals_decimal(self, workers):
        from repro.semantics.shard import run_witness_sharded

        spec = random_program(7, n_helpers=1, allow_div=True)
        columns = random_batch_inputs(spec, 13, 8)
        for name in columns:
            columns[name] = columns[name].copy()
            columns[name][3] = float("inf")
        reports = {}
        for backend in ("eft", "decimal"):
            reports[backend] = run_witness_sharded(
                spec.definition,
                columns,
                program=spec.program,
                workers=workers,
                exact_backend=backend,
            )
        self._compare(reports["eft"], reports["decimal"], 8)

    def test_env_var_selects_backend(self, monkeypatch):
        spec = random_definition(2)
        monkeypatch.setenv("REPRO_EXACT_BACKEND", "decimal")
        assert BatchWitnessEngine(spec.definition).exact_backend == "decimal"
        monkeypatch.setenv("REPRO_EXACT_BACKEND", "eft")
        assert BatchWitnessEngine(spec.definition).exact_backend == "eft"
        # An explicit argument beats the environment.
        monkeypatch.setenv("REPRO_EXACT_BACKEND", "decimal")
        engine = BatchWitnessEngine(spec.definition, exact_backend="eft")
        assert engine.exact_backend == "eft"
        monkeypatch.setenv("REPRO_EXACT_BACKEND", "bogus")
        with pytest.raises(ValueError, match="exact_backend"):
            BatchWitnessEngine(spec.definition)


class TestServedParity:
    """The served engine against the one-shot CLI, byte for byte.

    The server and the CLI share one :class:`repro.api.Session` code
    path by construction; this class is the end-to-end oracle that the HTTP
    layer (request validation, coalescing, executor dispatch, response
    rendering) preserves that equality — over randomized programs whose
    *source text* travels to the server while the CLI re-parses the same
    text locally.
    """

    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        from repro.service.cache import deactivate
        from repro.service.server import AuditServer, serve

        deactivate()
        cache_dir = tmp_path_factory.mktemp("parity-cache")
        handle = serve(AuditServer(port=0, cache_dir=str(cache_dir)))
        try:
            yield handle
        finally:
            handle.stop()
            deactivate()

    @staticmethod
    def assert_served_equals_cli(handle, source, inputs, engine, tmp_path):
        from repro.cli import main
        from repro.service.client import audit

        status, body = audit(
            handle.host,
            handle.port,
            {"source": source, "inputs": inputs, "engine": engine, "workers": 2},
        )
        assert status == 200, body
        path = tmp_path / "prog.bean"
        path.write_text(source)
        argv = ["witness", str(path), "--inputs", json.dumps(inputs), "--json"]
        caps = registered_engines()[engine].caps
        if engine in ("batch", "sharded"):
            argv.append("--batch")  # exercise the legacy flag spelling
        else:
            argv += ["--engine", engine]
        if caps.multiprocess:
            argv += ["--workers", "2"]
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            main(argv)
        assert body == buffer.getvalue(), (engine, source)

    @given(data=st.data())
    @settings(
        max_examples=_SMALL_BUDGET,
        deadline=None,
        suppress_health_check=[
            # The server fixture is class-scoped by design (one server,
            # many examples); tmp_path is only a scratch file path.
            HealthCheck.function_scoped_fixture,
            HealthCheck.too_slow,
        ],
    )
    def test_served_random_programs_bitwise(self, served, tmp_path, data):
        from repro.core import pretty_program

        seed = data.draw(st.integers(0, 2**16), label="seed")
        spec = random_program(
            seed, n_helpers=data.draw(st.integers(1, 2)),
            allow_div=data.draw(st.booleans()),
        )
        source = pretty_program(spec.program)
        engine = data.draw(st.sampled_from(FAST_ENGINES), label="engine")
        n_rows = data.draw(st.integers(1, 3), label="n_rows")
        columns = random_batch_inputs(spec, seed + 1, n_rows)
        if registered_engines()[engine].caps.batched:
            inputs = {k: v.tolist() for k, v in columns.items()}
        else:
            inputs = batch_row(columns, 0)
        self.assert_served_equals_cli(served, source, inputs, engine, tmp_path)

    @pytest.mark.parametrize("engine", SLOW_ENGINES)
    def test_served_slow_engines_bitwise(self, served, tmp_path, engine):
        # One fixed seed per engine: the recursive lens and the process
        # pool are too slow for a hypothesis inner loop.
        from repro.core import pretty_program

        spec = random_program(5, n_helpers=1, allow_div=True)
        source = pretty_program(spec.program)
        columns = random_batch_inputs(spec, 11, 4)
        if registered_engines()[engine].caps.batched:
            inputs = {k: v.tolist() for k, v in columns.items()}
        else:
            inputs = batch_row(columns, 0)
        self.assert_served_equals_cli(served, source, inputs, engine, tmp_path)

    def test_served_error_capture_bitwise(self, served, tmp_path):
        # Poisoned rows (inf) force per-row scalar fallback and error
        # capture; the captured type+message must cross the HTTP layer
        # exactly as the CLI renders them.
        from repro.core import pretty_program

        spec = random_program(3, n_helpers=1, allow_div=True)
        source = pretty_program(spec.program)
        columns = random_batch_inputs(spec, 7, 3)
        inputs = {}
        for name, arr in columns.items():
            arr = arr.copy()
            arr[1] = float("inf")
            inputs[name] = arr.tolist()
        self.assert_served_equals_cli(served, source, inputs, "batch", tmp_path)
