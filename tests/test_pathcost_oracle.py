"""Differential testing: the context-algebra checker vs. the independent
per-variable path-cost oracle (:mod:`repro.core.pathcost`)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import check_definition, check_program, free_variables
from repro.core.pathcost import definition_demands, variable_demand
from repro.core.types import is_discrete
from repro.programs.examples import example_program
from repro.programs.generators import dot_prod, horner, mat_vec_mul, poly_val, vec_sum
from strategies import random_definition


def assert_agreement(definition):
    judgment = check_definition(definition)
    used = free_variables(definition.body)
    for param in definition.params:
        if is_discrete(param.ty) or param.name not in used:
            continue
        expected = judgment.grade_of(param.name)
        actual = variable_demand(definition.body, param.name)
        assert actual.coeff == expected.coeff, (
            f"{definition.name}.{param.name}: oracle {actual} != checker {expected}"
        )


class TestPaperExamples:
    def test_all_examples_agree(self):
        program = example_program()
        judgments = check_program(program)
        demands = definition_demands(program)
        for definition in program:
            judgment = judgments[definition.name]
            for param in definition.params:
                if is_discrete(param.ty):
                    continue
                assert demands[definition.name][param.name].coeff == judgment.grade_of(
                    param.name
                ).coeff


class TestGenerators:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: dot_prod(6),
            lambda: vec_sum(8),
            lambda: horner(5),
            lambda: poly_val(4),
            lambda: mat_vec_mul(3),
            lambda: dot_prod(6, order="balanced"),
            lambda: dot_prod(6, alloc="both"),
        ],
        ids=["dotprod", "sum", "horner", "polyval", "matvec", "balanced", "both"],
    )
    def test_generator_agreement(self, make):
        assert_agreement(make())


class TestRandomPrograms:
    @given(st.integers(min_value=0, max_value=20_000))
    def test_random_agreement(self, seed):
        spec = random_definition(seed, n_linear=4, n_discrete=2, n_steps=8)
        assert_agreement(spec.definition)
