"""Tests for AST utilities: traversal, free variables, flop counting,
Program bookkeeping, builders, and the deep-stack runner."""

import pytest

from repro.core import ast_nodes as A
from repro.core import builders as B
from repro.core import count_flops, free_variables, parse_expression, parse_program
from repro.core.deepstack import call_with_deep_stack
from repro.lam_s import VNum, evaluate, vector_value


class TestTraversal:
    def test_subexpressions_preorder(self):
        expr = parse_expression("add (mul x y) z")
        kinds = [type(e).__name__ for e in A.subexpressions(expr)]
        assert kinds == ["PrimOp", "PrimOp", "Var", "Var", "Var"]

    def test_subexpressions_includes_call_args(self):
        expr = parse_expression("Foo x (y, z)")
        names = [e.name for e in A.subexpressions(expr) if isinstance(e, A.Var)]
        assert names == ["x", "y", "z"]


class TestFreeVariables:
    def test_let_binds(self):
        expr = parse_expression("let v = add x y in mul v z")
        assert free_variables(expr) == {"x", "y", "z"}

    def test_pattern_binds_both(self):
        expr = parse_expression("let (a, b) = p in add a b")
        assert free_variables(expr) == {"p"}

    def test_case_binders(self):
        expr = parse_expression("case s of inl (a) => add a x | inr (b) => b")
        assert free_variables(expr) == {"s", "x"}

    def test_shadowless_bound_not_free(self):
        expr = parse_expression("dlet z = !x in dmul z y")
        assert free_variables(expr) == {"x", "y"}


class TestFlopCounting:
    def test_simple(self):
        assert count_flops(parse_expression("add x y")) == 1

    def test_nested(self):
        assert count_flops(parse_expression("add (mul x y) (div a b)")) == 3

    def test_through_calls(self):
        program = parse_program(
            """
            Dot (a : num) (b : num) (c : num) (d : num) := add (mul a b) (mul c d)
            Main (p : num) (q : num) (r : num) (s : num) := Dot p q r s
            """
        )
        assert count_flops(program["Main"].body, program) == 3

    def test_unknown_call_without_program(self):
        with pytest.raises(ValueError):
            count_flops(parse_expression("Foo x"))


class TestProgram:
    def test_lookup_and_contains(self):
        program = parse_program("F (x : num) := x\nG (y : num) := y")
        assert "F" in program and "H" not in program
        assert program["G"].name == "G"

    def test_main_is_last(self):
        program = parse_program("F (x : num) := x\nG (y : num) := y")
        assert program.main.name == "G"

    def test_empty_program_main(self):
        with pytest.raises(ValueError):
            A.Program([]).main

    def test_duplicate_names(self):
        d = parse_program("F (x : num) := x")["F"]
        with pytest.raises(ValueError):
            A.Program([d, d])


class TestBuilders:
    def test_expressions_from_strings(self):
        assert B.add("x", "y") == parse_expression("add x y")
        assert B.let_("v", B.mul("x", "y"), "v") == parse_expression(
            "let v = mul x y in v"
        )

    def test_tuple_balanced(self):
        assert B.tuple_("a", "b", "c") == parse_expression("(a, b, c)")

    def test_let_chain(self):
        expr = B.let_chain([("a", B.add("x", "y")), ("b", B.mul("a", "z"))], "b")
        assert expr == parse_expression("let a = add x y in let b = mul a z in b")

    def test_destructure_vector_matches_eval(self):
        # Destructuring a 5-vector must bind leaves left-to-right.
        body = B.destructure_vector(
            "v", [f"c{i}" for i in range(5)], B.var("c3")
        )
        env = {"v": vector_value([10.0, 11.0, 12.0, 13.0, 14.0])}
        result = evaluate(body, env, mode="approx")
        assert result.as_float() == 13.0

    def test_destructure_discrete(self):
        body = B.destructure_vector("v", ["a", "b"], B.dmul("a", "x"), discrete=True)
        env = {"v": vector_value([2.0, 3.0]), "x": VNum(5.0)}
        assert evaluate(body, env, mode="approx").as_float() == 10.0

    def test_destructure_empty(self):
        with pytest.raises(ValueError):
            B.destructure_vector("v", [], B.var("x"))

    def test_empty_tuple(self):
        with pytest.raises(ValueError):
            B.tuple_()


class TestDeepStack:
    def test_deep_recursion_succeeds(self):
        def count_down(n):
            if n == 0:
                return 0
            return 1 + count_down(n - 1)

        assert call_with_deep_stack(count_down, 50_000) == 50_000

    def test_exceptions_propagate(self):
        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError, match="inner"):
            call_with_deep_stack(boom)

    def test_return_value(self):
        assert call_with_deep_stack(lambda a, b: a + b, 2, b=3) == 5

    def test_deep_bean_program(self):
        # A 2000-deep let chain checks fine through the deep-stack runner.
        from repro.core import check_definition
        from repro.programs.generators import vec_sum

        judgment = check_definition(vec_sum(2000))
        assert judgment.max_linear_grade().coeff == 1999
