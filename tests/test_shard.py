"""Sharded multiprocess witness runner: determinism, merging, safety.

Cross-engine verdict/bit parity for the sharded runner lives in
``test_engine_parity.py``; this module covers the sharding machinery
itself — the deterministic shard→row mapping, report merging (verdicts,
worst distances, captured errors, fallback counts), start-method
safety (including ``spawn``, which re-imports the package and re-lowers
the IR in each worker), degradation to in-process execution, and the
CLI ``--workers`` surface.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.programs.generators import dot_prod, safe_div_sum, vec_sum
from repro.semantics.batch import run_witness_batch
from repro.semantics.shard import run_witness_sharded, shard_bounds


class TestShardBounds:
    def test_balanced_contiguous_cover(self):
        for n_rows in (1, 2, 7, 10, 100, 101):
            for shards in (1, 2, 3, 7, 10):
                bounds = shard_bounds(n_rows, shards)
                assert bounds[0] == 0 and bounds[-1] == n_rows
                sizes = [b - a for a, b in zip(bounds, bounds[1:])]
                assert sum(sizes) == n_rows
                assert max(sizes) - min(sizes) <= 1  # balanced within one
                assert sizes == sorted(sizes, reverse=True)  # extras first

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_bounds(10, 0)


class TestMerging:
    def test_row_order_is_input_order(self):
        # Make each row's verdict depend on the row index (poison a few)
        # so any shard permutation or offset error flips the comparison.
        definition = vec_sum(6)
        rng = np.random.default_rng(1)
        columns = {"x": rng.uniform(0.5, 4.0, (23, 6))}
        for bad in (0, 9, 22):
            columns["x"][bad, 0] = float("inf")
        single = run_witness_batch(definition, columns)
        for workers in (2, 4, 5):
            sharded = run_witness_sharded(definition, columns, workers=workers)
            assert list(sharded.sound) == list(single.sound), workers
            assert list(sharded.exact) == list(single.exact), workers
            assert set(sharded.errors) == {0, 9, 22}
            assert sharded.fallback_rows == single.fallback_rows
            assert {k: str(v) for k, v in sharded.param_max_distance.items()} == {
                k: str(v) for k, v in single.param_max_distance.items()
            }

    def test_div_case_kernel_shards(self):
        definition = safe_div_sum(8)
        rng = np.random.default_rng(2)
        columns = {
            name: rng.uniform(0.5, 4.0, (12, 8)) for name in ("x", "y", "f")
        }
        columns["y"][5, 3] = 0.0  # one inr row, mid-shard
        single = run_witness_batch(definition, columns)
        sharded = run_witness_sharded(definition, columns, workers=3)
        assert list(sharded.sound) == list(single.sound)
        assert sharded.fallback_rows == single.fallback_rows >= 1

    def test_more_workers_than_rows_degrades(self):
        definition = dot_prod(4)
        rng = np.random.default_rng(3)
        columns = {
            "x": rng.uniform(0.5, 4.0, (2, 4)),
            "y": rng.uniform(0.5, 4.0, (2, 4)),
        }
        report = run_witness_sharded(definition, columns, workers=16)
        assert report.n_rows == 2 and report.all_sound

    def test_single_worker_runs_in_process(self):
        definition = vec_sum(5)
        rng = np.random.default_rng(4)
        columns = {"x": rng.uniform(0.5, 4.0, (6, 5))}
        report = run_witness_sharded(definition, columns, workers=1)
        single = run_witness_batch(definition, columns)
        assert list(report.sound) == list(single.sound)


class TestSafety:
    def test_spawn_start_method(self):
        # Spawn re-imports the package and re-lowers the IR per worker:
        # nothing may depend on forked parent state.
        definition = vec_sum(5)
        rng = np.random.default_rng(5)
        columns = {"x": rng.uniform(0.5, 4.0, (4, 5))}
        report = run_witness_sharded(
            definition, columns, workers=2, mp_context="spawn"
        )
        single = run_witness_batch(definition, columns)
        assert list(report.sound) == list(single.sound)
        assert report.all_sound

    def test_deep_program_pickles_through_deep_stack(self):
        # A 400-binder let-chain exceeds the default pickler recursion;
        # the runner must serialize it anyway.
        definition = vec_sum(400)
        rng = np.random.default_rng(6)
        columns = {"x": rng.uniform(0.5, 4.0, (4, 400))}
        report = run_witness_sharded(definition, columns, workers=2)
        assert report.all_sound

    def test_lens_cannot_cross_processes(self):
        from repro.semantics.interp import lens_of_definition

        definition = vec_sum(4)
        lens = lens_of_definition(definition)
        with pytest.raises(ValueError, match="lens"):
            run_witness_sharded(
                definition, {"x": np.ones((2, 4))}, workers=2, lens=lens
            )


class TestCLI:
    def test_witness_batch_workers(self, tmp_path, capsys):
        source = (
            "DotProd2 (x : vec(2)) (y : vec(2)) : num :=\n"
            "  let (x0, x1) = x in\n"
            "  let (y0, y1) = y in\n"
            "  let v = mul x0 y0 in\n"
            "  let w = mul x1 y1 in\n"
            "  add v w\n"
        )
        path = tmp_path / "dotprod2.bean"
        path.write_text(source)
        inputs = {
            "x": [[1.5, 2.25], [0.5, 1.0], [3.0, 0.25]],
            "y": [[3.1, -0.7], [1.25, 2.0], [0.125, 4.0]],
        }
        code = cli_main(
            [
                "witness", str(path), "--batch", "--workers", "2",
                "--inputs", json.dumps(inputs),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "soundness theorem holds on all rows: True" in out
        assert "rows               : 3" in out
