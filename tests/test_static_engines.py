"""The static-analysis and sweep engines, end to end.

Three contracts:

* **Soundness cross-check** — for random programs and inputs, the
  ``interval`` and ``forward`` engines' static bounds must contain the
  forward error actually observed by every *executed* witness engine
  (ir / recursive / batch / sharded) on the same inputs.
* **Sweep bit-parity** — the ``sweep`` engine's ``per_precision``
  sections must equal independently run single-precision batch audits
  bit for bit, and its per-row tightest precision must follow from
  those audits' verdicts.
* **Surface parity** — ``repro witness --engine interval|forward|sweep``,
  the Python Session, and ``repro serve`` return byte-identical
  schema-v3 payloads (the registry-derived harness in
  ``test_engine_parity.py`` also samples these engines; the tests here
  pin each one explicitly).

Plus the recursion-limit acceptance check: both analyzers handle
``Sum 10000`` under the default recursion limit.
"""

from __future__ import annotations

import contextlib
import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from strategies import batch_row, random_batch_inputs, random_definition, random_program
from repro.analysis.metrics import rp
from repro.api import SWEEP_PRECISIONS, AuditResult, Session, engines
from repro.core import Program, pretty_program
from repro.lam_s.eval import evaluate
from repro.lam_s.values import VInl, VInr, VNum, VPair, VUnit
from repro.semantics.witness import env_from_pythons

_BUDGET = settings().max_examples
_SMALL_BUDGET = max(_BUDGET // 4, 10)

#: The executed (non-static, non-sweep, non-remote) engines, from the
#: registry.
EXECUTED_ENGINES = [
    name
    for name, engine in engines().items()
    if not engine.caps.static
    and not engine.caps.remote
    and name != "sweep"
]


def numeric_leaves(value):
    """Flatten a Λ_S value's numeric leaves, in deterministic order."""
    out = []
    stack = [value]
    while stack:
        v = stack.pop()
        if isinstance(v, VNum):
            out.append(v)
        elif isinstance(v, VPair):
            stack.append(v.right)
            stack.append(v.left)
        elif isinstance(v, (VInl, VInr)):
            stack.append(v.body)
        elif isinstance(v, VUnit):
            pass
        else:  # pragma: no cover - exhaustive over closed values
            raise TypeError(f"unexpected value {v!r}")
    return out


def ideal_leaves_on(definition, program, inputs):
    """The exact (high-precision ideal) result leaves on the inputs."""
    env = env_from_pythons(definition, inputs)
    ideal = evaluate(definition.body, env, mode="ideal", program=program)
    return [float(v.as_decimal()) for v in numeric_leaves(ideal)]


def observed_errors_of(approx_value, exact_leaves):
    """Per-leaf RP(approx, exact) of one engine's approximate result."""
    approx_leaves = [v.as_float() for v in numeric_leaves(approx_value)]
    assert len(approx_leaves) == len(exact_leaves)
    return [rp(a, e) for a, e in zip(approx_leaves, exact_leaves)]


class TestSoundnessCrossCheck:
    """Static bounds contain what the executed engines observe."""

    @staticmethod
    def assert_bounds_contain_observed(spec, columns, n_rows, fast_only=True):
        program = spec.program or Program([spec.definition])
        session = Session()
        engine_names = (
            [n for n in EXECUTED_ENGINES if not engines()[n].caps.multiprocess
             and not engines()[n].caps.reference]
            if fast_only
            else EXECUTED_ENGINES
        )
        # One static audit per analyzer; the interval hypotheses are the
        # concrete inputs themselves (their hulls), so the executed runs
        # below are inside the hypothesis by construction.
        hull_inputs = {k: v.tolist() for k, v in columns.items()}
        interval = session.audit(
            program, spec.definition.name, inputs=hull_inputs,
            engine="interval",
        )
        forward = session.audit(
            program, spec.definition.name, inputs={}, engine="forward"
        )
        interval_bound = interval.static_bounds["forward_bound"]
        forward_bound = forward.static_bounds["forward_bound"]
        exact = [
            ideal_leaves_on(spec.definition, spec.program, batch_row(columns, i))
            for i in range(n_rows)
        ]
        for name in engine_names:
            caps = engines()[name].caps
            # Each engine's own approximate result is what the static
            # bounds must dominate, row for row.
            if caps.batched:
                result = session.audit(
                    program, spec.definition.name,
                    inputs=hull_inputs, engine=name,
                )
                assert result.sound, name
                row_reports = [result.report[i] for i in range(n_rows)]
            else:
                row_reports = [
                    session.audit(
                        program, spec.definition.name,
                        inputs=batch_row(columns, i), engine=name,
                    ).report
                    for i in range(n_rows)
                ]
            for i, report in enumerate(row_reports):
                for err in observed_errors_of(report.approx_value, exact[i]):
                    if interval_bound is not None:
                        assert err <= interval_bound, (name, i, err)
                    if forward_bound is not None:
                        assert err <= forward_bound, (name, i, err)

    @given(data=st.data())
    @settings(max_examples=_SMALL_BUDGET, deadline=None)
    def test_static_bounds_contain_observed_error(self, data):
        seed = data.draw(st.integers(0, 2**16), label="seed")
        kind = data.draw(st.sampled_from(["flat", "case", "call"]), label="kind")
        if kind == "call":
            spec = random_program(seed, n_helpers=1)
        else:
            spec = random_definition(
                seed,
                n_linear=data.draw(st.integers(1, 3))
                + (2 if kind == "case" else 0),
                n_steps=data.draw(st.integers(1, 5)),
                allow_case=kind == "case",
                allow_div=kind == "case",
            )
        n_rows = data.draw(st.integers(1, 3), label="n_rows")
        # Positive data: the regime both analyzers are sound in.
        columns = random_batch_inputs(spec, seed + 1, n_rows, positive=True)
        self.assert_bounds_contain_observed(spec, columns, n_rows)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_all_executed_engines_pinned_seed(self, seed):
        # The reference interpreters and the process pool are too slow
        # for the hypothesis inner loop; pinned seeds cover them.
        spec = random_program(seed, n_helpers=1)
        columns = random_batch_inputs(spec, seed + 7, 4, positive=True)
        self.assert_bounds_contain_observed(spec, columns, 4, fast_only=False)

    def test_unbounded_analyses_report_unsound(self):
        session = Session()
        program = session.parse("F (x : num) (y : num) : num := sub x y")
        forward = session.audit(program, inputs={}, engine="forward")
        assert not forward.sound
        assert forward.static_bounds["forward_bound"] is None
        # Overlapping default ranges cannot exclude cancellation either.
        interval = session.audit(program, inputs={}, engine="interval")
        assert not interval.sound
        assert interval.static_bounds["forward_bound"] is None


class TestIntervalHypotheses:
    def test_scalar_vector_and_range_inputs_resolve_to_hulls(self):
        session = Session()
        program = session.parse(
            "F (x : num) (y : vec(2)) (w : num) : num :=\n"
            "  let (y0, y1) = y in add (mul x y0) (mul w y1)"
        )
        result = session.audit(
            program,
            inputs={"x": 2.0, "y": [3.0, 0.5, 7.0, 1.0]},
            engine="interval",
        )
        ranges = result.static_bounds["input_ranges"]
        assert ranges["x"] == [2.0, 2.0]
        assert ranges["y"] == [0.5, 7.0]
        assert ranges["w"] == [0.1, 1000.0]  # the paper's default

    @pytest.mark.parametrize(
        "inputs",
        [
            {"x": float("nan")},
            {"x": float("inf")},  # would render as non-RFC-8259 JSON
            {"x": [1.0, float("-inf")]},
            {"x": "wide"},
            {"x": []},
            {"nosuch": 1.0},
            {"x": True},
        ],
    )
    def test_bad_hypotheses_rejected(self, inputs):
        session = Session()
        program = session.parse("F (x : num) (y : num) : num := add x y")
        with pytest.raises(ValueError):
            session.audit(program, inputs=inputs, engine="interval")

    def test_forward_rejects_unknown_names_too(self):
        # forward ignores hypotheses, but a typo must not pass silently.
        session = Session()
        program = session.parse("F (x : num) (y : num) : num := add x y")
        with pytest.raises(ValueError):
            session.audit(program, inputs={"nosuch": 1.0}, engine="forward")


class TestSweepEngine:
    def _workload(self):
        session = Session()
        program = session.parse(
            "Scale (x : num) (y : num) (w : num) : num := add (mul x y) w"
        )
        inputs = {
            "x": [1.5, 2.25, 1.0 / 3.0, 1e-3],
            "y": [3.0, 1.0, 7.0, 2.5],
            "w": [1.0, 2.0, 0.25, 9.0],
        }
        return session, program, inputs

    def test_per_precision_bitwise_equals_independent_audits(self):
        session, program, inputs = self._workload()
        sweep = session.audit(program, inputs=inputs, engine="sweep")
        assert sweep.schema_version == 3
        for bits in SWEEP_PRECISIONS:
            independent = session.audit(
                program, inputs=inputs, engine="batch", precision_bits=bits
            )
            assert sweep.per_precision[str(bits)] == independent.payload, bits
            # …and therefore the rendered bytes agree too.
            assert json.dumps(sweep.per_precision[str(bits)], indent=2) == (
                independent.to_json()
            )

    def test_per_precision_eft_bitwise_and_decimal_cross(self):
        # The sweep engine inherits the EFT fast path: explicitly under
        # exact_backend="eft" its per_precision entries stay bit-equal
        # to independent batch audits, and — modulo the informational
        # backend stamp — to the Decimal reference's bytes too.
        session, program, inputs = self._workload()
        sweep = session.audit(
            program, inputs=inputs, engine="sweep", exact_backend="eft"
        )
        for bits in SWEEP_PRECISIONS:
            independent = session.audit(
                program,
                inputs=inputs,
                engine="batch",
                precision_bits=bits,
                exact_backend="eft",
            )
            assert sweep.per_precision[str(bits)] == independent.payload, bits
            reference = session.audit(
                program,
                inputs=inputs,
                engine="batch",
                precision_bits=bits,
                exact_backend="decimal",
            )
            got = dict(sweep.per_precision[str(bits)])
            want = dict(reference.payload)
            assert got.pop("exact_backend") == "eft"
            assert want.pop("exact_backend") == "decimal"
            assert got == want, bits

    def test_tightest_bits_follow_from_independent_verdicts(self):
        session, program, inputs = self._workload()
        sweep = session.audit(program, inputs=inputs, engine="sweep")
        verdicts = {
            bits: session.audit(
                program, inputs=inputs, engine="batch", precision_bits=bits
            ).payload["sound"]
            for bits in SWEEP_PRECISIONS
        }
        n_rows = sweep.payload["n_rows"]
        expected = []
        for i in range(n_rows):
            sound_bits = [b for b in SWEEP_PRECISIONS if verdicts[b][i]]
            expected.append(min(sound_bits) if sound_bits else None)
        assert sweep.payload["tightest_sound_bits"] == expected
        assert sweep.sound == all(b is not None for b in expected)

    def test_empty_batch(self):
        session, program, _ = self._workload()
        result = session.audit(
            program, inputs={"x": [], "y": [], "w": []}, engine="sweep"
        )
        assert result.sound
        assert result.payload["n_rows"] == 0
        assert result.payload["tightest_sound_bits"] == []


class TestStaticSurfaceParity:
    """Session == CLI --json == served body, byte for byte, schema v3."""

    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        from repro.service.cache import deactivate
        from repro.service.server import AuditServer, serve

        deactivate()
        cache_dir = tmp_path_factory.mktemp("static-parity-cache")
        handle = serve(AuditServer(port=0, cache_dir=str(cache_dir)))
        try:
            yield handle
        finally:
            handle.stop()
            deactivate()

    @pytest.mark.parametrize("engine", ["interval", "forward", "sweep"])
    def test_new_engines_byte_identical_across_surfaces(
        self, served, tmp_path, engine
    ):
        from repro.cli import main
        from repro.service.client import audit

        spec = random_program(5, n_helpers=1)
        source = pretty_program(spec.program)
        columns = random_batch_inputs(spec, 11, 3, positive=True)
        inputs = {k: v.tolist() for k, v in columns.items()}

        session = Session()
        result = session.audit(
            session.parse(source), inputs=inputs, engine=engine
        )
        assert result.schema_version == 3

        status, body = audit(
            served.host, served.port,
            {"source": source, "inputs": inputs, "engine": engine},
        )
        assert status == 200
        assert body == result.to_json() + "\n"

        path = tmp_path / "prog.bean"
        path.write_text(source)
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            main(
                ["witness", str(path), "--inputs", json.dumps(inputs),
                 "--json", "--engine", engine]
            )
        assert buffer.getvalue() == body
        # The wire payload round-trips the strict v3 reader.
        rebuilt = AuditResult.from_json(body)
        assert rebuilt.payload == result.payload

    def test_cli_human_output_mentions_static_verdict(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "prog.bean"
        path.write_text(
            "F (x : num) (y : num) (w : num) : num := add (mul x y) w\n"
        )
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main(
                ["witness", str(path), "--inputs",
                 '{"x": [0.5, 4.0], "y": [0.5, 4.0]}',
                 "--engine", "interval"]
            )
        assert code == 0
        out = buffer.getvalue()
        assert "finite static bound derived: True" in out
        assert "static analysis" in out


class TestDeepPrograms:
    """The acceptance bar: Sum 10000 under the default recursion limit."""

    def test_sum_10000_interval_and_forward(self):
        import sys

        from repro.analysis.forward import forward_error_bound
        from repro.analysis.intervals import interval_forward_bound
        from repro.programs.generators import vec_sum

        assert sys.getrecursionlimit() <= 10000, (
            "the point is the *default* limit; if this fails the limit "
            "was raised globally"
        )
        definition = vec_sum(10000)
        grade = forward_error_bound(definition)
        assert grade.coeff == 9999
        bound = interval_forward_bound(definition)
        assert bound == pytest.approx(grade.evaluate(2.0**-53), rel=1e-6)
