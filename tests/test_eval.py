"""Tests for the Λ_S big-step evaluators (Figure 6)."""

from decimal import Decimal

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import parse_expression
from repro.lam_s import (
    EvalError,
    UNIT_VALUE,
    VInl,
    VInr,
    VNum,
    VPair,
    evaluate,
)
from repro.programs.generators import vec_sum
from repro.lam_s.values import vector_value

floats = st.floats(
    min_value=-1e10, max_value=1e10, allow_nan=False, allow_infinity=False
)


def run(src, env=None, mode="approx", **kw):
    return evaluate(parse_expression(src), env or {}, mode=mode, **kw)


class TestArithmetic:
    def test_add_approx_is_binary64(self):
        result = run("add x y", {"x": VNum(0.1), "y": VNum(0.2)})
        assert result.as_float() == 0.1 + 0.2  # exactly the float sum

    def test_add_ideal_is_exact(self):
        from decimal import localcontext

        result = run("add x y", {"x": VNum(0.1), "y": VNum(0.2)}, mode="ideal")
        # Decimal sum of the exact binary values of 0.1 and 0.2, at the
        # evaluator's working precision.
        with localcontext() as ctx:
            ctx.prec = 50
            expected = Decimal(0.1) + Decimal(0.2)
        assert result.as_decimal() == expected

    def test_sub(self):
        assert run("sub x y", {"x": VNum(5.0), "y": VNum(3.0)}).as_float() == 2.0

    def test_mul(self):
        assert run("mul x y", {"x": VNum(5.0), "y": VNum(3.0)}).as_float() == 15.0

    def test_dmul_evaluates_like_mul(self):
        assert run("dmul x y", {"x": VNum(5.0), "y": VNum(3.0)}).as_float() == 15.0

    def test_div_success(self):
        result = run("div x y", {"x": VNum(6.0), "y": VNum(3.0)})
        assert result == VInl(VNum(2.0))

    def test_div_by_zero_returns_inr(self):
        result = run("div x y", {"x": VNum(6.0), "y": VNum(0.0)})
        assert result == VInr(UNIT_VALUE)

    def test_div_by_zero_ideal(self):
        result = run("div x y", {"x": VNum(6.0), "y": VNum(0.0)}, mode="ideal")
        assert result == VInr(UNIT_VALUE)

    @given(floats, floats)
    def test_ideal_vs_approx_add(self, x, y):
        """Ideal and approximate sums agree to relative 2u."""
        approx = run("add x y", {"x": VNum(x), "y": VNum(y)}).as_decimal()
        ideal = run("add x y", {"x": VNum(x), "y": VNum(y)}, mode="ideal").as_decimal()
        if ideal != 0:
            assert abs(approx - ideal) / abs(ideal) <= Decimal(2) ** -52


class TestStructures:
    def test_unit(self):
        assert run("()") == UNIT_VALUE

    def test_pair(self):
        result = run("(x, y)", {"x": VNum(1.0), "y": VNum(2.0)})
        assert result == VPair(VNum(1.0), VNum(2.0))

    def test_let(self):
        assert run("let v = add x y in mul v z",
                   {"x": VNum(1.0), "y": VNum(2.0), "z": VNum(4.0)}).as_float() == 12.0

    def test_let_pair(self):
        env = {"p": VPair(VNum(3.0), VNum(4.0))}
        assert run("let (a, b) = p in add a b", env).as_float() == 7.0

    def test_case_inl(self):
        env = {"s": VInl(VNum(10.0))}
        assert run("case s of inl (a) => a | inr (b) => b", env).as_float() == 10.0

    def test_case_inr(self):
        env = {"s": VInr(VNum(20.0))}
        assert run("case s of inl (a) => a | inr (b) => b", env).as_float() == 20.0

    def test_bang_transparent(self):
        assert run("!x", {"x": VNum(1.5)}).as_float() == 1.5

    def test_injection(self):
        assert run("inl x", {"x": VNum(1.0)}) == VInl(VNum(1.0))


class TestErrors:
    def test_unbound_variable(self):
        with pytest.raises(EvalError, match="unbound"):
            run("ghost")

    def test_letpair_of_scalar(self):
        with pytest.raises(EvalError, match="pair"):
            run("let (a, b) = x in a", {"x": VNum(1.0)})

    def test_case_of_non_sum(self):
        with pytest.raises(EvalError, match="sum"):
            run("case x of inl (a) => a | inr (b) => b", {"x": VNum(1.0)})

    def test_arith_on_pair(self):
        with pytest.raises(EvalError, match="non-number"):
            run("add x y", {"x": VPair(VNum(1.0), VNum(2.0)), "y": VNum(1.0)})

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            run("x", {"x": VNum(1.0)}, mode="quantum")

    def test_unknown_call(self):
        with pytest.raises(EvalError, match="unknown"):
            run("F x", {"x": VNum(1.0)})


class TestDeterminismAndNormalization:
    @given(st.integers(min_value=0, max_value=3000))
    def test_deterministic(self, seed):
        from strategies import random_definition, random_inputs

        spec = random_definition(seed)
        env = {k: VNum(v) for k, v in random_inputs(spec, seed).items()}
        first = evaluate(spec.definition.body, env, mode="approx")
        second = evaluate(spec.definition.body, env, mode="approx")
        assert first == second

    def test_deep_program_evaluates(self):
        definition = vec_sum(500)
        env = {"x": vector_value([1.0] * 500)}
        result = evaluate(definition.body, env, mode="approx")
        assert result.as_float() == 500.0

    def test_calls_via_program(self):
        from repro.core import parse_program

        program = parse_program(
            """
            Double (x : num) (y : num) := add x y
            Main (a : num) (b : num) := Double a b
            """
        )
        env = {"a": VNum(2.0), "b": VNum(3.0)}
        result = evaluate(program["Main"].body, env, mode="approx", program=program)
        assert result.as_float() == 5.0


class TestPrecisionControl:
    def test_custom_precision(self):
        env = {"x": VNum(1.0), "y": VNum(3.0)}
        low = evaluate(parse_expression("div x y"), env, mode="ideal", precision=5)
        high = evaluate(parse_expression("div x y"), env, mode="ideal", precision=40)
        assert len(str(high.body.as_decimal())) > len(str(low.body.as_decimal()))
