"""Tests for the Fu-et-al-style dynamic backward error estimator."""

import math

import pytest

from repro.analysis.dynamic import (
    FU_PUBLISHED,
    estimate_multivariate,
    estimate_scalar,
)
from repro.programs.transcendental import (
    TABLE2_RANGE,
    cos_ideal,
    cos_kernel,
    sin_ideal,
    sin_kernel,
)


class TestScalar:
    def test_identity_kernel_zero_error(self):
        est = estimate_scalar(lambda x: x, lambda d: d, (0.5, 2.0), samples=8)
        assert est.max_backward_error == 0.0

    def test_square_kernel_order_u(self):
        # x*x rounds once: backward error ~ u/2 on the input (split as x̃²).
        est = estimate_scalar(
            lambda x: x * x, lambda d: d * d, (0.5, 2.0), samples=16
        )
        assert est.max_backward_error < 1e-15
        assert est.max_backward_error > 0.0

    def test_sin_matches_published_order(self):
        est = estimate_scalar(sin_kernel, sin_ideal, TABLE2_RANGE, samples=16)
        published = FU_PUBLISHED["sin"]["backward_bound"]
        assert est.max_backward_error == pytest.approx(published, rel=1.0)

    def test_cos_matches_published_order(self):
        est = estimate_scalar(cos_kernel, cos_ideal, TABLE2_RANGE, samples=16)
        published = FU_PUBLISHED["cos"]["backward_bound"]
        # Same order of magnitude (sampling-dependent).
        assert published / 30 < est.max_backward_error < published * 30

    def test_deterministic_given_seed(self):
        a = estimate_scalar(sin_kernel, sin_ideal, TABLE2_RANGE, samples=8, seed=1)
        b = estimate_scalar(sin_kernel, sin_ideal, TABLE2_RANGE, samples=8, seed=1)
        assert a.max_backward_error == b.max_backward_error

    def test_str(self):
        est = estimate_scalar(lambda x: x, lambda d: d, (0.5, 2.0), samples=2)
        assert "backward error" in str(est)


class TestMultivariate:
    def test_dot_product_small_error(self):
        def kernel(p):
            return p[0] * p[1] + p[2] * p[3]

        def ideal(p):
            return p[0] * p[1] + p[2] * p[3]

        est = estimate_multivariate(
            kernel, ideal, [[1.3, 2.7, 0.9, 1.1]], penalty=1e8
        )
        # Heuristic search: the perturbation estimate must be far below
        # any macroscopic scale (Fu et al.'s estimates are of this kind).
        assert est.max_backward_error < 1e-6

    def test_respects_perturb_indices(self):
        def kernel(p):
            return p[0] + p[1]

        def ideal(p):
            return p[0] + p[1]

        est = estimate_multivariate(
            kernel, ideal, [[1.0, 2.0]], perturb_indices=[1], penalty=1e8
        )
        assert math.isfinite(est.max_backward_error)


class TestPublishedConstants:
    def test_all_benchmarks_present(self):
        assert set(FU_PUBLISHED) == {"sin", "cos"}

    def test_values_quoted_from_table6(self):
        assert FU_PUBLISHED["sin"]["backward_bound"] == 1.10e-16
        assert FU_PUBLISHED["cos"]["backward_bound"] == 5.43e-09
        assert FU_PUBLISHED["sin"]["timing_ms"] == 1280.0
        assert FU_PUBLISHED["cos"]["timing_ms"] == 1310.0
