"""The shipped examples/ scripts must run cleanly end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_script_runs(script, capsys, monkeypatch):
    # Scripts use asserts internally; a clean run is the test.
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_expected_scripts_present():
    assert "quickstart.py" in SCRIPTS
    assert len(SCRIPTS) >= 3


def test_bean_sources_check(tmp_path):
    from repro.core import check_program, parse_program

    for bean in sorted((EXAMPLES_DIR / "bean").glob("*.bean")):
        program = parse_program(bean.read_text())
        check_program(program)


# Guard against scripts mutating global interpreter state.
def test_no_recursion_limit_leak():
    assert sys.getrecursionlimit() < 10_000_000
