"""Tests for the Gappa-like interval + rounding analyzer."""

import math
import random

import pytest

from repro.analysis.intervals import DEFAULT_RANGE, Interval, interval_forward_bound
from repro.analysis.metrics import rp
from repro.core import check_program, parse_program
from repro.lam_s import VNum, evaluate
from repro.programs.generators import dot_prod, vec_sum


def bound_of(src, name=None, **kw):
    program = parse_program(src)
    check_program(program)
    definition = program[name] if name else program.main
    return interval_forward_bound(definition, program, **kw)


class TestIntervalArithmetic:
    def test_add(self):
        r = Interval(1.0, 2.0) + Interval(3.0, 4.0)
        assert r.lo <= 4.0 and r.hi >= 6.0

    def test_sub(self):
        r = Interval(1.0, 2.0) - Interval(0.5, 1.0)
        assert r.lo <= 0.0 and r.hi >= 1.5

    def test_mul_signs(self):
        r = Interval(-2.0, 3.0) * Interval(-1.0, 4.0)
        assert r.lo <= -8.0 and r.hi >= 12.0

    def test_divide(self):
        r = Interval(1.0, 4.0).divide(Interval(2.0, 2.0))
        assert r.lo <= 0.5 and r.hi >= 2.0

    def test_divide_by_zero_interval(self):
        with pytest.raises(ZeroDivisionError):
            Interval(1.0, 2.0).divide(Interval(-1.0, 1.0))

    def test_contains_zero(self):
        assert Interval(-1.0, 1.0).contains_zero()
        assert not Interval(0.5, 1.0).contains_zero()

    def test_outward_rounding(self):
        r = Interval(0.1, 0.1) + Interval(0.2, 0.2)
        assert r.lo < 0.1 + 0.2 < r.hi

    def test_invalid(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)


class TestAnalyzer:
    def test_add_positive_range(self):
        b = bound_of("F (x : num) (y : num) := add x y", u=2.0**-53)
        eps = (2.0**-53) / (1 - 2.0**-53)
        assert b == pytest.approx(eps)

    def test_sub_separated_intervals_finite(self):
        # With x in [10, 20] and y in [1, 2], x - y cannot cancel.
        b = bound_of(
            "F (x : num) (y : num) := sub x y",
            ranges={"x": (10.0, 20.0), "y": (1.0, 2.0)},
        )
        assert math.isfinite(b)
        assert b < 1e-14  # amplification κ ≤ (20+2)/8

    def test_sub_overlapping_intervals_unbounded(self):
        b = bound_of("F (x : num) (y : num) := sub x y")  # both [0.1, 1000]
        assert b == math.inf

    def test_div_by_zero_possible_unbounded(self):
        b = bound_of(
            "F (x : num) (y : num) := div x y",
            ranges={"x": (1.0, 2.0), "y": (-1.0, 1.0)},
        )
        assert b == math.inf

    def test_div_safe_interval(self):
        b = bound_of("F (x : num) (y : num) := div x y")
        assert math.isfinite(b)

    def test_matches_forward_analyzer_on_positive_programs(self):
        from repro.analysis.forward import forward_error_bound

        for make in (lambda: vec_sum(32), lambda: dot_prod(16)):
            definition = make()
            gappa = interval_forward_bound(definition, u=2.0**-53)
            numfuzz = forward_error_bound(definition).evaluate(2.0**-53)
            assert gappa == pytest.approx(numfuzz, rel=1e-9)

    def test_default_range_is_papers(self):
        assert DEFAULT_RANGE == (0.1, 1000.0)


class TestRecursiveReferenceParity:
    """The retired recursive AST walker, kept as the bit-parity
    reference for the iterative IR sweep (the analysis-side mirror of
    the witness engines' ``engine="recursive"`` pattern)."""

    @pytest.mark.parametrize("seed", [1, 5, 9, 13, 21])
    def test_ir_equals_recursive_bit_for_bit(self, seed):
        from strategies import random_definition, random_program

        spec = random_program(seed, n_helpers=2, allow_div=True)
        ir = interval_forward_bound(spec.definition, spec.program)
        rec = interval_forward_bound(
            spec.definition, spec.program, method="recursive"
        )
        assert ir == rec  # identical floats, not approx
        spec2 = random_definition(seed, allow_case=True, allow_div=True)
        ir2 = interval_forward_bound(spec2.definition)
        rec2 = interval_forward_bound(spec2.definition, method="recursive")
        assert ir2 == rec2

    def test_benchmark_kernels_bit_for_bit(self):
        for definition in (vec_sum(64), dot_prod(32)):
            assert interval_forward_bound(definition) == (
                interval_forward_bound(definition, method="recursive")
            )

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            interval_forward_bound(vec_sum(4), method="ast")


class TestEmpiricalSoundness:
    def test_subtraction_bound_holds_on_samples(self):
        """The κ-amplified bound dominates observed error for in-range data."""
        program = parse_program(
            "F (x : num) (w : num) (y : num) := sub (mul x w) y"
        )
        check_program(program)
        definition = program["F"]
        ranges = {"x": (3.0, 4.0), "w": (3.0, 4.0), "y": (1.0, 2.0)}
        bound = interval_forward_bound(definition, ranges=ranges, u=2.0**-53)
        assert math.isfinite(bound)
        rng = random.Random(5)
        for _ in range(50):
            env = {
                k: VNum(rng.uniform(*ranges[k])) for k in ("x", "w", "y")
            }
            approx = evaluate(definition.body, env, mode="approx").as_float()
            exact = float(evaluate(definition.body, env, mode="ideal").as_decimal())
            assert rp(approx, exact) <= bound
