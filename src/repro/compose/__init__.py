"""Compositional audits: per-definition grade summaries composed at call sites.

The paper's central design point is that backward-error grades are
*compositional*: a definition's grade is derived once from its own body
(Figure 7's call rule then charges ``out + grade`` at every call site)
— yet the execution pipeline audits by splicing callee IR into callers
(:mod:`repro.ir.inline`, hard-capped at 200k ops), so every audit costs
O(whole program) and editing one helper re-audits everything.

This package is the summary layer that closes the gap:

* :mod:`~repro.compose.summary` — a serializable
  :class:`~repro.compose.summary.DefinitionSummary` per definition
  (per-parameter backward grade as an exact fraction of ε plus its
  integer half-ε encoding, result structure, sensitivity metadata),
  produced by the existing reverse-sweep grade inference and
  round-trippable to the exact :class:`~repro.core.checker.Judgment`
  the checker would infer;
* :mod:`~repro.compose.graph` — *deep* alpha-invariant fingerprints (a
  definition's own encoding folded with its transitive callees') and
  the dependency graph that invalidates exactly the summaries
  downstream of an edit;
* :mod:`~repro.compose.store` — the summary cache: an in-memory layer
  over the :class:`~repro.service.cache.ArtifactCache`'s ``summary``
  kind, keyed by deep fingerprint;
* :mod:`~repro.compose.engine` — call-site composition: audit a caller
  from callee summaries instead of re-deriving the whole program, with
  a per-site precision check and an execution plan that lifts the
  inline size cap when the predicted expansion is known safe;
* :mod:`~repro.compose.parsing` — per-definition-block parse reuse, so
  an edit re-lexes one definition, not the file, and unchanged
  definitions keep their object identity (and with it every
  identity-keyed cache downstream);
* :mod:`~repro.compose.incremental` / :mod:`~repro.compose.watch` —
  the O(diff) driver behind ``Session.audit(compose=...)`` and the
  ``repro watch`` CLI loop.
"""

from __future__ import annotations

from .engine import (
    COMPOSE_MAX_INLINE_OPS,
    CallSite,
    ComposedProgram,
    ComposeProvenance,
    compose_execution_ir,
    composed_judgments,
    composition_plan,
)
from .graph import DependencyGraph, deep_fingerprints, direct_callees
from .incremental import DefinitionAudit, IncrementalAuditor, IncrementalRun
from .parsing import ParseCache, split_definition_blocks
from .store import SummaryStore, default_store, reset_default_store
from .summary import (
    SUMMARY_VERSION,
    DefinitionSummary,
    ParamSummary,
    summarize_definition,
    summary_to_judgment,
)
from .watch import watch_file

__all__ = [
    "COMPOSE_MAX_INLINE_OPS",
    "CallSite",
    "ComposeProvenance",
    "ComposedProgram",
    "DefinitionAudit",
    "DefinitionSummary",
    "DependencyGraph",
    "IncrementalAuditor",
    "IncrementalRun",
    "ParamSummary",
    "ParseCache",
    "SUMMARY_VERSION",
    "SummaryStore",
    "split_definition_blocks",
    "compose_execution_ir",
    "composed_judgments",
    "composition_plan",
    "deep_fingerprints",
    "default_store",
    "direct_callees",
    "reset_default_store",
    "summarize_definition",
    "summary_to_judgment",
    "watch_file",
]
