"""``repro watch``: re-audit a Bean source file on every save.

A thin mtime-poll loop over :class:`~repro.compose.incremental.IncrementalAuditor`:
the first pass summarizes and audits every definition; each save after
that re-derives only the edited definitions and their dependents (deep
fingerprints do the invalidation), so the steady-state latency per save
is milliseconds.  ``once=True`` runs a single pass and returns — the
mode the CLI's ``--once`` flag and the tests use.
"""

from __future__ import annotations

import os
import time
from typing import IO, Optional

from ..core.errors import BeanError
from ..lam_s.eval import EvalError
from ..semantics.lens import LensDomainError
from .incremental import IncrementalAuditor, IncrementalRun

__all__ = ["watch_file"]


def _render(path: str, run: IncrementalRun) -> str:
    verdict = "sound" if run.all_sound else "UNSOUND"
    parts = [
        f"{len(run.audits)} definition(s)",
        f"{len(run.audited)} audited",
        f"{len(run.reused)} reused",
    ]
    if run.skipped:
        parts.append(f"{len(run.skipped)} skipped")
    return (
        f"{os.path.basename(path)}: "
        + ", ".join(parts)
        + f" — {verdict} [{run.elapsed_s * 1000.0:.1f} ms]"
    )


def watch_file(
    path: str,
    *,
    precision_bits: int = 53,
    u: Optional[float] = None,
    interval: float = 0.5,
    once: bool = False,
    max_audits: Optional[int] = None,
    out: Optional[IO[str]] = None,
) -> int:
    """Audit ``path`` now and after every modification.

    Returns the exit code of the *last* audit pass (the CLI's
    convention: 0 sound, 2 unsound, 1 source/evaluation error), looping
    until interrupted — or after one pass with ``once=True``, or after
    ``max_audits`` passes.
    """
    auditor = IncrementalAuditor(precision_bits=precision_bits, u=u)

    def emit(line: str) -> None:
        if out is not None:
            out.write(line + "\n")
            out.flush()
        else:
            print(line, flush=True)

    exit_code = 1
    audits = 0
    last_mtime: Optional[float] = None
    while True:
        try:
            mtime = os.stat(path).st_mtime
        except OSError:
            emit(f"error: cannot stat {path}")
            return 1
        if last_mtime is None or mtime != last_mtime:
            last_mtime = mtime
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                run = auditor.audit_program(source)
            except (BeanError, EvalError, LensDomainError) as exc:
                emit(f"error: {exc}")
                exit_code = 1
            else:
                emit(_render(path, run))
                exit_code = 0 if run.all_sound else 2
            audits += 1
            if once or (max_audits is not None and audits >= max_audits):
                return exit_code
        time.sleep(interval)
