"""The O(diff) incremental audit driver.

An :class:`IncrementalAuditor` audits *every* definition of a program —
summaries compose bottom-up, then each definition gets a scalar witness
run on synthesized default inputs — and memoizes each definition's
outcome under its deep fingerprint.  Re-auditing after an edit then
re-derives exactly the edited definition and its transitive dependents
(their deep fingerprints changed); everything else is a dictionary hit.
``repro watch`` (:mod:`repro.compose.watch`) wraps this in a file loop,
and ``benchmarks/bench_compose.py`` gates the resulting re-audit
speedup against the committed baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..core import ast_nodes as A
from ..core.errors import BeanError
from ..core.types import Discrete, Num, Tensor, Type, Unit
from ..lam_s.eval import EvalError
from ..semantics.lens import LensDomainError
from .engine import ComposedProgram, composed_judgments
from .parsing import ParseCache
from .store import SummaryStore

__all__ = ["DefinitionAudit", "IncrementalAuditor", "IncrementalRun"]

#: A definition audit outcome: audited fresh, reused from a previous
#: run (deep fingerprint unchanged), or skipped (no synthesizable
#: inputs / the lens left its domain).
AUDITED = "audited"
REUSED = "reused"
SKIPPED = "skipped"


@dataclass(frozen=True)
class DefinitionAudit:
    """One definition's outcome in an incremental run."""

    name: str
    status: str
    sound: Optional[bool]
    detail: str = ""


@dataclass(frozen=True)
class IncrementalRun:
    """The outcome of one :meth:`IncrementalAuditor.audit_program` call."""

    audits: Tuple[DefinitionAudit, ...]
    summaries_built: int
    summaries_reused: int
    elapsed_s: float

    @property
    def all_sound(self) -> bool:
        """Every audited/reused definition satisfied the theorem."""
        return all(a.sound is not False for a in self.audits)

    @property
    def audited(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.audits if a.status == AUDITED)

    @property
    def reused(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.audits if a.status == REUSED)

    @property
    def skipped(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.audits if a.status == SKIPPED)


def _default_value(ty: Type, counter: List[int]) -> Optional[object]:
    """A deterministic default input for ``ty``, or ``None`` if the type
    has no synthesizable canonical inhabitant (sums, unit).

    Tensor values flatten to the leaf list
    :func:`repro.semantics.witness.env_from_pythons` expects."""
    if isinstance(ty, Num):
        counter[0] += 1
        # Exactly representable, nonzero, distinct per leaf.
        return 1.5 + 0.25 * counter[0]
    if isinstance(ty, Discrete):
        return _default_value(ty.inner, counter)
    if isinstance(ty, Tensor):
        left = _default_value(ty.left, counter)
        right = _default_value(ty.right, counter)
        if left is None or right is None:
            return None
        flat: List[object] = []
        for side in (left, right):
            flat.extend(side if isinstance(side, list) else [side])
        return flat
    return None


def default_inputs(
    definition: A.Definition,
) -> Optional[Dict[str, object]]:
    """Deterministic inputs covering every parameter, or ``None`` when
    some parameter type (unit, sum) has no canonical default."""
    counter = [0]
    inputs: Dict[str, object] = {}
    for param in definition.params:
        if isinstance(param.ty, Unit):
            return None
        value = _default_value(param.ty, counter)
        if value is None:
            return None
        inputs[param.name] = value
    return inputs


class IncrementalAuditor:
    """Re-audits a program in time proportional to what changed."""

    def __init__(
        self,
        *,
        precision_bits: int = 53,
        u: Optional[float] = None,
        store: Optional[SummaryStore] = None,
    ) -> None:
        self.precision_bits = precision_bits
        self.u = u if u is not None else 2.0**-precision_bits
        self.store = store if store is not None else SummaryStore()
        self._results: Dict[str, DefinitionAudit] = {}
        # Re-parsing is the other O(program) cost an edit must not pay:
        # unchanged definition blocks reuse their parsed objects, which
        # keeps every identity-keyed cache downstream warm too.
        self._parser = ParseCache()

    def _key(self, fingerprint: str) -> str:
        return f"{self.precision_bits}/{self.u!r}/{fingerprint}"

    def audit_program(
        self, program: Union[str, A.Program]
    ) -> IncrementalRun:
        """Summarize + audit every definition, reusing unchanged work."""
        start = time.perf_counter()
        if isinstance(program, str):
            program = self._parser.parse(program)
        composed: ComposedProgram = composed_judgments(program, self.store)
        audits: List[DefinitionAudit] = []
        for definition in program:
            key = self._key(composed.fingerprints[definition.name])
            cached = self._results.get(key)
            if cached is not None:
                audits.append(
                    DefinitionAudit(
                        definition.name, REUSED, cached.sound, cached.detail
                    )
                )
                continue
            audit = self._audit_one(definition, program, composed)
            self._results[key] = audit
            audits.append(audit)
        return IncrementalRun(
            audits=tuple(audits),
            summaries_built=len(composed.built),
            summaries_reused=len(composed.reused),
            elapsed_s=time.perf_counter() - start,
        )

    def _audit_one(
        self,
        definition: A.Definition,
        program: A.Program,
        composed: ComposedProgram,
    ) -> DefinitionAudit:
        from ..semantics.interp import lens_of_definition
        from ..semantics.witness import run_witness

        inputs = default_inputs(definition)
        if inputs is None:
            return DefinitionAudit(
                definition.name, SKIPPED, None, "no default inputs"
            )
        try:
            lens = lens_of_definition(
                definition,
                composed.judgments[definition.name],
                program,
                precision_bits=self.precision_bits,
            )
            report = run_witness(
                definition,
                inputs,
                program=program,
                lens=lens,
                u=self.u,
            )
        except BeanError as exc:
            return DefinitionAudit(definition.name, SKIPPED, None, str(exc))
        except (EvalError, LensDomainError, ArithmeticError, ValueError) as exc:
            # e.g. a lens domain error on the synthesized inputs: the
            # definition still summarized; record why it has no verdict.
            return DefinitionAudit(definition.name, SKIPPED, None, str(exc))
        return DefinitionAudit(
            definition.name, AUDITED, bool(report.sound), ""
        )
