"""The summary cache: in-memory over the ArtifactCache's ``summary`` kind.

A :class:`SummaryStore` keeps summaries warm for the life of a process
(the audit server's prepared table, a watch loop, a reused
:class:`~repro.api.Session`) and, whenever a persistent
:class:`~repro.service.cache.ArtifactCache` is active, mirrors them to
disk under the new ``summary`` artifact kind so any later process —
another CLI run, a server restart — warm-starts its composition from
this one.  Keys are deep fingerprints
(:func:`repro.compose.graph.deep_fingerprints`): content-addressing
*is* the invalidation protocol.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..service.cache import active_cache
from .summary import SUMMARY_VERSION, DefinitionSummary

__all__ = ["SummaryStore", "default_store", "reset_default_store"]

#: The ArtifactCache kind summaries persist under.
SUMMARY_KIND = "summary"


class SummaryStore:
    """Two-layer (memory, then artifact cache) summary storage."""

    def __init__(self) -> None:
        self._memory: Dict[str, DefinitionSummary] = {}
        #: Observability counters (the server's ``/stats`` reports them).
        self.stats: Dict[str, int] = {
            "memory_hits": 0,
            "artifact_hits": 0,
            "misses": 0,
            "stores": 0,
        }

    def __len__(self) -> int:
        return len(self._memory)

    def get(self, fingerprint: str) -> Optional[DefinitionSummary]:
        """The summary keyed by ``fingerprint``, or ``None`` on miss."""
        summary = self._memory.get(fingerprint)
        if summary is not None:
            self.stats["memory_hits"] += 1
            return summary
        cache = active_cache()
        if cache is not None:
            loaded = cache.load(cache.keyed_key(SUMMARY_KIND, fingerprint))
            if (
                isinstance(loaded, DefinitionSummary)
                and loaded.version == SUMMARY_VERSION
                and loaded.fingerprint == fingerprint
            ):
                self.stats["artifact_hits"] += 1
                self._memory[fingerprint] = loaded
                return loaded
        self.stats["misses"] += 1
        return None

    def put(self, fingerprint: str, summary: DefinitionSummary) -> None:
        """Record ``summary`` in memory and, when active, on disk."""
        self._memory[fingerprint] = summary
        self.stats["stores"] += 1
        cache = active_cache()
        if cache is not None:
            cache.store(cache.keyed_key(SUMMARY_KIND, fingerprint), summary)

    def clear_memory(self) -> None:
        """Drop the in-memory layer (tests; the disk layer is untouched)."""
        self._memory.clear()


_DEFAULT: SummaryStore = SummaryStore()


def default_store() -> SummaryStore:
    """The process-global store engines share (prepared-table reuse)."""
    return _DEFAULT


def reset_default_store() -> SummaryStore:
    """Replace the process-global store with a fresh one (tests)."""
    global _DEFAULT
    _DEFAULT = SummaryStore()
    return _DEFAULT
