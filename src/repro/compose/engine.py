"""Call-site composition: auditing callers from callee summaries.

Grade derivation here is *structurally* compositional — the IR sweep's
``call`` rule charges ``out + callee grade`` per argument from the
callee's judgment alone — so composing summaries reproduces
whole-program inference bit for bit: :func:`composed_judgments` walks
the program once in definition order, reusing every summary whose deep
fingerprint is cached and running the reverse sweep only for the rest.

Execution is where inlining still matters (the batch engine vectorizes
a *flat* op list).  :func:`compose_execution_ir` plans it from summary
metadata: when the exhaustively expanded instruction budget fits the
standard :data:`~repro.ir.inline.MAX_INLINE_OPS` cap, the composed
path reuses the very same cached inlined IR as the reference path
(bit-identical payloads by construction); when the expansion exceeds
the cap but is known safe (below :data:`COMPOSE_MAX_INLINE_OPS`), the
summary's exact op accounting lifts the cap to precisely the predicted
size — programs the reference path must interpret row-by-row through
call frames vectorize under composition.

The per-site precision check lives in :func:`composition_plan`: a call
site composes in integer half-ε units when every callee grade is
half-integral (the fast sweep's encoding) and in exact fractions
otherwise — summaries store exact numerator/denominator pairs, so
composition never loses tightness and the only fallbacks to inlining
are the execution-side guards (cycle, arity, free variables, size
cap), each recorded by :mod:`repro.ir.inline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..core import ast_nodes as A
from ..core.checker import Judgment
from ..ir.cache import inlined_definition_ir, semantic_definition_ir
from ..ir.inline import MAX_INLINE_OPS, inline_calls, walk_ops
from ..ir.lower import CALL, IRProgram
from .graph import deep_fingerprints
from .store import SummaryStore, default_store
from .summary import DefinitionSummary, summarize_definition, summary_to_judgment

__all__ = [
    "COMPOSE_MAX_INLINE_OPS",
    "CallSite",
    "ComposeProvenance",
    "ComposedProgram",
    "compose_execution_ir",
    "composed_judgments",
    "composition_plan",
]

#: Absolute ceiling on a composed flattening.  The summary's op
#: accounting makes lifting :data:`~repro.ir.inline.MAX_INLINE_OPS`
#: safe — the expansion size is known before splicing — but memory for
#: the flattened op list is still real; beyond this, execution falls
#: back to the reference path (capped inline + scalar interpretation).
COMPOSE_MAX_INLINE_OPS = 5_000_000


@dataclass(frozen=True)
class CallSite:
    """One ``call`` op's composition decision in a caller's body.

    ``mode`` is ``"composed-halves"`` (all callee grades half-integral:
    the integer fast path applies), ``"composed-exact"`` (at least one
    grade needs the exact-fraction sweep — equally tight, just slower),
    or ``"unknown-callee"`` (no summary; the call will fail at run time
    exactly as the reference path's would).
    """

    callee: str
    mode: str


@dataclass(frozen=True)
class ComposedProgram:
    """The result of composing summaries over a whole program."""

    judgments: Dict[str, Judgment]
    summaries: Dict[str, DefinitionSummary]
    fingerprints: Dict[str, str]
    reused: Tuple[str, ...]
    built: Tuple[str, ...]


@dataclass(frozen=True)
class ComposeProvenance:
    """How one composed audit derived its grades (result rendering).

    Never part of the canonical audit payload — composed payloads stay
    byte-identical to the inlined reference — but carried on the
    :class:`~repro.api.result.AuditResult` so the CLI and API can show
    what composition did.
    """

    definition: str
    definitions: int
    summaries_reused: int
    summaries_built: int
    sites: Tuple[CallSite, ...]
    execution: str

    def describe(self) -> str:
        """A one-line human rendering (the CLI prints it to stderr)."""
        composed = sum(1 for s in self.sites if s.mode.startswith("composed"))
        return (
            f"compose: {self.definitions} definition(s), "
            f"{self.summaries_reused} summary(ies) reused, "
            f"{self.summaries_built} built; "
            f"{composed}/{len(self.sites)} call site(s) composed; "
            f"execution {self.execution}"
        )


def composed_judgments(
    program: A.Program,
    store: Optional[SummaryStore] = None,
) -> ComposedProgram:
    """Compose (or build) every definition's summary, in program order.

    Bit-for-bit equivalent to
    :func:`repro.core.checker.check_program`: a rebuilt summary
    round-trips the checker's own judgment exactly, and a cached one
    was distilled from an identical derivation (its deep fingerprint
    pins the definition and its transitive callees).
    """
    if store is None:
        store = default_store()
    fingerprints = deep_fingerprints(program)
    judgments: Dict[str, Judgment] = {}
    summaries: Dict[str, DefinitionSummary] = {}
    reused: List[str] = []
    built: List[str] = []
    for definition in program:
        fingerprint = fingerprints[definition.name]
        summary = store.get(fingerprint)
        if summary is None:
            summary = summarize_definition(
                definition, judgments, fingerprint, summaries
            )
            store.put(fingerprint, summary)
            built.append(definition.name)
        else:
            reused.append(definition.name)
        summaries[definition.name] = summary
        judgments[definition.name] = summary_to_judgment(summary)
    return ComposedProgram(
        judgments=judgments,
        summaries=summaries,
        fingerprints=fingerprints,
        reused=tuple(reused),
        built=tuple(built),
    )


def composition_plan(
    definition: A.Definition,
    summaries: Mapping[str, DefinitionSummary],
) -> Tuple[CallSite, ...]:
    """Per-call-site composition decisions for ``definition``'s body."""
    ir = semantic_definition_ir(definition)
    if not ir.has_calls:
        return ()
    sites: List[CallSite] = []
    for op in walk_ops(ir.ops):
        if op.code != CALL:
            continue
        callee = op.aux[0]
        summary = summaries.get(callee)
        if summary is None:
            sites.append(CallSite(callee, "unknown-callee"))
        elif all(p.halves is not None for p in summary.params):
            sites.append(CallSite(callee, "composed-halves"))
        else:
            sites.append(CallSite(callee, "composed-exact"))
    return tuple(sites)


def compose_execution_ir(
    definition: A.Definition,
    program: A.Program,
    summaries: Mapping[str, DefinitionSummary],
) -> Tuple[IRProgram, str]:
    """The execution IR of a composed audit, plus how it was obtained.

    Returns ``(ir, execution)`` where ``execution`` is
    ``"semantic"`` (no calls to flatten), ``"shared-inlined"`` (the
    expansion fits the standard cap, so the reference path's cached
    inlined IR is reused verbatim — byte-identical payloads for free),
    ``"lifted-cap"`` (the summary-predicted expansion exceeds the cap
    but is known safe, so the cap is lifted to exactly that size), or
    ``"beyond-ceiling"`` (even composition won't flatten this; the
    reference IR — and with it the scalar path — is used).
    """
    ir = semantic_definition_ir(definition)
    if not ir.has_calls:
        return ir, "semantic"
    summary = summaries.get(definition.name)
    predicted = None if summary is None else summary.total_ops
    if (
        predicted is not None
        and MAX_INLINE_OPS < predicted <= COMPOSE_MAX_INLINE_OPS
    ):
        return (
            inline_calls(ir, program, max_ops=predicted),
            "lifted-cap",
        )
    if predicted is not None and predicted > COMPOSE_MAX_INLINE_OPS:
        return inlined_definition_ir(definition, program), "beyond-ceiling"
    return inlined_definition_ir(definition, program), "shared-inlined"
