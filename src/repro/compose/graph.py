"""Deep fingerprints and the definition dependency graph.

A summary is only valid while the definition *and everything it calls*
are unchanged, so summaries are keyed by a **deep fingerprint**: the
definition's own alpha-invariant encoding
(:func:`repro.service.fingerprint.fingerprint_definition`) folded with
the deep fingerprints of its direct callees, in call order.  Editing a
definition therefore changes exactly the deep fingerprints of itself
and its transitive dependents — invalidation is the key change, no
explicit invalidation protocol needed — while every other definition's
summary keeps hitting the cache.  That is the O(diff) property the
incremental driver and ``repro watch`` build on.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, List, Set, Tuple

from ..core import ast_nodes as A
from ..core.ast_nodes import subexpressions
from ..ir.cache import IdentityCache
from ..service.fingerprint import fingerprint_definition

__all__ = ["DependencyGraph", "deep_fingerprints", "direct_callees"]

#: Definitions are immutable ASTs, so a definition object's base
#: fingerprint never changes; keying by identity makes re-fingerprinting
#: an unchanged program O(diff) when the parse layer
#: (:class:`repro.compose.parsing.ParseCache`) reuses definition
#: objects across edits.
_FINGERPRINTS: IdentityCache = IdentityCache(fingerprint_definition)
_CALLEES: IdentityCache = IdentityCache(
    lambda definition: _direct_callees_uncached(definition)
)

#: Version token folded into every deep fingerprint; bump when the
#: folding scheme changes.
_DEEP_VERSION = "deep/1"


def direct_callees(definition: A.Definition) -> Tuple[str, ...]:
    """The names ``definition`` calls directly, in first-use order.

    Built on :func:`repro.core.ast_nodes.subexpressions`, which walks
    iteratively — deeply nested benchmark bodies cannot hit the
    recursion limit.  Cached by definition identity.
    """
    result: Tuple[str, ...] = _CALLEES.get(definition)
    return result


def _direct_callees_uncached(definition: A.Definition) -> Tuple[str, ...]:
    seen: Set[str] = set()
    ordered: List[str] = []
    for expr in subexpressions(definition.body):
        if isinstance(expr, A.Call) and expr.name not in seen:
            seen.add(expr.name)
            ordered.append(expr.name)
    return tuple(ordered)


def _fold(own: str, callee_pairs: List[Tuple[str, str]]) -> str:
    """Hash a definition's own fingerprint with its callees' deep ones.

    Every token is length-prefixed before it reaches the hash, the same
    collision discipline the base fingerprint encoder follows.
    """
    h = hashlib.sha256()
    for token in [_DEEP_VERSION, own] + [
        part for pair in callee_pairs for part in pair
    ]:
        data = token.encode("utf-8")
        h.update(str(len(data)).encode("ascii") + b":" + data)
    return h.hexdigest()


def deep_fingerprints(program: A.Program) -> Dict[str, str]:
    """The deep fingerprint of every definition, in one forward pass.

    Bean programs resolve calls against *earlier* definitions only, so
    program order is already topological; a callee that is missing (or
    defined later — the checker rejects both when the call executes)
    contributes an ``unresolved`` token, keeping the pass total.
    """
    deep: Dict[str, str] = {}
    for definition in program:
        own: str = _FINGERPRINTS.get(definition)
        pairs: List[Tuple[str, str]] = []
        for callee in direct_callees(definition):
            resolved = deep.get(callee)
            if resolved is None:
                pairs.append((callee, "unresolved"))
            else:
                pairs.append((callee, resolved))
        deep[definition.name] = _fold(own, pairs)
    return deep


class DependencyGraph:
    """Call edges over a program's definitions, with reverse reachability.

    ``dependents_of(name)`` answers the invalidation question directly:
    after editing ``name``, exactly ``{name} | dependents_of(name)``
    need new summaries — everything else keeps its deep fingerprint.
    """

    def __init__(self, program: A.Program) -> None:
        self.order: Tuple[str, ...] = tuple(d.name for d in program)
        self.callees: Dict[str, Tuple[str, ...]] = {
            d.name: direct_callees(d) for d in program
        }
        self._callers: Dict[str, Set[str]] = {name: set() for name in self.order}
        for caller, callees in self.callees.items():
            for callee in callees:
                if callee in self._callers:
                    self._callers[callee].add(caller)

    def direct_dependents(self, name: str) -> FrozenSet[str]:
        """The definitions that call ``name`` directly."""
        return frozenset(self._callers.get(name, frozenset()))

    def dependents_of(self, name: str) -> FrozenSet[str]:
        """Every definition whose summary an edit to ``name`` invalidates
        (transitive callers; ``name`` itself is not included)."""
        out: Set[str] = set()
        frontier: List[str] = [name]
        while frontier:
            current = frontier.pop()
            for caller in self._callers.get(current, ()):
                if caller not in out:
                    out.add(caller)
                    frontier.append(caller)
        return frozenset(out)
