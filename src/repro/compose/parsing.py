"""Incremental parsing: per-definition text blocks, cached by content.

Re-auditing after one edit was O(program) before it even reached the
summary layer: :func:`repro.core.parser.parse_program` re-lexes the
whole file, and fresh ``Definition`` objects miss every identity-keyed
cache (judgments, lowered IR, deep fingerprints).  The grammar makes a
cheaper route sound: a Bean definition always starts with a name at
column zero and the parser's own ``_begins_definition`` lookahead stops
expression parsing exactly at the next such header, so a file splits
into per-definition text blocks that parse independently.  The
:class:`ParseCache` reuses the parsed ``Definition`` *object* for every
block whose text is unchanged — downstream identity-keyed caches then
hit for free — and falls back to a whole-file parse the moment the
block structure looks irregular (a continuation line at column zero, a
block that does not parse to exactly one definition), so it can never
disagree with :func:`parse_program` silently.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import ast_nodes as A
from ..core.errors import BeanError
from ..core.parser import parse_program

__all__ = ["ParseCache", "split_definition_blocks"]


def split_definition_blocks(source: str) -> Optional[List[str]]:
    """Split source into per-definition blocks, or ``None`` if the text
    does not follow the one-header-per-definition layout (a non-blank
    line at column zero starts each definition; continuation lines are
    indented)."""
    blocks: List[str] = []
    current: List[str] = []
    for line in source.splitlines():
        if line and not line[0].isspace():
            if current:
                blocks.append("\n".join(current))
            current = [line]
        elif line.strip() and not current:
            return None  # indented text before any definition header
        elif current:
            current.append(line)
    if current:
        blocks.append("\n".join(current))
    return blocks or None


class ParseCache:
    """Parse Bean source reusing per-definition results across edits.

    ``parse`` returns a program in which every definition whose text
    block is unchanged since the previous call *is the same object* as
    before; only edited blocks are re-lexed and re-parsed.  The cache
    keeps exactly the blocks of the latest successful parse, so memory
    is bounded by one file.
    """

    def __init__(self) -> None:
        self._blocks: Dict[str, A.Definition] = {}

    def parse(self, source: str) -> A.Program:
        blocks = split_definition_blocks(source)
        if blocks is None:
            return parse_program(source)
        fresh: Dict[str, A.Definition] = {}
        definitions: List[A.Definition] = []
        for block in blocks:
            definition = self._blocks.get(block) or fresh.get(block)
            if definition is None:
                try:
                    parsed = list(parse_program(block))
                except BeanError:
                    return parse_program(source)  # loud, with real positions
                if len(parsed) != 1:
                    return parse_program(source)
                definition = parsed[0]
            fresh[block] = definition
            definitions.append(definition)
        try:
            program = A.Program(definitions)
        except (BeanError, ValueError):
            return parse_program(source)
        self._blocks = fresh
        return program
