"""Per-definition backward-error summaries.

A :class:`DefinitionSummary` is the serializable residue of running the
reverse-sweep grade inference once over one definition: per-parameter
backward grades (as exact fractions of ε, with the integer half-ε
encoding the fast sweep uses when it applies), the result type
structure, and the sensitivity/size metadata the compositional engine
needs to plan execution (own op count, exhaustively-expanded op count,
direct callees).

The crucial property is **exact round-tripping**:
:func:`summary_to_judgment` rebuilds the precise
:class:`~repro.core.checker.Judgment` the checker inferred — grades are
stored as integer numerator/denominator pairs, so no precision is lost
and composing summaries at call sites yields grades bit-identical to
whole-program inference.  The parity harness in ``tests/test_compose.py``
holds this across the random-program corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core import ast_nodes as A
from ..core.checker import Judgment, check_definition
from ..core.context import Binding, DiscreteContext, LinearContext
from ..core.grades import Grade
from ..core.types import (
    NUM,
    UNIT,
    Discrete,
    Num,
    Sum,
    Tensor,
    Type,
    Unit,
    is_discrete,
)

__all__ = [
    "SUMMARY_VERSION",
    "DefinitionSummary",
    "ParamSummary",
    "decode_type",
    "encode_type",
    "summarize_definition",
    "summary_to_judgment",
]

#: Bump when the summary layout changes: a cached summary of a different
#: version is treated as a miss and rebuilt.
SUMMARY_VERSION = 1


# --------------------------------------------------------------------------
# Structural type codec (JSON-able, purely positional)
# --------------------------------------------------------------------------


def encode_type(ty: Type) -> Any:
    """Encode ``ty`` as a nested JSON-able structure."""
    if isinstance(ty, Num):
        return "num"
    if isinstance(ty, Unit):
        return "unit"
    if isinstance(ty, Tensor):
        return ["t", encode_type(ty.left), encode_type(ty.right)]
    if isinstance(ty, Sum):
        return ["s", encode_type(ty.left), encode_type(ty.right)]
    if isinstance(ty, Discrete):
        return ["m", encode_type(ty.inner)]
    raise TypeError(f"cannot encode type {ty!r}")


def decode_type(enc: Any) -> Type:
    """Invert :func:`encode_type`."""
    if enc == "num":
        return NUM
    if enc == "unit":
        return UNIT
    if isinstance(enc, (list, tuple)) and enc:
        tag = enc[0]
        if tag == "t" and len(enc) == 3:
            return Tensor(decode_type(enc[1]), decode_type(enc[2]))
        if tag == "s" and len(enc) == 3:
            return Sum(decode_type(enc[1]), decode_type(enc[2]))
        if tag == "m" and len(enc) == 2:
            return Discrete(decode_type(enc[1]))
    raise ValueError(f"cannot decode type encoding {enc!r}")


def _halves(coeff: Fraction) -> Optional[int]:
    """``coeff`` in integer half-ε units, or ``None`` if not half-integral."""
    doubled = coeff * 2
    if doubled.denominator == 1:
        return int(doubled)
    return None


# --------------------------------------------------------------------------
# The summary record
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ParamSummary:
    """One parameter's slice of a definition summary.

    ``grade`` is the inferred backward grade as an exact
    ``(numerator, denominator)`` fraction of ε (``(0, 1)`` for discrete
    or unused-linear parameters); ``halves`` is the same grade in
    integer half-ε units when it is half-integral (the encoding the
    fast integer sweep composes in), ``None`` otherwise; ``declared``
    carries a stability-contract annotation, if any, so the rebuilt
    parameter tuple matches the source definition's exactly.
    """

    name: str
    ty: Any
    discrete: bool
    used: bool
    grade: Tuple[int, int]
    halves: Optional[int]
    declared: Optional[Tuple[int, int]]

    @property
    def grade_fraction(self) -> Fraction:
        return Fraction(*self.grade)


@dataclass(frozen=True)
class DefinitionSummary:
    """The serializable grade summary of one checked definition.

    ``fingerprint`` is the *deep* fingerprint the summary was derived
    under (own alpha-invariant encoding folded with every transitive
    callee's — see :func:`repro.compose.graph.deep_fingerprints`), so a
    cached summary can never be served across an edit to the definition
    or anything it calls.  ``n_ops`` counts the definition's own
    semantic-mode IR instructions; ``total_ops`` counts the fully
    call-expanded instruction budget (the exact quantity
    :func:`repro.ir.inline.inline_calls` caps), letting the composed
    execution planner decide up front whether flattening fits.
    """

    name: str
    fingerprint: str
    params: Tuple[ParamSummary, ...]
    result: Any
    n_ops: int
    total_ops: int
    max_grade: Tuple[int, int]
    callees: Tuple[str, ...]
    version: int = SUMMARY_VERSION

    def to_json_dict(self) -> Dict[str, Any]:
        """A stable JSON rendering (inspection, wire transport, tests)."""
        return {
            "version": self.version,
            "name": self.name,
            "fingerprint": self.fingerprint,
            "params": [
                {
                    "name": p.name,
                    "ty": p.ty,
                    "discrete": p.discrete,
                    "used": p.used,
                    "grade": list(p.grade),
                    "halves": p.halves,
                    "declared": None if p.declared is None else list(p.declared),
                }
                for p in self.params
            ],
            "result": self.result,
            "n_ops": self.n_ops,
            "total_ops": self.total_ops,
            "max_grade": list(self.max_grade),
            "callees": list(self.callees),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "DefinitionSummary":
        """Invert :meth:`to_json_dict`; loud on version mismatch."""
        version = data.get("version")
        if version != SUMMARY_VERSION:
            raise ValueError(
                f"unsupported summary version {version!r} "
                f"(this build reads version {SUMMARY_VERSION})"
            )
        params = tuple(
            ParamSummary(
                name=str(p["name"]),
                ty=p["ty"],
                discrete=bool(p["discrete"]),
                used=bool(p["used"]),
                grade=(int(p["grade"][0]), int(p["grade"][1])),
                halves=None if p["halves"] is None else int(p["halves"]),
                declared=(
                    None
                    if p["declared"] is None
                    else (int(p["declared"][0]), int(p["declared"][1]))
                ),
            )
            for p in data["params"]
        )
        return cls(
            name=str(data["name"]),
            fingerprint=str(data["fingerprint"]),
            params=params,
            result=data["result"],
            n_ops=int(data["n_ops"]),
            total_ops=int(data["total_ops"]),
            max_grade=(int(data["max_grade"][0]), int(data["max_grade"][1])),
            callees=tuple(str(c) for c in data["callees"]),
        )


# --------------------------------------------------------------------------
# Inference → summary → judgment
# --------------------------------------------------------------------------


def _fraction_pair(coeff: Fraction) -> Tuple[int, int]:
    return (coeff.numerator, coeff.denominator)


def summarize_definition(
    definition: A.Definition,
    judgments: Mapping[str, Judgment],
    fingerprint: str,
    callee_summaries: Mapping[str, "DefinitionSummary"],
) -> DefinitionSummary:
    """Run grade inference once and distill the summary.

    ``judgments`` must cover every callee (program order guarantees
    callees are summarized first); they feed the IR sweep's ``call``
    rule, which is where composition actually happens — the sweep
    charges ``out + callee grade`` per argument without ever looking
    inside the callee's body.
    """
    from ..ir.cache import semantic_definition_ir
    from ..ir.inline import count_ops, walk_ops
    from ..ir.lower import CALL

    judgment = check_definition(
        definition, judgments if judgments else None
    )
    ir = semantic_definition_ir(definition)
    n_ops = count_ops(ir.ops)
    # The exhaustively expanded instruction budget, mirroring the
    # inliner's accounting exactly: each call site costs its callee's
    # expanded budget plus the identity join op.
    total_ops = n_ops
    callees: List[str] = []
    for op in walk_ops(ir.ops):
        if op.code != CALL:
            continue
        callee_name = op.aux[0]
        if callee_name not in callees:
            callees.append(callee_name)
        callee = callee_summaries.get(callee_name)
        if callee is not None:
            total_ops += callee.total_ops + 1

    params: List[ParamSummary] = []
    for p in definition.params:
        discrete = is_discrete(p.ty)
        if discrete:
            used = False
            coeff = Fraction(0)
        else:
            binding = judgment.linear.get(p.name)
            used = binding is not None
            coeff = judgment.grade_of(p.name).coeff
        params.append(
            ParamSummary(
                name=p.name,
                ty=encode_type(p.ty),
                discrete=discrete,
                used=used,
                grade=_fraction_pair(coeff),
                halves=_halves(coeff),
                declared=(
                    None
                    if p.declared_grade is None
                    else _fraction_pair(Grade(p.declared_grade).coeff)
                ),
            )
        )
    return DefinitionSummary(
        name=definition.name,
        fingerprint=fingerprint,
        params=tuple(params),
        result=encode_type(judgment.result),
        n_ops=n_ops,
        total_ops=total_ops,
        max_grade=_fraction_pair(judgment.max_linear_grade().coeff),
        callees=tuple(callees),
    )


def summary_to_judgment(summary: DefinitionSummary) -> Judgment:
    """Rebuild the exact judgment the summary was distilled from.

    The reconstruction mirrors ``check_definition``'s own assembly:
    discrete parameters populate Φ, used linear parameters populate Γ
    with their inferred grade, and the parameter tuple (including any
    declared stability contract) matches the source definition's, so
    every downstream consumer — ``grade_of``, lens construction, the
    IR sweep's call rule — sees values numerically identical to
    whole-program inference.
    """
    phi = DiscreteContext()
    linear_bindings: Dict[str, Binding] = {}
    rebuilt_params: List[A.Param] = []
    for p in summary.params:
        ty = decode_type(p.ty)
        declared = (
            None if p.declared is None else Grade(Fraction(*p.declared))
        )
        rebuilt_params.append(A.Param(p.name, ty, declared))
        if p.discrete:
            phi = phi.bind(p.name, ty)
        elif p.used:
            linear_bindings[p.name] = Binding(
                Grade(Fraction(*p.grade)), ty
            )
    return Judgment(
        summary.name,
        tuple(rebuilt_params),
        phi,
        LinearContext(linear_bindings),
        decode_type(summary.result),
    )
