"""Bean programs: the paper's examples, scalable generators, and sin/cos."""

from .examples import (
    EXAMPLES_SOURCE,
    example_judgments,
    example_program,
    paper_expected_grades,
)
from .generators import (
    BENCHMARK_FAMILIES,
    dot_prod,
    horner,
    mat_vec_mul,
    safe_div_sum,
    poly_val,
    vec_sum,
)
from .kernels import (
    axpy,
    continued_fraction,
    norm_squared,
    scal,
    weighted_sum,
)
from .solvers import (
    forward_substitution,
    mat_mul_columnwise,
    mat_mul_shared,
)
from .transcendental import glibc_cos, glibc_sin

__all__ = [
    "EXAMPLES_SOURCE",
    "example_program",
    "example_judgments",
    "paper_expected_grades",
    "BENCHMARK_FAMILIES",
    "dot_prod",
    "horner",
    "poly_val",
    "mat_vec_mul",
    "safe_div_sum",
    "vec_sum",
    "glibc_sin",
    "glibc_cos",
    "scal",
    "axpy",
    "norm_squared",
    "weighted_sum",
    "continued_fraction",
    "forward_substitution",
    "mat_mul_columnwise",
    "mat_mul_shared",
]
