"""The example Bean programs of Sections 2 and 4, in concrete syntax.

Every program here appears in the paper together with its typing judgment;
:func:`paper_expected_grades` records those judgments so the test suite can
verify that our inference reproduces each one exactly.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import Dict, Mapping

from ..core import Grade, Judgment, Program, check_program, parse_program

__all__ = [
    "EXAMPLES_SOURCE",
    "example_program",
    "example_judgments",
    "paper_expected_grades",
]

EXAMPLES_SOURCE = """\
// Section 2.2: dot product of two 2-vectors, error split across both inputs.
DotProd2 (x : vec(2)) (y : vec(2)) : num :=
  let (x0, x1) = x in
  let (y0, y1) = y in
  let v = mul x0 y0 in
  let w = mul x1 y1 in
  add v w

// Section 4.1.1: 2x2 matrix-vector product; all error on the matrix.
MatVecEx (A : mat(2,2)) (z : !(R * R)) : vec(2) :=
  dlet (z0, z1) = z in
  let ((a00, a01), (a10, a11)) = A in
  let s0 = dmul z0 a00 in
  let s1 = dmul z1 a01 in
  let s2 = dmul z0 a10 in
  let s3 = dmul z1 a11 in
  let u0 = add s0 s1 in
  let u1 = add s2 s3 in
  (u0, u1)

// Section 4.1.2: scale a vector by a discrete scalar.
ScaleVec (a : !R) (x : vec(2)) : vec(2) :=
  let (x0, x1) = x in
  let u = dmul a x0 in
  let v = dmul a x1 in
  (u, v)

// Section 4.1.2: scaled vector addition  a*x + y.
SVecAdd (a : !R) (x : vec(2)) (y : vec(2)) : vec(2) :=
  let (x0, x1) = ScaleVec a x in
  let (y0, y1) = y in
  let u = add x0 y0 in
  let v = add x1 y1 in
  (u, v)

// Section 4.1.2: inner product assigning error only to the first vector.
InnerProduct (u : vec(2)) (v : !(R * R)) : num :=
  dlet (v0, v1) = v in
  let (u0, u1) = u in
  let s0 = dmul v0 u0 in
  let s1 = dmul v1 u1 in
  add s0 s1

// Section 4.1.2: matrix-vector product via InnerProduct.
MatVecMul (M : mat(2,2)) (v : !(R * R)) : vec(2) :=
  let (m0, m1) = M in
  let u0 = InnerProduct m0 v in
  let u1 = InnerProduct m1 v in
  (u0, u1)

// Section 4.1.2: scaled matrix-vector product  a*(M*v) + b*u.
SMatVecMul (M : mat(2,2)) (v : !(R * R)) (u : vec(2)) (a : !R) (b : !R) : vec(2) :=
  let x = MatVecMul M v in
  let y = ScaleVec b u in
  SVecAdd a x y

// Section 4.2: naive evaluation of a0 + a1 z + a2 z^2.
PolyVal (a : vec(3)) (z : !R) : num :=
  let (a0, a1, a2) = a in
  let y1 = dmul z a1 in
  let y2p = dmul z a2 in
  let y2 = dmul z y2p in
  let x = add a0 y1 in
  add x y2

// Section 4.2: Horner evaluation of the same polynomial.
Horner (a : vec(3)) (z : !R) : num :=
  let (a0, a1, a2) = a in
  let y1 = dmul z a2 in
  let y2 = add a1 y1 in
  let y3 = dmul z y2 in
  add a0 y3

// Section 4.2: per-coefficient variants.
PolyValAlt (z : !R) (a0 : R) (a1 : R) (a2 : R) : num :=
  let y1 = dmul z a1 in
  let y2p = dmul z a2 in
  let y2 = dmul z y2p in
  let x = add a0 y1 in
  add x y2

HornerAlt (z : !R) (a0 : R) (a1 : R) (a2 : R) : num :=
  let y1 = dmul z a2 in
  let y2 = add a1 y1 in
  let y3 = dmul z y2 in
  add a0 y3

// Section 4.3: lower-triangular 2x2 linear solver with error trapping.
// The off-diagonal a01 is assumed zero and is not read.
LinSolve (A : mat(2,2)) (b : vec(2)) : ((!num * num) + unit) :=
  let ((a00, a01), (a10, a11)) = A in
  let (b0, b1) = b in
  let x0_or_err = div b0 a00 in
  case x0_or_err of
    inl (x0) =>
      dlet d_x0 = !x0 in
      let s0 = dmul d_x0 a10 in
      let s1 = sub b1 s0 in
      let x1_or_err = div s1 a11 in
      case x1_or_err of
        inl (x1) => inl{unit} (d_x0, x1)
      | inr (err2) => inr{!num * num} err2
  | inr (err) => inr{!num * num} err
"""


@lru_cache(maxsize=None)
def example_program() -> Program:
    """The parsed program containing every Section 2/4 example."""
    return parse_program(EXAMPLES_SOURCE)


@lru_cache(maxsize=None)
def example_judgments() -> Mapping[str, Judgment]:
    """Inferred judgments for every example definition."""
    return check_program(example_program())


def paper_expected_grades() -> Dict[str, Dict[str, Grade]]:
    """The per-variable grades the paper states for each example.

    Keys are definition names; values map linear parameter names to the
    grade the paper's prose assigns (Sections 2.2, 4.1-4.3).
    """
    e = Fraction(1)
    return {
        "DotProd2": {"x": Grade(e * 3 / 2), "y": Grade(e * 3 / 2)},
        "MatVecEx": {"A": Grade(2 * e)},
        "ScaleVec": {"x": Grade(e)},
        "SVecAdd": {"x": Grade(2 * e), "y": Grade(e)},
        "InnerProduct": {"u": Grade(2 * e)},
        "MatVecMul": {"M": Grade(2 * e)},
        "SMatVecMul": {"M": Grade(4 * e), "u": Grade(2 * e)},
        "PolyVal": {"a": Grade(3 * e)},
        "Horner": {"a": Grade(4 * e)},
        "PolyValAlt": {
            "a0": Grade(2 * e),
            "a1": Grade(3 * e),
            "a2": Grade(3 * e),
        },
        "HornerAlt": {
            "a0": Grade(e),
            "a1": Grade(3 * e),
            "a2": Grade(4 * e),
        },
        "LinSolve": {"A": Grade(e * 5 / 2), "b": Grade(e * 3 / 2)},
    }
