"""glibc-style polynomial kernels for sin and cos (Table 2).

The paper compares Bean against Fu et al. [23] on the polynomial
approximations of sin and cos used by glibc 2.21 for small arguments,
valid on the evaluation range [0.0001, 0.01]:

* ``sin(x) ≈ x + x³ · P(x²)`` with a degree-5 polynomial ``P`` in ``x²``
  (coefficients s1..s6), evaluated by Horner's scheme;
* ``cos(x) ≈ c0 + x² · Q(x²)`` with ``Q`` likewise over c1..c6 and
  ``c0 = 1``.

In the Bean encoding the evaluation point ``x`` (and its square ``w``,
which glibc computes once and reuses — reuse is exactly what discreteness
permits) are discrete inputs; the coefficient vector is the linear input
that absorbs backward error.  Inference yields **13ε for sin and 12ε for
cos**, i.e. 1.44e-15 and 1.33e-15 at u = 2⁻⁵³ — precisely the Bean column
of Table 2:

* each of the 5 Horner levels charges the leading coefficient
  ``ε (dmul) + ε (add)``;
* the final reconstruction charges ``x²·(...)`` and ``x·(...)`` multiplies
  and one add: +2ε for cos (12ε total), +3ε for sin (13ε total).

The numeric coefficients (Taylor coefficients, matching glibc's to the
precision relevant on this tiny range) are exposed for the dynamic
baseline, which actually runs the kernels.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from ..core import DNUM, Definition, Grade, Param, vector
from ..core import builders as B

__all__ = [
    "glibc_sin",
    "glibc_cos",
    "SIN_COEFFICIENTS",
    "COS_COEFFICIENTS",
    "SIN_EXPECTED_GRADE",
    "COS_EXPECTED_GRADE",
    "TABLE2_RANGE",
]

#: Evaluation range used by the paper and by Fu et al.
TABLE2_RANGE = (0.0001, 0.01)

#: Taylor coefficients of (sin x - x)/x³ in powers of x²: s1..s6.
SIN_COEFFICIENTS: List[float] = [
    -1.0 / 6.0,
    1.0 / 120.0,
    -1.0 / 5040.0,
    1.0 / 362880.0,
    -1.0 / 39916800.0,
    1.0 / 6227020800.0,
]

#: Taylor coefficients of cos x in powers of x²: c0..c6.
COS_COEFFICIENTS: List[float] = [
    1.0,
    -1.0 / 2.0,
    1.0 / 24.0,
    -1.0 / 720.0,
    1.0 / 40320.0,
    -1.0 / 3628800.0,
    1.0 / 479001600.0,
]

#: The grades Bean infers for the linear coefficient vectors.
SIN_EXPECTED_GRADE = Grade(Fraction(13))
COS_EXPECTED_GRADE = Grade(Fraction(12))


def _horner_kernel(coeffs: List[str], point: str) -> tuple:
    """Horner bindings for ``c[0] + w*(c[1] + w*(...))`` over names.

    Returns ``(bindings, accumulator_name)``.
    """
    bindings = []
    acc = coeffs[-1]
    for level, c in enumerate(reversed(coeffs[:-1])):
        t = f"t{level}"
        s = f"h{level}"
        bindings.append((t, B.dmul(point, acc)))
        bindings.append((s, B.add(c, t)))
        acc = s
    return bindings, acc


def glibc_sin() -> Definition:
    """``sin(x) = x + x³·P(x²)`` in Bean; linear input: s1..s6.

    Parameters: coefficient vector ``s`` (linear), the point ``x`` and its
    square ``w = x²`` (both discrete, as glibc reuses them).  The leading
    ``x`` term enters through the discrete coefficient-1 convention: the
    final operation is ``add s_lin x3p`` where the ``x`` addend is carried
    by the linear coefficient ``s0 = x`` — glibc's term ordering.
    """
    names = [f"s{i}" for i in range(1, 7)]
    bindings, acc = _horner_kernel(names, "w")
    # x³ · P(x²): two more discrete multiplications charge the chain.
    bindings.append(("xp", B.dmul("w", acc)))  # x² · P
    bindings.append(("x3p", B.dmul("x", "xp")))  # x · x² · P
    body = B.let_chain(bindings, B.add("s0", "x3p"))
    body = B.destructure_vector("s", ["s0"] + names, body)
    params = [
        Param("s", vector(7)),
        Param("x", DNUM),
        Param("w", DNUM),
    ]
    return Definition("SinGlibc", params, body)


def glibc_cos() -> Definition:
    """``cos(x) = c0 + x²·Q(x²)`` in Bean; linear input: c0..c6."""
    names = [f"c{i}" for i in range(1, 7)]
    bindings, acc = _horner_kernel(names, "w")
    bindings.append(("x2q", B.dmul("w", acc)))  # x² · Q
    body = B.let_chain(bindings, B.add("c0", "x2q"))
    body = B.destructure_vector("c", ["c0"] + names, body)
    params = [
        Param("c", vector(7)),
        Param("w", DNUM),
    ]
    return Definition("CosGlibc", params, body)


# ---------------------------------------------------------------------------
# Executable kernels (binary64 and ideal) for the dynamic baseline
# ---------------------------------------------------------------------------


def sin_kernel(x: float) -> float:
    """The binary64 evaluation matching :func:`glibc_sin` exactly."""
    w = x * x
    acc = SIN_COEFFICIENTS[-1]
    for c in reversed(SIN_COEFFICIENTS[:-1]):
        acc = c + w * acc
    return x + x * (w * acc)


def cos_kernel(x: float) -> float:
    """The binary64 evaluation matching :func:`glibc_cos` exactly."""
    w = x * x
    acc = COS_COEFFICIENTS[-1]
    for c in reversed(COS_COEFFICIENTS[1:-1]):
        acc = c + w * acc
    return COS_COEFFICIENTS[0] + w * acc


def sin_ideal(x: "Decimal") -> "Decimal":
    """High-precision evaluation of the same sin polynomial."""
    from decimal import Decimal

    w = x * x
    acc = Decimal(SIN_COEFFICIENTS[-1])
    for c in reversed(SIN_COEFFICIENTS[:-1]):
        acc = Decimal(c) + w * acc
    return x + x * (w * acc)


def cos_ideal(x: "Decimal") -> "Decimal":
    """High-precision evaluation of the same cos polynomial."""
    from decimal import Decimal

    w = x * x
    acc = Decimal(COS_COEFFICIENTS[-1])
    for c in reversed(COS_COEFFICIENTS[1:-1]):
        acc = Decimal(c) + w * acc
    return Decimal(COS_COEFFICIENTS[0]) + w * acc
