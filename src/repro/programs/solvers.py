"""Linear-algebra solvers in Bean, generalizing Section 4.3 to any size.

:func:`forward_substitution` generates an n×n lower-triangular solver in
the style of the paper's 2×2 ``LinSolve``: each computed unknown is
promoted with ``!``/``dlet`` so later rows may reuse it, every division
is guarded with ``case``, and failures propagate through the coproduct.

The inferred bounds have closed forms (verified by the test suite),
generalizing the paper's ``A : 5ε/2, b : 3ε/2``:

* ``b`` absorbs ``(i + ½)·ε`` at row i → max ``(n − ½)·ε``;
* ``A`` absorbs ``(i − j + 1 + ½)·ε`` at entry (i, j<i) and ``ε/2`` on
  the diagonal → max ``(n + ½)·ε``.

:func:`mat_mul_columnwise` generates C = A·B under the *columnwise*
backward error allocation (a separate perturbed copy of A per output
column), each copy absorbing ``n·ε``; :func:`mat_mul_shared` is the
single-ΔA formulation that Bean — faithfully to the numerical analysis —
rejects for linearity.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from ..core import DNUM, Definition, Discrete, Grade, Param, Sum, UNIT, vector
from ..core import builders as B
from ..core.ast_nodes import Expr
from ..core.types import tensor_of

__all__ = [
    "forward_substitution",
    "mat_mul_shared",
    "mat_mul_columnwise",
    "forward_substitution_bound_A",
    "forward_substitution_bound_b",
    "mat_mul_bound",
]


def forward_substitution(n: int) -> Definition:
    """An n×n lower-triangular solver ``A x = b`` with error trapping.

    Parameters: ``A : vec(n*n)`` (row-major; strictly-upper entries are
    ignored, as the paper does for ``a01``) and ``b : vec(n)``, both
    linear.  Returns the solution tuple or ``inr ()`` on a zero pivot.
    The first n−1 solution components are discrete (they were promoted
    for reuse); the last is linear, exactly as in the paper's listing.
    """
    if n < 1:
        raise ValueError("forward substitution needs n >= 1")
    a = [[f"a{i}_{j}" for j in range(n)] for i in range(n)]
    bs = [f"b{i}" for i in range(n)]

    if n == 1:
        success_ty = vector(1)
    else:
        success_ty = tensor_of([Discrete(vector(1))] * (n - 1) + [vector(1)])

    def solution_tuple() -> Expr:
        parts: List[Expr] = [B.var(f"dx{i}") for i in range(n - 1)]
        parts.append(B.var(f"x{n - 1}"))
        return B.tuple_(*parts) if len(parts) > 1 else parts[0]

    def row(i: int) -> Expr:
        """Solve row i, assuming dx0..dx(i-1) are in scope (discrete)."""
        bindings = []
        residual = bs[i]
        for j in range(i):
            prod = f"s{i}_{j}"
            bindings.append((prod, B.dmul(f"dx{j}", a[i][j])))
            nxt = f"r{i}_{j}"
            bindings.append((nxt, B.sub(residual, prod)))
            residual = nxt
        quotient = f"q{i}"
        bindings.append((quotient, B.div(residual, a[i][i])))
        if i == n - 1:
            on_success: Expr = B.inl(solution_tuple(), UNIT)
        else:
            on_success = B.dlet(f"dx{i}", B.bang(f"x{i}"), row(i + 1))
        body = B.case(
            quotient,
            f"x{i}",
            on_success,
            f"e{i}",
            B.inr(f"e{i}", success_ty),
        )
        return B.let_chain(bindings, body)

    body = row(0)
    body = B.destructure_vector("b", bs, body)
    body = B.destructure_vector("A", [x for r in a for x in r], body)
    params = [Param("A", vector(n * n)), Param("b", vector(n))]
    return Definition(f"ForwardSub{n}", params, body)


def forward_substitution_bound_A(n: int) -> Grade:
    """Closed-form inferred bound on A: ``(n + ½)·ε`` for n ≥ 2, ε/2
    for n = 1 (just the single division)."""
    if n == 1:
        return Grade(Fraction(1, 2))
    return Grade(Fraction(2 * n + 1, 2))


def forward_substitution_bound_b(n: int) -> Grade:
    """Closed-form inferred bound on b: ``(n − ½)·ε``."""
    return Grade(Fraction(2 * n - 1, 2))


def mat_mul_shared(n: int) -> Definition:
    """C = A·B with a *single* linear A — deliberately ill-typed.

    Every entry of A feeds all n columns of C, so Bean's strict
    linearity rejects this program.  That rejection is faithful to the
    numerical analysis: matrix-matrix products admit only *columnwise*
    backward error (a different ΔA per column of C; Higham 2002, §3.5) —
    there is in general no single perturbed A explaining all of C at
    once.  Use :func:`mat_mul_columnwise` for the typeable formulation.
    """
    if n < 2:
        raise ValueError("matrix product needs n >= 2")
    a = [[f"a{i}_{j}" for j in range(n)] for i in range(n)]
    b = [[f"b{i}_{j}" for j in range(n)] for i in range(n)]
    bindings = []
    outputs = []
    for i in range(n):
        for j in range(n):
            acc = None
            for k in range(n):
                prod = f"p{i}_{j}_{k}"
                bindings.append((prod, B.dmul(b[k][j], a[i][k])))
                if acc is None:
                    acc = prod
                else:
                    nxt = f"c{i}_{j}_{k}"
                    bindings.append((nxt, B.add(acc, prod)))
                    acc = nxt
            outputs.append(acc)
    body = B.let_chain(bindings, B.tuple_(*outputs))
    body = B.destructure_vector("A", [x for r in a for x in r], body)
    body = B.destructure_vector(
        "B", [x for r in b for x in r], body, discrete=True
    )
    params = [
        Param("A", vector(n * n)),
        Param("B", Discrete(vector(n * n))),
    ]
    return Definition(f"MatMulShared{n}", params, body)


def mat_mul_columnwise(n: int) -> Definition:
    """C = A·B with the *columnwise* backward error allocation.

    Column j of C is computed from its own linear copy ``A{j}`` of the
    matrix (the per-column perturbation ΔA_j of the classical analysis),
    with B discrete.  Each copy absorbs ``n·ε`` — the same bound as one
    matrix-vector product, which is exactly Higham's columnwise result.
    """
    if n < 2:
        raise ValueError("matrix product needs n >= 2")
    b = [[f"b{i}_{j}" for j in range(n)] for i in range(n)]
    bindings = []
    outputs = []
    copies = []
    for j in range(n):
        copy = [[f"A{j}_{i}_{k}" for k in range(n)] for i in range(n)]
        copies.append(copy)
        for i in range(n):
            acc = None
            for k in range(n):
                prod = f"p{i}_{j}_{k}"
                bindings.append((prod, B.dmul(b[k][j], copy[i][k])))
                if acc is None:
                    acc = prod
                else:
                    nxt = f"c{i}_{j}_{k}"
                    bindings.append((nxt, B.add(acc, prod)))
                    acc = nxt
            outputs.append(acc)
    body = B.let_chain(bindings, B.tuple_(*outputs))
    for j in range(n):
        flat = [x for row in copies[j] for x in row]
        body = B.destructure_vector(f"A{j}", flat, body)
    body = B.destructure_vector(
        "B", [x for r in b for x in r], body, discrete=True
    )
    params = [Param(f"A{j}", vector(n * n)) for j in range(n)]
    params.append(Param("B", Discrete(vector(n * n))))
    return Definition(f"MatMulCol{n}", params, body)


def mat_mul_bound(n: int) -> Grade:
    """Closed-form bound on each A-copy in :func:`mat_mul_columnwise`:
    ``n·ε``."""
    return Grade(Fraction(n))


# Re-exported types referenced in annotations/docs.
_ = Sum
_ = DNUM
