"""Generators for the Table 1 benchmark programs, at any input size.

Each generator emits a Bean :class:`~repro.core.ast_nodes.Definition`
mirroring the analyses described in Section 5.2.1:

* a **single linear input** (the vector or matrix receiving backward
  error), with all remaining inputs discrete;
* sequential (left-to-right) accumulation, which is what the paper's
  reported bounds correspond to (e.g. DotProd at size n infers ``n·ε``).

Two knobs exist for the ablation benchmarks:

* ``order="balanced"`` switches summations to a balanced adder tree, which
  provably tightens the inferred bound from ``Θ(n)·ε`` to ``Θ(log n)·ε``;
* ``dot_prod(..., alloc="both")`` splits multiplication error across both
  vectors with ``mul`` (the Section 2.2 DotProd2 allocation) instead of
  pushing it all onto the linear vector with ``dmul``.

Op counts match the paper's Ops column exactly
(:func:`expected_flops`), and the inferred bounds match the closed forms in
:mod:`repro.analysis.standard_bounds`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..core import DNUM, Definition, Discrete, Param, vector
from ..core import builders as B
from ..core.ast_nodes import Expr, fresh_name

__all__ = [
    "dot_prod",
    "vec_sum",
    "horner",
    "poly_val",
    "mat_vec_mul",
    "safe_div_sum",
    "expected_flops",
    "BENCHMARK_FAMILIES",
    "TABLE1_SIZES",
]


def _sum_chain(terms: Sequence[Expr], order: str) -> Expr:
    """Sum expressions with ``add``, sequentially or as a balanced tree.

    Returns a let-structured expression so every ``add`` sees variables,
    mirroring the paper's listings.
    """
    if order not in ("sequential", "balanced"):
        raise ValueError(f"unknown summation order {order!r}")
    terms = list(terms)
    if len(terms) == 1:
        return terms[0]
    bindings: List = []

    def name_of(e: Expr) -> str:
        n = fresh_name("s")
        bindings.append((n, e))
        return n

    if order == "sequential":
        acc = name_of(terms[0])
        for t in terms[1:]:
            rhs = name_of(t)
            acc = name_of(B.add(acc, rhs))
    else:
        names = [name_of(t) for t in terms]
        while len(names) > 1:
            nxt = []
            for i in range(0, len(names) - 1, 2):
                nxt.append(name_of(B.add(names[i], names[i + 1])))
            if len(names) % 2:
                nxt.append(names[-1])
            names = nxt
        acc = names[0]
    *init, (last_name, last_expr) = bindings
    assert last_name == acc
    return B.let_chain(init, last_expr)


def dot_prod(n: int, *, order: str = "sequential", alloc: str = "single") -> Definition:
    """Dot product of two n-vectors.

    ``alloc="single"`` (the Table 1 configuration) keeps ``y`` discrete and
    assigns all backward error to ``x`` via ``dmul``; ``alloc="both"``
    makes both vectors linear and splits multiplication error with ``mul``.
    """
    if n < 1:
        raise ValueError("dot product needs at least one component")
    xs = [f"x{i}" for i in range(n)]
    ys = [f"y{i}" for i in range(n)]
    products = []
    bindings = []
    for i in range(n):
        p = f"p{i}"
        if alloc == "single":
            bindings.append((p, B.dmul(ys[i], xs[i])))
        elif alloc == "both":
            bindings.append((p, B.mul(xs[i], ys[i])))
        else:
            raise ValueError(f"unknown allocation {alloc!r}")
        products.append(B.var(p))
    body = B.let_chain(bindings, _sum_chain(products, order))
    body = B.destructure_vector("x", xs, body)
    if alloc == "single":
        params = [
            Param("x", vector(n)),
            Param("y", Discrete(vector(n))),
        ]
        body = B.destructure_vector("y", ys, body, discrete=True)
    else:
        params = [Param("x", vector(n)), Param("y", vector(n))]
        body = B.destructure_vector("y", ys, body)
    return Definition(f"DotProd{n}", params, body)


def vec_sum(n: int, *, order: str = "sequential") -> Definition:
    """Sum of the n components of a linear vector."""
    if n < 2:
        raise ValueError("summation needs at least two components")
    xs = [f"x{i}" for i in range(n)]
    body = _sum_chain([B.var(x) for x in xs], order)
    body = B.destructure_vector("x", xs, body)
    return Definition(f"Sum{n}", [Param("x", vector(n))], body)


def horner(n: int) -> Definition:
    """Degree-n polynomial evaluation by Horner's scheme.

    Coefficients ``a = (a0 .. an)`` form the linear input; the evaluation
    point ``z`` is discrete.  2n flops, matching Table 1.
    """
    if n < 1:
        raise ValueError("Horner needs degree >= 1")
    coeffs = [f"a{i}" for i in range(n + 1)]
    bindings = []
    acc = coeffs[n]
    for i in range(n - 1, -1, -1):
        t = f"t{i}"
        s = f"acc{i}"
        bindings.append((t, B.dmul("z", acc)))
        bindings.append((s, B.add(coeffs[i], t)))
        acc = s
    *init, (last_name, last_expr) = bindings
    body = B.let_chain(init, last_expr)
    body = B.destructure_vector("a", coeffs, body)
    params = [Param("a", vector(n + 1)), Param("z", DNUM)]
    return Definition(f"Horner{n}", params, body)


def poly_val(n: int, *, order: str = "sequential") -> Definition:
    """Degree-n polynomial evaluation by the naive scheme.

    Term k costs k multiplications (``z * (z * ... * a_k)``), so the total
    is n(n+1)/2 + n flops, matching Table 1.
    """
    if n < 1:
        raise ValueError("PolyVal needs degree >= 1")
    coeffs = [f"a{i}" for i in range(n + 1)]
    bindings = []
    terms = [B.var(coeffs[0])]
    for k in range(1, n + 1):
        acc = coeffs[k]
        for j in range(k):
            t = f"m{k}_{j}"
            bindings.append((t, B.dmul("z", acc)))
            acc = t
        terms.append(B.var(acc))
    body = B.let_chain(bindings, _sum_chain(terms, order))
    body = B.destructure_vector("a", coeffs, body)
    params = [Param("a", vector(n + 1)), Param("z", DNUM)]
    return Definition(f"PolyVal{n}", params, body)


def mat_vec_mul(n: int, *, order: str = "sequential") -> Definition:
    """Product of an n x n matrix (linear) with an n-vector (discrete)."""
    if n < 2:
        raise ValueError("matrix-vector product needs n >= 2")
    rows = [[f"m{i}_{j}" for j in range(n)] for i in range(n)]
    zs = [f"z{j}" for j in range(n)]
    bindings = []
    outputs = []
    row_sums = []
    for i in range(n):
        products = []
        for j in range(n):
            p = f"p{i}_{j}"
            bindings.append((p, B.dmul(zs[j], rows[i][j])))
            products.append(B.var(p))
        u = f"u{i}"
        row_sums.append((u, _sum_chain(products, order)))
        outputs.append(u)
    body: Expr = B.tuple_(*outputs)
    for u, expr in reversed(row_sums):
        body = B.let_(u, expr, body)
    body = B.let_chain(bindings, body)
    flat = [name for row in rows for name in row]
    body = B.destructure_vector("M", flat, body)
    body = B.destructure_vector("z", zs, body, discrete=True)
    params = [
        Param("M", vector(n * n)),
        Param("z", Discrete(vector(n))),
    ]
    return Definition(f"MatVecMul{n}", params, body)


def safe_div_sum(n: int, *, order: str = "sequential") -> Definition:
    """Sum of n guarded quotients — the div+case stress kernel.

    Term ``i`` divides ``x_i`` by ``y_i`` and cases on the ``num + unit``
    result, substituting the fallback component ``f_i`` where the
    division failed.  Every language feature the batch engine's masked
    pipeline handles — ``div``'s per-row screening, ``case`` branch
    masks, asymmetric linear use across branches — appears ``n`` times,
    which is what makes this the benchmark family for the full-fragment
    vectorization (the Table 1 families are straight-line).
    """
    if n < 2:
        raise ValueError("SafeDiv needs at least two components")
    xs = [f"x{i}" for i in range(n)]
    ys = [f"y{i}" for i in range(n)]
    fs = [f"f{i}" for i in range(n)]
    bindings = []
    terms = []
    for i in range(n):
        q = f"q{i}"
        w = f"w{i}"
        bindings.append((q, B.div(xs[i], ys[i])))
        bindings.append(
            (w, B.case(q, f"v{i}", B.var(f"v{i}"), f"e{i}", B.var(fs[i])))
        )
        terms.append(B.var(w))
    body = B.let_chain(bindings, _sum_chain(terms, order))
    body = B.destructure_vector("x", xs, body)
    body = B.destructure_vector("y", ys, body)
    body = B.destructure_vector("f", fs, body)
    params = [
        Param("x", vector(n)),
        Param("y", vector(n)),
        Param("f", vector(n)),
    ]
    return Definition(f"SafeDiv{n}", params, body)


def expected_flops(family: str, n: int) -> int:
    """Closed-form op counts matching the paper's Ops column."""
    if family == "DotProd":
        return 2 * n - 1
    if family == "Sum":
        return n - 1
    if family == "Horner":
        return 2 * n
    if family == "PolyVal":
        return n * (n + 1) // 2 + n
    if family == "MatVecMul":
        return n * (2 * n - 1)
    if family == "SafeDiv":
        return 2 * n - 1  # n divisions + n-1 additions
    raise ValueError(f"unknown benchmark family {family!r}")


#: Generator for each Table 1 family, keyed by the paper's benchmark name.
BENCHMARK_FAMILIES: Dict[str, Callable[[int], Definition]] = {
    "DotProd": dot_prod,
    "Horner": horner,
    "PolyVal": poly_val,
    "MatVecMul": mat_vec_mul,
    "Sum": vec_sum,
    "SafeDiv": safe_div_sum,
}

#: The input sizes reported in Table 1, per family.  ``SafeDiv`` is not
#: a paper benchmark (Table 1 has no data-dependent control flow), so it
#: appears in :data:`BENCHMARK_FAMILIES` only.
TABLE1_SIZES: Dict[str, List[int]] = {
    "DotProd": [20, 50, 100, 500],
    "Horner": [20, 50, 100, 500],
    "PolyVal": [10, 20, 50, 100],
    "MatVecMul": [5, 10, 20, 50],
    "Sum": [50, 100, 500, 1000],
}
