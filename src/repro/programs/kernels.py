"""A small library of BLAS-style kernels in Bean, with closed-form bounds.

These extend the paper's case studies (Section 4) with the level-1 BLAS
operations a downstream user would reach for first.  Every kernel's
inferred bound has a closed form, verified exactly by the test suite:

======================  ====================  ==========================
kernel                  error assigned to     bound
======================  ====================  ==========================
``scal``                the vector            ``ε``  (one dmul per lane)
``axpy``                x and y               x: ``2ε``, y: ``ε``
``weighted_sum``        the weights           ``n·ε``
``continued_fraction``  deepest coefficients  grows with nesting depth
``norm_squared``        —                     REJECTED (see below)
======================  ====================  ==========================

``norm_squared`` is the interesting one: Σxᵢ² is *backward stable*
(perturb each xᵢ by e^{δᵢ/2}) yet **Bean rejects it** — squaring needs
``xᵢ`` twice, and neither occurrence can be made discrete without
giving up the bound on x.  This is a concrete instance of the
incompleteness the paper documents in Remark 1 (sound, not complete);
the function below exists so the test suite can pin the rejection.
The typeable route is the two-copy formulation: ``DotProd(x, x)`` with
``alloc="both"`` types at ``(n − ½)·ε`` per copy, mirroring the
numerical analyst's "one perturbation per occurrence" bookkeeping.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Tuple

from ..core import DNUM, NUM, Definition, Discrete, Grade, Param, vector
from ..core import builders as B
from ..core.ast_nodes import Expr, fresh_name

__all__ = [
    "scal",
    "axpy",
    "norm_squared",
    "weighted_sum",
    "continued_fraction",
    "scal_bound",
    "axpy_bounds",
    "norm_squared_bound",
    "weighted_sum_bound",
]

# fresh_name is re-exported use in downstream generator code.
_ = fresh_name


def scal(n: int) -> Definition:
    """``a * x`` for a discrete scalar and a linear n-vector: ε per lane."""
    if n < 1:
        raise ValueError("scal needs n >= 1")
    xs = [f"x{i}" for i in range(n)]
    outs = []
    bindings: List[Tuple[str, Expr]] = []
    for i, x in enumerate(xs):
        out = f"u{i}"
        bindings.append((out, B.dmul("a", x)))
        outs.append(out)
    body = B.let_chain(bindings, B.tuple_(*outs) if n > 1 else B.var(outs[0]))
    body = B.destructure_vector("x", xs, body)
    return Definition(
        f"Scal{n}", [Param("a", DNUM), Param("x", vector(n))], body
    )


def scal_bound() -> Grade:
    return Grade(1)


def axpy(n: int) -> Definition:
    """``a*x + y`` lanewise (the BLAS axpy): x absorbs 2ε, y absorbs ε.

    The n = 2 instance is exactly the paper's ``SVecAdd`` judgment.
    """
    if n < 1:
        raise ValueError("axpy needs n >= 1")
    xs = [f"x{i}" for i in range(n)]
    ys = [f"y{i}" for i in range(n)]
    outs = []
    bindings: List[Tuple[str, Expr]] = []
    for i in range(n):
        scaled = f"s{i}"
        out = f"u{i}"
        bindings.append((scaled, B.dmul("a", xs[i])))
        bindings.append((out, B.add(scaled, ys[i])))
        outs.append(out)
    body = B.let_chain(bindings, B.tuple_(*outs) if n > 1 else B.var(outs[0]))
    body = B.destructure_vector("y", ys, body)
    body = B.destructure_vector("x", xs, body)
    params = [Param("a", DNUM), Param("x", vector(n)), Param("y", vector(n))]
    return Definition(f"Axpy{n}", params, body)


def axpy_bounds() -> Tuple[Grade, Grade]:
    """(bound on x, bound on y)."""
    return Grade(2), Grade(1)


def norm_squared(n: int) -> Definition:
    """``Σ xᵢ²`` over a single linear vector — **deliberately ill-typed**.

    Each lane squares its component (``dlet zi = !xi in dmul zi xi``),
    which mentions ``xi`` in both the promotion and the multiplication:
    strict linearity rejects it.  The computation *is* backward stable
    (``x̃ᵢ = xᵢ·e^{δᵢ/2}``), so this is a live witness of the
    incompleteness the paper concedes in Remark 1.  The typeable
    alternative is the two-copy trick: call ``dot_prod(n, alloc="both")``
    on ``(x, x)``.
    """
    if n < 1:
        raise ValueError("norm_squared needs n >= 1")
    xs = [f"x{i}" for i in range(n)]
    bindings: List[Tuple[str, Expr]] = []
    squares = []
    promotions: List[Tuple[str, str]] = []
    for i, x in enumerate(xs):
        z = f"z{i}"
        sq = f"q{i}"
        promotions.append((z, x))
        bindings.append((sq, B.dmul(z, x)))
        squares.append(sq)
    acc = squares[0]
    for i, sq in enumerate(squares[1:], start=1):
        nxt = f"acc{i}"
        bindings.append((nxt, B.add(acc, sq)))
        acc = nxt
    *init, (last_name, last_expr) = bindings
    body = B.let_chain(init, last_expr)
    for z, x in reversed(promotions):
        body = B.dlet(z, B.bang(x), body)
    body = B.destructure_vector("x", xs, body)
    return Definition(f"NormSq{n}", [Param("x", vector(n))], body)


def norm_squared_bound(n: int) -> Grade:
    """What the *two-copy* formulation infers per copy: ``(n − ½)·ε``."""
    return Grade(Fraction(2 * n - 1, 2))


def weighted_sum(n: int) -> Definition:
    """``Σ wᵢ·xᵢ`` with the points discrete and the weights linear —
    a quadrature rule whose backward error lands on the weights."""
    if n < 1:
        raise ValueError("weighted_sum needs n >= 1")
    ws = [f"w{i}" for i in range(n)]
    zs = [f"z{i}" for i in range(n)]
    bindings: List[Tuple[str, Expr]] = []
    terms = []
    for i in range(n):
        t = f"t{i}"
        bindings.append((t, B.dmul(zs[i], ws[i])))
        terms.append(t)
    acc = terms[0]
    for i, t in enumerate(terms[1:], start=1):
        nxt = f"s{i}"
        bindings.append((nxt, B.add(acc, t)))
        acc = nxt
    *init, (last_name, last_expr) = bindings
    body = B.let_chain(init, last_expr) if init else last_expr
    body = B.destructure_vector("w", ws, body)
    if n > 1:
        body = B.destructure_vector("z", zs, body, discrete=True)
        z_param = Param("z", Discrete(vector(n)))
    else:
        z_param = Param(zs[0], DNUM)
    return Definition(f"WeightedSum{n}", [Param("w", vector(n)), z_param], body)


def weighted_sum_bound(n: int) -> Grade:
    return Grade(Fraction(n))


def continued_fraction(depth: int) -> Definition:
    """Evaluate ``b0 + a1/(b1 + a2/(b2 + ... a_d/b_d))`` bottom-up.

    All partial numerators ``a`` and denominators ``b`` are linear
    scalars.  Every division is trapped: a zero denominator anywhere
    propagates ``inr ()`` outward through nested cases, LinSolve-style.
    The innermost coefficients accumulate the most backward error
    (``ε/2`` per enclosing division plus ``ε`` per enclosing addition);
    the test suite checks the inferred gradient against the path oracle
    and the closed form ``(3k/2)·ε`` at nesting depth k.
    """
    if depth < 1:
        raise ValueError("continued fractions need depth >= 1")

    def trapped(k: int) -> Expr:
        if k == depth:
            return B.inl(f"b{depth}")
        inner = trapped(k + 1)
        d = f"d{k}"
        q = f"q{k}"
        x = f"x{k}"
        e1 = f"e{k}"
        e2 = f"f{k}"
        return B.case(
            inner,
            d,
            B.let_(
                q,
                B.div(f"a{k + 1}", d),
                B.case(q, x, B.inl(B.add(f"b{k}", x)), e1, B.inr(e1, NUM)),
            ),
            e2,
            B.inr(e2, NUM),
        )

    body = trapped(0)
    params = [Param(f"b{k}", vector(1)) for k in range(depth + 1)]
    params += [Param(f"a{k}", vector(1)) for k in range(1, depth + 1)]
    return Definition(f"ContFrac{depth}", params, body)
