"""One-call analysis reports: everything Bean can say about a program.

:func:`analyze` bundles the full pipeline for a source file or string:

* parse + backward error bound inference (the core contribution),
* NumFuzz-like forward bounds and Gappa-like interval bounds where the
  program permits them,
* forward bounds derived from the backward bounds via a user-supplied
  condition number (Equation 2),
* an optional empirical tightness sweep with the lens witness.

The result renders as a readable report (``AnalysisReport.describe()``)
and serializes to JSON-friendly dictionaries (``to_dict``) — the
machine interface the ``repro-bean report`` subcommand exposes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .api import Session
from .core import Grade, Judgment, Program, count_flops
from .core.grades import BINARY64_UNIT_ROUNDOFF
from .core.types import is_discrete

__all__ = ["DefinitionReport", "AnalysisReport", "analyze"]


@dataclass(frozen=True)
class DefinitionReport:
    """Everything inferred about one definition."""

    name: str
    result_type: str
    flops: int
    backward_bounds: Dict[str, Grade]
    backward_values: Dict[str, float]
    forward_bound: Optional[float]
    interval_forward_bound: float
    condition_number: Optional[float]
    derived_forward_bound: Optional[float]
    #: call sites the IR inliner refused (guarded calls run the scalar
    #: path): ``{"callee", "reason", "sites"}`` entries, the same
    #: section batch audit payloads carry.  Empty = everything inlines.
    inline_fallbacks: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.result_type,
            "flops": self.flops,
            "backward": {
                param: {"grade": str(grade), "value": self.backward_values[param]}
                for param, grade in self.backward_bounds.items()
            },
            "forward_numfuzz_like": self.forward_bound,
            "forward_interval": (
                None
                if math.isinf(self.interval_forward_bound)
                else self.interval_forward_bound
            ),
            "forward_from_backward": self.derived_forward_bound,
            "inline_fallbacks": self.inline_fallbacks,
        }


@dataclass
class AnalysisReport:
    """A report over a whole program."""

    u: float
    definitions: List[DefinitionReport] = field(default_factory=list)
    #: summary-store traffic of this analysis: grades served from
    #: cached per-definition summaries vs rebuilt by the checker
    #: (:func:`repro.compose.engine.composed_judgments` — bit-identical
    #: to a whole-program re-check either way).
    summaries_reused: int = 0
    summaries_built: int = 0

    def __getitem__(self, name: str) -> DefinitionReport:
        for d in self.definitions:
            if d.name == name:
                return d
        raise KeyError(name)

    def to_dict(self) -> dict:
        return {
            "u": self.u,
            "definitions": [d.to_dict() for d in self.definitions],
            "summaries": {
                "reused": self.summaries_reused,
                "built": self.summaries_built,
            },
        }

    def describe(self) -> str:
        lines = [f"unit roundoff u = {self.u:.3e}  (ε = u/(1-u))"]
        lines.append(
            f"summaries: {self.summaries_reused} reused, "
            f"{self.summaries_built} built"
        )
        for d in self.definitions:
            lines.append("")
            lines.append(f"{d.name} : {d.result_type}   [{d.flops} flops]")
            if d.backward_bounds:
                lines.append("  backward error bounds (the certificate):")
                for param, grade in d.backward_bounds.items():
                    lines.append(
                        f"    {param:<12} {str(grade):>8}  = {d.backward_values[param]:.3e}"
                    )
            else:
                lines.append("  no linear inputs (nothing absorbs backward error)")
            if d.forward_bound is not None:
                lines.append(
                    f"  forward bound (positive data): {d.forward_bound:.3e}"
                )
            else:
                lines.append("  forward bound (positive data): unbounded (subtraction)")
            if math.isinf(d.interval_forward_bound):
                lines.append("  forward bound (interval hypotheses): unbounded")
            else:
                lines.append(
                    f"  forward bound (interval hypotheses): {d.interval_forward_bound:.3e}"
                )
            if d.derived_forward_bound is not None:
                lines.append(
                    "  forward ≤ κ × backward: "
                    f"{d.derived_forward_bound:.3e} (κ = {d.condition_number})"
                )
            for entry in d.inline_fallbacks:
                lines.append(
                    f"  inline fallback: {entry['sites']} call site(s) to "
                    f"{entry['callee']} run the scalar path "
                    f"({entry['reason']})"
                )
        return "\n".join(lines)


def analyze(
    source_or_program,
    *,
    u: float = BINARY64_UNIT_ROUNDOFF,
    condition_number: Optional[float] = None,
    input_range=(0.1, 1000.0),
) -> AnalysisReport:
    """Run the full static pipeline on Bean source text or a Program.

    The forward and interval columns come from the registered
    ``forward`` / ``interval`` static engines via one
    :class:`repro.api.Session` — the exact code path ``repro serve``
    and ``repro witness --engine forward|interval`` exercise.
    """
    from .compose.engine import composed_judgments
    from .ir.cache import inlined_definition_ir, semantic_definition_ir
    from .ir.inline import inline_fallback_info

    session = Session(u=u)
    if isinstance(source_or_program, Program):
        program = source_or_program
    else:
        program = session.parse(source_or_program)
    # Judgments come through the compositional layer — bit-identical to
    # session.check's whole-program pass, and the composed result says
    # how many per-definition summaries this analysis reused vs built
    # (a repeat analyze() of an edited file rebuilds only the diff).
    composed = composed_judgments(program)
    judgments = composed.judgments
    report = AnalysisReport(
        u=u,
        summaries_reused=len(composed.reused),
        summaries_built=len(composed.built),
    )
    for definition in program:
        judgment: Judgment = judgments[definition.name]
        backward: Dict[str, Grade] = {}
        values: Dict[str, float] = {}
        for p in definition.params:
            if is_discrete(p.ty):
                continue
            grade = judgment.grade_of(p.name)
            backward[p.name] = grade
            values[p.name] = grade.evaluate(u)
        ranges = {p.name: list(input_range) for p in definition.params}
        fwd = session.audit(
            program, definition.name, inputs={}, engine="forward"
        ).static_bounds["forward_bound"]
        interval_bound = session.audit(
            program, definition.name, inputs=ranges, engine="interval"
        ).static_bounds["forward_bound"]
        interval = math.inf if interval_bound is None else interval_bound
        derived = None
        if condition_number is not None and backward:
            worst = max(values.values())
            derived = condition_number * worst
        # The execution IR's refused call sites, resolved the way the
        # batch engine resolves them (two identity-cache probes).
        ir = semantic_definition_ir(definition)
        if ir.has_calls:
            ir = inlined_definition_ir(definition, program)
        report.definitions.append(
            DefinitionReport(
                name=definition.name,
                result_type=str(judgment.result),
                flops=count_flops(definition.body, program),
                backward_bounds=backward,
                backward_values=values,
                forward_bound=fwd,
                interval_forward_bound=interval,
                condition_number=condition_number,
                derived_forward_bound=derived,
                inline_fallbacks=inline_fallback_info(ir),
            )
        )
    return report
