"""A flat, topologically ordered intermediate representation for Bean.

Every layer of the reproduction used to analyze and execute programs by
structural recursion over the AST; the Table 1 benchmarks (Sum 1000,
PolyVal 100) only survived via the 512 MiB ``deepstack`` worker thread.
This package compiles a definition **once** into a flat instruction
sequence — let-normalized SSA-style ops with explicit operand slots,
discrete/linear flags, and per-op grade contributions — that every
consumer walks with plain Python loops:

* :mod:`repro.ir.lower` — the lowering pass.  In *checked* mode it is an
  iterative re-implementation of the Figure 7 inference algorithm's
  well-formedness side (types, strict linearity, freshness); in
  *semantic* mode it lowers any runnable (even ill-typed) term for the
  evaluators, mirroring the permissiveness of the Λ_S big-step semantics.
* :mod:`repro.ir.infer` — backward error grade inference as a single
  reverse sweep over the op list (the algorithmic content of Figure 7).
* :mod:`repro.ir.cache` — identity-keyed program caches so repeated
  checks/evaluations of the same definition lower only once, with an
  optional persistent content-addressed outer layer
  (:func:`set_persistent_cache`, served by
  :class:`repro.service.cache.ArtifactCache`) so lowered/inlined IR and
  inferred judgments survive process restarts.

Consumers: :mod:`repro.core.checker` (grade inference),
:mod:`repro.lam_s.eval` (ideal/approximate forward sweeps),
:mod:`repro.semantics.interp` (the backward lens pass as a reverse
sweep), :mod:`repro.semantics.batch` (the vectorized witness engine) and
:mod:`repro.analysis` (interval/forward abstract sweeps).
"""

from .lower import (
    ADD,
    BANG,
    CALL,
    CASE,
    CONST,
    DIV,
    DMUL,
    DVAR,
    FST,
    INL,
    INR,
    IROp,
    IRProgram,
    MUL,
    OP_NAMES,
    PAIR,
    RND,
    Region,
    SND,
    SUB,
    UNIT,
    lower_definition,
    lower_expr,
)
from .cache import (
    clear_caches,
    inlined_definition_ir,
    persistent_cache,
    semantic_definition_ir,
    semantic_expr_ir,
    set_persistent_cache,
)
from .infer import infer_definition_ir, sweep_grades
from .inline import inline_calls

__all__ = [
    "IROp",
    "IRProgram",
    "Region",
    "OP_NAMES",
    "DVAR",
    "CONST",
    "UNIT",
    "PAIR",
    "FST",
    "SND",
    "INL",
    "INR",
    "BANG",
    "RND",
    "ADD",
    "SUB",
    "MUL",
    "DIV",
    "DMUL",
    "CALL",
    "CASE",
    "lower_definition",
    "lower_expr",
    "semantic_definition_ir",
    "semantic_expr_ir",
    "inlined_definition_ir",
    "inline_calls",
    "clear_caches",
    "persistent_cache",
    "set_persistent_cache",
    "infer_definition_ir",
    "sweep_grades",
]
