"""Backward error grade inference as a reverse sweep over the flat IR.

This is the algorithmic content of Figure 7, re-stated on the lowered
program.  Define ``out[s]`` — the *outgoing grade* of slot ``s`` — as the
backward error the rest of the computation may assign to the value in
``s`` (the ``r`` of the Let rule).  The result slot starts at 0, and one
reverse pass propagates:

* ``add``/``sub`` charge each operand ``out + ε``; ``mul``/``div`` charge
  ``out + ε/2``; ``dmul`` charges its discrete operand ``out`` (the DMul
  rule leaves that context unshifted) and its linear operand ``out + ε``;
  ``rnd`` charges ``out + ε`` (the §2.2.1 extension);
* structural ops (``pair``, ``inl``/``inr``, ``!``) pass ``out`` through
  unchanged;
* the two projections of a ``let (x, y) = …`` combine into the bound
  slot by **max** — exactly the ``r = max(r_x, r_y)`` of the ⊗E rule;
* a ``case`` seeds both branch regions with its own ``out``, takes
  ``q = max`` of the payload slots' grades for the scrutinee (+E), and
  contributions to any outer slot from the two branches combine by max
  (the algorithmic ``merge_max``);
* a ``call`` charges each argument ``out`` plus the callee judgment's
  inferred grade for the corresponding linear parameter — typing a call
  compositionally, like the recursive checker;
* discrete variable reads (``dvar``) propagate nothing: the DVar rule
  produces the empty context, so a ``dlet`` binding is a propagation
  barrier.

Because Bean is strictly linear, every slot has at most one consumer per
control path, so "combine" degenerates to a single assignment except in
the two max cases above — which is why one sweep infers the *tightest*
context, matching the recursive engine grade-for-grade (the parity tests
in ``tests/test_ir.py`` check this on randomized programs).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

from ..core import ast_nodes as A
from ..core.context import Binding, LinearContext
from ..core.grades import EPS, HALF_EPS, ZERO, Grade
from ..core.types import Type, is_discrete
from . import lower as L
from .lower import IRProgram, lower_definition

__all__ = ["sweep_grades", "infer_definition_ir"]


def _sweep_halves(ir: IRProgram, judgments: Mapping) -> Optional[List[Optional[int]]]:
    """Grade sweep in integer half-ε units — the common-case fast path.

    Every grade the primitive rules produce is a multiple of ε/2, so the
    whole sweep runs on machine integers (one add + one compare per op)
    instead of allocating a ``Fraction`` per op.  Returns ``None`` if a
    callee judgment carries a grade outside the half-integer lattice
    (impossible for inferred judgments, but the exact sweep remains the
    fallback of record).
    """
    out: List[Optional[int]] = [None] * ir.n_slots
    call_halves: dict = {}

    def halves_of(grade: Grade) -> Optional[int]:
        coeff = grade.coeff
        if coeff.denominator == 1:
            return 2 * coeff.numerator
        if coeff.denominator == 2:
            return coeff.numerator
        return None

    def comb(slot: int, h: int) -> None:
        cur = out[slot]
        if cur is None or h > cur:
            out[slot] = h

    def sweep(ops, result_slot: int, seed: int) -> bool:
        comb(result_slot, seed)
        for op in reversed(ops):
            code = op.code
            g = out[op.dest]
            if g is None:
                g = 0
            if code == L.ADD or code == L.SUB:
                comb(op.a, g + 2)
                comb(op.b, g + 2)
            elif code == L.MUL or code == L.DIV:
                comb(op.a, g + 1)
                comb(op.b, g + 1)
            elif code == L.DMUL:
                comb(op.a, g)
                comb(op.b, g + 2)
            elif code == L.RND:
                comb(op.a, g + 2)
            elif code in (L.PAIR, L.INL, L.INR, L.BANG):
                comb(op.a, g)
                if code == L.PAIR:
                    comb(op.b, g)
            elif code == L.FST or code == L.SND:
                comb(op.a, g)
            elif code == L.CASE:
                left, right = op.aux
                if not sweep(left.ops, left.result, g):
                    return False
                if not sweep(right.ops, right.result, g):
                    return False
                # +E: the scrutinee absorbs q = max over the payload
                # grades.  An *unused* payload still carries the case's
                # own outgoing grade g (the branch assigns it 0, and the
                # enclosing shift applies on top), so g — not 0 — is the
                # default for an unconsumed payload slot.
                q = g
                for payload in (left.payload, right.payload):
                    h = out[payload]
                    if h is not None and h > q:
                        q = h
                comb(op.a, q)
            elif code == L.CALL:
                name, arg_slots = op.aux
                shifts = call_halves.get(name)
                if shifts is None:
                    judgment = judgments[name]
                    shifts = []
                    for param in judgment.params:
                        if is_discrete(param.ty):
                            shifts.append(0)
                        else:
                            h = halves_of(judgment.grade_of(param.name))
                            if h is None:
                                return False
                            shifts.append(h)
                    call_halves[name] = shifts
                for slot, shift in zip(arg_slots, shifts):
                    comb(slot, g + shift)
        return True

    if not sweep(ir.ops, ir.result, 0):
        return None
    return out


def sweep_grades(ir: IRProgram, judgments: Optional[Mapping] = None) -> List[Grade]:
    """Per-slot outgoing grades of a checked IR program (reverse sweep)."""
    judgments = judgments or {}
    out: List[Optional[Grade]] = [None] * ir.n_slots

    def comb(slot: int, grade: Grade) -> None:
        cur = out[slot]
        if cur is None or grade.coeff > cur.coeff:
            out[slot] = grade

    def sweep(ops, result_slot: int, seed: Grade) -> None:
        comb(result_slot, seed)
        for op in reversed(ops):
            code = op.code
            g = out[op.dest]
            if g is None:
                g = ZERO
            if code == L.ADD or code == L.SUB:
                ge = g + EPS
                comb(op.a, ge)
                comb(op.b, ge)
            elif code == L.MUL or code == L.DIV:
                gh = g + HALF_EPS
                comb(op.a, gh)
                comb(op.b, gh)
            elif code == L.DMUL:
                comb(op.a, g)
                comb(op.b, g + EPS)
            elif code == L.RND:
                comb(op.a, g + EPS)
            elif code in (L.PAIR, L.INL, L.INR, L.BANG):
                comb(op.a, g)
                if code == L.PAIR:
                    comb(op.b, g)
            elif code == L.FST or code == L.SND:
                comb(op.a, g)  # comb is max: r = max(r_fst, r_snd) (⊗E)
            elif code == L.CASE:
                left, right = op.aux
                sweep(left.ops, left.result, g)
                sweep(right.ops, right.result, g)
                # Unused payloads default to g, not 0 (see _sweep_halves).
                q_left = out[left.payload]
                q_right = out[right.payload]
                q = g
                if q_left is not None and q_left.coeff > q.coeff:
                    q = q_left
                if q_right is not None and q_right.coeff > q.coeff:
                    q = q_right
                comb(op.a, q)
            elif code == L.CALL:
                name, arg_slots = op.aux
                judgment = judgments[name]
                for slot, param in zip(arg_slots, judgment.params):
                    if is_discrete(param.ty):
                        comb(slot, g)
                    else:
                        comb(slot, g + judgment.grade_of(param.name))
            # DVAR, CONST, UNIT: no propagation (DVar yields the empty
            # context; unit/constants bind nothing).

    sweep(ir.ops, ir.result, ZERO)
    return [g if g is not None else ZERO for g in out]


def infer_definition_ir(
    definition: A.Definition,
    judgments: Optional[Mapping] = None,
) -> Tuple[LinearContext, Type, IRProgram]:
    """``Φ | Γ•; body ⇒ Γ; σ`` via the flat IR (no deep recursion).

    Returns the tightest inferred linear context (exactly the linear
    parameters the body uses, like the recursive engine), the result
    type, and the checked IR program.
    """
    ir = lower_definition(definition, checked=True, judgments=judgments)
    halves = _sweep_halves(ir, judgments or {})
    bindings = {}
    if halves is not None:
        from fractions import Fraction

        for p in ir.params:
            if not p.discrete and p.name in ir.used_params:
                h = halves[p.slot]
                grade = ZERO if not h else Grade(Fraction(h, 2))
                bindings[p.name] = Binding(grade, p.ty)
    else:  # exotic callee grades: exact Fraction sweep
        grades = sweep_grades(ir, judgments)
        for p in ir.params:
            if not p.discrete and p.name in ir.used_params:
                bindings[p.name] = Binding(grades[p.slot], p.ty)
    return LinearContext(bindings), ir.types[ir.result], ir
