"""Identity-keyed program caches for lowered IR.

Lowering is linear in program size, but hot loops (the witness runner,
the benchmark drivers, repeated CLI invocations on the same parsed
program) re-analyze the *same* ``Definition`` object thousands of times.
These caches key on object identity — definitions are immutable ASTs, so
identity is the right equality, and hashing a 10000-deep expression tree
(which structural equality would require) is exactly the recursion this
package exists to avoid.  A weak reference per entry evicts the cache
line when the definition is garbage collected, so ``id`` reuse cannot
serve stale programs.

Behind the identity layer sits an optional **persistent layer**
(:func:`set_persistent_cache`): a content-addressed store — in practice
:class:`repro.service.cache.ArtifactCache` — consulted on identity-cache
misses so lowered and inlined IR survive process restarts.  The
registration point lives here (rather than in :mod:`repro.service`) so
this package and :mod:`repro.core.checker` can consult it without
importing the serving layer.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, Tuple

from ..core import ast_nodes as A
from .lower import IRProgram, lower_definition, lower_expr

__all__ = [
    "IdentityCache",
    "semantic_definition_ir",
    "semantic_expr_ir",
    "inlined_definition_ir",
    "clear_caches",
    "set_persistent_cache",
    "persistent_cache",
]


class IdentityCache:
    """Map arbitrary (weakref-able) objects to built values by identity."""

    def __init__(self, build: Callable):
        self._build = build
        self._entries: Dict[int, Tuple[Callable, object]] = {}

    def get(self, obj):
        key = id(obj)
        entry = self._entries.get(key)
        if entry is not None and entry[0]() is obj:
            return entry[1]
        value = self._build(obj)
        try:
            ref = weakref.ref(obj, lambda _r, k=key, e=self._entries: e.pop(k, None))
        except TypeError:  # un-weakref-able object: never evict, pin it
            ref = (lambda o: (lambda: o))(obj)
        self._entries[key] = (ref, value)
        return value

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: The cross-process artifact store, if one is activated.  Anything with
#: ``get(kind, definition, program, build)`` works; see
#: :class:`repro.service.cache.ArtifactCache`.
_PERSISTENT = None


def set_persistent_cache(cache) -> None:
    """Install (or with ``None`` remove) the persistent outer layer.

    The in-memory identity caches are cleared so artifacts built before
    the switch cannot bypass (or leak from) the new store.
    """
    global _PERSISTENT
    _PERSISTENT = cache
    clear_caches()
    from ..core import checker

    checker.clear_judgment_caches()


def persistent_cache():
    """The installed persistent layer, or ``None``."""
    return _PERSISTENT


def _build_semantic(definition: A.Definition) -> IRProgram:
    def build() -> IRProgram:
        return lower_definition(definition, checked=False)

    if _PERSISTENT is None or not isinstance(definition, A.Definition):
        return build()
    return _PERSISTENT.get("semantic-ir", definition, None, build)


_SEMANTIC_DEFS = IdentityCache(_build_semantic)
_SEMANTIC_EXPRS = IdentityCache(lambda e: lower_expr(e))


def semantic_definition_ir(definition: A.Definition) -> IRProgram:
    """The (cached) semantic-mode IR of a definition."""
    return _SEMANTIC_DEFS.get(definition)


def semantic_expr_ir(expr: A.Expr) -> IRProgram:
    """The (cached) semantic-mode IR of a bare expression."""
    return _SEMANTIC_EXPRS.get(expr)


#: (id(definition), id(program)) -> (def ref, program ref, inlined IR).
_INLINED: Dict[Tuple[int, int], Tuple[Callable, Callable, IRProgram]] = {}


def _ref(obj, key):
    try:
        return weakref.ref(obj, lambda _r, k=key: _INLINED.pop(k, None))
    except TypeError:  # un-weakref-able object: never evict, pin it
        return (lambda o: (lambda: o))(obj)


def inlined_definition_ir(definition: A.Definition, program) -> IRProgram:
    """The (cached) call-inlined semantic IR of a definition.

    Keyed on the identity of *both* the definition and the program: the
    same definition object can appear in several programs whose callee
    definitions differ.
    """
    if program is None:
        return semantic_definition_ir(definition)
    key = (id(definition), id(program))
    entry = _INLINED.get(key)
    if entry is not None and entry[0]() is definition and entry[1]() is program:
        return entry[2]
    from .inline import inline_calls

    def build() -> IRProgram:
        return inline_calls(semantic_definition_ir(definition), program)

    if _PERSISTENT is None or not isinstance(definition, A.Definition):
        value = build()
    else:
        value = _PERSISTENT.get("inlined-ir", definition, program, build)
    _INLINED[key] = (_ref(definition, key), _ref(program, key), value)
    return value


def clear_caches() -> None:
    """Drop every cached program (tests / memory pressure)."""
    _SEMANTIC_DEFS.clear()
    _SEMANTIC_EXPRS.clear()
    _INLINED.clear()
