"""Identity-keyed program caches for lowered IR.

Lowering is linear in program size, but hot loops (the witness runner,
the benchmark drivers, repeated CLI invocations on the same parsed
program) re-analyze the *same* ``Definition`` object thousands of times.
These caches key on object identity — definitions are immutable ASTs, so
identity is the right equality, and hashing a 10000-deep expression tree
(which structural equality would require) is exactly the recursion this
package exists to avoid.  A weak reference per entry evicts the cache
line when the definition is garbage collected, so ``id`` reuse cannot
serve stale programs.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, Tuple

from ..core import ast_nodes as A
from .lower import IRProgram, lower_definition, lower_expr

__all__ = [
    "IdentityCache",
    "semantic_definition_ir",
    "semantic_expr_ir",
    "inlined_definition_ir",
    "clear_caches",
]


class IdentityCache:
    """Map arbitrary (weakref-able) objects to built values by identity."""

    def __init__(self, build: Callable):
        self._build = build
        self._entries: Dict[int, Tuple[Callable, object]] = {}

    def get(self, obj):
        key = id(obj)
        entry = self._entries.get(key)
        if entry is not None and entry[0]() is obj:
            return entry[1]
        value = self._build(obj)
        try:
            ref = weakref.ref(obj, lambda _r, k=key, e=self._entries: e.pop(k, None))
        except TypeError:  # un-weakref-able object: never evict, pin it
            ref = (lambda o: (lambda: o))(obj)
        self._entries[key] = (ref, value)
        return value

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_SEMANTIC_DEFS = IdentityCache(lambda d: lower_definition(d, checked=False))
_SEMANTIC_EXPRS = IdentityCache(lambda e: lower_expr(e))


def semantic_definition_ir(definition: A.Definition) -> IRProgram:
    """The (cached) semantic-mode IR of a definition."""
    return _SEMANTIC_DEFS.get(definition)


def semantic_expr_ir(expr: A.Expr) -> IRProgram:
    """The (cached) semantic-mode IR of a bare expression."""
    return _SEMANTIC_EXPRS.get(expr)


#: (id(definition), id(program)) -> (def ref, program ref, inlined IR).
_INLINED: Dict[Tuple[int, int], Tuple[Callable, Callable, IRProgram]] = {}


def _ref(obj, key):
    try:
        return weakref.ref(obj, lambda _r, k=key: _INLINED.pop(k, None))
    except TypeError:  # un-weakref-able object: never evict, pin it
        return (lambda o: (lambda: o))(obj)


def inlined_definition_ir(definition: A.Definition, program) -> IRProgram:
    """The (cached) call-inlined semantic IR of a definition.

    Keyed on the identity of *both* the definition and the program: the
    same definition object can appear in several programs whose callee
    definitions differ.
    """
    if program is None:
        return semantic_definition_ir(definition)
    key = (id(definition), id(program))
    entry = _INLINED.get(key)
    if entry is not None and entry[0]() is definition and entry[1]() is program:
        return entry[2]
    from .inline import inline_calls

    value = inline_calls(semantic_definition_ir(definition), program)
    _INLINED[key] = (_ref(definition, key), _ref(program, key), value)
    return value


def clear_caches() -> None:
    """Drop every cached program (tests / memory pressure)."""
    _SEMANTIC_DEFS.clear()
    _SEMANTIC_EXPRS.clear()
    _INLINED.clear()
