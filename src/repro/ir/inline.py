"""Inlining defined-function calls into a caller's flat IR.

The batch witness engine evaluates whole batches with one array
operation per IR instruction, which requires a *flat* view of the
program: a ``call`` op forces row-by-row scalar interpretation of the
entire batch.  This pass splices the (semantic-mode) IR of each callee
into the caller — parameter slots alias the argument slots, internal
callee slots are renumbered into the caller's slot space, and the
call's destination becomes an identity (``bang``) read of the callee's
result slot — so programs built from helper definitions vectorize
exactly like hand-flattened code.

Guards keep the pass total and semantics-preserving.  A call that
cannot be inlined is left in place verbatim (the engine then runs the
scalar path, which interprets ``call`` ops directly):

* **unknown callee / arity mismatch** — the scalar engines raise
  ``EvalError`` when such a call *executes*; inlining would change when
  (or whether) that error surfaces;
* **implicit parameters** — a semantic-mode callee with free variables
  reads them from its (empty) call frame and must keep failing at use
  time;
* **cycles** — a (mutually) recursive call chain would never flatten;
* **size** — the flattened program is capped at ``max_ops``
  instructions, so pathological call pyramids cannot blow up memory.

Why the identity ``bang`` at the join: it preserves the caller's slot
numbering (params, result, and every already-emitted operand reference
stay valid), and it is the identity in all three lens sweeps — the
forward sweeps alias the value, the backward sweep forwards the target
unchanged — so the inlined program is *value-identical*, op for op, to
interpreting the call through a frame.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..core import ast_nodes as A
from .lower import _VECTORIZABLE, CALL, CASE, BANG, IROp, IRProgram, Region

__all__ = [
    "inline_calls",
    "inline_fallback_info",
    "MAX_INLINE_OPS",
    "count_ops",
    "walk_ops",
]

#: Default ceiling on the total instruction count of an inlined program.
MAX_INLINE_OPS = 200_000

#: The reasons the inliner may leave a ``call`` op in place (the audit
#: payload's ``inline_fallbacks`` section and the server's ``/stats``
#: counter both use these strings verbatim).
FALLBACK_CYCLE = "cycle"
FALLBACK_UNKNOWN = "unknown-callee"
FALLBACK_ARITY = "arity-mismatch"
FALLBACK_FREE_VARS = "free-variables"
FALLBACK_SIZE_CAP = "size-cap"


def walk_ops(ops) -> Iterator[IROp]:
    """Yield every op preorder, descending into ``case`` regions.

    Iterative (explicit stack of op-list iterators), so arbitrarily deep
    ``case`` nesting cannot hit the interpreter recursion limit — the
    same discipline the lowerer and the sweeps follow.
    """
    stack = [iter(ops)]
    while stack:
        op = next(stack[-1], None)
        if op is None:
            stack.pop()
            continue
        yield op
        if op.code == CASE:
            left, right = op.aux
            # Preorder: descend into the left region first, then the
            # right — push right first so left is consumed on top.
            stack.append(iter(right.ops))
            stack.append(iter(left.ops))


def count_ops(ops) -> int:
    """Total instruction count, including nested ``case`` regions."""
    return sum(1 for _ in walk_ops(ops))


class _Inliner:
    def __init__(self, program: A.Program, max_ops: int, n_slots: int, budget: int):
        self.program = program
        self.max_ops = max_ops
        self.n_slots = n_slots
        self.budget = budget
        self.changed = False
        #: ``(callee, reason)`` per call site left un-inlined, in the
        #: order the sites were visited.
        self.fallbacks: List[Tuple[str, str]] = []

    def fresh(self) -> int:
        slot = self.n_slots
        self.n_slots += 1
        return slot

    def transform(self, ops: List[IROp], stack: frozenset) -> List[IROp]:
        out: List[IROp] = []
        for op in ops:
            if op.code == CALL:
                inlined, reason = self._try_inline(op, stack)
                if inlined is None:
                    self.fallbacks.append((op.aux[0], reason or FALLBACK_UNKNOWN))
                    out.append(op)
                else:
                    out.extend(inlined)
                    self.changed = True
            elif op.code == CASE:
                left, right = op.aux
                out.append(
                    IROp(
                        CASE,
                        op.dest,
                        op.a,
                        aux=(
                            Region(self.transform(left.ops, stack), left.payload, left.result),
                            Region(self.transform(right.ops, stack), right.payload, right.result),
                        ),
                    )
                )
            else:
                out.append(op)
        return out

    def _try_inline(
        self, op: IROp, stack: frozenset
    ) -> Tuple[Optional[List[IROp]], Optional[str]]:
        from .cache import semantic_definition_ir

        name, arg_slots = op.aux
        if name in stack:
            return None, FALLBACK_CYCLE
        if self.program is None or name not in self.program:
            return None, FALLBACK_UNKNOWN
        callee = self.program[name]
        if len(callee.params) != len(arg_slots):
            return None, FALLBACK_ARITY  # arity error must surface at run time
        callee_ir = semantic_definition_ir(callee)
        if len(callee_ir.params) != len(callee.params):
            # free variables must keep failing at use time
            return None, FALLBACK_FREE_VARS
        cost = count_ops(callee_ir.ops) + 1
        if self.budget + cost > self.max_ops:
            return None, FALLBACK_SIZE_CAP
        self.budget += cost

        # Remap callee slots into the caller's slot space: parameter
        # slots alias the argument slots; everything else gets a fresh
        # caller slot on first sight (ops are copied in program order,
        # so the numbering is deterministic).
        mapping = {
            p.slot: arg for p, arg in zip(callee_ir.params, arg_slots)
        }

        def remap(slot: int) -> int:
            if slot < 0:
                return slot
            got = mapping.get(slot)
            if got is None:
                got = self.fresh()
                mapping[slot] = got
            return got

        def copy_ops(ops) -> List[IROp]:
            copied: List[IROp] = []
            for inner in ops:
                code = inner.code
                if code == CASE:
                    left, right = inner.aux
                    a = remap(inner.a)
                    lp, lo, lr = remap(left.payload), copy_ops(left.ops), remap(left.result)
                    rp, ro, rr = remap(right.payload), copy_ops(right.ops), remap(right.result)
                    copied.append(
                        IROp(CASE, remap(inner.dest), a,
                             aux=(Region(lo, lp, lr), Region(ro, rp, rr)))
                    )
                elif code == CALL:
                    cname, cargs = inner.aux
                    copied.append(
                        IROp(CALL, remap(inner.dest),
                             aux=(cname, tuple(remap(s) for s in cargs)))
                    )
                else:
                    copied.append(
                        IROp(code, remap(inner.dest), remap(inner.a), remap(inner.b), inner.aux)
                    )
            return copied

        body = copy_ops(callee_ir.ops)
        # Inline the callee's own calls with this callee on the stack.
        body = self.transform(body, stack | {name})
        body.append(IROp(BANG, op.dest, remap(callee_ir.result)))
        return body, None


def inline_calls(
    ir: IRProgram,
    program: Optional[A.Program],
    *,
    max_ops: int = MAX_INLINE_OPS,
) -> IRProgram:
    """Flatten the ``call`` ops of a semantic-mode IR program.

    Returns ``ir`` unchanged when there is nothing to do (no calls, no
    program to resolve them against, or every call hit a guard).  The
    result's ``vectorizable`` flag is recomputed from the flattened op
    list alone; callers batching over parameters must still check that
    ``ir.params`` carries no implicit (free-variable) parameters.
    """
    if not ir.has_calls or program is None:
        return ir
    inliner = _Inliner(program, max_ops, ir.n_slots, count_ops(ir.ops))
    ops = inliner.transform(ir.ops, frozenset())
    fallbacks = tuple(inliner.fallbacks)
    if not inliner.changed:
        if not fallbacks:
            return ir
        # Nothing was spliced, but guards fired: return a shallow copy
        # carrying the recorded reasons (the shared semantic-mode IR
        # must stay pristine — it is identity-cached program-wide).
        return IRProgram(
            ir.name,
            ir.params,
            ir.ops,
            ir.result,
            ir.n_slots,
            types=ir.types,
            used_params=ir.used_params,
            has_calls=ir.has_calls,
            has_cases=ir.has_cases,
            vectorizable=ir.vectorizable,
            inline_fallbacks=fallbacks,
        )
    has_calls = False
    has_cases = False
    vectorizable = True
    for op in walk_ops(ops):
        if op.code == CALL:
            has_calls = True
        elif op.code == CASE:
            has_cases = True
        if op.code not in _VECTORIZABLE:
            vectorizable = False
    return IRProgram(
        ir.name,
        ir.params,
        ops,
        ir.result,
        inliner.n_slots,
        types=None,
        used_params=ir.used_params,
        has_calls=has_calls,
        has_cases=has_cases,
        vectorizable=vectorizable,
        inline_fallbacks=fallbacks,
    )


def inline_fallback_info(ir: IRProgram) -> List[dict]:
    """The audit payload's ``inline_fallbacks`` section for ``ir``.

    One entry per (callee, reason) pair with the number of call sites
    it covers, sorted for deterministic payload bytes.  Empty (so the
    section is omitted and pre-existing payload bytes are preserved)
    whenever every call inlined cleanly — in practice a guard can only
    fire on pathological programs, e.g. an inlined size beyond the
    ``max_ops`` cap.
    """
    fallbacks = getattr(ir, "inline_fallbacks", ())
    if not fallbacks:
        return []
    counts: dict = {}
    for callee, reason in fallbacks:
        counts[(callee, reason)] = counts.get((callee, reason), 0) + 1
    return [
        {"callee": callee, "reason": reason, "sites": sites}
        for (callee, reason), sites in sorted(counts.items())
    ]
