"""Lowering Bean/Λ_S terms to the flat IR.

The lowering machine is a small explicit-stack interpreter over the AST,
so arbitrarily deep ``let`` chains (Sum 10000 nests ten thousand binders)
lower under the default recursion limit.  ``case`` branches become nested
*regions* — contiguous op lists with their own payload and result slots —
sharing the global slot numbering, the same structured-control-flow shape
WASM and MLIR use; the only recursion anywhere in the IR pipeline is over
case-nesting depth, which is bounded by the source program's syntactic
nesting (zero for every paper benchmark), never by program length.

Two modes:

* **checked** (``checked=True``): re-implements the well-formedness side
  of the Figure 7 inference algorithm — structural types per slot,
  strict-linearity use tracking (forked and re-joined across case
  branches), no-shadowing freshness, and the per-rule type checks — and
  raises exactly the errors :class:`repro.core.checker.InferenceEngine`
  would, in the same order.  Calls are typed compositionally from the
  callee's judgment, like the recursive checker.
* **semantic** (``checked=False``): lowers any *runnable* term, exactly
  as permissive as the Λ_S big-step evaluator (shadowing allowed, no
  linearity, unknown variables fail at use time, Λ_S constants allowed).
  Free variables become implicit parameters read from the environment.

Slot discipline: each op writes the slot ``op.dest``; parameter slots are
pre-filled by executors and have no defining op; ``let`` binders emit no
code at all (the bound name aliases the bound expression's slot), which
is what makes a 10000-binding chain a 9999-op program.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core import ast_nodes as A
from ..core.errors import BeanTypeError, LinearityError, UnboundVariableError
from ..core.types import NUM, UNIT as UNIT_TY, Discrete, Num, Sum, Tensor, is_discrete

__all__ = [
    "IROp",
    "IRProgram",
    "IRParam",
    "Region",
    "OP_NAMES",
    "DVAR",
    "CONST",
    "UNIT",
    "PAIR",
    "FST",
    "SND",
    "INL",
    "INR",
    "BANG",
    "RND",
    "ADD",
    "SUB",
    "MUL",
    "DIV",
    "DMUL",
    "CALL",
    "CASE",
    "lower_definition",
    "lower_expr",
]

# --------------------------------------------------------------------------
# Opcodes
# --------------------------------------------------------------------------

DVAR = 0  #: read a discretely bound variable (a = source slot, aux = name)
CONST = 1  #: Λ_S numeric literal (aux = value)
UNIT = 2  #: the unit value
PAIR = 3  #: tensor introduction (a, b = component slots)
FST = 4  #: first projection of a pair slot (from let-pair elimination)
SND = 5  #: second projection
INL = 6  #: left injection (aux = annotated right summand type)
INR = 7  #: right injection (aux = annotated left summand type)
BANG = 8  #: promotion ``!e`` — identity at runtime, discrete at type level
RND = 9  #: explicit rounding (identity in ideal mode)
ADD = 10
SUB = 11
MUL = 12
DIV = 13
DMUL = 14
CALL = 15  #: call of a top-level definition (aux = (name, arg slots))
CASE = 16  #: sum elimination (a = scrutinee, aux = (left, right) regions)

OP_NAMES = {
    DVAR: "dvar",
    CONST: "const",
    UNIT: "unit",
    PAIR: "pair",
    FST: "fst",
    SND: "snd",
    INL: "inl",
    INR: "inr",
    BANG: "bang",
    RND: "rnd",
    ADD: "add",
    SUB: "sub",
    MUL: "mul",
    DIV: "div",
    DMUL: "dmul",
    CALL: "call",
    CASE: "case",
}

_PRIM_CODE = {
    A.Op.ADD: ADD,
    A.Op.SUB: SUB,
    A.Op.MUL: MUL,
    A.Op.DIV: DIV,
    A.Op.DMUL: DMUL,
}

#: Inverse of ``_PRIM_CODE``: arithmetic opcode back to the AST operator.
CODE_TO_PRIM = {code: op for op, code in _PRIM_CODE.items()}

#: Opcodes the batch witness engine can evaluate as whole-array operations.
#: ``div`` vectorizes with per-row zero screening, ``case``/``inl``/``inr``
#: with branch masks; ``call`` is the one op the array pipeline cannot see
#: through directly — :mod:`repro.ir.inline` rewrites calls away first, and
#: only programs where a call survives (unknown callee, arity mismatch,
#: recursion, size guard) drop to the scalar path.
_VECTORIZABLE = frozenset(
    {DVAR, CONST, UNIT, PAIR, FST, SND, INL, INR, BANG, RND,
     ADD, SUB, MUL, DIV, DMUL, CASE}
)


class IROp:
    """One flat instruction.  ``dest`` is the slot this op writes."""

    __slots__ = ("code", "dest", "a", "b", "aux")

    def __init__(self, code: int, dest: int, a: int = -1, b: int = -1, aux=None):
        self.code = code
        self.dest = dest
        self.a = a
        self.b = b
        self.aux = aux

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"%{self.dest} = {OP_NAMES[self.code]}"]
        if self.a >= 0:
            parts.append(f"%{self.a}")
        if self.b >= 0:
            parts.append(f"%{self.b}")
        if self.code in (DVAR, CALL, CONST):
            parts.append(repr(self.aux))
        return " ".join(parts)


class Region:
    """A case branch: its ops, the payload slot, and the result slot."""

    __slots__ = ("ops", "payload", "result")

    def __init__(self, ops: List[IROp], payload: int, result: int):
        self.ops = ops
        self.payload = payload
        self.result = result


class IRParam:
    """A parameter slot of an :class:`IRProgram`."""

    __slots__ = ("name", "slot", "discrete", "ty")

    def __init__(self, name: str, slot: int, discrete: bool, ty=None):
        self.name = name
        self.slot = slot
        self.discrete = discrete
        self.ty = ty

    def __repr__(self) -> str:  # pragma: no cover
        kind = "discrete" if self.discrete else "linear"
        return f"IRParam({self.name!r}@%{self.slot}, {kind})"


class IRProgram:
    """A lowered definition: flat op list plus slot metadata."""

    __slots__ = (
        "name",
        "params",
        "ops",
        "result",
        "n_slots",
        "types",
        "used_params",
        "has_calls",
        "has_cases",
        "vectorizable",
        "inline_fallbacks",
    )

    def __init__(
        self,
        name: str,
        params: Tuple[IRParam, ...],
        ops: List[IROp],
        result: int,
        n_slots: int,
        types: Optional[List] = None,
        used_params: frozenset = frozenset(),
        has_calls: bool = False,
        has_cases: bool = False,
        vectorizable: bool = False,
        inline_fallbacks: Tuple = (),
    ):
        self.name = name
        self.params = params
        self.ops = ops
        self.result = result
        self.n_slots = n_slots
        self.types = types
        self.used_params = used_params
        self.has_calls = has_calls
        self.has_cases = has_cases
        self.vectorizable = vectorizable
        #: ``(callee, reason)`` pairs recorded by the inliner for every
        #: ``call`` op it left in place (empty for semantic-mode IR).
        self.inline_fallbacks = inline_fallbacks

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<IRProgram {self.name!r}: {len(self.ops)} ops, "
            f"{self.n_slots} slots, result %{self.result}>"
        )


# --------------------------------------------------------------------------
# The lowering machine
# --------------------------------------------------------------------------


class _Bind:
    """A scope entry: where a name lives and how it may be used."""

    __slots__ = ("slot", "discrete", "ty")

    def __init__(self, slot: int, discrete: bool, ty=None):
        self.slot = slot
        self.discrete = discrete
        self.ty = ty


class _Lowerer:
    def __init__(self, checked: bool, judgments: Optional[Mapping] = None):
        self.checked = checked
        self.judgments = dict(judgments or {})
        self.blocks: List[List[IROp]] = [[]]
        self.n_slots = 0
        self.types: List = [] if checked else None
        self.scope: Dict[str, _Bind] = {}
        self.undo: List[Tuple[str, Optional[_Bind]]] = []
        self.used: set = set()  # _Bind objects consumed (checked mode)
        self.case_states: List[dict] = []
        self.implicit_params: List[IRParam] = []
        self.param_binds: Dict[str, _Bind] = {}
        self.param_slots: set = set()
        self.has_calls = False
        self.has_cases = False
        self.vectorizable = True

    # -- slot / op helpers -------------------------------------------------

    def new_slot(self, ty=None) -> int:
        slot = self.n_slots
        self.n_slots += 1
        if self.types is not None:
            self.types.append(ty)
        return slot

    def emit(self, code: int, a: int = -1, b: int = -1, aux=None, ty=None) -> int:
        dest = self.new_slot(ty)
        self.blocks[-1].append(IROp(code, dest, a, b, aux))
        if code not in _VECTORIZABLE:
            self.vectorizable = False
        return dest

    def bind(self, name: str, slot: int, discrete: bool, ty=None) -> None:
        self.undo.append((name, self.scope.get(name)))
        self.scope[name] = _Bind(slot, discrete, ty)

    def unbind(self, count: int) -> None:
        for _ in range(count):
            name, old = self.undo.pop()
            if old is None:
                del self.scope[name]
            else:
                self.scope[name] = old

    def check_fresh(self, name: str) -> None:
        if name in self.scope:
            raise BeanTypeError(
                f"binding {name!r} shadows a variable already in scope; "
                "Bean programs must use distinct names"
            )

    def ty_of(self, slot: int):
        return self.types[slot] if self.types is not None else None

    @staticmethod
    def _require_num(ty, op: str) -> None:
        if not isinstance(ty, Num):
            raise BeanTypeError(f"{op} requires num operands, got {ty}")

    # -- the main loop -----------------------------------------------------

    def lower(self, root: A.Expr) -> int:
        work: List[tuple] = [("expr", root)]
        vstack: List[int] = []
        push = work.append
        while work:
            item = work.pop()
            tag = item[0]

            if tag == "expr":
                e = item[1]
                cls = type(e)

                if cls is A.Var:
                    vstack.append(self._lower_var(e.name))
                elif cls is A.Let or cls is A.DLet:
                    push(("unbind", 1))
                    push(("expr", e.body))
                    push(("bind_let", e))
                    push(("expr", e.bound))
                elif cls is A.PrimOp:
                    push(("primop", e))
                    push(("expr", e.right))
                    push(("primop_mid", e))
                    push(("expr", e.left))
                elif cls is A.Pair:
                    push(("pair",))
                    push(("expr", e.right))
                    push(("expr", e.left))
                elif cls is A.LetPair or cls is A.DLetPair:
                    push(("unbind", 2))
                    push(("expr", e.body))
                    push(("bind_pair", e))
                    push(("expr", e.bound))
                elif cls is A.Bang:
                    push(("bang",))
                    push(("expr", e.body))
                elif cls is A.Rnd:
                    push(("rnd",))
                    push(("expr", e.body))
                elif cls is A.Inl or cls is A.Inr:
                    push(("inj", e))
                    push(("expr", e.body))
                elif cls is A.Case:
                    push(("case_mid", e))
                    push(("expr", e.scrutinee))
                elif cls is A.Call:
                    self._start_call(e, push)
                elif cls is A.UnitVal:
                    vstack.append(self.emit(UNIT, ty=UNIT_TY))
                elif not self.checked and hasattr(e, "value") and not _children(e):
                    # Λ_S numeric literal (lam_s.syntax.Const) — runnable
                    # but outside Bean's checked grammar.
                    vstack.append(self.emit(CONST, aux=e.value))
                else:
                    if self.checked:
                        raise BeanTypeError(f"cannot check {e!r}")
                    raise BeanTypeError(f"cannot lower {e!r}")

            elif tag == "bind_let":
                e = item[1]
                slot = vstack.pop()
                if (
                    not self.checked
                    and type(e.bound) is A.Var
                    and slot in self.param_slots
                ):
                    # The recursive evaluator reads a let-bound variable
                    # eagerly; a pure slot alias would skip the read (and
                    # its unbound-input check) when the binder is dead.
                    # An identity op keeps the strictness observable.
                    slot = self.emit(BANG, slot)
                if type(e) is A.DLet:
                    if self.checked:
                        ty = self.ty_of(slot)
                        if not is_discrete(ty):
                            raise BeanTypeError(
                                "dlet requires a discrete (m-typed) bound "
                                f"expression, got {ty}"
                            )
                        self.check_fresh(e.name)
                    self.bind(e.name, slot, True, self.ty_of(slot))
                else:
                    if self.checked:
                        self.check_fresh(e.name)
                    self.bind(e.name, slot, False, self.ty_of(slot))

            elif tag == "bind_pair":
                self._bind_pair(item[1], vstack.pop())

            elif tag == "unbind":
                self.unbind(item[1])

            elif tag == "primop_mid":
                if self.checked:
                    e = item[1]
                    ty1 = self.ty_of(vstack[-1])
                    if e.op is A.Op.DMUL:
                        if ty1 != Discrete(NUM):
                            raise BeanTypeError(
                                "dmul's first operand must be discrete "
                                f"m(num), got {ty1}"
                            )
                    else:
                        self._require_num(ty1, str(e.op))

            elif tag == "primop":
                e = item[1]
                b = vstack.pop()
                a = vstack.pop()
                result_ty = None
                if self.checked:
                    ty2 = self.ty_of(b)
                    self._require_num(ty2, "dmul" if e.op is A.Op.DMUL else str(e.op))
                    result_ty = Sum(NUM, UNIT_TY) if e.op is A.Op.DIV else NUM
                vstack.append(self.emit(_PRIM_CODE[e.op], a, b, ty=result_ty))

            elif tag == "pair":
                b = vstack.pop()
                a = vstack.pop()
                ty = None
                if self.checked:
                    ty = Tensor(self.ty_of(a), self.ty_of(b))
                vstack.append(self.emit(PAIR, a, b, ty=ty))

            elif tag == "bang":
                a = vstack.pop()
                ty = Discrete(self.ty_of(a)) if self.checked else None
                vstack.append(self.emit(BANG, a, ty=ty))

            elif tag == "rnd":
                a = vstack.pop()
                if self.checked:
                    self._require_num(self.ty_of(a), "rnd")
                vstack.append(self.emit(RND, a, ty=NUM if self.checked else None))

            elif tag == "inj":
                e = item[1]
                a = vstack.pop()
                code = INL if type(e) is A.Inl else INR
                ty = None
                if self.checked:
                    body_ty = self.ty_of(a)
                    ty = (
                        Sum(body_ty, e.other)
                        if code == INL
                        else Sum(e.other, body_ty)
                    )
                vstack.append(self.emit(code, a, aux=e.other, ty=ty))

            elif tag == "case_mid":
                self._case_mid(item[1], vstack, push)
            elif tag == "case_after_left":
                self._case_after_left(item[1], vstack, push)
            elif tag == "case_finish":
                self._case_finish(item[1], vstack)

            elif tag == "check_arg":
                if self.checked:
                    e, index = item[1], item[2]
                    param = self.judgments[e.name].params[index]
                    ty = self.ty_of(vstack[-1])
                    if ty != param.ty:
                        raise BeanTypeError(
                            f"argument for {param.name!r} of {e.name!r} has "
                            f"type {ty}, expected {param.ty}"
                        )
            elif tag == "emit_call":
                e = item[1]
                n = len(e.args)
                args = tuple(vstack[len(vstack) - n :]) if n else ()
                del vstack[len(vstack) - n :]
                ty = self.judgments[e.name].result if self.checked else None
                self.has_calls = True
                vstack.append(self.emit(CALL, aux=(e.name, args), ty=ty))

            else:  # pragma: no cover - machine invariant
                raise AssertionError(f"unknown lowering action {tag!r}")

        assert len(vstack) == 1, "lowering imbalance"
        return vstack[0]

    # -- per-construct helpers ---------------------------------------------

    def _lower_var(self, name: str) -> int:
        bind = self.scope.get(name)
        if bind is None:
            if self.checked:
                raise UnboundVariableError(f"unbound variable {name!r}")
            # Semantic mode: an implicit parameter, resolved (or reported
            # missing) when the program runs — like the Λ_S evaluator.
            slot = self.new_slot()
            bind = _Bind(slot, False, None)
            self.scope[name] = bind
            self.implicit_params.append(IRParam(name, slot, False, None))
            self.param_slots.add(slot)
            return slot
        if bind.discrete:
            return self.emit(DVAR, bind.slot, aux=name, ty=bind.ty)
        if self.checked:
            if bind in self.used:
                raise LinearityError(
                    f"linear variable(s) used in two subexpressions: {name}"
                )
            self.used.add(bind)
        return bind.slot

    def _bind_pair(self, e, slot: int) -> None:
        """Pair elimination, shared by ``LetPair`` and ``DLetPair``."""
        discrete_pair = type(e) is A.DLetPair
        bound_ty = self.ty_of(slot)
        left_ty = right_ty = None
        if self.checked:
            if discrete_pair:
                if (
                    isinstance(bound_ty, Tensor)
                    and is_discrete(bound_ty.left)
                    and is_discrete(bound_ty.right)
                ):
                    left_ty, right_ty = bound_ty.left, bound_ty.right
                elif isinstance(bound_ty, Discrete) and isinstance(
                    bound_ty.inner, Tensor
                ):
                    left_ty = Discrete(bound_ty.inner.left)
                    right_ty = Discrete(bound_ty.inner.right)
                else:
                    raise BeanTypeError(
                        "dlet-pair requires a pair of discrete components, "
                        f"got {bound_ty}"
                    )
            else:
                if not isinstance(bound_ty, Tensor):
                    raise BeanTypeError(
                        f"let-pair requires a tensor type, got {bound_ty}"
                    )
                left_ty, right_ty = bound_ty.left, bound_ty.right
            self.check_fresh(e.left)
            self.check_fresh(e.right)
            if e.left == e.right:
                raise LinearityError(
                    f"pair pattern binds {e.left!r} twice; components must "
                    "be distinct"
                )
        fst = self.emit(FST, slot, ty=left_ty)
        snd = self.emit(SND, slot, ty=right_ty)
        self.bind(e.left, fst, discrete_pair, left_ty)
        self.bind(e.right, snd, discrete_pair, right_ty)

    def _start_call(self, e: A.Call, push) -> None:
        if self.checked:
            judgment = self.judgments.get(e.name)
            if judgment is None:
                raise UnboundVariableError(
                    f"call to unknown definition {e.name!r} "
                    "(definitions must appear before their uses)"
                )
            if len(e.args) != len(judgment.params):
                raise BeanTypeError(
                    f"{e.name!r} expects {len(judgment.params)} argument(s), "
                    f"got {len(e.args)}"
                )
        push(("emit_call", e))
        for i in range(len(e.args) - 1, -1, -1):
            push(("check_arg", e, i))
            push(("expr", e.args[i]))

    def _case_mid(self, e: A.Case, vstack: List[int], push) -> None:
        scrut = vstack.pop()
        scrut_ty = self.ty_of(scrut)
        if self.checked:
            if not isinstance(scrut_ty, Sum):
                raise BeanTypeError(
                    f"case requires a sum-typed scrutinee, got {scrut_ty}"
                )
            self.check_fresh(e.left_name)
        state = {
            "scrut": scrut,
            "saved_used": set(self.used) if self.checked else None,
        }
        self.case_states.append(state)
        # Left region: fresh emission buffer, payload slot, branch binder.
        self.blocks.append([])
        payload = self.new_slot(scrut_ty.left if self.checked else None)
        state["payload_left"] = payload
        self.bind(e.left_name, payload, False, scrut_ty.left if self.checked else None)
        push(("case_after_left", e))
        push(("expr", e.left))

    def _case_after_left(self, e: A.Case, vstack: List[int], push) -> None:
        state = self.case_states[-1]
        state["left_result"] = vstack.pop()
        state["left_ops"] = self.blocks.pop()
        self.unbind(1)
        if self.checked:
            state["left_used"] = self.used
            self.used = set(state["saved_used"])
            self.check_fresh(e.right_name)
        scrut_ty = self.ty_of(state["scrut"])
        self.blocks.append([])
        payload = self.new_slot(scrut_ty.right if self.checked else None)
        state["payload_right"] = payload
        self.bind(
            e.right_name, payload, False, scrut_ty.right if self.checked else None
        )
        push(("case_finish", e))
        push(("expr", e.right))

    def _case_finish(self, e: A.Case, vstack: List[int]) -> None:
        state = self.case_states.pop()
        right_result = vstack.pop()
        right_ops = self.blocks.pop()
        self.unbind(1)
        result_ty = None
        if self.checked:
            left_ty = self.ty_of(state["left_result"])
            right_ty = self.ty_of(right_result)
            if left_ty != right_ty:
                raise BeanTypeError(
                    f"case branches disagree: {left_ty} vs {right_ty}"
                )
            self.used = state["left_used"] | self.used
            result_ty = left_ty
        regions = (
            Region(state["left_ops"], state["payload_left"], state["left_result"]),
            Region(right_ops, state["payload_right"], right_result),
        )
        self.has_cases = True
        vstack.append(self.emit(CASE, state["scrut"], aux=regions, ty=result_ty))


def _children(expr: A.Expr) -> Tuple[A.Expr, ...]:
    return A._children(expr)


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------


def lower_definition(
    definition: A.Definition,
    *,
    checked: bool = False,
    judgments: Optional[Mapping] = None,
) -> IRProgram:
    """Lower a definition.  See the module docstring for the two modes."""
    low = _Lowerer(checked, judgments)
    params = []
    for p in definition.params:
        discrete = is_discrete(p.ty)
        slot = low.new_slot(p.ty)
        bind = _Bind(slot, discrete, p.ty)
        low.scope[p.name] = bind
        low.param_binds[p.name] = bind
        low.param_slots.add(slot)
        params.append(IRParam(p.name, slot, discrete, p.ty))
    result = low.lower(definition.body)
    used_params = frozenset(
        name for name, bind in low.param_binds.items() if bind in low.used
    )
    return IRProgram(
        definition.name,
        tuple(params) + tuple(low.implicit_params),
        low.blocks[0],
        result,
        low.n_slots,
        types=low.types,
        used_params=used_params,
        has_calls=low.has_calls,
        has_cases=low.has_cases,
        vectorizable=low.vectorizable and not low.implicit_params,
    )


def lower_expr(
    expr: A.Expr,
    *,
    params: Sequence[A.Param] = (),
) -> IRProgram:
    """Lower a bare (semantic-mode) expression.

    Free variables not covered by ``params`` become implicit linear
    parameters read from the evaluation environment, mirroring the
    recursive Λ_S evaluator's env lookup.
    """
    low = _Lowerer(False, None)
    param_slots = []
    for p in params:
        discrete = is_discrete(p.ty)
        slot = low.new_slot()
        low.scope[p.name] = _Bind(slot, discrete, p.ty)
        low.param_slots.add(slot)
        param_slots.append(IRParam(p.name, slot, discrete, p.ty))
    result = low.lower(expr)
    return IRProgram(
        "<expr>",
        tuple(param_slots) + tuple(low.implicit_params),
        low.blocks[0],
        result,
        low.n_slots,
        has_calls=low.has_calls,
        has_cases=low.has_cases,
        vectorizable=False,
    )
