"""Bean: a language for backward error analysis — Python reproduction.

A from-scratch implementation of the system described in

    Ariel E. Kellison, Laura Zielinski, David Bindel, Justin Hsu.
    "Bean: A Language for Backward Error Analysis." PLDI 2025.

Quick tour (the Session API is the one front door; everything the CLI
and the audit server do goes through it)::

    >>> from repro.api import Session
    >>> session = Session()
    >>> prog = session.parse('''
    ... DotProd2 (x : vec(2)) (y : vec(2)) : num :=
    ...   let (x0, x1) = x in
    ...   let (y0, y1) = y in
    ...   let v = mul x0 y0 in
    ...   let w = mul x1 y1 in
    ...   add v w
    ... ''')
    >>> str(session.check(prog)["DotProd2"].grade_of("x"))
    '3ε/2'
    >>> result = session.audit(prog,
    ...                        inputs={"x": [1.5, 2.25], "y": [3.1, -0.7]})
    >>> result.sound
    True
    >>> "batch" in session.engines()  # engine discovery, registry-backed
    True

``result.to_json()`` renders the versioned audit payload — the exact
bytes ``repro witness --json`` prints and ``repro serve`` answers.

Subpackages:

* :mod:`repro.api` — the public audit API: :class:`~repro.api.Session`,
  the pluggable engine registry, and the versioned
  :class:`~repro.api.AuditResult` schema.
* :mod:`repro.core` — the Bean language: syntax, linear/graded type
  system, and the backward error bound inference algorithm.
* :mod:`repro.ir` — the flat compiled representation every analysis and
  evaluation hot path runs on: an iterative lowering pass, reverse-sweep
  grade inference, and identity-keyed program caches.
* :mod:`repro.lam_s` — the erasure target Λ_S with ideal and approximate
  operational semantics.
* :mod:`repro.semantics` — backward error lenses; the category Bel; the
  interpreter that turns typed programs into executable (f, f̃, b)
  triples; the soundness-theorem witness runner.
* :mod:`repro.analysis` — metrics, worst-case literature bounds,
  condition numbers, and the baseline analyzers Tables 1–3 compare
  against.
* :mod:`repro.programs` — the paper's example programs and scalable
  benchmark generators.
* :mod:`repro.bench` — drivers that regenerate Tables 1, 2 and 3.
* :mod:`repro.service` — the artifact cache and the ``repro serve``
  audit server.
"""

import functools
import warnings
from typing import TYPE_CHECKING, Any, Callable, List

from .core import (
    EPS,
    HALF_EPS,
    ZERO,
    BeanError,
    BeanSyntaxError,
    BeanTypeError,
    Definition,
    Grade,
    Judgment,
    LinearityError,
    Program,
    UnboundVariableError,
    check_definition,
    check_program,
    count_flops,
    eps_from_roundoff,
    infer,
    parse_expression,
    parse_program,
    parse_type,
    pretty_program,
    unit_roundoff,
)
from .report import AnalysisReport, analyze
from .semantics import (
    BeanLens,
    WitnessReport,
    lens_of_definition,
    lens_of_program,
)

if TYPE_CHECKING:
    # Lazy (PEP 562) names, spelled out so mypy/IDEs resolve them.
    from .api import AuditResult, Session
    from .semantics.batch import (
        BatchWitnessEngine,
        BatchWitnessReport,
        run_witness_batch,
    )
    from .semantics.shard import run_witness_sharded
    from .semantics.witness import run_witness

#: Batch-witness API is loaded lazily (PEP 562): it is the only part of
#: the package that needs numpy, and eager loading would tax every CLI
#: start-up with the numpy import.
_LAZY_BATCH = ("BatchWitnessEngine", "BatchWitnessReport")
#: The public-API façade is lazy too, keeping `import repro` minimal.
_LAZY_API = ("AuditResult", "Session")

#: Legacy module-level witness entry points, kept as deprecation shims:
#: each call emits one DeprecationWarning and returns results bitwise
#: identical to the Session API (name → (module, hint)).
_DEPRECATED_WITNESS = {
    "run_witness": (".semantics.witness", "session.audit(..., engine='ir')"),
    "run_witness_batch": (
        ".semantics.batch",
        "session.audit(..., engine='batch')",
    ),
    "run_witness_sharded": (
        ".semantics.shard",
        "session.audit(..., engine='sharded')",
    ),
}
_deprecated_cache: dict = {}


def _deprecated_shim(name: str) -> Callable[..., Any]:
    import importlib

    module_name, hint = _DEPRECATED_WITNESS[name]
    target = getattr(
        importlib.import_module(module_name, __name__), name
    )

    @functools.wraps(target)
    def shim(*args: Any, **kwargs: Any) -> Any:
        warnings.warn(
            f"repro.{name} is deprecated; use repro.api.Session — "
            f"e.g. {hint}",
            DeprecationWarning,
            stacklevel=2,
        )
        return target(*args, **kwargs)

    return shim


def __getattr__(name: str) -> Any:
    if name in _DEPRECATED_WITNESS:
        if name not in _deprecated_cache:
            _deprecated_cache[name] = _deprecated_shim(name)
        return _deprecated_cache[name]
    if name in _LAZY_BATCH:
        from .semantics import batch

        return getattr(batch, name)
    if name in _LAZY_API:
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    # Lazy names are invisible to the default dir(); advertise the full
    # public surface (globals for submodules/private helpers included,
    # as regular modules do).
    return sorted(set(globals()) | set(__all__))


__version__ = "1.2.0"

__all__ = [
    "AnalysisReport",
    "analyze",
    "AuditResult",
    "EPS",
    "HALF_EPS",
    "ZERO",
    "BatchWitnessEngine",
    "BatchWitnessReport",
    "BeanError",
    "BeanSyntaxError",
    "BeanTypeError",
    "BeanLens",
    "Definition",
    "Grade",
    "Judgment",
    "LinearityError",
    "Program",
    "Session",
    "UnboundVariableError",
    "WitnessReport",
    "check_definition",
    "check_program",
    "count_flops",
    "eps_from_roundoff",
    "infer",
    "lens_of_definition",
    "lens_of_program",
    "parse_expression",
    "parse_program",
    "parse_type",
    "pretty_program",
    "run_witness",
    "run_witness_batch",
    "run_witness_sharded",
    "unit_roundoff",
    "__version__",
]
