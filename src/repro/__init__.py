"""Bean: a language for backward error analysis — Python reproduction.

A from-scratch implementation of the system described in

    Ariel E. Kellison, Laura Zielinski, David Bindel, Justin Hsu.
    "Bean: A Language for Backward Error Analysis." PLDI 2025.

Quick tour::

    >>> import repro
    >>> prog = repro.parse_program('''
    ... DotProd2 (x : vec(2)) (y : vec(2)) : num :=
    ...   let (x0, x1) = x in
    ...   let (y0, y1) = y in
    ...   let v = mul x0 y0 in
    ...   let w = mul x1 y1 in
    ...   add v w
    ... ''')
    >>> judgment = repro.check_program(prog)["DotProd2"]
    >>> str(judgment.grade_of("x"))
    '3ε/2'
    >>> report = repro.run_witness(prog["DotProd2"],
    ...                            {"x": [1.5, 2.25], "y": [3.1, -0.7]},
    ...                            program=prog)
    >>> report.sound
    True

Subpackages:

* :mod:`repro.core` — the Bean language: syntax, linear/graded type
  system, and the backward error bound inference algorithm.
* :mod:`repro.ir` — the flat compiled representation every analysis and
  evaluation hot path runs on: an iterative lowering pass, reverse-sweep
  grade inference, and identity-keyed program caches.
* :mod:`repro.lam_s` — the erasure target Λ_S with ideal and approximate
  operational semantics.
* :mod:`repro.semantics` — backward error lenses; the category Bel; the
  interpreter that turns typed programs into executable (f, f̃, b)
  triples; the soundness-theorem witness runner.
* :mod:`repro.analysis` — metrics, worst-case literature bounds,
  condition numbers, and the baseline analyzers Tables 1–3 compare
  against.
* :mod:`repro.programs` — the paper's example programs and scalable
  benchmark generators.
* :mod:`repro.bench` — drivers that regenerate Tables 1, 2 and 3.
"""

from .core import (
    EPS,
    HALF_EPS,
    ZERO,
    BeanError,
    BeanSyntaxError,
    BeanTypeError,
    Definition,
    Grade,
    Judgment,
    LinearityError,
    Program,
    UnboundVariableError,
    check_definition,
    check_program,
    count_flops,
    eps_from_roundoff,
    infer,
    parse_expression,
    parse_program,
    parse_type,
    pretty_program,
    unit_roundoff,
)
from .report import AnalysisReport, analyze
from .semantics import (
    BeanLens,
    WitnessReport,
    lens_of_definition,
    lens_of_program,
    run_witness,
)

#: Batch-witness API is loaded lazily (PEP 562): it is the only part of
#: the package that needs numpy, and eager loading would tax every CLI
#: start-up with the numpy import.
_LAZY_BATCH = ("BatchWitnessEngine", "BatchWitnessReport", "run_witness_batch")
_LAZY_SHARD = ("run_witness_sharded",)


def __getattr__(name):
    if name in _LAZY_BATCH:
        from .semantics import batch

        return getattr(batch, name)
    if name in _LAZY_SHARD:
        from .semantics import shard

        return getattr(shard, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__version__ = "1.1.0"

__all__ = [
    "AnalysisReport",
    "analyze",
    "EPS",
    "HALF_EPS",
    "ZERO",
    "BatchWitnessEngine",
    "BatchWitnessReport",
    "BeanError",
    "BeanSyntaxError",
    "BeanTypeError",
    "BeanLens",
    "Definition",
    "Grade",
    "Judgment",
    "LinearityError",
    "Program",
    "UnboundVariableError",
    "WitnessReport",
    "check_definition",
    "check_program",
    "count_flops",
    "eps_from_roundoff",
    "infer",
    "lens_of_definition",
    "lens_of_program",
    "parse_expression",
    "parse_program",
    "parse_type",
    "pretty_program",
    "run_witness",
    "run_witness_batch",
    "run_witness_sharded",
    "unit_roundoff",
    "__version__",
]
