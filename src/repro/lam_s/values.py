"""Runtime values shared by the Λ_S evaluators and the lens semantics.

Values follow the paper's grammar (Appendix D)::

    v ::= () | k ∈ R | (v, v) | inl v | inr v

Numbers carry either a binary64 ``float`` (the approximate semantics) or a
high-precision :class:`decimal.Decimal` (our stand-in for the ideal
real-arithmetic semantics).  :func:`values_close` compares values across
the two representations with a tolerance far below binary64 resolution,
which is how tests check Property 2 of backward error lenses
(``f(b(x, y)) = y``) despite ideal arithmetic being carried out at finite
(50-digit) precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from decimal import Decimal
from typing import List, Sequence, Union

__all__ = [
    "Value",
    "VUnit",
    "VNum",
    "VPair",
    "VInl",
    "VInr",
    "UNIT_VALUE",
    "num",
    "pair_of",
    "vector_value",
    "vector_components",
    "values_close",
    "to_decimal",
]

NumberLike = Union[int, float, Decimal]


def to_decimal(x: NumberLike) -> Decimal:
    """Exact conversion to Decimal (floats convert without rounding)."""
    if isinstance(x, Decimal):
        return x
    if isinstance(x, int):
        return Decimal(x)
    return Decimal(x)  # Decimal(float) is exact in Python


class Value:
    """Base class for runtime values."""

    __slots__ = ()


@dataclass(frozen=True)
class VUnit(Value):
    """The unit value ``()``."""

    def __repr__(self) -> str:
        return "()"


UNIT_VALUE = VUnit()


@dataclass(frozen=True)
class VNum(Value):
    """A numeric value (binary64 or high-precision Decimal)."""

    payload: NumberLike

    def as_decimal(self) -> Decimal:
        return to_decimal(self.payload)

    def as_float(self) -> float:
        return float(self.payload)

    def __repr__(self) -> str:
        return f"VNum({self.payload})"


@dataclass(frozen=True)
class VPair(Value):
    """A pair value ``(left, right)``."""

    left: Value
    right: Value

    def __repr__(self) -> str:
        return f"({self.left!r}, {self.right!r})"


@dataclass(frozen=True)
class VInl(Value):
    """Left injection."""

    body: Value

    def __repr__(self) -> str:
        return f"inl {self.body!r}"


@dataclass(frozen=True)
class VInr(Value):
    """Right injection."""

    body: Value

    def __repr__(self) -> str:
        return f"inr {self.body!r}"


def num(x: NumberLike) -> VNum:
    """Wrap a Python number."""
    return VNum(x)


def pair_of(left: Value, right: Value) -> VPair:
    return VPair(left, right)


def vector_value(components: Sequence[NumberLike]) -> Value:
    """Pack numbers into the balanced pair tree matching ``types.vector``."""
    values: List[Value] = [VNum(c) for c in components]
    if not values:
        raise ValueError("empty vector")
    return _balanced(values)


def _balanced(parts: List[Value]) -> Value:
    if len(parts) == 1:
        return parts[0]
    mid = len(parts) // 2
    return VPair(_balanced(parts[:mid]), _balanced(parts[mid:]))


def vector_components(value: Value) -> List[VNum]:
    """Flatten a balanced pair tree of numbers back into a list."""
    out: List[VNum] = []
    stack = [value]
    while stack:
        v = stack.pop()
        if isinstance(v, VPair):
            stack.append(v.right)
            stack.append(v.left)
        elif isinstance(v, VNum):
            out.append(v)
        else:
            raise TypeError(f"not a numeric vector component: {v!r}")
    return out


def values_close(a: Value, b: Value, tolerance: Decimal = Decimal("1e-30")) -> bool:
    """Structural equality with a relative tolerance on numbers.

    The tolerance absorbs the 50-digit working precision of the ideal
    evaluator; it is ~15 orders of magnitude below binary64 resolution, so
    it cannot mask a genuine Property-2 violation.
    """
    if isinstance(a, VUnit) and isinstance(b, VUnit):
        return True
    if isinstance(a, VNum) and isinstance(b, VNum):
        da, db = a.as_decimal(), b.as_decimal()
        if da == db:
            return True
        scale = max(abs(da), abs(db))
        if scale == 0:
            return False
        return abs(da - db) / scale <= tolerance
    if isinstance(a, VPair) and isinstance(b, VPair):
        return values_close(a.left, b.left, tolerance) and values_close(
            a.right, b.right, tolerance
        )
    if isinstance(a, VInl) and isinstance(b, VInl):
        return values_close(a.body, b.body, tolerance)
    if isinstance(a, VInr) and isinstance(b, VInr):
        return values_close(a.body, b.body, tolerance)
    return False
