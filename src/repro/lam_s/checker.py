"""Simple type checking for Λ_S (Figure 5).

Λ_S typing is a completely standard first-order simply-typed discipline:
one ungraded context, no linearity.  Lemma D.1 says erasure takes
well-typed Bean terms to well-typed Λ_S terms; a property test checks that
correspondence on randomized programs.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..core import ast_nodes as A
from ..core.deepstack import call_with_deep_stack
from ..core.errors import BeanTypeError, UnboundVariableError
from ..core.types import NUM, UNIT, Num, Sum, Tensor, Type
from .syntax import Const

__all__ = ["type_of", "check_erased_definition"]


def type_of(
    expr: A.Expr,
    env: Optional[Mapping[str, Type]] = None,
    definitions: Optional[Mapping[str, "DefSignature"]] = None,
) -> Type:
    """Infer the simple type of a pure Λ_S term."""
    return call_with_deep_stack(_type_of, expr, dict(env or {}), dict(definitions or {}))


class DefSignature:
    """Parameter and result types of a checked Λ_S definition."""

    def __init__(self, params, result: Type) -> None:
        self.params = list(params)
        self.result = result


def _type_of(expr: A.Expr, env: Dict[str, Type], defs: Dict) -> Type:
    if isinstance(expr, A.Var):
        ty = env.get(expr.name)
        if ty is None:
            raise UnboundVariableError(f"unbound Λ_S variable {expr.name!r}")
        return ty
    if isinstance(expr, A.UnitVal):
        return UNIT
    if isinstance(expr, Const):
        return NUM
    if isinstance(expr, A.Pair):
        return Tensor(_type_of(expr.left, env, defs), _type_of(expr.right, env, defs))
    if isinstance(expr, A.Inl):
        return Sum(_type_of(expr.body, env, defs), expr.other)
    if isinstance(expr, A.Inr):
        return Sum(expr.other, _type_of(expr.body, env, defs))
    if isinstance(expr, A.Let):
        bound_ty = _type_of(expr.bound, env, defs)
        inner = dict(env)
        inner[expr.name] = bound_ty
        return _type_of(expr.body, inner, defs)
    if isinstance(expr, A.LetPair):
        bound_ty = _type_of(expr.bound, env, defs)
        if not isinstance(bound_ty, Tensor):
            raise BeanTypeError(f"let-pair on non-tensor type {bound_ty}")
        inner = dict(env)
        inner[expr.left] = bound_ty.left
        inner[expr.right] = bound_ty.right
        return _type_of(expr.body, inner, defs)
    if isinstance(expr, A.Case):
        scrut_ty = _type_of(expr.scrutinee, env, defs)
        if not isinstance(scrut_ty, Sum):
            raise BeanTypeError(f"case on non-sum type {scrut_ty}")
        left_env = dict(env)
        left_env[expr.left_name] = scrut_ty.left
        right_env = dict(env)
        right_env[expr.right_name] = scrut_ty.right
        left_ty = _type_of(expr.left, left_env, defs)
        right_ty = _type_of(expr.right, right_env, defs)
        if left_ty != right_ty:
            raise BeanTypeError(f"case branches disagree: {left_ty} vs {right_ty}")
        return left_ty
    if isinstance(expr, A.PrimOp):
        if expr.op is A.Op.DMUL:
            raise BeanTypeError("dmul is not a Λ_S operation (erase first)")
        for side in (expr.left, expr.right):
            ty = _type_of(side, env, defs)
            if not isinstance(ty, Num):
                raise BeanTypeError(f"{expr.op} requires num operands, got {ty}")
        return Sum(NUM, UNIT) if expr.op is A.Op.DIV else NUM
    if isinstance(expr, A.Rnd):
        ty = _type_of(expr.body, env, defs)
        if not isinstance(ty, Num):
            raise BeanTypeError(f"rnd requires a num operand, got {ty}")
        return NUM
    if isinstance(expr, A.Call):
        sig = defs.get(expr.name)
        if sig is None:
            raise UnboundVariableError(f"call to unknown Λ_S definition {expr.name!r}")
        if len(expr.args) != len(sig.params):
            raise BeanTypeError(f"{expr.name!r}: wrong argument count")
        for expected, arg in zip(sig.params, expr.args):
            actual = _type_of(arg, env, defs)
            if actual != expected:
                raise BeanTypeError(
                    f"{expr.name!r}: argument type {actual}, expected {expected}"
                )
        return sig.result
    raise BeanTypeError(f"not a Λ_S term: {expr!r}")


def check_erased_definition(
    definition: A.Definition,
    definitions: Optional[Mapping[str, DefSignature]] = None,
) -> DefSignature:
    """Type check an erased definition and return its signature."""
    env = {p.name: p.ty for p in definition.params}
    result = type_of(definition.body, env, definitions)
    return DefSignature([p.ty for p in definition.params], result)
