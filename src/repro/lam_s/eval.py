"""Big-step operational semantics for Λ_S (Figure 6).

Two evaluation modes implement the paper's two step relations:

* ``mode="ideal"`` (⇓_id) — exact real arithmetic, approximated by
  :class:`decimal.Decimal` at a configurable precision (default 50
  significant digits; backward maps involve square roots, so true rational
  arithmetic is not closed);
* ``mode="approx"`` (⇓_ap) — IEEE-754 binary64 hardware floats.  This is
  *sound* for Bean's analysis: the standard model ``fl(x op y) =
  (x op y)(1 + δ), |δ| ≤ u`` is over-approximated by Olver's exponential
  model ``e^δ, |δ| ≤ u/(1-u)`` on which the type system's bounds are
  based (Section 2.1.1), assuming no overflow or underflow.

Division by zero produces ``inr ()`` in both modes, matching the ``div``
primitive's ``num + unit`` result type.  Λ_S is deterministic and strongly
normalizing (Theorem D.4): evaluation always returns exactly one value.

Two extensions beyond the paper's Figure 6:

* the unary ``rnd`` operation (the explicit-rounding extension of
  Section 2.2.1) rounds its operand to binary64 in approximate mode and
  is the identity in ideal mode;
* ``rounding="stochastic"`` implements stochastic rounding (up/down with
  probability proportional to the distance).  Each rounding decision is
  a *pure function* of (seed, operation, operand bits) — not of a
  sequential RNG state — so evaluation stays compositional: the lens
  backward map re-evaluates subterms standalone and must see the exact
  same rounding decisions the full run made.  Stochastic rounding
  satisfies ``fl(x) = x(1+δ)`` with ``|δ| ≤ 2u``, so Bean's bounds hold
  for it at an effective unit roundoff of ``2u`` — the probabilistic
  backward error setting the paper cites (Connolly et al. 2021) as
  future work.
"""

from __future__ import annotations

import decimal
import math
import random
from decimal import Decimal
from typing import Dict, Mapping, Optional

from ..core import ast_nodes as A
from ..core.deepstack import call_with_deep_stack
from .syntax import Const
from .values import UNIT_VALUE, Value, VInl, VInr, VNum, VPair, to_decimal

__all__ = [
    "evaluate",
    "EvalError",
    "IDEAL_PRECISION",
    "stochastic_round",
    "round_to_precision",
]

#: Significant digits of the ideal (Decimal) arithmetic.
IDEAL_PRECISION = 50


class EvalError(Exception):
    """Raised on malformed programs (ill-typed at runtime)."""


def round_to_precision(x: float, precision_bits: int) -> float:
    """Round a binary64 value to a ``p``-bit significand (nearest-even).

    Computing each operation in binary64 and then rounding to ``p`` bits
    yields *correctly rounded* p-bit arithmetic for +,-,*,/ whenever
    ``53 ≥ 2p + 2`` (double rounding is innocuous; Figueroa 1995), i.e.
    for every format up to p = 25 — covering binary16 (p = 11) and
    binary32 (p = 24).  Exponent range is unbounded, matching the
    paper's no-overflow/underflow assumption.
    """
    if precision_bits >= 53 or x == 0.0 or math.isinf(x) or math.isnan(x):
        return x
    mantissa, exponent = math.frexp(x)  # x = mantissa * 2^exponent, |m| in [0.5, 1)
    scaled = mantissa * (1 << precision_bits)  # exact: power-of-two scaling
    rounded = round(scaled)  # round-half-even, exact on floats
    return math.ldexp(rounded, exponent - precision_bits)


def stochastic_round(exact: Decimal, rng: random.Random) -> float:
    """Round a real to binary64 stochastically.

    Rounds to one of the two neighbouring floats, choosing the far one
    with probability proportional to proximity; unbiased in expectation
    and satisfying ``fl(x) = x(1+δ)`` with ``|δ| ≤ 2u``.
    """
    nearest = float(exact)
    dnear = Decimal(nearest)
    if dnear == exact or math.isinf(nearest):
        return nearest
    other = math.nextafter(
        nearest, math.inf if dnear < exact else -math.inf
    )
    gap = abs(Decimal(other) - dnear)
    if gap == 0:
        return nearest
    p_other = float(abs(exact - dnear) / gap)
    return other if rng.random() < p_other else nearest


def evaluate(
    expr: A.Expr,
    env: Optional[Mapping[str, Value]] = None,
    *,
    mode: str = "approx",
    program: Optional[A.Program] = None,
    precision: int = IDEAL_PRECISION,
    rounding: str = "nearest",
    seed: int = 0,
    precision_bits: int = 53,
    engine: str = "ir",
) -> Value:
    """Evaluate a Λ_S (or erased-Bean) term under ⇓_id or ⇓_ap.

    ``rounding`` selects round-to-nearest (hardware) or seeded
    stochastic rounding for the approximate mode.  ``precision_bits``
    selects the simulated significand width of the approximate
    arithmetic (53 = native binary64, 24 = binary32, 11 = binary16);
    widths in (25, 53) are rejected because double rounding through
    binary64 would not be correctly rounded there.

    ``engine="ir"`` (default) lowers the term once to the flat IR and
    runs a single iterative forward sweep, so arbitrarily deep programs
    evaluate under the default recursion limit; ``engine="recursive"``
    runs the structural reference interpreter on a deep auxiliary stack.
    Both implement Figure 6 exactly and agree value-for-value (including
    seeded stochastic rounding decisions, which are pure functions of
    the operands, not of evaluation strategy).
    """
    if mode not in ("ideal", "approx"):
        raise ValueError(f"unknown evaluation mode {mode!r}")
    if rounding not in ("nearest", "stochastic"):
        raise ValueError(f"unknown rounding mode {rounding!r}")
    if precision_bits != 53 and not 1 <= precision_bits <= 25:
        raise ValueError(
            "precision_bits must be 53 (native) or at most 25 "
            "(for correctly rounded simulation through binary64)"
        )
    if rounding == "stochastic" and precision_bits != 53:
        raise ValueError("stochastic rounding is only supported at 53 bits")
    if engine == "recursive":
        interpreter = _Interp(mode, program, precision, rounding, seed, precision_bits)
        return call_with_deep_stack(interpreter.run, expr, dict(env or {}))
    if engine != "ir":
        raise ValueError(f"unknown evaluation engine {engine!r}")
    from ..ir.cache import semantic_expr_ir

    interpreter = _IRInterp(mode, program, precision, rounding, seed, precision_bits)
    return interpreter.run_ir(semantic_expr_ir(expr), dict(env or {}))


class _Interp:
    def __init__(
        self,
        mode: str,
        program: Optional[A.Program],
        precision: int,
        rounding: str = "nearest",
        seed: int = 0,
        precision_bits: int = 53,
    ):
        self.mode = mode
        self.program = program
        self.precision = precision
        self.rounding = rounding
        self.seed = seed
        self.precision_bits = precision_bits

    def _decision_rng(self, *key) -> random.Random:
        """A per-operation RNG keyed by the operands (see module doc)."""
        material = "\x1f".join([str(self.seed), *key])
        return random.Random(material)

    # -- arithmetic ------------------------------------------------------------

    def _binary(self, op: A.Op, a: VNum, b: VNum) -> Value:
        if self.mode == "approx" and self.rounding == "stochastic":
            return self._binary_stochastic(op, a, b)
        if self.mode == "approx":
            x, y = a.as_float(), b.as_float()
            p = self.precision_bits
            if op is A.Op.ADD:
                return VNum(round_to_precision(x + y, p))
            if op is A.Op.SUB:
                return VNum(round_to_precision(x - y, p))
            if op in (A.Op.MUL, A.Op.DMUL):
                return VNum(round_to_precision(x * y, p))
            if op is A.Op.DIV:
                if y == 0.0:
                    return VInr(UNIT_VALUE)
                return VInl(VNum(round_to_precision(x / y, p)))
        with decimal.localcontext() as ctx:
            ctx.prec = self.precision
            dx, dy = to_decimal(a.payload), to_decimal(b.payload)
            if op is A.Op.ADD:
                return VNum(dx + dy)
            if op is A.Op.SUB:
                return VNum(dx - dy)
            if op in (A.Op.MUL, A.Op.DMUL):
                return VNum(dx * dy)
            if op is A.Op.DIV:
                if dy == 0:
                    return VInr(UNIT_VALUE)
                return VInl(VNum(dx / dy))
        raise EvalError(f"unknown operation {op}")

    def _binary_stochastic(self, op: A.Op, a: VNum, b: VNum) -> Value:
        with decimal.localcontext() as ctx:
            ctx.prec = self.precision
            x, y = a.as_float(), b.as_float()
            dx, dy = Decimal(x), Decimal(y)
            if op is A.Op.ADD:
                exact = dx + dy
            elif op is A.Op.SUB:
                exact = dx - dy
            elif op in (A.Op.MUL, A.Op.DMUL):
                exact = dx * dy
            elif op is A.Op.DIV:
                if dy == 0:
                    return VInr(UNIT_VALUE)
                exact = dx / dy
            else:  # pragma: no cover - exhaustive
                raise EvalError(f"unknown operation {op}")
            rng = self._decision_rng(str(op), x.hex(), y.hex())
            rounded = VNum(stochastic_round(exact, rng))
            return VInl(rounded) if op is A.Op.DIV else rounded

    def _round_value(self, value: Value) -> Value:
        """The ``rnd`` kernel, shared by both engines (bit-identical)."""
        if not isinstance(value, VNum):
            raise EvalError(f"rnd of non-number {value!r}")
        if self.mode == "ideal":
            return value
        if self.rounding == "stochastic":
            with decimal.localcontext() as ctx:
                ctx.prec = self.precision
                rng = self._decision_rng("rnd", str(value.payload))
                return VNum(stochastic_round(value.as_decimal(), rng))
        return VNum(round_to_precision(value.as_float(), self.precision_bits))

    # -- evaluation ---------------------------------------------------------------

    def run(self, expr: A.Expr, env: Dict[str, Value]) -> Value:
        # Iterate over let-spines; benchmark programs nest thousands deep.
        while True:
            if isinstance(expr, (A.Let, A.DLet)):
                env = dict(env)
                env[expr.name] = self.run(expr.bound, env)
                expr = expr.body
                continue
            if isinstance(expr, (A.LetPair, A.DLetPair)):
                bound = self.run(expr.bound, env)
                if not isinstance(bound, VPair):
                    raise EvalError(f"let-pair of non-pair value {bound!r}")
                env = dict(env)
                env[expr.left] = bound.left
                env[expr.right] = bound.right
                expr = expr.body
                continue
            return self._step(expr, env)

    def _step(self, expr: A.Expr, env: Dict[str, Value]) -> Value:
        if isinstance(expr, A.Var):
            try:
                return env[expr.name]
            except KeyError:
                raise EvalError(f"unbound variable {expr.name!r} at runtime") from None
        if isinstance(expr, A.UnitVal):
            return UNIT_VALUE
        if isinstance(expr, Const):
            return VNum(expr.value)
        if isinstance(expr, A.Bang):
            return self.run(expr.body, env)
        if isinstance(expr, A.Rnd):
            return self._round_value(self.run(expr.body, env))
        if isinstance(expr, A.Pair):
            return VPair(self.run(expr.left, env), self.run(expr.right, env))
        if isinstance(expr, A.Inl):
            return VInl(self.run(expr.body, env))
        if isinstance(expr, A.Inr):
            return VInr(self.run(expr.body, env))
        if isinstance(expr, A.Case):
            scrut = self.run(expr.scrutinee, env)
            env = dict(env)
            if isinstance(scrut, VInl):
                env[expr.left_name] = scrut.body
                return self.run(expr.left, env)
            if isinstance(scrut, VInr):
                env[expr.right_name] = scrut.body
                return self.run(expr.right, env)
            raise EvalError(f"case scrutinee is not a sum value: {scrut!r}")
        if isinstance(expr, A.PrimOp):
            left = self.run(expr.left, env)
            right = self.run(expr.right, env)
            if not isinstance(left, VNum) or not isinstance(right, VNum):
                raise EvalError(f"arithmetic on non-numbers: {left!r}, {right!r}")
            return self._binary(expr.op, left, right)
        if isinstance(expr, A.Call):
            if self.program is None or expr.name not in self.program:
                raise EvalError(f"call to unknown definition {expr.name!r}")
            callee = self.program[expr.name]
            if len(callee.params) != len(expr.args):
                raise EvalError(f"{expr.name!r}: wrong argument count")
            frame = {
                p.name: self.run(a, env) for p, a in zip(callee.params, expr.args)
            }
            return self.run(callee.body, frame)
        raise EvalError(f"cannot evaluate {expr!r}")


# ---------------------------------------------------------------------------
# The iterative IR evaluator
# ---------------------------------------------------------------------------


class _MissingInput:
    """Sentinel for a parameter slot the environment did not supply.

    The recursive evaluator only fails when an unbound variable is
    actually *read*; pre-filling slots with a named sentinel preserves
    that laziness (dead parameters stay harmless) while keeping slot
    access branch-free on the happy path.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


class _IRInterp(_Interp):
    """Forward sweep over the flat IR — one loop, no structural recursion.

    Shares every arithmetic/rounding kernel with :class:`_Interp`, so the
    two engines are bit-identical (the stochastic decision RNG is keyed
    by operand bits, not evaluation order).  The only recursion left is
    over ``case`` regions and ``call`` frames, whose depth is bounded by
    the source program's syntactic nesting — never by program length.
    """

    def run_ir(self, ir, env: Dict[str, Value]) -> Value:
        return self._fetch(self.run_ir_vals(ir, env), ir.result)

    def run_ir_vals(self, ir, env: Dict[str, Value]) -> list:
        """Run the sweep and return the whole slot-value array.

        The backward lens pass consumes this: every intermediate
        approximate value is computed exactly once, instead of being
        re-derived per binder as in the recursive interpreter.
        """
        from ..ir import lower as L

        vals: list = [None] * ir.n_slots
        for p in ir.params:
            v = env.get(p.name)
            vals[p.slot] = v if v is not None else _MissingInput(p.name)
        self._exec_block(ir.ops, vals, L)
        return vals

    @staticmethod
    def _fetch(vals: list, slot: int) -> Value:
        v = vals[slot]
        if type(v) is _MissingInput:
            raise EvalError(f"unbound variable {v.name!r} at runtime")
        return v

    def _exec_block(self, ops, vals: list, L) -> None:
        fetch = self._fetch
        for op in ops:
            code = op.code
            if code >= L.ADD and code <= L.DMUL:  # ADD, SUB, MUL, DIV, DMUL
                left = fetch(vals, op.a)
                right = fetch(vals, op.b)
                if not isinstance(left, VNum) or not isinstance(right, VNum):
                    raise EvalError(
                        f"arithmetic on non-numbers: {left!r}, {right!r}"
                    )
                vals[op.dest] = self._binary(_CODE_TO_OP[code], left, right)
            elif code == L.DVAR or code == L.BANG:
                vals[op.dest] = fetch(vals, op.a)
            elif code == L.PAIR:
                vals[op.dest] = VPair(fetch(vals, op.a), fetch(vals, op.b))
            elif code == L.FST or code == L.SND:
                bound = fetch(vals, op.a)
                if not isinstance(bound, VPair):
                    raise EvalError(f"let-pair of non-pair value {bound!r}")
                vals[op.dest] = bound.left if code == L.FST else bound.right
            elif code == L.RND:
                vals[op.dest] = self._round_value(fetch(vals, op.a))
            elif code == L.INL:
                vals[op.dest] = VInl(fetch(vals, op.a))
            elif code == L.INR:
                vals[op.dest] = VInr(fetch(vals, op.a))
            elif code == L.CASE:
                scrut = fetch(vals, op.a)
                if isinstance(scrut, VInl):
                    region = op.aux[0]
                elif isinstance(scrut, VInr):
                    region = op.aux[1]
                else:
                    raise EvalError(
                        f"case scrutinee is not a sum value: {scrut!r}"
                    )
                vals[region.payload] = scrut.body
                self._exec_block(region.ops, vals, L)
                vals[op.dest] = fetch(vals, region.result)
            elif code == L.CALL:
                vals[op.dest] = self._exec_call(op, vals, L)
            elif code == L.CONST:
                vals[op.dest] = VNum(op.aux)
            elif code == L.UNIT:
                vals[op.dest] = UNIT_VALUE
            else:  # pragma: no cover - exhaustive over opcodes
                raise EvalError(f"unknown opcode {code}")

    def _exec_call(self, op, vals: list, L) -> Value:
        from ..ir.cache import semantic_definition_ir

        name, arg_slots = op.aux
        if self.program is None or name not in self.program:
            raise EvalError(f"call to unknown definition {name!r}")
        callee = self.program[name]
        if len(callee.params) != len(arg_slots):
            raise EvalError(f"{name!r}: wrong argument count")
        callee_ir = semantic_definition_ir(callee)
        frame = {
            p.name: self._fetch(vals, s)
            for p, s in zip(callee.params, arg_slots)
        }
        return self.run_ir(callee_ir, frame)


_CODE_TO_OP: Dict[int, A.Op] = {}


def _init_code_map() -> None:
    from ..ir import lower as L

    _CODE_TO_OP.update(
        {
            L.ADD: A.Op.ADD,
            L.SUB: A.Op.SUB,
            L.MUL: A.Op.MUL,
            L.DIV: A.Op.DIV,
            L.DMUL: A.Op.DMUL,
        }
    )


_init_code_map()
