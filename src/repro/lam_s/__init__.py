"""Λ_S: the erasure target of Bean, with ideal/approximate semantics."""

from .checker import DefSignature, check_erased_definition, type_of
from .eval import IDEAL_PRECISION, EvalError, evaluate
from .syntax import Const, erase_definition, erase_expr, erase_type, inline_calls
from .values import (
    UNIT_VALUE,
    Value,
    VInl,
    VInr,
    VNum,
    VPair,
    VUnit,
    num,
    pair_of,
    to_decimal,
    values_close,
    vector_components,
    vector_value,
)

__all__ = [name for name in dir() if not name.startswith("_")]
