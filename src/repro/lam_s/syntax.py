"""The intermediate language Λ_S and the projection Λ from Bean.

Λ_S (Appendix D) is a simply typed first-order language with no grade or
discreteness information; Bean programs *project* into it by erasure
(Definition D.1): ``!e`` disappears, ``dlet`` becomes ``let``, and ``dmul``
becomes ``mul``.  Λ_S additionally has numeric constants ``k ∈ R``.

We reuse Bean's AST node classes for the shared constructs and add
:class:`Const`.  A Λ_S term is *pure* if it contains none of the
Bean-only constructs (``Bang``/``DLet``/``DLetPair``/``dmul``);
:func:`erase_expr` always returns pure terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core import ast_nodes as A
from ..core.deepstack import call_with_deep_stack
from ..core.types import Discrete, Sum, Tensor, Type

__all__ = ["Const", "erase_type", "erase_expr", "erase_definition", "inline_calls"]


@dataclass(frozen=True)
class Const(A.Expr):
    """A numeric literal ``k ∈ R`` (Λ_S only)."""

    value: float


def erase_type(ty: Type) -> Type:
    """The type projection Λ: strips every ``m(·)`` modality."""
    if isinstance(ty, Discrete):
        return erase_type(ty.inner)
    if isinstance(ty, Tensor):
        return Tensor(erase_type(ty.left), erase_type(ty.right))
    if isinstance(ty, Sum):
        return Sum(erase_type(ty.left), erase_type(ty.right))
    return ty


def erase_expr(expr: A.Expr) -> A.Expr:
    """The term projection Λ of Definition D.1."""
    return call_with_deep_stack(_erase, expr)


def _erase(expr: A.Expr) -> A.Expr:
    if isinstance(expr, (A.Var, A.UnitVal, Const)):
        return expr
    if isinstance(expr, A.Bang):
        return _erase(expr.body)
    if isinstance(expr, A.Pair):
        return A.Pair(_erase(expr.left), _erase(expr.right))
    if isinstance(expr, A.Inl):
        return A.Inl(_erase(expr.body), erase_type(expr.other))
    if isinstance(expr, A.Inr):
        return A.Inr(_erase(expr.body), erase_type(expr.other))
    if isinstance(expr, (A.Let, A.DLet)):
        return A.Let(expr.name, _erase(expr.bound), _erase(expr.body))
    if isinstance(expr, (A.LetPair, A.DLetPair)):
        return A.LetPair(
            expr.left, expr.right, _erase(expr.bound), _erase(expr.body)
        )
    if isinstance(expr, A.Case):
        return A.Case(
            _erase(expr.scrutinee),
            expr.left_name,
            _erase(expr.left),
            expr.right_name,
            _erase(expr.right),
        )
    if isinstance(expr, A.PrimOp):
        op = A.Op.MUL if expr.op is A.Op.DMUL else expr.op
        return A.PrimOp(op, _erase(expr.left), _erase(expr.right))
    if isinstance(expr, A.Rnd):
        # rnd survives erasure: unlike grades it has operational content
        # (the approximate semantics rounds, the ideal one does not).
        return A.Rnd(_erase(expr.body))
    if isinstance(expr, A.Call):
        return A.Call(expr.name, [_erase(a) for a in expr.args])
    raise TypeError(f"cannot erase {expr!r}")


def erase_definition(definition: A.Definition) -> A.Definition:
    """Erase a whole definition (parameter types lose their modalities)."""
    params = [A.Param(p.name, erase_type(p.ty)) for p in definition.params]
    return A.Definition(definition.name, params, erase_expr(definition.body))


def inline_calls(
    expr: A.Expr, program: Optional[A.Program], *, _depth: int = 0
) -> A.Expr:
    """Expand every :class:`Call` into let-bound copies of the callee body.

    Bound variables of the callee are freshened, so inlining is hygienic.
    The result contains no calls; it is how a Λ_S term with abbreviations
    becomes a kernel Λ_S term.
    """
    if _depth > 64:
        raise RecursionError("call inlining exceeded depth 64 (recursive calls?)")
    return call_with_deep_stack(_inline, expr, program, _depth)


def _inline(expr: A.Expr, program: Optional[A.Program], depth: int) -> A.Expr:
    if isinstance(expr, A.Call):
        if program is None or expr.name not in program:
            raise ValueError(f"cannot inline unknown call {expr.name!r}")
        callee = program[expr.name]
        body = _freshen(callee.body, {})
        body = _inline(body, program, depth + 1)
        for param, arg in zip(reversed(callee.params), reversed(expr.args)):
            body = A.Let(param.name, _inline(arg, program, depth), body)
        return body
    if isinstance(expr, (A.Var, A.UnitVal, Const)):
        return expr
    if isinstance(expr, A.Bang):
        return A.Bang(_inline(expr.body, program, depth))
    if isinstance(expr, A.Pair):
        return A.Pair(_inline(expr.left, program, depth), _inline(expr.right, program, depth))
    if isinstance(expr, A.Inl):
        return A.Inl(_inline(expr.body, program, depth), expr.other)
    if isinstance(expr, A.Inr):
        return A.Inr(_inline(expr.body, program, depth), expr.other)
    if isinstance(expr, A.Let):
        return A.Let(expr.name, _inline(expr.bound, program, depth), _inline(expr.body, program, depth))
    if isinstance(expr, A.DLet):
        return A.DLet(expr.name, _inline(expr.bound, program, depth), _inline(expr.body, program, depth))
    if isinstance(expr, A.LetPair):
        return A.LetPair(expr.left, expr.right, _inline(expr.bound, program, depth), _inline(expr.body, program, depth))
    if isinstance(expr, A.DLetPair):
        return A.DLetPair(expr.left, expr.right, _inline(expr.bound, program, depth), _inline(expr.body, program, depth))
    if isinstance(expr, A.Case):
        return A.Case(
            _inline(expr.scrutinee, program, depth),
            expr.left_name,
            _inline(expr.left, program, depth),
            expr.right_name,
            _inline(expr.right, program, depth),
        )
    if isinstance(expr, A.PrimOp):
        return A.PrimOp(expr.op, _inline(expr.left, program, depth), _inline(expr.right, program, depth))
    if isinstance(expr, A.Rnd):
        return A.Rnd(_inline(expr.body, program, depth))
    raise TypeError(f"cannot inline {expr!r}")


def _freshen(expr: A.Expr, renaming: Dict[str, str]) -> A.Expr:
    """Rename every bound variable to a fresh name (capture avoidance)."""
    if isinstance(expr, A.Var):
        return A.Var(renaming.get(expr.name, expr.name))
    if isinstance(expr, (A.UnitVal, Const)):
        return expr
    if isinstance(expr, A.Bang):
        return A.Bang(_freshen(expr.body, renaming))
    if isinstance(expr, A.Pair):
        return A.Pair(_freshen(expr.left, renaming), _freshen(expr.right, renaming))
    if isinstance(expr, A.Inl):
        return A.Inl(_freshen(expr.body, renaming), expr.other)
    if isinstance(expr, A.Inr):
        return A.Inr(_freshen(expr.body, renaming), expr.other)
    if isinstance(expr, (A.Let, A.DLet)):
        bound = _freshen(expr.bound, renaming)
        fresh = A.fresh_name(expr.name.lstrip("_"))
        inner = dict(renaming)
        inner[expr.name] = fresh
        ctor = A.Let if isinstance(expr, A.Let) else A.DLet
        return ctor(fresh, bound, _freshen(expr.body, inner))
    if isinstance(expr, (A.LetPair, A.DLetPair)):
        bound = _freshen(expr.bound, renaming)
        fresh_l = A.fresh_name(expr.left.lstrip("_"))
        fresh_r = A.fresh_name(expr.right.lstrip("_"))
        inner = dict(renaming)
        inner[expr.left] = fresh_l
        inner[expr.right] = fresh_r
        ctor = A.LetPair if isinstance(expr, A.LetPair) else A.DLetPair
        return ctor(fresh_l, fresh_r, bound, _freshen(expr.body, inner))
    if isinstance(expr, A.Case):
        scrut = _freshen(expr.scrutinee, renaming)
        fresh_l = A.fresh_name(expr.left_name.lstrip("_"))
        fresh_r = A.fresh_name(expr.right_name.lstrip("_"))
        left_env = dict(renaming)
        left_env[expr.left_name] = fresh_l
        right_env = dict(renaming)
        right_env[expr.right_name] = fresh_r
        return A.Case(
            scrut,
            fresh_l,
            _freshen(expr.left, left_env),
            fresh_r,
            _freshen(expr.right, right_env),
        )
    if isinstance(expr, A.PrimOp):
        return A.PrimOp(
            expr.op, _freshen(expr.left, renaming), _freshen(expr.right, renaming)
        )
    if isinstance(expr, A.Rnd):
        return A.Rnd(_freshen(expr.body, renaming))
    if isinstance(expr, A.Call):
        return A.Call(expr.name, [_freshen(a, renaming) for a in expr.args])
    raise TypeError(f"cannot freshen {expr!r}")
