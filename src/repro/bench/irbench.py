"""Recursive-AST vs. flat-IR benchmark, plus batch witness throughput.

Three comparisons, over the Table 1 program families plus the div+case
``SafeDiv`` kernel:

* **check** — grade inference via the recursive reference engine
  (deep-stack structural recursion) vs. the iterative IR sweep;
* **eval**  — approximate evaluation via the recursive interpreter vs.
  the IR forward sweep;
* **witness** — ``run_witness`` looped over N environments vs.
  :class:`repro.semantics.batch.BatchWitnessEngine` on the same N
  environments (and, with ``workers > 1``, vs.
  :func:`repro.semantics.shard.run_witness_sharded` across processes),
  asserting the soundness verdicts agree row-for-row.

Used by ``repro-bean bench`` and ``benchmarks/bench_ir.py`` /
``benchmarks/bench_shard.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import count_flops
from ..core.checker import check_definition
from ..lam_s.eval import evaluate
from ..lam_s.values import Value, VNum, vector_value
from ..programs.generators import BENCHMARK_FAMILIES
from ..semantics.batch import BatchWitnessEngine, _leaf_count
from ..semantics.witness import run_witness

__all__ = ["IRBenchRow", "DEFAULT_SPECS", "run_ir_bench", "format_ir_bench"]

#: Default (family, size, n_envs) cells.
DEFAULT_SPECS: Tuple[Tuple[str, int, int], ...] = (
    ("DotProd", 100, 1000),
    ("Horner", 100, 1000),
    ("Sum", 100, 1000),
    ("Sum", 1000, 200),
    ("PolyVal", 50, 200),
    ("SafeDiv", 100, 1000),
)


@dataclass(frozen=True)
class IRBenchRow:
    name: str
    ops: int
    check_ast_s: float
    check_ir_s: float
    eval_ast_s: float
    eval_ir_s: float
    n_envs: int
    witness_loop_s: Optional[float]
    witness_batch_s: Optional[float]
    verdicts_agree: Optional[bool]
    witness_shard_s: Optional[float] = None
    shard_agree: Optional[bool] = None
    witness_dec_s: Optional[float] = None
    dec_agree: Optional[bool] = None

    @property
    def check_speedup(self) -> float:
        return self.check_ast_s / self.check_ir_s if self.check_ir_s else float("inf")

    @property
    def eval_speedup(self) -> float:
        return self.eval_ast_s / self.eval_ir_s if self.eval_ir_s else float("inf")

    @property
    def batch_speedup(self) -> Optional[float]:
        if not self.witness_loop_s or not self.witness_batch_s:
            return None
        return self.witness_loop_s / self.witness_batch_s

    @property
    def shard_speedup(self) -> Optional[float]:
        """Sharded over single-process batch (cores actually helping)."""
        if not self.witness_batch_s or not self.witness_shard_s:
            return None
        return self.witness_batch_s / self.witness_shard_s

    @property
    def eft_speedup(self) -> Optional[float]:
        """Decimal-backend batch over the default EFT-backend batch.

        The default batch timing runs the double-double EFT sweeps;
        this ratio is what killing the Decimal hot path bought on the
        witness sweep itself.
        """
        if not self.witness_batch_s or not self.witness_dec_s:
            return None
        return self.witness_dec_s / self.witness_batch_s


def _random_columns(definition, n_envs: int, rng) -> Dict[str, np.ndarray]:
    columns = {}
    for p in definition.params:
        k = _leaf_count(p.ty)
        shape = (n_envs, k) if k > 1 else (n_envs,)
        columns[p.name] = rng.uniform(0.5, 4.0, shape)
    return columns


def _row_env(definition, columns, i: int) -> Dict[str, Value]:
    env = {}
    for p in definition.params:
        arr = columns[p.name]
        if arr.ndim == 1:
            env[p.name] = VNum(float(arr[i]))
        else:
            env[p.name] = vector_value([float(x) for x in arr[i]])
    return env


def run_ir_bench(
    specs: Sequence[Tuple[str, int, int]] = DEFAULT_SPECS,
    *,
    include_batch: bool = True,
    include_decimal: bool = True,
    seed: int = 0,
    workers: Optional[int] = None,
) -> List[IRBenchRow]:
    """Time recursive-AST vs IR paths on each (family, size, n_envs) cell.

    ``workers > 1`` adds a sharded-witness timing per cell (pool
    startup included — this is the price a caller actually pays).
    ``include_decimal`` additionally times the batch engine pinned to
    the 50-digit Decimal exact-arithmetic backend on the same rows and
    checks its (bit-identical) verdicts/maxima against the default EFT
    run — the ``eft_speedup`` ratio.
    """
    rng = np.random.default_rng(seed)
    rows: List[IRBenchRow] = []
    for family, size, n_envs in specs:
        definition = BENCHMARK_FAMILIES[family](size)
        name = definition.name

        start = time.perf_counter()
        j_ast = check_definition(definition, engine="recursive")
        check_ast = time.perf_counter() - start
        # The definition object is freshly generated, so this is a cold
        # (cache-miss) lowering + inference timing.
        start = time.perf_counter()
        j_ir = check_definition(definition, engine="ir")
        check_ir = time.perf_counter() - start
        assert j_ast.max_linear_grade() == j_ir.max_linear_grade()

        columns = _random_columns(definition, max(n_envs, 1), rng)
        env = _row_env(definition, columns, 0)
        start = time.perf_counter()
        v_ast = evaluate(definition.body, env, engine="recursive")
        eval_ast = time.perf_counter() - start
        start = time.perf_counter()
        v_ir = evaluate(definition.body, env, engine="ir")
        eval_ir = time.perf_counter() - start
        assert repr(v_ast) == repr(v_ir)

        witness_loop = witness_batch = witness_shard = witness_dec = None
        agree = shard_agree = dec_agree = None
        if include_batch:
            engine = BatchWitnessEngine(definition)
            engine.run({k: v[:1] for k, v in columns.items()})  # warm caches
            start = time.perf_counter()
            batch_report = engine.run(columns)
            witness_batch = time.perf_counter() - start
            if include_decimal:
                dec_engine = BatchWitnessEngine(
                    definition, exact_backend="decimal"
                )
                dec_engine.run({k: v[:1] for k, v in columns.items()})
                start = time.perf_counter()
                dec_report = dec_engine.run(columns)
                witness_dec = time.perf_counter() - start
                dec_agree = list(dec_report.sound) == list(
                    batch_report.sound
                ) and {
                    k: str(v) for k, v in dec_report.param_max_distance.items()
                } == {
                    k: str(v) for k, v in batch_report.param_max_distance.items()
                }
            if workers and workers > 1:
                from ..semantics.shard import run_witness_sharded

                start = time.perf_counter()
                shard_report = run_witness_sharded(
                    definition, columns, workers=workers
                )
                witness_shard = time.perf_counter() - start
                shard_agree = list(shard_report.sound) == list(batch_report.sound)
            start = time.perf_counter()
            loop_sound = []
            for i in range(n_envs):
                row = {
                    p.name: (
                        list(columns[p.name][i])
                        if columns[p.name].ndim == 2
                        else float(columns[p.name][i])
                    )
                    for p in definition.params
                }
                loop_sound.append(run_witness(definition, row).sound)
            witness_loop = time.perf_counter() - start
            agree = list(batch_report.sound) == loop_sound

        rows.append(
            IRBenchRow(
                name=name,
                ops=count_flops(definition.body),
                check_ast_s=check_ast,
                check_ir_s=check_ir,
                eval_ast_s=eval_ast,
                eval_ir_s=eval_ir,
                n_envs=n_envs,
                witness_loop_s=witness_loop,
                witness_batch_s=witness_batch,
                verdicts_agree=agree,
                witness_shard_s=witness_shard,
                shard_agree=shard_agree,
                witness_dec_s=witness_dec,
                dec_agree=dec_agree,
            )
        )
    return rows


def format_ir_bench(rows: List[IRBenchRow]) -> str:
    sharded = any(r.witness_shard_s is not None for r in rows)
    decimal_timed = any(r.witness_dec_s is not None for r in rows)
    header = (
        f"{'Benchmark':<14}{'Ops':>8}{'check AST':>11}{'check IR':>10}"
        f"{'eval AST':>10}{'eval IR':>9}{'N':>6}{'loop':>9}{'batch':>9}"
        f"{'x':>6}"
        + (f"{'decimal':>9}{'dd x':>7}" if decimal_timed else "")
        + (f"{'shard':>9}{'x':>6}" if sharded else "")
        + "  agree"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        batch_x = f"{r.batch_speedup:.1f}" if r.batch_speedup else "-"
        loop = f"{r.witness_loop_s:.3f}" if r.witness_loop_s else "-"
        batch = f"{r.witness_batch_s:.3f}" if r.witness_batch_s else "-"
        agree = {True: "yes", False: "NO", None: "-"}[r.verdicts_agree]
        if r.shard_agree is False or r.dec_agree is False:
            agree = "NO"
        line = (
            f"{r.name:<14}{r.ops:>8}{r.check_ast_s:>11.3f}{r.check_ir_s:>10.3f}"
            f"{r.eval_ast_s:>10.3f}{r.eval_ir_s:>9.3f}{r.n_envs:>6}"
            f"{loop:>9}{batch:>9}{batch_x:>6}"
        )
        if decimal_timed:
            dec = f"{r.witness_dec_s:.3f}" if r.witness_dec_s else "-"
            dec_x = f"{r.eft_speedup:.1f}" if r.eft_speedup else "-"
            line += f"{dec:>9}{dec_x:>7}"
        if sharded:
            shard = f"{r.witness_shard_s:.3f}" if r.witness_shard_s else "-"
            shard_x = f"{r.shard_speedup:.1f}" if r.shard_speedup else "-"
            line += f"{shard:>9}{shard_x:>6}"
        lines.append(line + f"  {agree}")
    return "\n".join(lines)
