"""Table 1: Bean's inferred bounds vs. worst-case literature bounds.

For every benchmark family and input size in the paper's Table 1, this
driver generates the Bean program, runs bound inference, and reports:

* Ops — the number of floating-point operations (matches the paper),
* the Bean-inferred maximum componentwise backward bound (u = 2⁻⁵³),
* the standard worst-case bound from Higham (the "Std." column),
* inference wall-clock time on this machine.

The paper's claim to reproduce: **the Bean and Std. columns agree to all
printed digits at every size** (both are the same multiple of ε), and
inference time grows with op count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.standard_bounds import standard_bound_grade
from ..core import Grade, check_definition, count_flops
from ..core.grades import BINARY64_UNIT_ROUNDOFF
from ..programs.generators import BENCHMARK_FAMILIES, TABLE1_SIZES

__all__ = ["Table1Row", "run_table1", "format_table1", "PAPER_TABLE1"]

#: The bounds printed in the paper's Table 1 (Bean and Std. agree).
PAPER_TABLE1: Dict[str, Dict[int, float]] = {
    "DotProd": {20: 2.22e-15, 50: 5.55e-15, 100: 1.11e-14, 500: 5.55e-14},
    "Horner": {20: 4.44e-15, 50: 1.11e-14, 100: 2.22e-14, 500: 1.11e-13},
    "PolyVal": {10: 1.22e-15, 20: 2.33e-15, 50: 5.66e-15, 100: 1.12e-14},
    "MatVecMul": {5: 5.55e-16, 10: 1.11e-15, 20: 2.22e-15, 50: 5.55e-15},
    "Sum": {50: 5.44e-15, 100: 1.10e-14, 500: 5.54e-14, 1000: 1.11e-13},
}


@dataclass(frozen=True)
class Table1Row:
    family: str
    size: int
    ops: int
    bean_grade: Grade
    std_grade: Grade
    bean_bound: float
    std_bound: float
    paper_bound: float
    seconds: float

    @property
    def grades_match_std(self) -> bool:
        return self.bean_grade.coeff == self.std_grade.coeff

    @property
    def matches_paper(self) -> bool:
        """Agreement with the paper's printed 3-digit value."""
        return abs(self.bean_bound - self.paper_bound) <= 0.005e-15 * (
            self.paper_bound / 1e-15
        )


def run_table1(
    families: Optional[List[str]] = None,
    sizes: Optional[Dict[str, List[int]]] = None,
    u: float = BINARY64_UNIT_ROUNDOFF,
) -> List[Table1Row]:
    """Regenerate Table 1 (all families/sizes by default)."""
    rows: List[Table1Row] = []
    for family in families or list(TABLE1_SIZES):
        generator = BENCHMARK_FAMILIES[family]
        for n in (sizes or TABLE1_SIZES)[family]:
            definition = generator(n)
            start = time.perf_counter()
            judgment = check_definition(definition)
            elapsed = time.perf_counter() - start
            bean = judgment.max_linear_grade()
            std = standard_bound_grade(family, n)
            rows.append(
                Table1Row(
                    family=family,
                    size=n,
                    ops=count_flops(definition.body),
                    bean_grade=bean,
                    std_grade=std,
                    bean_bound=bean.evaluate(u),
                    std_bound=std.evaluate(u),
                    paper_bound=PAPER_TABLE1[family][n],
                    seconds=elapsed,
                )
            )
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    """Render rows like the paper's Table 1."""
    header = (
        f"{'Benchmark':<12}{'Input Size':>11}{'Ops':>7}"
        f"{'Bean':>12}{'Std.':>12}{'Paper':>12}{'Timing (s)':>12}  match"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.family:<12}{r.size:>11}{r.ops:>7}"
            f"{r.bean_bound:>12.2e}{r.std_bound:>12.2e}{r.paper_bound:>12.2e}"
            f"{r.seconds:>12.3f}  {'yes' if r.grades_match_std else 'NO'}"
        )
    return "\n".join(lines)
