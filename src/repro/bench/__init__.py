"""Drivers that regenerate the paper's evaluation tables."""

from .table1 import PAPER_TABLE1, Table1Row, format_table1, run_table1
from .table2 import PAPER_TABLE2, Table2Row, format_table2, run_table2
from .table3 import PAPER_TABLE3, TABLE3_U, Table3Row, format_table3, run_table3

# The IR benchmark pulls in numpy and the batch engine; load it lazily
# (PEP 562) so the table drivers stay numpy-free.
_LAZY_IRBENCH = ("DEFAULT_SPECS", "IRBenchRow", "format_ir_bench", "run_ir_bench")


def __getattr__(name):
    if name in _LAZY_IRBENCH:
        from . import irbench

        return getattr(irbench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DEFAULT_SPECS",
    "IRBenchRow",
    "format_ir_bench",
    "run_ir_bench",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "TABLE3_U",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "format_table1",
    "format_table2",
    "format_table3",
    "run_table1",
    "run_table2",
    "run_table3",
]
