"""Drivers that regenerate the paper's evaluation tables."""

from .table1 import PAPER_TABLE1, Table1Row, format_table1, run_table1
from .table2 import PAPER_TABLE2, Table2Row, format_table2, run_table2
from .table3 import PAPER_TABLE3, TABLE3_U, Table3Row, format_table3, run_table3

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "TABLE3_U",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "format_table1",
    "format_table2",
    "format_table3",
    "run_table1",
    "run_table2",
    "run_table3",
]
