"""Table 2: Bean vs. Fu et al. [23] on glibc sin/cos kernels.

Per benchmark this driver reports four numbers:

* Bean's statically inferred sound backward bound (13ε for sin, 12ε for
  cos at u = 2⁻⁵³ — the 1.44e-15 / 1.33e-15 of the paper), with its
  inference time;
* Fu et al.'s published dynamic estimate and timing, quoted from their
  Table 6 exactly as the paper does (their tool is unavailable);
* a *live* estimate from our re-implementation of their optimization-
  based approach (:mod:`repro.analysis.dynamic`), for an end-to-end
  comparison on this machine.

Shape to reproduce: Bean's sound bound is competitive with — and for cos
far smaller than — the dynamic estimate, at ~1000× lower cost.  (The cos
gap is an allocation difference: Fu et al. push error onto the
ill-conditioned evaluation point, Bean onto the coefficients.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

from ..analysis.dynamic import FU_PUBLISHED, estimate_scalar
from ..core import Grade, check_definition
from ..core.grades import BINARY64_UNIT_ROUNDOFF
from ..programs.transcendental import (
    TABLE2_RANGE,
    cos_ideal,
    cos_kernel,
    glibc_cos,
    glibc_sin,
    sin_ideal,
    sin_kernel,
)

__all__ = ["Table2Row", "run_table2", "format_table2", "PAPER_TABLE2"]

#: The Bean column of the paper's Table 2.
PAPER_TABLE2 = {"sin": 1.44e-15, "cos": 1.33e-15}


@dataclass(frozen=True)
class Table2Row:
    benchmark: str
    range_lo: float
    range_hi: float
    bean_grade: Grade
    bean_bound: float
    paper_bean_bound: float
    fu_published_bound: float
    fu_published_ms: float
    dynamic_bound: float
    bean_ms: float
    dynamic_ms: float


def run_table2(
    u: float = BINARY64_UNIT_ROUNDOFF, samples: int = 32
) -> List[Table2Row]:
    """Regenerate Table 2 (both rows)."""
    rows: List[Table2Row] = []
    specs = [
        ("sin", glibc_sin, sin_kernel, sin_ideal),
        ("cos", glibc_cos, cos_kernel, cos_ideal),
    ]
    for name, make_def, kernel, ideal in specs:
        definition = make_def()
        start = time.perf_counter()
        judgment = check_definition(definition)
        bean_ms = (time.perf_counter() - start) * 1000.0
        grade = judgment.max_linear_grade()
        start = time.perf_counter()
        estimate = estimate_scalar(kernel, ideal, TABLE2_RANGE, samples=samples)
        dynamic_ms = (time.perf_counter() - start) * 1000.0
        rows.append(
            Table2Row(
                benchmark=name,
                range_lo=TABLE2_RANGE[0],
                range_hi=TABLE2_RANGE[1],
                bean_grade=grade,
                bean_bound=grade.evaluate(u),
                paper_bean_bound=PAPER_TABLE2[name],
                fu_published_bound=FU_PUBLISHED[name]["backward_bound"],
                fu_published_ms=FU_PUBLISHED[name]["timing_ms"],
                dynamic_bound=estimate.max_backward_error,
                bean_ms=bean_ms,
                dynamic_ms=dynamic_ms,
            )
        )
    return rows


def format_table2(rows: List[Table2Row]) -> str:
    header = (
        f"{'Benchmark':<10}{'Range':<18}{'Bean':>11}{'Paper':>11}"
        f"{'Fu et al.':>11}{'Ours-dyn':>11}{'Bean(ms)':>10}{'Fu(ms)*':>9}{'Dyn(ms)':>9}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        rng = f"[{r.range_lo}, {r.range_hi}]"
        lines.append(
            f"{r.benchmark:<10}{rng:<18}{r.bean_bound:>11.2e}{r.paper_bean_bound:>11.2e}"
            f"{r.fu_published_bound:>11.2e}{r.dynamic_bound:>11.2e}"
            f"{r.bean_ms:>10.2f}{r.fu_published_ms:>9.0f}{r.dynamic_ms:>9.1f}"
        )
    lines.append("* Fu et al. timing quoted from their paper (tool unavailable).")
    return "\n".join(lines)
