"""Table 3: forward error bounds — Bean (converted) vs. NumFuzz vs. Gappa.

For each benchmark the driver derives a relative forward error bound
three ways (all at u = 2⁻⁵², inputs positive / in [0.1, 1000], matching
the paper's setup):

* **Bean**: the statically inferred backward bound times the relative
  componentwise condition number, which is exactly 1 for these
  benchmarks under positive inputs (Definition 5.1 / Equation 2);
* **NumFuzz-like**: our re-implementation of NumFuzz's forward
  relative-error analysis (:mod:`repro.analysis.forward`);
* **Gappa-like**: our interval + rounding analyzer with the paper's
  interval hypotheses (:mod:`repro.analysis.intervals`).

Shape to reproduce: all three columns agree to all printed digits.

The analyzer columns run through the registered ``forward`` /
``interval`` static engines on a :class:`repro.api.Session` — so this
table exercises the same code path ``repro serve`` and
``repro witness --engine forward|interval`` serve, not a private
``analysis.*`` entry point.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List

from ..analysis.condition import TABLE3_CONDITION_NUMBER
from ..api import Session
from ..core import Program, count_flops
from ..programs.generators import dot_prod, horner, poly_val, vec_sum

__all__ = ["Table3Row", "run_table3", "format_table3", "PAPER_TABLE3", "TABLE3_U"]

#: Unit roundoff the paper instantiates all three tools with for Table 3.
TABLE3_U = 2.0**-52

#: The paper's Table 3 (all three tools agree).
PAPER_TABLE3 = {
    "Sum": 1.11e-13,
    "DotProd": 1.11e-13,
    "Horner": 2.22e-13,
    "PolyVal": 2.24e-14,
}

#: Benchmark configurations: (family, size, generator).
TABLE3_BENCHMARKS = [
    ("Sum", 500, vec_sum),
    ("DotProd", 500, dot_prod),
    ("Horner", 500, horner),
    ("PolyVal", 100, poly_val),
]


@dataclass(frozen=True)
class Table3Row:
    family: str
    size: int
    ops: int
    bean_forward: float
    numfuzz_like: float
    gappa_like: float
    paper_value: float
    seconds: float


def run_table3(u: float = TABLE3_U) -> List[Table3Row]:
    """Regenerate Table 3 (all four rows)."""
    session = Session(u=u)
    rows: List[Table3Row] = []
    for family, n, generator in TABLE3_BENCHMARKS:
        definition = generator(n)
        program = Program([definition])
        start = time.perf_counter()
        judgment = session.check(program)[definition.name]
        backward = judgment.max_linear_grade()
        bean_forward = TABLE3_CONDITION_NUMBER * backward.evaluate(u)
        numfuzz_bound = session.audit(
            program, inputs={}, engine="forward"
        ).static_bounds["forward_bound"]
        numfuzz = math.inf if numfuzz_bound is None else numfuzz_bound
        gappa_bound = session.audit(
            program, inputs={}, engine="interval"
        ).static_bounds["forward_bound"]
        gappa = math.inf if gappa_bound is None else gappa_bound
        elapsed = time.perf_counter() - start
        rows.append(
            Table3Row(
                family=family,
                size=n,
                ops=count_flops(definition.body),
                bean_forward=bean_forward,
                numfuzz_like=numfuzz,
                gappa_like=gappa,
                paper_value=PAPER_TABLE3[family],
                seconds=elapsed,
            )
        )
    return rows


def format_table3(rows: List[Table3Row]) -> str:
    header = (
        f"{'Benchmark':<11}{'Input Size':>11}{'Ops':>7}"
        f"{'Bean':>11}{'NumFuzz~':>11}{'Gappa~':>11}{'Paper':>11}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.family:<11}{r.size:>11}{r.ops:>7}"
            f"{r.bean_forward:>11.2e}{r.numfuzz_like:>11.2e}"
            f"{r.gappa_like:>11.2e}{r.paper_value:>11.2e}"
        )
    return "\n".join(lines)
