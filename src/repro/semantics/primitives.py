"""The primitive arithmetic lenses of Appendix C.

Each floating-point operation denotes a lens whose three components are:

* **forward** — exact real arithmetic (Decimal at high precision),
* **approx** — actual IEEE binary64 arithmetic (a sound instance of
  Olver's model ``fl(x op y) = (x op y)·e^δ`` with ``|δ| ≤ u/(1−u)``),
* **backward** — the explicit witness constructions of Appendix C
  (Equations 52-54 and their analogues), e.g. for addition::

      b((x₁,x₂), x₃) = (x₃·x₁/(x₁+x₂), x₃·x₂/(x₁+x₂))

One refinement over the appendix text: for ``mul``/``div`` with negative
operands the square-root witnesses are given the operands' signs so that
Property 2 holds exactly (``√(x₃²) = |x₃|`` would otherwise flip signs;
the appendix implicitly works with same-sign data, cf. its "both non-zero
and of the same sign" case analyses).

The ``*_backward`` functions work on raw Decimals and are shared with the
program interpreter; ``lens_add`` etc. wrap them as categorical lenses
``D_ε(R) ⊗ D_ε(R) → R`` for the lens-law test suite.
"""

from __future__ import annotations

import decimal
from decimal import Decimal
from typing import Callable, Tuple

from ..core.ast_nodes import Op
from ..core.grades import eps_from_roundoff
from ..lam_s.values import UNIT_VALUE, Value, VInl, VInr, VNum, VPair
from .lens import Lens, LensDomainError
from .spaces import (
    DiscreteSpace,
    GradedSpace,
    NumSpace,
    SumSpace,
    TensorSpace,
    UnitSpace,
)

__all__ = [
    "BACKWARD_PRECISION",
    "add_backward",
    "sub_backward",
    "mul_backward",
    "div_backward",
    "dmul_backward",
    "backward_for_op",
    "lens_add",
    "lens_sub",
    "lens_mul",
    "lens_div",
    "lens_dmul",
]

#: Working precision (significant digits) of backward-map arithmetic.
BACKWARD_PRECISION = 50


def _same_sign(a: Decimal, b: Decimal) -> bool:
    return (a > 0 and b > 0) or (a < 0 and b < 0)


def add_backward(x1: Decimal, x2: Decimal, x3: Decimal) -> Tuple[Decimal, Decimal]:
    """Backward map of addition (Equation 54)."""
    with decimal.localcontext() as ctx:
        ctx.prec = BACKWARD_PRECISION
        s = x1 + x2
        if s == 0 and x3 == 0:
            return x1, x2
        if s == 0 or not _same_sign(s, x3):
            raise LensDomainError(
                f"add backward: fl-result {s} and target {x3} are not comparable"
            )
        return x3 * x1 / s, x3 * x2 / s


def sub_backward(x1: Decimal, x2: Decimal, x3: Decimal) -> Tuple[Decimal, Decimal]:
    """Backward map of subtraction (Appendix C, Sub case)."""
    with decimal.localcontext() as ctx:
        ctx.prec = BACKWARD_PRECISION
        d = x1 - x2
        if d == 0 and x3 == 0:
            return x1, x2
        if d == 0 or not _same_sign(d, x3):
            raise LensDomainError(
                f"sub backward: fl-result {d} and target {x3} are not comparable"
            )
        return x3 * x1 / d, x3 * x2 / d


def mul_backward(x1: Decimal, x2: Decimal, x3: Decimal) -> Tuple[Decimal, Decimal]:
    """Backward map of multiplication (Appendix C, Mul case).

    The error is split evenly: both inputs are scaled by
    ``√(x₃/(x₁·x₂))``.
    """
    with decimal.localcontext() as ctx:
        ctx.prec = BACKWARD_PRECISION
        p = x1 * x2
        if p == 0 and x3 == 0:
            return x1, x2
        if p == 0 or not _same_sign(p, x3):
            raise LensDomainError(
                f"mul backward: fl-result {p} and target {x3} are not comparable"
            )
        scale = (x3 / p).sqrt()
        return x1 * scale, x2 * scale


def div_backward(x1: Decimal, x2: Decimal, target: Value) -> Tuple[Decimal, Decimal]:
    """Backward map of division (Appendix C, Div case).

    The target lives in ``num + unit``.  Signs are attached to the
    square-root witnesses so that ``b₁/b₂ = x₃`` exactly.
    """
    with decimal.localcontext() as ctx:
        ctx.prec = BACKWARD_PRECISION
        if x2 == 0:
            if isinstance(target, VInr):
                return x1, x2
            raise LensDomainError("div backward: division by zero vs. inl target")
        if isinstance(target, VInr):
            raise LensDomainError("div backward: finite quotient vs. inr target")
        x3 = target.body.as_decimal() if isinstance(target, VInl) else None
        if x3 is None:
            raise LensDomainError(f"div backward: bad target {target!r}")
        q = x1 / x2
        if q == 0 and x3 == 0:
            return x1, x2
        if q == 0 or not _same_sign(q, x3):
            raise LensDomainError(
                f"div backward: fl-result {q} and target {x3} are not comparable"
            )
        magnitude1 = abs(x1 * x2 * x3).sqrt()
        magnitude2 = abs(x1 * x2 / x3).sqrt()
        b1 = magnitude1 if x1 > 0 else -magnitude1
        b2 = magnitude2 if x2 > 0 else -magnitude2
        return b1, b2


def dmul_backward(x1: Decimal, x2: Decimal, x3: Decimal) -> Tuple[Decimal, Decimal]:
    """Backward map of discrete multiplication (Appendix C, DMul case).

    All the error goes onto the second (linear) operand; the first
    (discrete) operand is returned untouched.
    """
    with decimal.localcontext() as ctx:
        ctx.prec = BACKWARD_PRECISION
        p = x1 * x2
        if p == 0 and x3 == 0:
            return x1, x2
        if p == 0 or not _same_sign(p, x3):
            raise LensDomainError(
                f"dmul backward: fl-result {p} and target {x3} are not comparable"
            )
        return x1, x3 / x1


def backward_for_op(op: Op) -> Callable:
    """The raw backward function for a primitive operation."""
    return {
        Op.ADD: add_backward,
        Op.SUB: sub_backward,
        Op.MUL: mul_backward,
        Op.DIV: div_backward,
        Op.DMUL: dmul_backward,
    }[op]


# ---------------------------------------------------------------------------
# Categorical lens wrappers  D_g(R) ⊗ D_g(R) → R  (Appendix C)
# ---------------------------------------------------------------------------


def _nums(v: Value) -> Tuple[Decimal, Decimal]:
    if not isinstance(v, VPair) or not isinstance(v.left, VNum) or not isinstance(
        v.right, VNum
    ):
        raise TypeError(f"primitive lens input must be a pair of numbers: {v!r}")
    return v.left.as_decimal(), v.right.as_decimal()


def _ideal_ctx():
    ctx = decimal.Context(prec=BACKWARD_PRECISION)
    return ctx


def _binary_lens(
    label: str,
    operand_grade: Decimal,
    forward_fn,
    approx_fn,
    backward_fn,
    *,
    target_space=None,
    left_discrete: bool = False,
) -> Lens:
    num_space = NumSpace()
    left = DiscreteSpace(num_space) if left_discrete else GradedSpace(num_space, operand_grade)
    right = GradedSpace(num_space, operand_grade)
    return Lens(
        source=TensorSpace(left, right),
        target=target_space if target_space is not None else num_space,
        forward=forward_fn,
        approx=approx_fn,
        backward=backward_fn,
        label=label,
    )


def _grade_eps(u: float) -> Decimal:
    return Decimal(eps_from_roundoff(u))


def lens_add(u: float = 2.0**-53) -> Lens:
    """``L_add : D_ε(R) ⊗ D_ε(R) → R`` (Equations 52-54)."""
    eps = _grade_eps(u)

    def forward(v: Value) -> Value:
        x1, x2 = _nums(v)
        return VNum(_ideal_ctx().add(x1, x2))

    def approx(v: Value) -> Value:
        x1, x2 = _nums(v)
        return VNum(float(x1) + float(x2))

    def backward(v: Value, t: Value) -> Value:
        x1, x2 = _nums(v)
        b1, b2 = add_backward(x1, x2, t.as_decimal())
        return VPair(VNum(b1), VNum(b2))

    return _binary_lens("L_add", eps, forward, approx, backward)


def lens_sub(u: float = 2.0**-53) -> Lens:
    """``L_sub : D_ε(R) ⊗ D_ε(R) → R``."""
    eps = _grade_eps(u)

    def forward(v: Value) -> Value:
        x1, x2 = _nums(v)
        return VNum(_ideal_ctx().subtract(x1, x2))

    def approx(v: Value) -> Value:
        x1, x2 = _nums(v)
        return VNum(float(x1) - float(x2))

    def backward(v: Value, t: Value) -> Value:
        x1, x2 = _nums(v)
        b1, b2 = sub_backward(x1, x2, t.as_decimal())
        return VPair(VNum(b1), VNum(b2))

    return _binary_lens("L_sub", eps, forward, approx, backward)


def lens_mul(u: float = 2.0**-53) -> Lens:
    """``L_mul : D_{ε/2}(R) ⊗ D_{ε/2}(R) → R``."""
    half = _grade_eps(u) / 2

    def forward(v: Value) -> Value:
        x1, x2 = _nums(v)
        return VNum(_ideal_ctx().multiply(x1, x2))

    def approx(v: Value) -> Value:
        x1, x2 = _nums(v)
        return VNum(float(x1) * float(x2))

    def backward(v: Value, t: Value) -> Value:
        x1, x2 = _nums(v)
        b1, b2 = mul_backward(x1, x2, t.as_decimal())
        return VPair(VNum(b1), VNum(b2))

    return _binary_lens("L_mul", half, forward, approx, backward)


def lens_div(u: float = 2.0**-53) -> Lens:
    """``L_div : D_{ε/2}(R) ⊗ D_{ε/2}(R) → R + 1``."""
    half = _grade_eps(u) / 2
    target = SumSpace(NumSpace(), UnitSpace())

    def forward(v: Value) -> Value:
        x1, x2 = _nums(v)
        if x2 == 0:
            return VInr(UNIT_VALUE)
        return VInl(VNum(_ideal_ctx().divide(x1, x2)))

    def approx(v: Value) -> Value:
        x1, x2 = _nums(v)
        f1, f2 = float(x1), float(x2)
        if f2 == 0.0:
            return VInr(UNIT_VALUE)
        return VInl(VNum(f1 / f2))

    def backward(v: Value, t: Value) -> Value:
        x1, x2 = _nums(v)
        b1, b2 = div_backward(x1, x2, t)
        return VPair(VNum(b1), VNum(b2))

    return _binary_lens("L_div", half, forward, approx, backward, target_space=target)


def lens_dmul(u: float = 2.0**-53) -> Lens:
    """``L_dmul : M(R) ⊗ D_ε(R) → R`` — first operand discrete."""
    eps = _grade_eps(u)

    def forward(v: Value) -> Value:
        x1, x2 = _nums(v)
        return VNum(_ideal_ctx().multiply(x1, x2))

    def approx(v: Value) -> Value:
        x1, x2 = _nums(v)
        return VNum(float(x1) * float(x2))

    def backward(v: Value, t: Value) -> Value:
        x1, x2 = _nums(v)
        b1, b2 = dmul_backward(x1, x2, t.as_decimal())
        return VPair(VNum(b1), VNum(b2))

    return _binary_lens("L_dmul", eps, forward, approx, backward, left_discrete=True)
