"""A vectorized batch engine for backward error witnesses.

:func:`repro.semantics.witness.run_witness` certifies Theorem 3.1 on one
concrete input.  Auditing a kernel in production means certifying it on
*thousands* of inputs; running the scalar pipeline in a loop re-pays the
whole interpreter overhead per environment.  :class:`BatchWitnessEngine`
runs the same four-phase pipeline over ``N`` environments at once on the
flat IR:

1. **approximate forward sweep** — one NumPy ``float64`` array op per IR
   instruction (bit-identical to the scalar evaluator: IEEE arithmetic is
   deterministic, and reduced-precision simulation uses the same
   frexp/round-half-even/ldexp construction, vectorized);
2. **backward sweep** — one reverse pass whose per-op witness formulas
   (Appendix C) run on an exact-arithmetic backend: by default
   double-double float arrays (:mod:`repro.semantics.eft` — plain
   float64 ufunc expressions, no Python-level dispatch), or object
   arrays of ``Decimal`` under the same 50-digit context the scalar
   primitives use (``exact_backend="decimal"``, the reference);
3. **ideal re-evaluation** of the perturbed inputs (Property 2), again
   as per-op array sweeps on the selected backend;
4. **distance checks** — relative-precision distances against the
   inferred grade bounds.  On the Decimal backend these are vectorized
   60-digit computations; on the EFT backend they are float64 *screens
   with provable margins* — every row the screen cannot settle with
   ~1e18 to spare, and every number that reaches a report, is decided
   by the per-row scalar reference, so both backends are bit-for-bit
   equal to looping :func:`run_witness` (the parity harness enforces
   this).

The vectorized fragment is the whole language:

* ``div`` screens per row — zero divisors and vanishing/overflowing
  quotients divert *those rows* (not the batch) to the scalar path, and
  the surviving rows run the Appendix C square-root witness as array
  expressions;
* ``case``/``inl``/``inr`` evaluate with branch masks: sum values are
  batched as a per-row tag mask plus payload trees, both branch regions
  execute in the forward sweep (inactive rows compute masked-out
  garbage), and the backward/ideal sweeps — which only see screened
  rows, whose branch tags are provably uniform — thread targets through
  the taken region exactly as the scalar reverse sweep does;
* ``call`` is rewritten away up front by :mod:`repro.ir.inline`; only
  calls an inlining guard refused (unknown callee, arity mismatch,
  recursion, size cap) drop the batch to the scalar loop;
* stochastic rounding vectorizes because each rounding decision is a
  pure function of (seed, op, operand bits), not of a sequential RNG
  stream: the forward sweep replays the per-row decision RNG exactly
  and every other phase is rounding-mode independent.

Rows whose forward values are exactly zero or non-finite — where the
primitive backward maps' sign analyses could legitimately fail — fall
back to the scalar :func:`run_witness` row-by-row.  Per-row failures on
a fallback row — a ``LensDomainError``, or a Decimal signal from
non-finite data inside the primitive backward maps — are captured in
the report rather than aborting the other rows.  Structure the array
pipeline does not model (mixed branch tags on screened rows, sum-typed
discrete data) raises the internal ``_Unvectorizable`` and the whole
batch is re-certified by the scalar loop, so results match it on every
program.

Reports are *aggregated*: verdict arrays, per-parameter worst distances,
and lazy per-row :class:`~repro.semantics.witness.WitnessReport`
materialization via indexing.
"""

from __future__ import annotations

import decimal
import math
import os
import random
from decimal import Decimal
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core import ast_nodes as A
from ..core.grades import BINARY64_UNIT_ROUNDOFF, Grade, ZERO
from ..core.types import Discrete, Num, Tensor, Type, Unit, is_discrete
from ..ir import lower as L
from ..ir.cache import inlined_definition_ir, semantic_definition_ir
from ..ir.inline import walk_ops
from ..lam_s.eval import EvalError, stochastic_round
from ..lam_s.values import UNIT_VALUE, Value, VInl, VInr, VNum, VPair, values_close
from . import eft
from .eft import DD
from .interp import BeanLens, lens_of_definition
from .lens import LensDomainError
from .primitives import BACKWARD_PRECISION
from .spaces import DISTANCE_PRECISION, INF, grade_bound
from .witness import ParamWitness, WitnessReport, run_witness

__all__ = ["BatchWitnessEngine", "BatchWitnessReport", "run_witness_batch"]

_DEC_ZERO = Decimal(0)
_DEC_ONE = Decimal(1)

#: Exceptions a single environment can legitimately raise on the scalar
#: path — captured per row rather than aborting the batch.  Decimal
#: signals arise from non-finite/degenerate inputs inside the primitive
#: backward maps (e.g. ``inf/inf``); ``EvalError`` from ill-shaped data.
_ROW_ERRORS = (
    LensDomainError,
    EvalError,
    decimal.InvalidOperation,
    decimal.DivisionByZero,
    decimal.Overflow,
)

_to_dec = np.frompyfunc(Decimal, 1, 1)
_sqrt = np.frompyfunc(lambda d: d.sqrt(), 1, 1)


class _Unvectorizable(Exception):
    """The batch hit structure the array pipeline does not model.

    Raising it aborts the vectorized attempt; the engine re-certifies
    the whole batch with the (bit-identical) scalar loop, so this is a
    performance event, never a correctness one.
    """


class _EftUnsupported(Exception):
    """The EFT sweep hit a case only the Decimal reference can decide.

    Exact zero divisors and negative radicands (where the Decimal sweep
    raises and falls back batch-wide), discrete verifies that need
    ``values_close`` slack, non-binary ideal constants, and scalar
    rechecks that raised: raising this reruns the whole batch through
    the Decimal vectorized path, so the engine lands on exactly the
    reference behavior.  A performance event, never a correctness one.
    """


class _BPair:
    """A batched pair value: a tree whose leaves are arrays."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = left
        self.right = right


class _BSum:
    """A batched sum value: a per-row tag mask plus payload trees.

    ``mask`` is a boolean row array, ``True`` where the row is ``inl``.
    A payload side is ``None`` when no constructor ever produced it
    (``inl e`` carries no right payload); by construction no row's tag
    can select a ``None`` side.
    """

    __slots__ = ("mask", "left", "right")

    def __init__(self, mask, left, right):
        self.mask = mask
        self.left = left
        self.right = right


class _BUnit:
    """The batched unit value (a singleton; carries no rows)."""

    __slots__ = ()


_BUNIT = _BUnit()


class _BPartial:
    """A batched pair target under construction (cf. interp._PartialPair)."""

    __slots__ = ("left", "right")

    def __init__(self):
        self.left = None
        self.right = None


# --------------------------------------------------------------------------
# Type-directed packing between row arrays and Value trees
# --------------------------------------------------------------------------


def _leaf_count(ty: Type) -> int:
    if isinstance(ty, Num):
        return 1
    if isinstance(ty, Discrete):
        return _leaf_count(ty.inner)
    if isinstance(ty, Tensor):
        return _leaf_count(ty.left) + _leaf_count(ty.right)
    if isinstance(ty, Unit):
        return 0
    raise TypeError(f"cannot batch parameters of type {ty}")


def _pack_columns(ty: Type, columns: List, offset: int = 0):
    """Build the batched value tree for ``ty`` from leaf column arrays."""
    if isinstance(ty, Num):
        return columns[offset], offset + 1
    if isinstance(ty, Discrete):
        return _pack_columns(ty.inner, columns, offset)
    if isinstance(ty, Tensor):
        left, offset = _pack_columns(ty.left, columns, offset)
        right, offset = _pack_columns(ty.right, columns, offset)
        return _BPair(left, right), offset
    raise TypeError(f"cannot batch parameters of type {ty}")


def _row_value(tree, i: int) -> Value:
    """Extract row ``i`` of a batched tree as a scalar Value."""
    if isinstance(tree, _BPair):
        return VPair(_row_value(tree.left, i), _row_value(tree.right, i))
    if isinstance(tree, _BSum):
        if bool(tree.mask[i]):
            return VInl(_row_value(tree.left, i))
        return VInr(_row_value(tree.right, i))
    if tree is _BUNIT:
        return UNIT_VALUE
    x = tree[i]
    if isinstance(x, Decimal):
        return VNum(x)
    return VNum(float(x))


def _map_tree(tree, fn, mask_fn=None):
    """Map ``fn`` over numeric leaf arrays (``mask_fn`` over tag masks).

    ``mask_fn`` defaults to the identity so value transforms (e.g. the
    float->Decimal conversion) never touch boolean tag masks; row
    selections pass the same function for both.
    """
    if isinstance(tree, _BPair):
        return _BPair(
            _map_tree(tree.left, fn, mask_fn), _map_tree(tree.right, fn, mask_fn)
        )
    if isinstance(tree, _BSum):
        mask = tree.mask if mask_fn is None else mask_fn(tree.mask)
        left = None if tree.left is None else _map_tree(tree.left, fn, mask_fn)
        right = None if tree.right is None else _map_tree(tree.right, fn, mask_fn)
        return _BSum(mask, left, right)
    if tree is _BUNIT:
        return tree
    return fn(tree)


def _tree_leaves(tree, out: List) -> List:
    """Numeric leaf arrays of a pair tree (sums/units are not leaves)."""
    if isinstance(tree, _BPair):
        _tree_leaves(tree.left, out)
        _tree_leaves(tree.right, out)
    elif isinstance(tree, _BSum) or tree is _BUNIT:
        raise _Unvectorizable("sum/unit data outside the numeric fragment")
    else:
        out.append(tree)
    return out


def _merge_masked(mask: np.ndarray, left, right):
    """Row-select between two batched trees (``mask`` True picks left)."""
    if right is None:
        return left
    if left is None:
        return right
    if isinstance(left, _BPair) and isinstance(right, _BPair):
        return _BPair(
            _merge_masked(mask, left.left, right.left),
            _merge_masked(mask, left.right, right.right),
        )
    if isinstance(left, _BSum) and isinstance(right, _BSum):
        return _BSum(
            np.where(mask, left.mask, right.mask),
            _merge_masked(mask, left.left, right.left),
            _merge_masked(mask, left.right, right.right),
        )
    if left is _BUNIT and right is _BUNIT:
        return _BUNIT
    if isinstance(left, DD) or isinstance(right, DD):
        # dd/float leaf mixes promote the float side exactly.
        if isinstance(left, (DD, np.ndarray)) and isinstance(right, (DD, np.ndarray)):
            return eft.where(mask, left, right)
        raise _Unvectorizable("case branches produced incompatible batched shapes")
    if isinstance(left, np.ndarray) and isinstance(right, np.ndarray):
        return np.where(mask, left, right)
    raise _Unvectorizable("case branches produced incompatible batched shapes")


def _mask_all(mask: np.ndarray) -> bool:
    return bool(mask.all())


# --------------------------------------------------------------------------
# The aggregated report
# --------------------------------------------------------------------------


class BatchWitnessReport:
    """Aggregated outcome of a batch witness run over ``n_rows`` inputs.

    Per-row :class:`WitnessReport` objects are materialized lazily via
    indexing (``report[i]``); rows that raised (e.g. a lens domain error)
    re-raise on access and are recorded in :attr:`errors`.
    """

    def __init__(
        self,
        definition: A.Definition,
        n_rows: int,
        sound: np.ndarray,
        exact: np.ndarray,
        errors: Dict[int, BaseException],
        materialize,
        param_max_distance: Dict[str, Decimal],
        param_bound: Dict[str, Decimal],
        fallback_rows: int,
        exact_backend: str = "eft",
        rows: Optional[List[tuple]] = None,
    ) -> None:
        self.definition = definition
        self.n_rows = n_rows
        self.sound = sound  #: per-row soundness verdicts (False where errored)
        self.exact = exact  #: per-row Property-2 verdicts
        self.errors = errors
        self._materialize = materialize
        self.param_max_distance = param_max_distance
        self.param_bound = param_bound
        self.fallback_rows = fallback_rows
        #: Which exact-arithmetic backend the engine was configured with
        #: ("eft" or "decimal").  Informational: results are bit-equal
        #: either way.
        self.exact_backend = exact_backend
        #: Per-row witness tuples ``(row, sound, exact, {param: Decimal
        #: distance}, error-or-None)``, materialized only when the engine
        #: ran with ``collect_rows=True`` (the schema-v4 ``rows``
        #: section); ``None`` otherwise.  Picklable, so shards and
        #: chunked streams can carry them across processes.
        self.rows = rows

    # -- aggregates --------------------------------------------------------

    @property
    def all_sound(self) -> bool:
        """Did every row satisfy the backward error soundness theorem?"""
        return len(self.errors) == 0 and bool(self.sound.all())

    @property
    def sound_count(self) -> int:
        return int(self.sound.sum())

    def __len__(self) -> int:
        return self.n_rows

    def __getitem__(self, i: int) -> WitnessReport:
        if i < 0:
            i += self.n_rows
        if not 0 <= i < self.n_rows:
            raise IndexError(i)
        err = self.errors.get(i)
        if err is not None:
            raise err
        return self._materialize(i)

    def __iter__(self):
        for i in range(self.n_rows):
            yield self[i]

    def describe(self) -> str:
        lines = [
            f"batch witness: {self.definition.name}",
            f"rows               : {self.n_rows} "
            f"({self.fallback_rows} via scalar fallback)",
            f"sound              : {self.sound_count}/{self.n_rows}"
            + (f" ({len(self.errors)} raised)" if self.errors else ""),
        ]
        for name, dist in self.param_max_distance.items():
            bound = self.param_bound[name]
            status = "ok" if dist <= bound else "VIOLATION"
            lines.append(
                f"  {name}: max d = {dist:.3e} <= {bound:.3e}  [{status}]"
            )
        return "\n".join(lines)


# --------------------------------------------------------------------------
# The engine
# --------------------------------------------------------------------------


class BatchWitnessEngine:
    """Run the soundness theorem over many environments at once."""

    def __init__(
        self,
        definition: A.Definition,
        program: Optional[A.Program] = None,
        *,
        u: float = BINARY64_UNIT_ROUNDOFF,
        precision: int = 50,
        rounding: str = "nearest",
        seed: int = 0,
        precision_bits: int = 53,
        lens: Optional[BeanLens] = None,
        exact_backend: Optional[str] = None,
        collect_rows: bool = False,
        inlined_ir=None,
    ) -> None:
        self.definition = definition
        self.program = program
        self.u = u
        self.collect_rows = collect_rows
        if exact_backend is None:
            exact_backend = os.environ.get("REPRO_EXACT_BACKEND") or "eft"
        if exact_backend not in ("eft", "decimal"):
            raise ValueError(
                "exact_backend must be 'eft' or 'decimal', got "
                f"{exact_backend!r}"
            )
        self.exact_backend = exact_backend
        if lens is not None:
            # A caller-provided lens defines the arithmetic; adopting its
            # configuration keeps the vectorized sweep and the scalar
            # fallback rows on the same semantics (and the same bits).
            self.lens = lens
            self.precision = lens.precision
            self.rounding = lens.rounding
            self.seed = lens.seed
            self.precision_bits = lens.precision_bits
        else:
            self.precision = precision
            self.rounding = rounding
            self.seed = seed
            self.precision_bits = precision_bits
            self.lens = lens_of_definition(
                definition,
                program=program,
                precision=precision,
                rounding=rounding,
                seed=seed,
                precision_bits=precision_bits,
            )
        #: The EFT screens are calibrated against the 50-digit reference
        #: semantics (dd resolves ~32 digits; the margins below assume
        #: Decimal noise at ~1e-50·cond); any other ideal precision runs
        #: the Decimal path.  Per-row witness materialization also runs
        #: Decimal: the rows need every row's *exact* distance, which is
        #: precisely the per-row computation the EFT screen exists to
        #: avoid (it only ever rechecks ambiguous rows through the
        #: scalar reference).
        self._use_eft = (
            self.exact_backend == "eft"
            and self.precision == BACKWARD_PRECISION
            and not collect_rows
        )
        if inlined_ir is not None:
            # A caller-provided pre-flattened IR (the compositional
            # engine plans it from summary metadata, lifting the inline
            # size cap when the expansion is known safe).  Must be an
            # execution-equivalent flattening of the definition.
            self.ir = inlined_ir
        else:
            self.ir = semantic_definition_ir(definition)
            if self.ir.has_calls and program is not None:
                # Flatten defined-function calls so the array pipeline
                # sees through them; guarded calls survive and force the
                # scalar path (see repro.ir.inline).
                self.ir = inlined_definition_ir(definition, program)
        #: Whether this program runs through the vectorized pipeline.
        #: The op check is the whole language minus un-inlined calls;
        #: the param check excludes implicit (free-variable) parameters,
        #: which only the scalar environment lookup can resolve.
        self.vectorized = bool(self.ir.vectorizable) and len(
            self.ir.params
        ) == len(definition.params)
        self._grades: Dict[str, Grade] = {}
        self._bounds: Dict[str, Decimal] = {}
        for p in definition.params:
            if is_discrete(p.ty):
                self._grades[p.name] = ZERO
                self._bounds[p.name] = _DEC_ZERO
            else:
                g = self.lens.judgment.grade_of(p.name)
                self._grades[p.name] = g
                self._bounds[p.name] = grade_bound(g, u)

    # -- input handling ----------------------------------------------------

    def _columns(self, inputs: Mapping[str, Sequence]) -> Dict[str, np.ndarray]:
        """Normalize inputs to float64 arrays of shape (N, leaves)."""
        columns: Dict[str, np.ndarray] = {}
        n_rows = None
        for p in self.definition.params:
            if p.name not in inputs:
                raise KeyError(f"missing input for parameter {p.name!r}")
            arr = np.asarray(inputs[p.name], dtype=np.float64)
            k = _leaf_count(p.ty)
            if arr.ndim == 1 and arr.shape[0] == 0:
                # An empty environment *list* carries no per-row shape
                # to infer from; normalize it to zero rows of the right
                # width.  An explicitly 2-D empty keeps its width and
                # faces the same validation as non-empty input.
                arr = arr.reshape((0, max(k, 1)))
            if arr.ndim == 1:
                arr = arr[:, None]
            if arr.ndim != 2 or arr.shape[1] != k:
                raise ValueError(
                    f"input for {p.name!r} must have shape (N, {k}); "
                    f"got {arr.shape}"
                )
            if n_rows is None:
                n_rows = arr.shape[0]
            elif arr.shape[0] != n_rows:
                raise ValueError(
                    f"inconsistent batch sizes: {p.name!r} has "
                    f"{arr.shape[0]} rows, expected {n_rows}"
                )
            columns[p.name] = arr
        if n_rows is None:
            raise ValueError("definition has no parameters to batch over")
        return columns

    def _row_inputs(self, columns: Dict[str, np.ndarray], i: int) -> Dict:
        row: Dict[str, Union[float, List[float]]] = {}
        for p in self.definition.params:
            arr = columns[p.name]
            row[p.name] = float(arr[i, 0]) if arr.shape[1] == 1 else [
                float(x) for x in arr[i]
            ]
        return row

    # -- the pipeline ------------------------------------------------------

    def run(self, inputs: Mapping[str, Sequence]) -> BatchWitnessReport:
        """Witness every row of ``inputs`` (mapping param -> (N,)/(N,k))."""
        columns = self._columns(inputs)
        n_rows = next(iter(columns.values())).shape[0]
        if n_rows == 0:
            # Nothing to certify: an empty report, not a pile of
            # zero-size array ops.
            return BatchWitnessReport(
                self.definition,
                0,
                np.zeros(0, dtype=bool),
                np.zeros(0, dtype=bool),
                {},
                {}.__getitem__,
                {p.name: _DEC_ZERO for p in self.definition.params},
                dict(self._bounds),
                fallback_rows=0,
                exact_backend=self.exact_backend,
                rows=[] if self.collect_rows else None,
            )
        if not self.vectorized:
            return self._run_scalar(columns, n_rows, range(n_rows))
        if self._use_eft:
            try:
                return self._run_vectorized(columns, n_rows, use_eft=True)
            except _EftUnsupported:
                # The dd sweep hit a case whose behavior the Decimal
                # reference owns (zero divisors, negative radicands,
                # discrete verifies needing values_close slack): rerun
                # the whole batch on the Decimal path below.
                pass
            except (_Unvectorizable, decimal.InvalidOperation,
                    decimal.DivisionByZero):
                return self._run_scalar(columns, n_rows, range(n_rows))
        try:
            return self._run_vectorized(columns, n_rows, use_eft=False)
        except (_Unvectorizable, decimal.InvalidOperation, decimal.DivisionByZero):
            # A row slipped past the risk mask, or the batch hit
            # structure the array pipeline does not model: certify
            # everything the slow, per-row way rather than guess.
            return self._run_scalar(columns, n_rows, range(n_rows))

    # -- scalar fallback ---------------------------------------------------

    def _scalar_report(self, columns, i: int):
        return run_witness(
            self.definition,
            self._row_inputs(columns, i),
            program=self.program,
            u=self.u,
            lens=self.lens,
        )

    def _run_scalar(self, columns, n_rows: int, rows) -> BatchWitnessReport:
        reports: Dict[int, WitnessReport] = {}
        errors: Dict[int, BaseException] = {}
        sound = np.zeros(n_rows, dtype=bool)
        exact = np.zeros(n_rows, dtype=bool)
        max_dist = {p.name: _DEC_ZERO for p in self.definition.params}
        for i in rows:
            try:
                rep = self._scalar_report(columns, i)
            except _ROW_ERRORS as exc:
                errors[i] = exc
                continue
            reports[i] = rep
            sound[i] = rep.sound
            exact[i] = rep.exact_match
            for name, w in rep.params.items():
                if w.distance > max_dist[name]:
                    max_dist[name] = w.distance
        row_tuples = None
        if self.collect_rows:
            row_tuples = self._row_tuples(
                n_rows, sound, exact, errors,
                lambda i: {
                    name: w.distance for name, w in reports[i].params.items()
                },
            )
        return BatchWitnessReport(
            self.definition,
            n_rows,
            sound,
            exact,
            errors,
            reports.__getitem__,
            max_dist,
            dict(self._bounds),
            fallback_rows=n_rows,
            exact_backend=self.exact_backend,
            rows=row_tuples,
        )

    def _row_tuples(self, n_rows: int, sound, exact, errors, distances_of):
        """The report's raw per-row witness tuples (``collect_rows``).

        ``distances_of(i)`` supplies the exact per-parameter Decimal
        distances of non-error row ``i``; error rows carry the captured
        exception and no distances.
        """
        rows: List[tuple] = []
        for i in range(n_rows):
            exc = errors.get(i)
            if exc is not None:
                rows.append((i, False, False, {}, exc))
            else:
                rows.append(
                    (i, bool(sound[i]), bool(exact[i]), distances_of(i), None)
                )
        return rows

    # -- vectorized pipeline ----------------------------------------------

    def _run_vectorized(self, columns, n_rows: int,
                        use_eft: bool) -> BatchWitnessReport:
        ir = self.ir
        # Phase 1: approximate forward sweep (float64 arrays).  This
        # phase is exact-backend independent; the backend only decides
        # who runs phases 2-4 on the clean rows.
        fvals: List = [None] * ir.n_slots
        for p in ir.params:
            cols = [np.ascontiguousarray(columns[p.name][:, j]) for j in
                    range(columns[p.name].shape[1])]
            tree, _ = _pack_columns(p.ty, cols)
            fvals[p.slot] = tree
        risky = np.zeros(n_rows, dtype=bool)
        self._forward_approx(ir.ops, fvals, risky, np.ones(n_rows, dtype=bool))
        for name in columns:
            col = columns[name]
            risky |= ~np.isfinite(col).all(axis=1)
        clean = np.flatnonzero(~risky)
        fallback = np.flatnonzero(risky)

        if clean.size == 0:
            return self._run_scalar(columns, n_rows, fallback)

        # Row selections are memoized by *source array identity*, not
        # slot: slots that alias the same underlying array (projections,
        # dvar reads, aliased binders) then share one selected array
        # object, so identity checks — e.g. the discrete-variable
        # verify's "target is the unperturbed value" fast path — see
        # through the aliasing.
        fsel_cache: Dict[int, object] = {}
        sel_memo: Dict[int, np.ndarray] = {}

        def _sel_leaf(a):
            r = sel_memo.get(id(a))
            if r is None:
                r = a[clean]
                sel_memo[id(a)] = r
            return r

        def fsel(slot: int):
            cached = fsel_cache.get(slot)
            if cached is None:
                cached = _map_tree(fvals[slot], _sel_leaf, _sel_leaf)
                fsel_cache[slot] = cached
            return cached

        if use_eft:
            return self._finish_eft(columns, n_rows, clean, fallback, fsel)
        return self._finish_decimal(columns, n_rows, clean, fallback, fsel)

    def _finish_decimal(self, columns, n_rows: int, clean: np.ndarray,
                        fallback: np.ndarray, fsel) -> BatchWitnessReport:
        ir = self.ir
        # Phase 2: backward reverse sweep (Decimal object arrays).
        # Targets stay float arrays while they are pure identity defaults
        # and become Decimal arrays once a witness formula computes them —
        # mirroring the scalar path, whose default targets are the float
        # approximants and whose computed targets are Decimals.
        ambient = decimal.getcontext()
        # Decimal conversions share the same id-keyed memoization as row
        # selections (see _run_vectorized).
        dec_cache: Dict[int, object] = {}
        dec_memo: Dict[int, np.ndarray] = {}

        def _dec_leaf(a):
            r = dec_memo.get(id(a))
            if r is None:
                r = _to_dec(a)
                dec_memo[id(a)] = r
            return r

        def dec(slot: int):
            cached = dec_cache.get(slot)
            if cached is None:
                cached = _map_tree(fsel(slot), _dec_leaf)
                dec_cache[slot] = cached
            return cached

        arith = _DecArith(ambient)
        with decimal.localcontext() as ctx:
            ctx.prec = BACKWARD_PRECISION
            targets: List = [None] * ir.n_slots
            self._backward(ir.ops, fsel, dec, targets, arith)
        # The per-parameter perturbed trees.  Leaves the backward sweep
        # never targeted keep their original float arrays — the scalar
        # path leaves those env entries untouched, and reports must match
        # it representation-for-representation.
        perturbed: Dict[str, object] = {}
        for p in ir.params:
            if p.discrete:
                perturbed[p.name] = fsel(p.slot)
            else:
                perturbed[p.name] = _materialize_mixed(targets[p.slot], fsel(p.slot))

        # Phase 3: ideal re-evaluation of the perturbed inputs.  Slots
        # keep the perturbed representation (floats where the backward
        # sweep never targeted) and convert to Decimal only where an
        # arithmetic op consumes them — exactly the scalar interpreter's
        # behavior, so pass-through results keep their float identity.
        # Conversions reuse the phase-2 memo: a pass-through leaf the
        # backward sweep already converted (or several ops consume) is
        # converted at most once per distinct array — conversion is
        # exact, so sharing cannot change bits.
        ivals: List = [None] * ir.n_slots
        for p in ir.params:
            ivals[p.slot] = perturbed[p.name]
        self._ideal_dec(ir.ops, ivals, clean.size, dec_memo)
        ideal_result = ivals[ir.result]

        # Phase 4: verdicts and distances.
        exact = np.zeros(n_rows, dtype=bool)
        approx_sel = fsel(ir.result)
        closeness = np.ones(clean.size, dtype=bool)
        _close_rows(ideal_result, approx_sel, closeness,
                    np.ones(clean.size, dtype=bool))
        exact[clean] = closeness

        sound = np.zeros(n_rows, dtype=bool)
        within_all = closeness.copy()
        distances: Dict[str, object] = {}
        max_dist: Dict[str, Decimal] = {}
        with decimal.localcontext() as ctx:
            ctx.prec = DISTANCE_PRECISION
            for p in ir.params:
                if p.discrete:
                    distances[p.name] = np.full(clean.size, _DEC_ZERO, dtype=object)
                    max_dist[p.name] = _DEC_ZERO
                    continue
                d = self._param_distances(
                    fsel(p.slot), perturbed[p.name], dec(p.slot),
                    ivals[p.slot], clean.size, _dec_leaf,
                )
                distances[p.name] = d
                bound = self._bounds[p.name]
                within_all &= (d <= bound).astype(bool)
                max_dist[p.name] = max(d, default=_DEC_ZERO) if d.size else _DEC_ZERO
        sound[clean] = within_all

        reports, errors = self._scalar_fallback_rows(
            columns, fallback, sound, exact, max_dist
        )
        clean_pos = {int(row): j for j, row in enumerate(clean)}

        row_tuples = None
        if self.collect_rows:
            def _row_distances(i: int) -> Dict[str, Decimal]:
                rep = reports.get(i)
                if rep is not None:  # scalar-fallback row
                    return {
                        name: w.distance for name, w in rep.params.items()
                    }
                j = clean_pos[i]
                return {
                    p.name: distances[p.name][j]
                    for p in self.definition.params
                }

            row_tuples = self._row_tuples(
                n_rows, sound, exact, errors, _row_distances
            )

        def materialize(i: int) -> WitnessReport:
            rep = reports.get(i)
            if rep is not None:
                return rep
            j = clean_pos[i]
            approx_v = _row_value(approx_sel, j)
            ideal_v = _row_value(ideal_result, j)
            params: Dict[str, ParamWitness] = {}
            for p in self.definition.params:
                orig = _row_value(fsel(_slot_of(ir, p.name)), j)
                new = _row_value(perturbed[p.name], j)
                params[p.name] = ParamWitness(
                    p.name,
                    orig,
                    new,
                    distances[p.name][j],
                    self._bounds[p.name],
                    self._grades[p.name],
                )
            return WitnessReport(approx_v, ideal_v, bool(exact[i]), params)

        return BatchWitnessReport(
            self.definition,
            n_rows,
            sound,
            exact,
            errors,
            materialize,
            max_dist,
            dict(self._bounds),
            fallback_rows=int(fallback.size),
            exact_backend=self.exact_backend,
            rows=row_tuples,
        )

    def _scalar_fallback_rows(self, columns, fallback, sound, exact, max_dist):
        """Witness the risky rows via run_witness (bit-identical)."""
        reports: Dict[int, WitnessReport] = {}
        errors: Dict[int, BaseException] = {}
        for i in fallback:
            try:
                rep = self._scalar_report(columns, int(i))
            except _ROW_ERRORS as exc:
                errors[int(i)] = exc
                continue
            reports[int(i)] = rep
            sound[i] = rep.sound
            exact[i] = rep.exact_match
            for name, w in rep.params.items():
                if w.distance > max_dist[name]:
                    max_dist[name] = w.distance
        return reports, errors

    # -- the EFT fast path -------------------------------------------------

    def _finish_eft(self, columns, n_rows: int, clean: np.ndarray,
                    fallback: np.ndarray, fsel) -> BatchWitnessReport:
        """Phases 2-4 on dd (double-double) float arrays.

        The dd sweep is a *screen with provable margins*, never a
        reporter: every number that reaches a report — perturbed-input
        reprs, exact distances, max distances, ambiguous verdicts — is
        produced by the per-row scalar reference (:func:`run_witness`),
        which is the established bit-identical semantics.  The dd values
        only decide which rows can be settled without it.  Soundness of
        each verdict rests on the margins documented in
        :mod:`repro.semantics.eft` and at the screen sites below:
        rounding noise in the 50-digit Decimal reference (~1e-50·cond)
        and in dd (~1e-32·cond) both sit many orders below every
        decision threshold, so whenever dd calls a verdict "sure", the
        Decimal path provably agrees.
        """
        ir = self.ir
        m = int(clean.size)
        arith = _EftArith(m)
        dd_cache: Dict[int, object] = {}
        dd_memo: Dict[int, DD] = {}

        def _dd_leaf(a):
            r = dd_memo.get(id(a))
            if r is None:
                r = eft.from_float(a)
                dd_memo[id(a)] = r
            return r

        def ddc(slot: int):
            cached = dd_cache.get(slot)
            if cached is None:
                cached = _map_tree(fsel(slot), _dd_leaf)
                dd_cache[slot] = cached
            return cached

        with np.errstate(all="ignore"):
            # Phase 2': backward reverse sweep on dd arrays.  Rows where
            # a kernel leaves its validated range land in arith.suspect
            # and are settled by the scalar reference below.
            targets: List = [None] * ir.n_slots
            self._backward(ir.ops, fsel, ddc, targets, arith)
            perturbed: Dict[str, object] = {}
            for p in ir.params:
                if p.discrete:
                    perturbed[p.name] = fsel(p.slot)
                else:
                    perturbed[p.name] = _materialize_mixed(
                        targets[p.slot], fsel(p.slot)
                    )

            # Phase 3': ideal re-evaluation on dd arrays.
            ivals: List = [None] * ir.n_slots
            for p in ir.params:
                ivals[p.slot] = perturbed[p.name]
            self._ideal_eft(ir.ops, ivals, m, arith)
            ideal_result = ivals[ir.result]

            # Phase 4': screens.  Definite verdicts come out of the dd
            # margins; everything ambiguous joins `recheck` and is
            # decided by the scalar reference, bit for bit.
            recheck = arith.suspect.copy()
            approx_sel = fsel(ir.result)
            close = np.ones(m, dtype=bool)
            _close_screen_eft(ideal_result, approx_sel, close, recheck,
                              np.ones(m, dtype=bool))

            within_all = np.ones(m, dtype=bool)
            d_maxes: Dict[str, np.ndarray] = {}
            noise_rows: Dict[str, np.ndarray] = {}
            for p in ir.params:
                if p.discrete:
                    continue
                d_max, noise = self._dist_screen_eft(
                    fsel(p.slot), perturbed[p.name], m, recheck
                )
                bound_f = float(self._bounds[p.name])
                if math.isfinite(bound_f):
                    # Perturbations are relative ~1e-16..1e-13; the dd
                    # screen's distance error is ~1e-16·d + 1e-30, so a
                    # row can only disagree with the exact comparison
                    # inside this margin — recheck those.  d_max == 0.0
                    # rows are exact zeros (or noise-flagged), never
                    # ambiguous.
                    margin = 1e-12 * (bound_f + d_max) + 1e-26
                    recheck |= (np.abs(d_max - bound_f) <= margin) & (d_max > 0.0)
                    within_all &= d_max <= bound_f
                    if bound_f <= 1e-27:
                        # Noise-floor leaves (true distance up to
                        # ~1.1e-28) can flip the verdict only against a
                        # bound this small.
                        recheck |= noise
                # An infinite bound is satisfied by every distance, INF
                # included — no screen needed (matches d <= Infinity).
                d_maxes[p.name] = d_max
                noise_rows[p.name] = noise

        # The scalar reference decides every flagged row — and *is* what
        # the Decimal batch reports for it (both materialize ambiguous
        # rows through run_witness).  A row error here means the Decimal
        # batch itself would have aborted mid-sweep; rerun it to inherit
        # its exact behavior.
        rechecked: Dict[int, WitnessReport] = {}

        def _recheck_rows(rows) -> None:
            for j in rows:
                j = int(j)
                if j in rechecked:
                    continue
                try:
                    rechecked[j] = self._scalar_report(columns, int(clean[j]))
                except _ROW_ERRORS as exc:
                    raise _EftUnsupported(
                        "scalar recheck raised; the Decimal batch owns "
                        "this input"
                    ) from exc

        _recheck_rows(np.flatnonzero(recheck))

        # Per-parameter max distances must be *exact* Decimals.  Rows
        # whose screened distance falls within the dd error band of the
        # screened maximum are candidates for the true max; recheck them
        # and report the max over exact values only.  (Rows outside the
        # band are provably below the true max by the same margin
        # argument as the bound screen.)
        max_dist: Dict[str, Decimal] = {}
        for p in ir.params:
            if p.discrete:
                max_dist[p.name] = _DEC_ZERO
                continue
            d_max = d_maxes[p.name]
            best = 0.0
            for rep in rechecked.values():
                dist = rep.params[p.name].distance
                f = float(dist) if dist.is_finite() else math.inf
                if f > best:
                    best = f
            screened = np.where(recheck, 0.0, d_max)
            if screened.size:
                best = max(best, float(screened.max()))
            if best <= 1e-27:
                # The param's max sits at (or below) the noise floor:
                # rows whose tiny leaves the screen deferred can hold
                # it, and only the scalar reference knows their exact
                # (evaluation-noise-dominated) Decimal distances.
                _recheck_rows(np.flatnonzero(noise_rows[p.name]))
            band = 1e-12 * best + 1e-26
            cand = ~recheck & (d_max >= best - band) & (d_max > 0.0)
            _recheck_rows(np.flatnonzero(cand))
            dist_best = _DEC_ZERO
            for rep in rechecked.values():
                dist = rep.params[p.name].distance
                if dist > dist_best:
                    dist_best = dist
            max_dist[p.name] = dist_best

        exact = np.zeros(n_rows, dtype=bool)
        sound = np.zeros(n_rows, dtype=bool)
        exact_clean = close
        sound_clean = close & within_all
        for j, rep in rechecked.items():
            exact_clean[j] = rep.exact_match
            sound_clean[j] = rep.sound
        exact[clean] = exact_clean
        sound[clean] = sound_clean

        reports, errors = self._scalar_fallback_rows(
            columns, fallback, sound, exact, max_dist
        )
        clean_pos = {int(row): j for j, row in enumerate(clean)}

        def materialize(i: int) -> WitnessReport:
            rep = reports.get(i)
            if rep is None:
                rep = rechecked.get(clean_pos[i])
            if rep is None:
                # dd values never reach a report: lazy rows materialize
                # through the scalar reference, like the sharded path.
                rep = self._scalar_report(columns, i)
            return rep

        return BatchWitnessReport(
            self.definition,
            n_rows,
            sound,
            exact,
            errors,
            materialize,
            max_dist,
            dict(self._bounds),
            fallback_rows=int(fallback.size),
            exact_backend=self.exact_backend,
        )

    def _dist_screen_eft(self, orig_tree, new_tree, m: int,
                         recheck: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Float64 RP-distance approximations for one parameter's leaves.

        Returns ``(d_max, noise)``: the per-row max over leaf distances
        as float64 (error ~1e-16·d + 1e-30: the dd ratio is exact to
        ~32 digits and ``log1p`` adds one float rounding), plus a mask
        of rows holding a noise-floor leaf.  Rows the screen cannot
        decide at all are flagged into ``recheck``: sign flips or
        vanished leaves (where the exact metric jumps to INF) and
        ratios outside float range.  A targeted leaf whose dd distance
        reads below 1e-28 is different — down there the *reference*
        value is dominated by the 50-digit evaluator's own rounding
        noise (~1e-50·depth, e.g. a witness formula that happens to be
        exact in binary), which dd cannot predict; only the scalar
        rerun can reproduce those Decimal bits.  But such a leaf's true
        distance is provably ≤ ~1.1e-28, so it can only influence the
        reported output when the param's bound or screened max is
        itself at the noise floor.  Those rows are returned in
        ``noise`` and the caller defers the (expensive) recheck until
        one of the ≤1e-27 comparisons actually bites — on deep
        programs, some leaf's witness formula is exact in binary on
        most rows, and eagerly rechecking them forfeits the batch win.
        Leaves the backward sweep never targeted (``nw is o``)
        contribute an exact 0 in both backends, matching the scalar
        path's ``ln(x/x)``.
        """
        orig_leaves = _tree_leaves(orig_tree, [])
        new_leaves = _tree_leaves(new_tree, [])
        d_max = np.zeros(m)
        noise = np.zeros(m, dtype=bool)
        for o, nw in zip(orig_leaves, new_leaves):
            if nw is o:
                continue  # untargeted leaf: d = |ln(x/x)| = 0 exactly
            nd = eft.as_dd(nw)
            bad = (o == 0.0) | eft.is_zero(nd) | (
                (o > 0.0) != eft.sign_positive(nd)
            )
            ratio = eft.dd_div(eft.from_float(o), nd)
            gap = eft.dd_add(ratio, eft.from_float(np.full(m, -1.0)))
            d = np.abs(np.log1p(gap.hi))
            undecided = bad | ~np.isfinite(d) | (np.abs(ratio.hi) > 1e300)
            tiny = ~undecided & (d < 1e-28)
            recheck |= undecided
            noise |= tiny
            d = np.where(undecided | tiny, 0.0, d)
            d_max = np.maximum(d_max, d)
        return d_max, noise

    # -- phase kernels -----------------------------------------------------

    def _forward_approx(self, ops, vals: List, risky: np.ndarray,
                        active: np.ndarray) -> None:
        """Phase 1: the approximate semantics, one array op at a time.

        ``active`` marks the rows this (possibly nested-region) op list
        is live on; risk flags and per-row divergences only ever apply
        to active rows, so branch-untaken garbage stays inert.
        """
        pbits = self.precision_bits
        stochastic = self.rounding == "stochastic"
        n = risky.shape[0]
        for op in ops:
            code = op.code
            if L.ADD <= code <= L.DMUL:
                a, b = vals[op.a], vals[op.b]
                if code == L.DIV:
                    # Zero divisors produce inr () on the scalar path;
                    # divert those rows rather than modelling them.
                    risky |= active & (b == 0.0)
                if stochastic:
                    r = self._stochastic_binary(code, a, b, active, risky)
                else:
                    with np.errstate(all="ignore"):
                        if code == L.ADD:
                            r = a + b
                        elif code == L.SUB:
                            r = a - b
                        elif code == L.DIV:
                            r = a / b
                        else:  # MUL / DMUL
                            r = a * b
                    if pbits < 53:
                        r = _round_array(r, pbits)
                risky |= active & ((r == 0.0) | ~np.isfinite(r))
                if code == L.DIV:
                    vals[op.dest] = _BSum(b != 0.0, r, _BUNIT)
                else:
                    vals[op.dest] = r
            elif code == L.DVAR or code == L.BANG:
                vals[op.dest] = vals[op.a]
            elif code == L.PAIR:
                vals[op.dest] = _BPair(vals[op.a], vals[op.b])
            elif code == L.FST:
                vals[op.dest] = vals[op.a].left
            elif code == L.SND:
                vals[op.dest] = vals[op.a].right
            elif code == L.RND:
                r = vals[op.a]
                if not stochastic and pbits < 53:
                    r = _round_array(r, pbits)
                    risky |= active & ((r == 0.0) | ~np.isfinite(r))
                # Stochastic rnd is the identity on values that are
                # already binary64 (the exact value ties the nearest
                # float, so no randomized decision is ever taken).
                vals[op.dest] = r
            elif code == L.CONST:
                vals[op.dest] = np.full(n, float(op.aux))
            elif code == L.UNIT:
                vals[op.dest] = _BUNIT
            elif code == L.INL:
                vals[op.dest] = _BSum(np.ones(n, dtype=bool), vals[op.a], None)
            elif code == L.INR:
                vals[op.dest] = _BSum(np.zeros(n, dtype=bool), None, vals[op.a])
            elif code == L.CASE:
                scrut = vals[op.a]
                if not isinstance(scrut, _BSum):
                    raise _Unvectorizable("case scrutinee is not a batched sum")
                left_r, right_r = op.aux
                mask = scrut.mask
                left_val = right_val = None
                if scrut.left is not None:
                    vals[left_r.payload] = scrut.left
                    self._forward_approx(left_r.ops, vals, risky, active & mask)
                    left_val = vals[left_r.result]
                elif bool((active & mask).any()):
                    raise _Unvectorizable("inl row without an inl payload")
                if scrut.right is not None:
                    vals[right_r.payload] = scrut.right
                    self._forward_approx(right_r.ops, vals, risky, active & ~mask)
                    right_val = vals[right_r.result]
                elif bool((active & ~mask).any()):
                    raise _Unvectorizable("inr row without an inr payload")
                if left_val is None and right_val is None:
                    raise _Unvectorizable("case with no evaluable branch")
                vals[op.dest] = _merge_masked(mask, left_val, right_val)
            else:  # pragma: no cover - CALL is rewritten away or unvectorized
                raise _Unvectorizable(f"opcode {code} is not vectorizable")

    def _stochastic_binary(self, code: int, a, b, active: np.ndarray,
                           risky: np.ndarray) -> np.ndarray:
        """Per-row replay of :meth:`_Interp._binary_stochastic`.

        Each rounding decision is a pure function of (seed, op name,
        operand bit patterns) — the same ``random.Random`` keying the
        scalar interpreter uses — so the stream reproduces bit-for-bit
        per row regardless of batching.  Rows with non-finite operands
        or zero divisors are flagged risky and certified scalar.
        """
        op_label = str(L.CODE_TO_PRIM[code])
        seed_s = str(self.seed)
        n = active.shape[0]
        out = np.full(n, np.nan)
        with decimal.localcontext() as ctx:
            ctx.prec = self.precision
            for i in np.flatnonzero(active):
                x = float(a[i])
                y = float(b[i])
                if not (math.isfinite(x) and math.isfinite(y)):
                    risky[i] = True
                    continue
                dx, dy = Decimal(x), Decimal(y)
                if code == L.ADD:
                    exact = dx + dy
                elif code == L.SUB:
                    exact = dx - dy
                elif code == L.DIV:
                    if dy == 0:
                        risky[i] = True
                        continue
                    exact = dx / dy
                else:  # MUL / DMUL
                    exact = dx * dy
                rng = random.Random("\x1f".join([seed_s, op_label, x.hex(), y.hex()]))
                out[i] = stochastic_round(exact, rng)
        return out

    def _backward(self, ops, fsel, cvt, targets: List, arith) -> None:
        """The Appendix C witness formulas, one array expression per op.

        ``arith`` supplies the exact-arithmetic kernels — Decimal object
        arrays under the 50-digit backward context (:class:`_DecArith`,
        the reference) or dd float pairs (:class:`_EftArith`, the
        screen) — and ``cvt`` converts a slot's forward floats into that
        representation.  Operand values and the op order inside each
        formula match :mod:`repro.semantics.primitives` exactly.
        Sign/zero domain analysis is unnecessary here: rows whose
        forward values vanish or overflow were diverted to the scalar
        path, and on the remaining rows the backward targets provably
        keep the forward signs.  ``case`` regions recurse through the
        *taken* branch only — screened rows all share one branch tag,
        which the sweep verifies.
        """
        producer = {}
        for op in walk_ops(ops):
            producer[op.dest] = op.code
        self._backward_sweep(ops, fsel, cvt, targets, arith, producer)

    def _backward_sweep(self, ops, fsel, cvt, targets: List, arith,
                        producer: Dict[int, int]) -> None:
        for op in reversed(ops):
            code = op.code
            dest = op.dest
            if L.ADD <= code <= L.DMUL:
                if code == L.DIV:
                    t = _get_b(targets, fsel, dest)
                    if not isinstance(t, _BSum):
                        raise _Unvectorizable("div target is not a batched sum")
                    if not _mask_all(t.mask) or t.left is None:
                        # Scalar: "div backward: finite quotient vs. inr
                        # target".
                        raise _Unvectorizable("div target carries inr rows")
                    targets[op.a], targets[op.b] = arith.div_backward(
                        cvt(op.a), cvt(op.b), arith.ensure(t.left)
                    )
                    continue
                x1, x2 = cvt(op.a), cvt(op.b)
                x3 = arith.ensure(_get_b(targets, fsel, dest))
                if code == L.ADD:
                    targets[op.a], targets[op.b] = arith.add_backward(x1, x2, x3)
                elif code == L.SUB:
                    targets[op.a], targets[op.b] = arith.sub_backward(x1, x2, x3)
                elif code == L.MUL:
                    targets[op.a], targets[op.b] = arith.mul_backward(x1, x2, x3)
                else:  # DMUL: all error onto the linear right operand
                    # The discrete left operand's target is x1 itself; when
                    # it is a plain discrete-variable read, the identity
                    # check is true by construction — skip assigning so the
                    # verify below has nothing to do.
                    if producer.get(op.a) != L.DVAR:
                        targets[op.a] = x1
                    targets[op.b] = arith.dmul_backward(x1, x3)
            elif code == L.DVAR:
                t = targets[dest]
                if t is not None:
                    arith.verify_discrete(op.aux, fsel(dest), t)
            elif code == L.BANG or code == L.RND:
                targets[op.a] = _get_b(targets, fsel, dest)
            elif code == L.PAIR:
                t = _get_b(targets, fsel, dest)
                targets[op.a] = t.left
                targets[op.b] = t.right
            elif code == L.FST or code == L.SND:
                partial = targets[op.a]
                if not isinstance(partial, _BPartial):
                    partial = _BPartial()
                    targets[op.a] = partial
                component = _get_b(targets, fsel, dest)
                if code == L.FST:
                    partial.left = component
                else:
                    partial.right = component
            elif code == L.INL or code == L.INR:
                t = _get_b(targets, fsel, dest)
                if not isinstance(t, _BSum):
                    raise _Unvectorizable("injection target is not a batched sum")
                if code == L.INL:
                    if not _mask_all(t.mask) or t.left is None:
                        # The scalar path raises a per-row LensDomainError
                        # here ("inl value vs. non-inl target"); let it.
                        raise _Unvectorizable("inl value vs. non-inl target rows")
                    targets[op.a] = t.left
                else:
                    if bool(t.mask.any()) or t.right is None:
                        raise _Unvectorizable("inr value vs. non-inr target rows")
                    targets[op.a] = t.right
            elif code == L.CASE:
                fwd = fsel(op.a)
                if not isinstance(fwd, _BSum):
                    raise _Unvectorizable("case scrutinee is not a batched sum")
                mask = fwd.mask
                if _mask_all(mask):
                    region, took_inl = op.aux[0], True
                elif not bool(mask.any()):
                    region, took_inl = op.aux[1], False
                else:
                    raise _Unvectorizable("mixed case branch tags on screened rows")
                targets[region.result] = _get_b(targets, fsel, dest)
                self._backward_sweep(region.ops, fsel, cvt, targets, arith,
                                     producer)
                payload_t = _get_b(targets, fsel, region.payload)
                targets[op.a] = (
                    _BSum(mask, payload_t, None)
                    if took_inl
                    else _BSum(mask, None, payload_t)
                )
            # UNIT / CONST: nothing flows backward.

    def _ideal_dec(self, ops, vals: List, n: int,
                   dec_memo: Dict[int, np.ndarray]) -> None:
        prec = self.precision

        def lift(v):
            if isinstance(v, np.ndarray) and v.dtype != object:
                r = dec_memo.get(id(v))
                if r is None:
                    r = _to_dec(v)
                    dec_memo[id(v)] = r
                return r
            return v

        for op in ops:
            code = op.code
            if L.ADD <= code <= L.DMUL:
                with decimal.localcontext() as ctx:
                    ctx.prec = prec
                    # Operand conversion is exact (cf. to_decimal), so
                    # doing it lazily here matches the scalar ⇓_id bits
                    # — and memoizing by array identity converts each
                    # pass-through leaf at most once, however many ops
                    # consume it.
                    a, b = lift(vals[op.a]), lift(vals[op.b])
                    if code == L.ADD:
                        vals[op.dest] = a + b
                    elif code == L.SUB:
                        vals[op.dest] = a - b
                    elif code == L.DIV:
                        if bool(np.asarray(b == _DEC_ZERO, dtype=bool).any()):
                            # ⇓_id maps a zero divisor to inr (); screened
                            # rows can't reach it, so don't model it.
                            raise _Unvectorizable("ideal division by zero")
                        vals[op.dest] = _BSum(
                            np.ones(n, dtype=bool), a / b, _BUNIT
                        )
                    else:  # MUL / DMUL
                        vals[op.dest] = a * b
            elif code in (L.DVAR, L.BANG, L.RND):
                vals[op.dest] = vals[op.a]  # rnd is the identity in ⇓_id
            elif code == L.PAIR:
                vals[op.dest] = _BPair(vals[op.a], vals[op.b])
            elif code == L.FST:
                vals[op.dest] = vals[op.a].left
            elif code == L.SND:
                vals[op.dest] = vals[op.a].right
            elif code == L.CONST:
                vals[op.dest] = np.full(n, Decimal(op.aux), dtype=object)
            elif code == L.UNIT:
                vals[op.dest] = _BUNIT
            elif code == L.INL:
                vals[op.dest] = _BSum(np.ones(n, dtype=bool), vals[op.a], None)
            elif code == L.INR:
                vals[op.dest] = _BSum(np.zeros(n, dtype=bool), None, vals[op.a])
            elif code == L.CASE:
                scrut = vals[op.a]
                if not isinstance(scrut, _BSum):
                    raise _Unvectorizable("case scrutinee is not a batched sum")
                if _mask_all(scrut.mask) and scrut.left is not None:
                    region, payload = op.aux[0], scrut.left
                elif not bool(scrut.mask.any()) and scrut.right is not None:
                    region, payload = op.aux[1], scrut.right
                else:
                    raise _Unvectorizable("mixed case branch tags on screened rows")
                vals[region.payload] = payload
                self._ideal_dec(region.ops, vals, n, dec_memo)
                vals[op.dest] = vals[region.result]
            else:  # pragma: no cover - CALL is rewritten away or unvectorized
                raise _Unvectorizable(f"opcode {code} is not vectorizable")

    def _ideal_eft(self, ops, vals: List, n: int, arith: "_EftArith") -> None:
        """Phase 3 on dd arrays: mirrors :meth:`_ideal_dec` op for op.

        dd addition/multiplication carry ~106 bits; against the
        50-digit reference the results agree to ~32 digits, which the
        phase-4 screens' margins absorb.  Cases only Decimal evaluates
        faithfully — a zero divisor on a non-suspect row, a literal dd
        cannot represent exactly — raise :class:`_EftUnsupported`.
        """
        for op in ops:
            code = op.code
            if L.ADD <= code <= L.DMUL:
                a, b = eft.as_dd(vals[op.a]), eft.as_dd(vals[op.b])
                if code == L.ADD:
                    vals[op.dest] = arith.add(a, b)
                elif code == L.SUB:
                    vals[op.dest] = arith.sub(a, b)
                elif code == L.DIV:
                    if bool((eft.is_zero(b) & ~arith.suspect).any()):
                        # ⇓_id maps a zero divisor to inr (); the Decimal
                        # sweep raises _Unvectorizable here — defer.
                        raise _EftUnsupported("ideal division by dd zero")
                    vals[op.dest] = _BSum(
                        np.ones(n, dtype=bool), arith.div(a, b), _BUNIT
                    )
                else:  # MUL / DMUL
                    vals[op.dest] = arith.mul(a, b)
            elif code in (L.DVAR, L.BANG, L.RND):
                vals[op.dest] = vals[op.a]  # rnd is the identity in ⇓_id
            elif code == L.PAIR:
                vals[op.dest] = _BPair(vals[op.a], vals[op.b])
            elif code == L.FST:
                vals[op.dest] = vals[op.a].left
            elif code == L.SND:
                vals[op.dest] = vals[op.a].right
            elif code == L.CONST:
                c = float(op.aux)
                if Decimal(op.aux) != Decimal(c):
                    # The ideal semantics evaluates the literal as an
                    # exact Decimal; dd can only hold binary64 values.
                    raise _EftUnsupported("non-binary ideal constant")
                vals[op.dest] = eft.from_float(np.full(n, c))
            elif code == L.UNIT:
                vals[op.dest] = _BUNIT
            elif code == L.INL:
                vals[op.dest] = _BSum(np.ones(n, dtype=bool), vals[op.a], None)
            elif code == L.INR:
                vals[op.dest] = _BSum(np.zeros(n, dtype=bool), None, vals[op.a])
            elif code == L.CASE:
                scrut = vals[op.a]
                if not isinstance(scrut, _BSum):
                    raise _Unvectorizable("case scrutinee is not a batched sum")
                if _mask_all(scrut.mask) and scrut.left is not None:
                    region, payload = op.aux[0], scrut.left
                elif not bool(scrut.mask.any()) and scrut.right is not None:
                    region, payload = op.aux[1], scrut.right
                else:
                    raise _Unvectorizable("mixed case branch tags on screened rows")
                vals[region.payload] = payload
                self._ideal_eft(region.ops, vals, n, arith)
                vals[op.dest] = vals[region.result]
            else:  # pragma: no cover - CALL is rewritten away or unvectorized
                raise _Unvectorizable(f"opcode {code} is not vectorizable")

    def _param_distances(self, fsel_tree, mixed_tree, dec_orig_tree,
                         dec_new_tree, n: int, dec_leaf):
        """Vectorized ``type_distance`` for plain (slack-0) value trees.

        For a zero-slack tensor tree the distance is the max over leaf RP
        distances, and only that max is reported, so exact 60-digit
        ``ln`` evaluation is needed only for the leaves that can attain
        it.  A float64 approximation (absolute error ~4e-16, vastly
        inside the 1e-3-relative + 1e-15-absolute candidate band) screens
        the leaves; the reported Decimal max is then computed with the
        exact scalar formula over the candidates, so it is bitwise equal
        to the scalar path's ``type_distance``.  Leaves the backward
        sweep never perturbed contribute an exact 0 (``ln(x/x)``).
        """
        orig_leaves = _tree_leaves(fsel_tree, [])
        new_leaves = _tree_leaves(mixed_tree, [])
        dec_orig = _tree_leaves(dec_orig_tree, [])
        dec_new = _tree_leaves(dec_new_tree, [])
        k = len(orig_leaves)
        out = np.full(n, _DEC_ZERO, dtype=object)
        approx = np.zeros((k, n))
        anomalous = np.zeros((k, n), dtype=bool)
        perturbed_leaf = np.zeros(k, dtype=bool)
        for j in range(k):
            o, nw = orig_leaves[j], new_leaves[j]
            if nw is o:
                continue  # untargeted leaf: d = |ln(x/x)| = 0 exactly
            perturbed_leaf[j] = True
            nf = nw.astype(np.float64)
            bad = (o == 0.0) | (nf == 0.0) | ((o > 0.0) != (nf > 0.0))
            do, dn = dec_orig[j], dec_new[j]
            if dn.dtype != object:
                # A float perturbed leaf (e.g. rnd's backward map hands
                # the rounded approximant through under reduced
                # precision): convert exactly, like the scalar
                # to_decimal, before the Decimal screening arithmetic.
                # Stored back so the exact candidate pass below sees
                # Decimals too; conversion goes through the shared
                # id-keyed memo, so a leaf the other phases already
                # converted is not converted again.
                dn = dec_new[j] = dec_leaf(dn)
            # Perturbations are relative ~1e-16..1e-13 — far below what a
            # float ratio can resolve.  A 12-digit Decimal difference
            # captures them exactly enough for screening (~1e-11 relative
            # error), at a tenth the cost of the 60-digit exact ln.
            with decimal.localcontext() as ctx:
                ctx.prec = 12
                if bad.any():
                    dn = np.where(bad, _DEC_ONE, dn)
                    do = np.where(bad, _DEC_ONE, do)
                delta = (do - dn) / dn
            with np.errstate(all="ignore"):
                a = np.abs(np.log1p(delta.astype(np.float64)))
            ok = np.isfinite(a) & ~bad
            approx[j] = np.where(ok, a, 0.0)
            anomalous[j] = ~ok
        if not perturbed_leaf.any():
            return out
        max_approx = approx.max(axis=0)
        band = 1e-300 + 1e-6 * max_approx
        candidates = (approx >= (max_approx - band)[None, :]) & perturbed_leaf[
            :, None
        ]
        candidates |= anomalous
        for j in np.flatnonzero(candidates.any(axis=1)):
            do, dn = dec_orig[j], dec_new[j]
            for i in np.flatnonzero(candidates[j]):
                d = _rp_exact(do[i], dn[i])
                if d > out[i]:
                    out[i] = d
        return out

    # -- misc --------------------------------------------------------------


class _DecArith:
    """Backward/ideal kernels on Decimal object arrays (the reference).

    Formula bodies are verbatim from the pre-refactor sweep: expression
    order and working precision match
    :mod:`repro.semantics.primitives`, so results are bitwise equal to
    the scalar path.
    """

    def __init__(self, ambient: decimal.Context) -> None:
        self.ambient = ambient

    @staticmethod
    def ensure(tree):
        return _ensure_dec(tree)

    def add_backward(self, x1, x2, x3):
        s = x1 + x2
        return x3 * x1 / s, x3 * x2 / s

    def sub_backward(self, x1, x2, x3):
        d = x1 - x2
        return x3 * x1 / d, x3 * x2 / d

    def mul_backward(self, x1, x2, x3):
        p = x1 * x2
        scale = _sqrt(x3 / p)
        return x1 * scale, x2 * scale

    def dmul_backward(self, x1, x3):
        return x3 / x1

    def div_backward(self, x1, x2, x3):
        """Appendix C Div: signed square-root witnesses, as array ops.

        The target lives in ``num + unit``; screened rows all divided
        successfully, so a well-formed target is an all-``inl`` batched
        sum whose payload is the quotient target (the sweep unwraps it
        before calling here).  Operand signs carry to the witnesses
        exactly as in ``div_backward``.
        """
        magnitude1 = _sqrt(np.abs(x1 * x2 * x3))
        magnitude2 = _sqrt(np.abs(x1 * x2 / x3))
        pos1 = np.asarray(x1 > _DEC_ZERO, dtype=bool)
        pos2 = np.asarray(x2 > _DEC_ZERO, dtype=bool)
        return (
            np.where(pos1, magnitude1, -magnitude1),
            np.where(pos2, magnitude2, -magnitude2),
        )

    def verify_discrete(self, name: str, current, target) -> None:
        """Discrete variables absorb no error (per-element check).

        Mirrors the scalar interpreter's ``values_close`` test, run under
        the ambient context the scalar path would have used.
        """
        if target is current:
            return
        leaves_cur = _tree_leaves(current, [])
        leaves_tgt = _tree_leaves(_materialize_b(target, current), [])
        with decimal.localcontext(self.ambient):
            for cur, tgt in zip(leaves_cur, leaves_tgt):
                if cur is tgt:
                    continue
                for c, t in zip(cur, tgt):
                    if c is not t and not values_close(VNum(c), VNum(t)):
                        raise LensDomainError(
                            f"discrete variable {name!r} cannot absorb "
                            f"error: {VNum(c)!r} vs target {VNum(t)!r}"
                        )


class _EftArith:
    """Backward/ideal kernels on dd (hi/lo float64 pair) arrays.

    Maintains a per-row ``suspect`` mask: rows where a kernel result
    left the range on which the dd soundness arguments hold (overflow,
    underflow, non-finite, or a product/quotient that underflowed to an
    exact zero Decimal would have kept nonzero).  Suspect rows may carry
    garbage dd values from then on — the caller settles them through
    the per-row scalar reference and never reads their dd results.

    Conditions the *whole* Decimal batch would have refused — an exact
    zero divisor (DivisionByZero) or a negative radicand
    (InvalidOperation) on a non-suspect row — raise
    :class:`_EftUnsupported` instead, so the engine reruns the batch on
    the Decimal path and inherits its exact behavior (including its
    batch-wide scalar fallback and its error messages).
    """

    def __init__(self, m: int) -> None:
        self.suspect = np.zeros(m, dtype=bool)

    @staticmethod
    def ensure(tree):
        return _map_tree(tree, eft.as_dd)

    def _guard(self, x: DD) -> DD:
        self.suspect |= eft.range_suspect(x)
        return x

    def add(self, x: DD, y: DD) -> DD:
        return self._guard(eft.dd_add(x, y))

    def sub(self, x: DD, y: DD) -> DD:
        return self._guard(eft.dd_sub(x, y))

    def mul(self, x: DD, y: DD) -> DD:
        r = eft.dd_mul(x, y)
        # A vanished product of nonzero factors is an underflow artifact
        # — Decimal would keep it nonzero.
        self.suspect |= eft.is_zero(r) & ~eft.is_zero(x) & ~eft.is_zero(y)
        return self._guard(r)

    def div(self, x: DD, y: DD) -> DD:
        if bool((eft.is_zero(y) & ~self.suspect).any()):
            raise _EftUnsupported("exact zero divisor in dd sweep")
        r = eft.dd_div(x, y)
        self.suspect |= eft.is_zero(r) & ~eft.is_zero(x)
        return self._guard(r)

    def sqrt(self, x: DD) -> DD:
        if bool(((x.hi < 0.0) & ~self.suspect).any()):
            raise _EftUnsupported("negative radicand in dd sweep")
        return self._guard(eft.dd_sqrt(x))

    def add_backward(self, x1, x2, x3):
        s = self.add(x1, x2)  # exact: TwoSum of binary64 operands
        return self.div(self.mul(x3, x1), s), self.div(self.mul(x3, x2), s)

    def sub_backward(self, x1, x2, x3):
        d = self.sub(x1, x2)  # exact, like the sum
        return self.div(self.mul(x3, x1), d), self.div(self.mul(x3, x2), d)

    def mul_backward(self, x1, x2, x3):
        p = self.mul(x1, x2)
        scale = self.sqrt(self.div(x3, p))
        return self.mul(x1, scale), self.mul(x2, scale)

    def dmul_backward(self, x1, x3):
        return self.div(x3, x1)

    def div_backward(self, x1, x2, x3):
        """Appendix C Div on dd arrays (sqrt radicands are |...|: safe)."""
        magnitude1 = self.sqrt(eft.dd_abs(self.mul(self.mul(x1, x2), x3)))
        magnitude2 = self.sqrt(eft.dd_abs(self.div(self.mul(x1, x2), x3)))
        pos1 = eft.sign_positive(x1)
        pos2 = eft.sign_positive(x2)
        return (
            eft.where(pos1, magnitude1, eft.dd_neg(magnitude1)),
            eft.where(pos2, magnitude2, eft.dd_neg(magnitude2)),
        )

    def verify_discrete(self, name: str, current, target) -> None:
        """Exact-equality-only discrete verify.

        The reference applies ``values_close`` slack and embeds value
        reprs in its error message; dd reproduces neither, so anything
        short of bitwise equality defers to the Decimal path.
        """
        if target is current:
            return
        leaves_cur = _tree_leaves(current, [])
        leaves_tgt = _tree_leaves(_materialize_b(target, current), [])
        for cur, tgt in zip(leaves_cur, leaves_tgt):
            if cur is tgt:
                continue
            if isinstance(tgt, DD):
                ok = (tgt.hi == cur) & (tgt.lo == 0.0)
            else:
                ok = np.asarray(tgt) == cur
            if not bool(np.all(ok)):
                raise _EftUnsupported(
                    "discrete verify needs the Decimal path"
                )


#: Screen thresholds for the EFT closeness verdict.  ``values_close``
#: is a 1e-30-relative test on exactly-converted operands; 50-digit
#: Decimal noise sits at ~1e-50·cond and dd noise at ~1e-32·cond, so a
#: dd relative gap below CLOSE_SURE is ~1e18 away from flipping the
#: reference verdict, one above FAR_SURE is equally surely a genuine
#: Property-2 failure, and only the band between is rechecked.
_CLOSE_SURE = 1e-26
_FAR_SURE = 1e-8


def _close_screen_eft(ideal, approx, close: np.ndarray, recheck: np.ndarray,
                      active: np.ndarray) -> None:
    """Vectorized screen of row-wise ``values_close`` for the dd path.

    ``close`` accumulates definite verdicts (``&=``); rows whose dd gap
    falls between the sure thresholds are flagged in ``recheck`` and
    left formally close — the scalar reference overrides them.
    Structure mirrors :func:`_close_rows`.
    """
    if isinstance(approx, _BPair) and isinstance(ideal, _BPair):
        _close_screen_eft(ideal.left, approx.left, close, recheck, active)
        _close_screen_eft(ideal.right, approx.right, close, recheck, active)
        return
    if isinstance(approx, _BSum) and isinstance(ideal, _BSum):
        am, im = approx.mask, ideal.mask
        close &= ~active | ~(am ^ im)
        both_inl = active & am & im
        both_inr = active & ~am & ~im
        if bool(both_inl.any()):
            if ideal.left is None or approx.left is None:
                close &= ~both_inl
            else:
                _close_screen_eft(ideal.left, approx.left, close, recheck,
                                  both_inl)
        if bool(both_inr.any()):
            if ideal.right is None or approx.right is None:
                close &= ~both_inr
            else:
                _close_screen_eft(ideal.right, approx.right, close, recheck,
                                  both_inr)
        return
    if approx is _BUNIT and ideal is _BUNIT:
        return
    if isinstance(approx, np.ndarray) and isinstance(ideal, (np.ndarray, DD)):
        di = eft.as_dd(ideal)
        gap = eft.dd_sub(di, eft.from_float(approx))
        denom = np.maximum(np.abs(di.hi), np.abs(approx))
        r = np.abs(gap.hi) / denom
        r = np.where(denom == 0.0, 0.0, r)  # both exactly zero: close
        sure_close = r <= _CLOSE_SURE
        band = active & ~sure_close & ~(r >= _FAR_SURE)
        band |= active & ~np.isfinite(r)
        recheck |= band
        close &= ~active | sure_close | band
        return
    close &= ~active  # structural mismatch: not close on any live row


def _close_rows(ideal, approx, out: np.ndarray, active: np.ndarray) -> None:
    """Row-wise ``values_close`` over batched value trees (``&=`` into out).

    ``active`` restricts which rows a subtree is live on (sums narrow it
    to the rows whose tags select each payload).
    """
    if isinstance(approx, _BPair) and isinstance(ideal, _BPair):
        _close_rows(ideal.left, approx.left, out, active)
        _close_rows(ideal.right, approx.right, out, active)
        return
    if isinstance(approx, _BSum) and isinstance(ideal, _BSum):
        am, im = approx.mask, ideal.mask
        out &= ~active | ~(am ^ im)
        both_inl = active & am & im
        both_inr = active & ~am & ~im
        if bool(both_inl.any()):
            if ideal.left is None or approx.left is None:
                out &= ~both_inl
            else:
                _close_rows(ideal.left, approx.left, out, both_inl)
        if bool(both_inr.any()):
            if ideal.right is None or approx.right is None:
                out &= ~both_inr
            else:
                _close_rows(ideal.right, approx.right, out, both_inr)
        return
    if approx is _BUNIT and ideal is _BUNIT:
        return
    if isinstance(approx, np.ndarray) and isinstance(ideal, np.ndarray):
        for j in np.flatnonzero(active & out):
            if not values_close(VNum(ideal[j]), VNum(approx[j])):
                out[j] = False
        return
    out &= ~active  # structural mismatch: not close on any live row


def _slot_of(ir, name: str) -> int:
    for p in ir.params:
        if p.name == name:
            return p.slot
    raise KeyError(name)


def _get_b(targets: List, fsel, slot: int):
    t = targets[slot]
    if t is None:
        return fsel(slot)
    if isinstance(t, _BPartial):
        return _materialize_b(t, fsel(slot))
    return t


def _dec_array(a: np.ndarray) -> np.ndarray:
    """Exact float->Decimal conversion of one leaf array."""
    return a if a.dtype == object else _to_dec(a)


def _ensure_dec(tree):
    """Exact float->Decimal conversion of any float leaves (cf. as_decimal)."""
    return _map_tree(tree, _dec_array)


def _materialize_b(t, fallback):
    if t is None:
        return fallback
    if isinstance(t, _BPartial):
        return _BPair(
            _materialize_b(t.left, fallback.left),
            _materialize_b(t.right, fallback.right),
        )
    return t


def _materialize_mixed(t, float_fallback):
    """Materialize a target tree, keeping untargeted leaves as floats."""
    if t is None:
        return float_fallback
    if isinstance(t, _BPartial):
        return _BPair(
            _materialize_mixed(t.left, float_fallback.left),
            _materialize_mixed(t.right, float_fallback.right),
        )
    return t


def _round_array(x: np.ndarray, precision_bits: int) -> np.ndarray:
    """Vectorized :func:`repro.lam_s.eval.round_to_precision`."""
    mantissa, exponent = np.frexp(x)
    scaled = mantissa * float(1 << precision_bits)
    rounded = np.rint(scaled)  # round-half-even, like Python's round()
    out = np.ldexp(rounded, exponent - precision_bits)
    special = (x == 0.0) | ~np.isfinite(x)
    if special.any():
        out = np.where(special, x, out)
    return out


def _rp_exact(dx: Decimal, dy: Decimal) -> Decimal:
    """The RP metric (Equation 5) — the scalar formula, verbatim.

    Runs under the caller's 60-digit distance context, like
    :func:`repro.semantics.spaces.rp_distance`.
    """
    if dx == 0 and dy == 0:
        return _DEC_ZERO
    if dx == 0 or dy == 0 or (dx > 0) != (dy > 0):
        return INF
    return abs((dx / dy).ln())


def run_witness_batch(
    definition: A.Definition,
    inputs: Mapping[str, Sequence],
    *,
    program: Optional[A.Program] = None,
    u: float = BINARY64_UNIT_ROUNDOFF,
    lens: Optional[BeanLens] = None,
    **engine_options,
) -> BatchWitnessReport:
    """Run the soundness theorem on a whole batch of concrete inputs.

    ``inputs`` maps each parameter to an array of shape ``(N,)`` (scalar
    parameters) or ``(N, k)`` (``vec(k)`` parameters).  The counterpart
    of calling :func:`~repro.semantics.witness.run_witness` in a loop,
    at a fraction of the cost; results are bitwise identical.
    """
    engine = BatchWitnessEngine(
        definition, program, u=u, lens=lens, **engine_options
    )
    return engine.run(inputs)
