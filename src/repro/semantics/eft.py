"""Error-free transformations: double-double NumPy kernels.

The batch witness engine's dominant cost used to be phases 2-3 of
:mod:`repro.semantics.batch` — the backward reverse sweep and the ideal
re-evaluation — executed as per-op ``np.frompyfunc`` dispatch over
object arrays of 50-digit :class:`decimal.Decimal`.  Every element of
every op paid Python-level ``Decimal`` arithmetic.

This module replaces that arithmetic with *error-free transformations*
(EFTs) in the style of Higham, *Accuracy and Stability of Numerical
Algorithms* §4.3, and Ogita–Rump–Oishi's accurate-summation kernels:

* :func:`two_sum` (Knuth) — ``s, e`` with ``s = fl(a + b)`` and
  ``a + b = s + e`` **exactly**, for any two finite doubles;
* :func:`two_prod` (Dekker/Veltkamp) — ``p, e`` with ``p = fl(a * b)``
  and ``a * b = p + e`` **exactly**, provided no over/underflow occurs
  in the splitting (callers guard the range; see
  :func:`range_suspect`);
* double-double (**dd**) arithmetic — a value is an unevaluated sum
  ``hi + lo`` of two ``float64`` arrays with ``|lo| <= ulp(hi)/2``,
  giving ~106 significant bits (~32 decimal digits).  The dd
  add/sub/mul/div/sqrt kernels below carry relative error a few units
  in ``2^-104`` (Li et al., *QD*; Joldes–Muller–Popescu error bounds).

Soundness contract with the batch engine
----------------------------------------

The witness pipeline never *reports* a dd value: every number that
reaches a payload (per-parameter max distances, per-row reports,
ambiguous verdicts) is recomputed by the scalar ``Decimal`` reference
on exactly the rows that need it.  The dd sweeps are a **screen**: they
decide, with ~1e18-wide safety margins, which rows provably match the
Decimal verdicts and which must be rechecked.  For that to be sound the
kernels must satisfy two properties, each argued per kernel below:

1. **exactness where claimed** — ``two_sum``/``two_prod`` are exact
   (error-free) on in-range data, so zero/sign tests on their results
   are decisions about the *real* value, matching ``Decimal`` bit for
   bit;
2. **bounded rounding elsewhere** — every dd kernel's relative error is
   ``O(2^-104)``, at least eighteen orders of magnitude below the
   1e-30 closeness tolerance and the distance-screen bands the batch
   engine uses, so a verdict decided outside those bands cannot be an
   artifact of dd rounding.

Rows where a kernel leaves the range on which these arguments hold —
non-finite intermediates, magnitudes beyond ``OVERFLOW_LIMIT`` or
beneath ``UNDERFLOW_LIMIT`` where Dekker splitting or subnormal
rounding voids the EFT guarantees (``Decimal``'s exponent range is
vastly wider) — must be diverted to the per-row ``Decimal`` reference.
:func:`range_suspect` is that detector; the engine ORs it into its
per-row suspect mask after every kernel application.

All kernels are elementwise over ``float64`` ndarrays and assume the
caller suppresses IEEE warnings (``np.errstate``); out-of-range rows
produce inf/nan garbage that the suspect mask quarantines.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

__all__ = [
    "DD",
    "OVERFLOW_LIMIT",
    "UNDERFLOW_LIMIT",
    "SPLITTER",
    "as_dd",
    "dd_abs",
    "dd_add",
    "dd_div",
    "dd_mul",
    "dd_neg",
    "dd_sqrt",
    "dd_sub",
    "from_float",
    "is_zero",
    "range_suspect",
    "sign_positive",
    "two_prod",
    "two_sum",
    "where",
]

Array = np.ndarray

#: Dekker's splitting constant ``2**27 + 1``: multiplies a double into
#: two 26-bit halves whose product terms are exact.
SPLITTER = 134217729.0

#: Magnitudes above this make Dekker splitting (``x * SPLITTER``) or
#: three-factor witness products liable to overflow ``float64`` even
#: though ``Decimal`` sails through; such rows are suspect.
OVERFLOW_LIMIT = 1e280

#: Nonzero magnitudes below this approach the subnormal range, where
#: ``two_sum``/``two_prod`` exactness claims fail (the error term
#: itself can be inexact); such rows are suspect.
UNDERFLOW_LIMIT = 1e-280


class DD:
    """A batched double-double: elementwise unevaluated sums ``hi + lo``.

    Kernel outputs are normalized (``hi = fl(hi + lo)``), so ``hi``
    alone is the correctly-rounded double of the represented value —
    zero/sign/comparison screens read ``hi`` (and ``lo`` for exact-zero
    tests, where both components must vanish).
    """

    __slots__ = ("hi", "lo")

    def __init__(self, hi: Array, lo: Array) -> None:
        self.hi = hi
        self.lo = lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DD({self.hi!r}, {self.lo!r})"


def from_float(a: Array) -> DD:
    """Exact embedding of a float64 array: ``a == a + 0`` identically."""
    return DD(np.asarray(a, dtype=np.float64), np.zeros_like(a, dtype=np.float64))


def as_dd(x: Union[DD, Array]) -> DD:
    """Coerce a float leaf array to dd (exact); pass dd through."""
    if isinstance(x, DD):
        return x
    return from_float(x)


# --------------------------------------------------------------------------
# The error-free transformations
# --------------------------------------------------------------------------


def two_sum(a: Array, b: Array) -> Tuple[Array, Array]:
    """Knuth's TwoSum: ``s = fl(a+b)``, ``e`` with ``a + b = s + e`` exactly.

    Soundness: for any two finite doubles whose rounded sum does not
    overflow, the rounding error of IEEE-754 addition is itself a
    double, and Knuth's 6-flop branch-free recovery computes it exactly
    (Higham §4.3, Thm 4.6; no magnitude ordering required).  Overflow
    of ``s`` makes ``e`` nan — caught by :func:`range_suspect`.
    """
    s = a + b
    v = s - a
    e = (a - (s - v)) + (b - v)
    return s, e


def _fast_two_sum(a: Array, b: Array) -> Tuple[Array, Array]:
    """Dekker's FastTwoSum: exact when ``|a| >= |b|`` elementwise.

    Soundness: with the magnitude precondition the 3-flop recovery
    ``e = b - (s - a)`` is the exact rounding error (Dekker 1971).  The
    dd kernels below only call it on ``(hi, err)`` pairs whose first
    component dominates by construction (the result of a prior rounding
    step), so the precondition holds wherever the pair is normalized.
    """
    s = a + b
    e = b - (s - a)
    return s, e


def _split(a: Array) -> Tuple[Array, Array]:
    """Veltkamp split: ``a = x + y`` exactly, each half on 26 bits.

    Soundness: exact for ``|a| < 2**996`` (Dekker); beyond that the
    ``a * SPLITTER`` product overflows.  :data:`OVERFLOW_LIMIT` keeps
    callers far inside the valid range.
    """
    t = SPLITTER * a
    x = t - (t - a)
    y = a - x
    return x, y


def two_prod(a: Array, b: Array) -> Tuple[Array, Array]:
    """Dekker's TwoProd: ``p = fl(a*b)``, ``e`` with ``a * b = p + e`` exactly.

    Soundness: with both factors split exactly, the four partial
    products are exact in double and their telescoped differences
    recover the rounding error of ``a * b`` exactly (Dekker 1971;
    Higham §4.3) — provided neither the product nor the partials
    over/underflow.  NumPy ships no vectorized fma, so the 17-flop
    Dekker form is used; out-of-range rows are quarantined by
    :func:`range_suspect`, never silently accepted.
    """
    p = a * b
    a_hi, a_lo = _split(a)
    b_hi, b_lo = _split(b)
    e = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
    return p, e


# --------------------------------------------------------------------------
# Double-double arithmetic
# --------------------------------------------------------------------------


def dd_add(x: DD, y: DD) -> DD:
    """dd addition (accurate variant, ~2e-32 relative error).

    Soundness: the leading components combine by exact
    :func:`two_sum`; the error terms join the trailing sum and two
    normalization passes restore ``|lo| <= ulp(hi)/2``.  When both
    operands are pure floats (``lo == 0`` — every first-level witness
    formula), the result is **exact**: it is precisely Knuth's TwoSum,
    so zero/sign screens on such sums are decisions about the real
    value.  In general the relative error is bounded by ``3·2^-106``
    (Joldes–Muller–Popescu, Thm 1 for the accurate add).
    """
    s, e = two_sum(x.hi, y.hi)
    t, f = two_sum(x.lo, y.lo)
    e = e + t
    s, e = _fast_two_sum(s, e)
    e = e + f
    hi, lo = _fast_two_sum(s, e)
    return DD(hi, lo)


def dd_neg(x: DD) -> DD:
    """Exact negation (sign flips are error-free in IEEE-754)."""
    return DD(-x.hi, -x.lo)


def dd_abs(x: DD) -> DD:
    """Exact magnitude: negate where the leading component is negative."""
    neg = x.hi < 0.0
    return DD(np.where(neg, -x.hi, x.hi), np.where(neg, -x.lo, x.lo))


def dd_sub(x: DD, y: DD) -> DD:
    """dd subtraction = addition of the exact negation (same bounds)."""
    return dd_add(x, dd_neg(y))


def dd_mul(x: DD, y: DD) -> DD:
    """dd multiplication, ~2e-32 relative error.

    Soundness: the leading product is an exact :func:`two_prod`; the
    cross terms ``hi·lo`` contribute below ``2^-53`` of the result and
    are added in working precision; one normalization restores the
    invariant.  Relative error ``<= 7·2^-106`` (JMP, Thm 2).  Exactness
    of the *leading* component means a zero ``fl(x.hi * y.hi)`` with
    nonzero factors can only be underflow — flagged suspect, because
    ``Decimal`` would keep a nonzero product there.
    """
    p, e = two_prod(x.hi, y.hi)
    e = e + (x.hi * y.lo + x.lo * y.hi)
    hi, lo = _fast_two_sum(p, e)
    return DD(hi, lo)


def dd_div(x: DD, y: DD) -> DD:
    """dd division by long division, ~3e-32 relative error.

    Soundness: two correction steps against the exact residual
    ``x - q·y`` (each residual computed in dd with the exact
    :func:`dd_mul` leading term) give a quotient accurate to
    ``<= 10·2^-106`` relative (cf. the QD library's accurate division
    and JMP Thm 4).  Division by an exact dd zero is the caller's case
    to handle — the batch engine either proves the divisor nonzero or
    defers the batch to the ``Decimal`` reference — so no zero
    substitution happens here; zero divisors yield inf/nan garbage the
    suspect mask quarantines.
    """
    q1 = x.hi / y.hi
    r = dd_sub(x, dd_mul(from_float(q1), y))
    q2 = r.hi / y.hi
    r = dd_sub(r, dd_mul(from_float(q2), y))
    q3 = r.hi / y.hi
    s, e = _fast_two_sum(q1, q2)
    hi, lo = _fast_two_sum(s, e + q3)
    return DD(hi, lo)


def dd_sqrt(x: DD) -> DD:
    """dd square root (Karp–Markstein refinement), ~3e-32 relative error.

    Soundness: one Newton step on the reciprocal square root, with the
    residual ``x - s²`` formed through the exact :func:`two_prod`
    leading term, doubles the seed's 53-bit accuracy past 106 bits
    (Karp & Markstein 1997).  Exact zeros map to exact zeros.  Negative
    leading components would produce nan — the engine treats any
    negative radicand as a ``Decimal``-path case *before* calling this
    (matching ``Decimal.sqrt``'s InvalidOperation), so nan here only
    arises on rows already quarantined.
    """
    zero = x.hi == 0.0
    # Avoid 1/sqrt(0) = inf poisoning the zero rows: substitute 1.0
    # under the mask, then restore the exact zeros at the end.
    safe_hi = np.where(zero, 1.0, x.hi)
    root = np.sqrt(safe_hi)
    inv = 1.0 / root
    s = root  # 53-bit seed of sqrt(x)
    p, e = two_prod(s, s)
    # residual = x - s*s, in dd (exact leading term)
    residual = dd_sub(DD(np.where(zero, 1.0, x.hi), np.where(zero, 0.0, x.lo)), DD(p, e))
    corr = residual.hi * (inv * 0.5)
    hi, lo = _fast_two_sum(s, corr)
    return DD(np.where(zero, 0.0, hi), np.where(zero, 0.0, lo))


# --------------------------------------------------------------------------
# Screens and guards
# --------------------------------------------------------------------------


def is_zero(x: DD) -> Array:
    """Exact elementwise zero test: both components must vanish.

    A normalized dd is zero iff ``hi`` is zero (the invariant forces
    ``lo`` to zero with it); testing both keeps the screen exact even
    on un-normalized intermediates.
    """
    return np.logical_and(x.hi == 0.0, x.lo == 0.0)


def sign_positive(x: DD) -> Array:
    """Elementwise ``value > 0`` (exact on normalized dd: hi decides,
    lo breaks the tie when hi is zero)."""
    return np.where(x.hi != 0.0, x.hi > 0.0, x.lo > 0.0)


def range_suspect(x: DD) -> Array:
    """Rows where the dd soundness arguments stop holding.

    Flags non-finite components (overflowed kernels, nan garbage),
    magnitudes beyond :data:`OVERFLOW_LIMIT` (subsequent splits or
    three-factor witness products may overflow), and nonzero magnitudes
    beneath :data:`UNDERFLOW_LIMIT` (subnormal territory where the EFT
    error terms are no longer exact).  ``Decimal``'s exponent range
    covers all of these, so flagged rows are handed to the per-row
    ``Decimal`` reference by the engine.
    """
    a = np.abs(x.hi)
    bad = ~np.isfinite(x.hi) | ~np.isfinite(x.lo)
    bad |= a > OVERFLOW_LIMIT
    bad |= (a > 0.0) & (a < UNDERFLOW_LIMIT)
    return bad


def where(mask: Array, left: Union[DD, Array], right: Union[DD, Array]) -> DD:
    """Elementwise row-select between dd values (exact, per component)."""
    dl, dr = as_dd(left), as_dd(right)
    return DD(np.where(mask, dl.hi, dr.hi), np.where(mask, dl.lo, dr.lo))
