"""Sharding batch witness runs across worker processes.

The vectorized :class:`~repro.semantics.batch.BatchWitnessEngine` spends
its time in NumPy array kernels and ``Decimal`` object loops — CPU-bound
pure-Python work the GIL serializes onto one core.
:func:`run_witness_sharded` splits the environment rows into contiguous
shards, certifies each shard in its own ``ProcessPoolExecutor`` worker,
and merges the per-shard results into one
:class:`~repro.semantics.batch.BatchWitnessReport`, row indices intact.

Design points:

* **deterministic shard→row mapping** — shard ``i`` of ``W`` receives
  the contiguous rows ``[bounds[i], bounds[i+1])`` with the first
  ``n_rows % W`` shards one row longer (:func:`shard_bounds`), so the
  merged report's row ``i`` is always input row ``i`` regardless of
  worker scheduling;
* **spawn-safe workers** — the definition and program ASTs are pickled
  once in the parent (on a deep auxiliary stack: benchmark programs
  nest thousands of ``let`` binders, deeper than the default pickler
  recursion allows) and each worker unpickles and **re-lowers the IR
  locally**; nothing relies on forked interpreter state, so the pool
  works under any multiprocessing start method;
* **bit-identical results** — every shard runs the same engine
  configuration on its row slice, and the engine is bitwise equal to
  looping :func:`~repro.semantics.witness.run_witness`; the merged
  verdicts, distances, and captured per-row errors are exactly those of
  a single-process run.  Lazy per-row reports materialize in the parent
  by running the scalar witness on demand (reports cannot cross the
  process boundary — they hold closures over engine state).

``workers=None`` uses ``os.cpu_count()``; with one worker (or one row)
the call degrades to an in-process :func:`run_witness_batch`, so callers
can pass ``--workers`` unconditionally.

Spawn-per-audit is the default; passing ``pool=`` (a
:class:`~repro.semantics.pool.ShardWorkerPool`) dispatches the same
shards to persistent warm workers instead — byte-identical results,
none of the per-audit spawn/pickle/re-lower cost.  Setting
``REPRO_POOL=1`` routes every sharded run through a process-default
pool (how the nightly soak exercises pooled execution).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from decimal import Decimal
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..core import ast_nodes as A
from ..core.deepstack import call_with_deep_stack
from ..core.grades import BINARY64_UNIT_ROUNDOFF
from .batch import BatchWitnessEngine, BatchWitnessReport
from .witness import run_witness

if TYPE_CHECKING:
    from .pool import ShardWorkerPool

__all__ = ["run_witness_sharded", "shard_bounds"]

_DEC_ZERO = Decimal(0)


def shard_bounds(n_rows: int, shards: int) -> List[int]:
    """Contiguous shard boundaries: ``shards + 1`` increasing offsets.

    Rows are balanced to within one: the first ``n_rows % shards``
    shards take ``ceil(n_rows / shards)`` rows, the rest the floor.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    base, extra = divmod(n_rows, shards)
    bounds = [0]
    for i in range(shards):
        bounds.append(bounds[-1] + base + (1 if i < extra else 0))
    return bounds


def _run_shard(blob: bytes, columns: Dict[str, np.ndarray], u: float,
               engine_options: Dict, cache_dir: Optional[str] = None,
               compose: bool = False):
    """Worker body: re-lower the IR locally and certify one row slice.

    Returns a picklable summary — the lazy per-row reports stay behind
    (they close over worker-local engine state).  With ``cache_dir``,
    the worker warm-starts its re-lowering (semantic IR, inlined IR,
    inferred judgments) from the shared on-disk artifact cache the
    parent populated, instead of recomputing them from the AST.  Under
    ``compose`` the execution IR is re-planned locally from composed
    summaries (:func:`repro.semantics.pool._build_engine`) — planning
    is deterministic, so shipping the flag beats shipping the IR.
    """
    if cache_dir:
        from ..service.cache import activate

        activate(cache_dir)
    from .pool import _build_engine

    definition, program = call_with_deep_stack(pickle.loads, blob)
    engine = _build_engine(definition, program, u, engine_options, compose)
    report = engine.run(columns)
    return (
        np.asarray(report.sound),
        np.asarray(report.exact),
        report.errors,
        report.param_max_distance,
        report.fallback_rows,
        report.rows,
    )


def run_witness_sharded(
    definition: A.Definition,
    inputs: Mapping[str, Sequence],
    *,
    program: Optional[A.Program] = None,
    u: float = BINARY64_UNIT_ROUNDOFF,
    workers: Optional[int] = None,
    mp_context: Optional[str] = None,
    cache_dir: Optional[str] = None,
    pool: Optional["ShardWorkerPool"] = None,
    compose: bool = False,
    **engine_options,
) -> BatchWitnessReport:
    """Certify a batch of environments across ``workers`` processes.

    ``inputs`` takes the same shape as
    :func:`~repro.semantics.batch.run_witness_batch`; ``engine_options``
    are the engine's configuration kwargs (``precision``, ``rounding``,
    ``seed``, ``precision_bits``).  A pre-built lens cannot ship to
    worker processes — pass its configuration instead.  ``mp_context``
    selects the multiprocessing start method (default: the platform's);
    the workers are spawn-safe either way.

    ``cache_dir`` names a shared on-disk artifact cache
    (:class:`repro.service.cache.ArtifactCache`): the parent activates
    it before building its engine — persisting the lowered IR, inlined
    IR, and judgments — and every worker warm-starts from it instead of
    re-lowering from the pickled AST.  Results are bitwise identical
    either way; the cache only changes who pays for lowering.

    ``pool`` dispatches the shards to a persistent
    :class:`~repro.semantics.pool.ShardWorkerPool` instead of spawning
    a fresh executor (byte-identical results; repeat audits of a known
    fingerprint skip pickling and re-lowering).  With ``compose=True``
    the execution IR is planned from composed per-definition summaries
    (:func:`repro.compose.engine.compose_execution_ir`) in the parent
    and re-planned deterministically in every worker — payload bytes
    are unchanged vs the non-composed audit.
    """
    if "lens" in engine_options:
        raise ValueError(
            "run_witness_sharded cannot ship a lens to worker processes; "
            "pass the engine configuration (precision, rounding, seed, "
            "precision_bits) instead"
        )
    if cache_dir:
        from ..service.cache import activate

        activate(cache_dir)
    if pool is None and os.environ.get("REPRO_POOL"):
        from .pool import default_pool

        pool = default_pool()
    parent_options = dict(engine_options)
    if compose and program is not None:
        from ..compose.engine import compose_execution_ir, composed_judgments

        composed = composed_judgments(program)
        planned_ir, _execution = compose_execution_ir(
            definition, program, composed.summaries
        )
        parent_options["inlined_ir"] = planned_ir
    engine = BatchWitnessEngine(definition, program, u=u, **parent_options)
    # Pin the parent's resolved exact-arithmetic backend into the
    # options the workers receive: a worker must never re-resolve
    # ``REPRO_EXACT_BACKEND`` (or the default) for itself, so every
    # shard provably runs the same backend as the merged report claims.
    engine_options = dict(engine_options)
    engine_options["exact_backend"] = engine.exact_backend
    columns = engine._columns(inputs)
    n_rows = next(iter(columns.values())).shape[0]
    if workers is None:
        workers = os.cpu_count() or 1
    shards = max(1, min(int(workers), n_rows))
    if pool is not None:
        shards = min(shards, pool.workers)
    if shards <= 1 or n_rows == 0:
        return engine.run(inputs)

    bounds = shard_bounds(n_rows, shards)
    if pool is not None:
        # Persistent warm workers: the pool fingerprints the program,
        # skips the blob for prepared workers, and moves the rows
        # through shared memory.  Same per-shard result shape, so the
        # merge below is shared — and byte-identical — with the
        # spawn-per-audit path.
        results = pool.run_shards(
            definition,
            program,
            columns,
            bounds,
            u=u,
            engine_options=engine_options,
            cache_dir=cache_dir,
            compose=compose,
        )
    else:
        # Pickle the ASTs once, on a deep stack (let-chains nest past
        # the default pickler recursion depth); workers get opaque
        # bytes.
        blob = call_with_deep_stack(
            pickle.dumps, (definition, program), pickle.HIGHEST_PROTOCOL
        )
        ctx = (
            multiprocessing.get_context(mp_context)
            if isinstance(mp_context, str)
            else mp_context
        )
        with ProcessPoolExecutor(max_workers=shards, mp_context=ctx) as spawned:
            futures = [
                spawned.submit(
                    _run_shard,
                    blob,
                    {
                        name: arr[bounds[i]: bounds[i + 1]]
                        for name, arr in columns.items()
                    },
                    u,
                    engine_options,
                    cache_dir,
                    compose,
                )
                for i in range(shards)
            ]
            results = [f.result() for f in futures]

    sound = np.concatenate([r[0] for r in results])
    exact = np.concatenate([r[1] for r in results])
    errors: Dict[int, BaseException] = {}
    fallback_rows = 0
    max_dist: Dict[str, Decimal] = {
        p.name: _DEC_ZERO for p in definition.params
    }
    rows = [] if engine.collect_rows else None
    for i, (_, _, shard_errors, shard_dist, shard_fallback,
            shard_rows) in enumerate(results):
        offset = bounds[i]
        for row, exc in shard_errors.items():
            errors[offset + row] = exc
        fallback_rows += shard_fallback
        for name, dist in shard_dist.items():
            if dist > max_dist[name]:
                max_dist[name] = dist
        if rows is not None:
            # Re-anchor each shard's local row indices at its offset so
            # the merged rows are exactly the whole-batch run's.
            rows.extend(
                (offset + r, s, e, d, exc)
                for (r, s, e, d, exc) in shard_rows
            )

    def materialize(i: int):
        # Row reports cannot travel between processes; rebuild on demand
        # with the scalar runner, which the engine is bit-identical to.
        return run_witness(
            definition,
            engine._row_inputs(columns, i),
            program=program,
            u=u,
            lens=engine.lens,
        )

    return BatchWitnessReport(
        definition,
        n_rows,
        sound,
        exact,
        errors,
        materialize,
        max_dist,
        dict(engine._bounds),
        fallback_rows=fallback_rows,
        exact_backend=engine.exact_backend,
        rows=rows,
    )
