"""Executable backward error witnesses — Theorem 3.1 as a runtime check.

Given a checked Bean definition and concrete inputs, the witness runner

1. evaluates the program under the **approximate** (binary64) semantics,
   obtaining ``v``;
2. applies the **backward map** to construct perturbed inputs ``k̃``;
3. re-evaluates under the **ideal** (high-precision) semantics on ``k̃``
   and checks ``f(k̃) = v`` (Property 2);
4. measures ``d_{⟦σᵢ⟧}(kᵢ, k̃ᵢ)`` for every linear parameter and checks
   it against the inferred grade ``rᵢ`` (Property 1 / the soundness
   bound), with discrete parameters verified unperturbed.

This is the paper's headline guarantee, made machine-checkable on every
run; the property-based test-suite drives it with randomized programs and
inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from decimal import Decimal
from typing import Dict, Mapping, Optional, Sequence, Union

from ..core import ast_nodes as A
from ..core.grades import BINARY64_UNIT_ROUNDOFF, Grade
from ..core.types import is_discrete
from ..lam_s.values import Value, VNum, values_close, vector_value
from .interp import BeanLens, lens_of_definition
from .spaces import INF, grade_bound, type_distance

__all__ = ["ParamWitness", "WitnessReport", "run_witness", "env_from_pythons"]


@dataclass(frozen=True)
class ParamWitness:
    """Per-parameter outcome of a witness run."""

    name: str
    original: Value
    perturbed: Value
    distance: Decimal
    bound: Decimal
    grade: Grade

    @property
    def within_bound(self) -> bool:
        return self.distance <= self.bound


@dataclass(frozen=True)
class WitnessReport:
    """The full outcome of one witness run."""

    approx_value: Value
    ideal_on_perturbed: Value
    exact_match: bool
    params: Dict[str, ParamWitness]

    @property
    def sound(self) -> bool:
        """Did this run satisfy the backward error soundness theorem?"""
        return self.exact_match and all(
            w.within_bound for w in self.params.values()
        )

    def describe(self) -> str:
        lines = [
            f"approximate result : {self.approx_value!r}",
            f"ideal on perturbed : {self.ideal_on_perturbed!r}",
            f"results match      : {self.exact_match}",
        ]
        for w in self.params.values():
            status = "ok" if w.within_bound else "VIOLATION"
            lines.append(
                f"  {w.name}: d = {w.distance:.3e} <= {w.bound:.3e} ({w.grade})  [{status}]"
            )
        return "\n".join(lines)


def env_from_pythons(
    definition: A.Definition,
    inputs: Mapping[str, Union[Value, float, int, Sequence]],
) -> Dict[str, Value]:
    """Build a value environment from plain Python data.

    Scalars map to ``VNum``; flat sequences map to balanced vector values
    (matching ``vec(n)`` parameter types).  Already-built values pass
    through.
    """
    env: Dict[str, Value] = {}
    for param in definition.params:
        if param.name not in inputs:
            raise KeyError(f"missing input for parameter {param.name!r}")
        raw = inputs[param.name]
        if isinstance(raw, Value):
            env[param.name] = raw
        elif isinstance(raw, (int, float)):
            env[param.name] = VNum(float(raw))
        else:
            env[param.name] = vector_value([float(c) for c in raw])
    return env


def run_witness(
    definition: A.Definition,
    inputs: Mapping[str, Union[Value, float, int, Sequence]],
    *,
    program: Optional[A.Program] = None,
    u: float = BINARY64_UNIT_ROUNDOFF,
    lens: Optional[BeanLens] = None,
) -> WitnessReport:
    """Run the soundness theorem end-to-end on one concrete input."""
    if lens is None:
        lens = lens_of_definition(definition, program=program)
    env = env_from_pythons(definition, inputs)
    approx_value = lens.approx(env)
    perturbed = lens.backward(env, approx_value)
    ideal_value = lens.ideal(perturbed)
    exact = values_close(ideal_value, approx_value)

    params: Dict[str, ParamWitness] = {}
    for param in definition.params:
        original = env[param.name]
        new = perturbed[param.name]
        if is_discrete(param.ty):
            # Theorem 3.1(2): discrete inputs carry no backward error.
            distance = Decimal(0) if values_close(original, new) else INF
            bound = Decimal(0)
            grade = Grade(0)
        else:
            distance = type_distance(param.ty, original, new)
            grade = lens.judgment.grade_of(param.name)
            bound = grade_bound(grade, u)
        params[param.name] = ParamWitness(
            param.name, original, new, distance, bound, grade
        )
    return WitnessReport(approx_value, ideal_value, exact, params)
