"""Backward error lens semantics: spaces, lenses, and the interpreter."""

from .interp import BeanLens, lens_of_definition, lens_of_program
from .lens import (
    Lens,
    LensDomainError,
    check_property_1,
    check_property_2,
    compose,
    copair,
    grade_lens,
    identity_lens,
    inj1,
    inj2,
    proj1,
    proj2,
    tensor,
)
from .primitives import (
    lens_add,
    lens_div,
    lens_dmul,
    lens_mul,
    lens_sub,
)
from .spaces import (
    INF,
    DiscreteSpace,
    GradedSpace,
    NumSpace,
    Space,
    SumSpace,
    TensorSpace,
    UnitObjectI,
    UnitSpace,
    grade_bound,
    rp_distance,
    space_of_type,
    type_distance,
)
from .witness import ParamWitness, WitnessReport, env_from_pythons, run_witness

__all__ = [name for name in dir() if not name.startswith("_")]

# The batch/shard engines are the only numpy consumers in the package;
# load them lazily (PEP 562) so plain checking/witnessing never pays the
# numpy import.
_LAZY_BATCH = ("BatchWitnessEngine", "BatchWitnessReport", "run_witness_batch")
_LAZY_SHARD = ("run_witness_sharded", "shard_bounds")
_LAZY_POOL = ("ShardWorkerPool", "default_pool", "close_default_pool")
__all__ += list(_LAZY_BATCH) + list(_LAZY_SHARD) + list(_LAZY_POOL)


def __getattr__(name):
    if name in _LAZY_BATCH:
        from . import batch

        return getattr(batch, name)
    if name in _LAZY_SHARD:
        from . import shard

        return getattr(shard, name)
    if name in _LAZY_POOL:
        from . import pool

        return getattr(pool, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
