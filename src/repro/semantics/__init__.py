"""Backward error lens semantics: spaces, lenses, and the interpreter."""

from .interp import BeanLens, lens_of_definition, lens_of_program
from .lens import (
    Lens,
    LensDomainError,
    check_property_1,
    check_property_2,
    compose,
    copair,
    grade_lens,
    identity_lens,
    inj1,
    inj2,
    proj1,
    proj2,
    tensor,
)
from .primitives import (
    lens_add,
    lens_div,
    lens_dmul,
    lens_mul,
    lens_sub,
)
from .spaces import (
    INF,
    DiscreteSpace,
    GradedSpace,
    NumSpace,
    Space,
    SumSpace,
    TensorSpace,
    UnitObjectI,
    UnitSpace,
    grade_bound,
    rp_distance,
    space_of_type,
    type_distance,
)
from .witness import ParamWitness, WitnessReport, env_from_pythons, run_witness

__all__ = [name for name in dir() if not name.startswith("_")]
