"""Backward error lenses and the category Bel (Definition 6.1, Appendix A).

A lens between slack distance spaces ``X`` and ``Y`` is a triple
``(f, f̃, b)`` with ``f, f̃ : X → Y`` and ``b : X × Y → X`` (defined
whenever ``d_Y(f̃(x), y) < ∞``) such that

* **Property 1**: ``d_X(x, b(x,y)) − r_X ≤ d_Y(f̃(x), y) − r_Y``
* **Property 2**: ``f(b(x, y)) = y``

This module implements the category structure: identity and composition
(Definition A.1), the tensor bifunctor (Appendix B.2), projections for
zero-self-distance equal-slack spaces (B.3), coproduct injections and
copairing (B.4), and the graded comonad ``D_r`` on morphisms (B.5).  The
lens-law checkers at the bottom are used heavily by the property tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from decimal import Decimal
from typing import Callable, Optional

from ..lam_s.values import UNIT_VALUE, Value, VInl, VInr, VPair, values_close
from .spaces import (
    INF,
    GradedSpace,
    Space,
    SumSpace,
    TensorSpace,
)

__all__ = [
    "LensDomainError",
    "Lens",
    "identity_lens",
    "compose",
    "tensor",
    "proj1",
    "proj2",
    "inj1",
    "inj2",
    "copair",
    "associator",
    "associator_inverse",
    "unitor_left",
    "symmetry",
    "distributor",
    "grade_lens",
    "check_property_1",
    "check_property_2",
]


#: Relative tolerance for Property-1 comparisons (absorbs the 60-digit
#: working precision of Decimal distance computations).
_TOLERANCE = Decimal("1e-40")


class LensDomainError(Exception):
    """The backward map was applied outside its domain
    (``d_Y(f̃(x), y) = ∞``)."""


@dataclass
class Lens:
    """A backward error lens ``(f, f̃, b) : source → target``."""

    source: Space
    target: Space
    forward: Callable[[Value], Value]
    approx: Callable[[Value], Value]
    backward: Callable[[Value, Value], Value]
    label: str = field(default="lens")

    def __repr__(self) -> str:
        return f"<Lens {self.label}: {self.source!r} -> {self.target!r}>"


def identity_lens(space: Space) -> Lens:
    """The identity morphism ``(id, id, π₂)``."""
    return Lens(
        source=space,
        target=space,
        forward=lambda x: x,
        approx=lambda x: x,
        backward=lambda x, y: y,
        label="id",
    )


def compose(second: Lens, first: Lens) -> Lens:
    """``second ∘ first`` per Definition A.1 (Equations 16-18).

    The backward map threads the intermediate *approximate* value:
    ``b(x, z) = b₁(x, b₂(f̃₁(x), z))``.

    The middle spaces must agree; as a cheap structural guard we reject
    slack mismatches, which are the failure mode that silently breaks
    Property 1 (e.g. feeding a zero-slack output into a graded input
    without the ``D_r`` lift).
    """
    if first.target.slack != second.source.slack:
        raise ValueError(
            f"cannot compose {second.label} ∘ {first.label}: middle slacks "
            f"differ ({first.target.slack} vs {second.source.slack}); "
            "lift with grade_lens (D_r) first"
        )

    def forward(x: Value) -> Value:
        return second.forward(first.forward(x))

    def approx(x: Value) -> Value:
        return second.approx(first.approx(x))

    def backward(x: Value, z: Value) -> Value:
        mid = first.approx(x)
        return first.backward(x, second.backward(mid, z))

    return Lens(
        source=first.source,
        target=second.target,
        forward=forward,
        approx=approx,
        backward=backward,
        label=f"({second.label} ∘ {first.label})",
    )


def tensor(left: Lens, right: Lens) -> Lens:
    """``left ⊗ right`` per Equations 23-25."""
    source = TensorSpace(left.source, right.source)
    target = TensorSpace(left.target, right.target)

    def forward(v: Value) -> Value:
        assert isinstance(v, VPair)
        return VPair(left.forward(v.left), right.forward(v.right))

    def approx(v: Value) -> Value:
        assert isinstance(v, VPair)
        return VPair(left.approx(v.left), right.approx(v.right))

    def backward(v: Value, t: Value) -> Value:
        assert isinstance(v, VPair) and isinstance(t, VPair)
        return VPair(left.backward(v.left, t.left), right.backward(v.right, t.right))

    return Lens(source, target, forward, approx, backward, f"({left.label} ⊗ {right.label})")


def proj1(left: Space, right: Space) -> Lens:
    """``π₁ : X ⊗ Y → X`` — requires equal slacks and zero self-distance
    (Appendix B.3); the backward map grafts the target into the pair."""
    if left.slack != right.slack:
        raise ValueError("projections require equal slacks (Appendix B.3)")

    def backward(v: Value, t: Value) -> Value:
        assert isinstance(v, VPair)
        return VPair(t, v.right)

    return Lens(
        TensorSpace(left, right),
        left,
        lambda v: v.left,
        lambda v: v.left,
        backward,
        "π₁",
    )


def proj2(left: Space, right: Space) -> Lens:
    """``π₂ : X ⊗ Y → Y`` (symmetric to :func:`proj1`)."""
    if left.slack != right.slack:
        raise ValueError("projections require equal slacks (Appendix B.3)")

    def backward(v: Value, t: Value) -> Value:
        assert isinstance(v, VPair)
        return VPair(v.left, t)

    return Lens(
        TensorSpace(left, right),
        right,
        lambda v: v.right,
        lambda v: v.right,
        backward,
        "π₂",
    )


def inj1(left: Space, right: Space) -> Lens:
    """``in₁ : X → X + Y`` (Equations 36-37)."""
    target = SumSpace(left, right)

    def backward(x: Value, z: Value) -> Value:
        if isinstance(z, VInl):
            return z.body
        return x

    return Lens(left, target, VInl, VInl, backward, "in₁")


def inj2(left: Space, right: Space) -> Lens:
    """``in₂ : Y → X + Y``."""
    target = SumSpace(left, right)

    def backward(y: Value, z: Value) -> Value:
        if isinstance(z, VInr):
            return z.body
        return y

    return Lens(right, target, VInr, VInr, backward, "in₂")


def copair(g: Lens, h: Lens) -> Lens:
    """``[g, h] : X + Y → C`` (Equations 38-40)."""
    source = SumSpace(g.source, h.source)
    if g.target is not h.target and repr(g.target) != repr(h.target):
        # Structural agreement is enough; spaces are shapes over values.
        pass

    def forward(z: Value) -> Value:
        if isinstance(z, VInl):
            return g.forward(z.body)
        assert isinstance(z, VInr)
        return h.forward(z.body)

    def approx(z: Value) -> Value:
        if isinstance(z, VInl):
            return g.approx(z.body)
        assert isinstance(z, VInr)
        return h.approx(z.body)

    def backward(z: Value, c: Value) -> Value:
        if isinstance(z, VInl):
            return VInl(g.backward(z.body, c))
        assert isinstance(z, VInr)
        return VInr(h.backward(z.body, c))

    return Lens(source, g.target, forward, approx, backward, f"[{g.label}, {h.label}]")


def associator(x: Space, y: Space, z: Space) -> Lens:
    """``α : X ⊗ (Y ⊗ Z) → (X ⊗ Y) ⊗ Z`` (Appendix B.2.1)."""
    source = TensorSpace(x, TensorSpace(y, z))
    target = TensorSpace(TensorSpace(x, y), z)

    def fwd(v: Value) -> Value:
        assert isinstance(v, VPair) and isinstance(v.right, VPair)
        return VPair(VPair(v.left, v.right.left), v.right.right)

    def backward(v: Value, t: Value) -> Value:
        assert isinstance(t, VPair) and isinstance(t.left, VPair)
        return VPair(t.left.left, VPair(t.left.right, t.right))

    return Lens(source, target, fwd, fwd, backward, "α")


def associator_inverse(x: Space, y: Space, z: Space) -> Lens:
    """``α⁻¹ : (X ⊗ Y) ⊗ Z → X ⊗ (Y ⊗ Z)``."""
    source = TensorSpace(TensorSpace(x, y), z)
    target = TensorSpace(x, TensorSpace(y, z))

    def fwd(v: Value) -> Value:
        assert isinstance(v, VPair) and isinstance(v.left, VPair)
        return VPair(v.left.left, VPair(v.left.right, v.right))

    def backward(v: Value, t: Value) -> Value:
        assert isinstance(t, VPair) and isinstance(t.right, VPair)
        return VPair(VPair(t.left, t.right.left), t.right.right)

    return Lens(source, target, fwd, fwd, backward, "α⁻¹")


def unitor_left(x: Space) -> Lens:
    """``λ : I ⊗ X → X`` (Appendix B.2.2).

    The monoidal unit's infinite slack is what lets Property 1 go
    through — a point the appendix calls "essential".
    """
    from .spaces import UnitObjectI

    source = TensorSpace(UnitObjectI(), x)

    def backward(v: Value, t: Value) -> Value:
        assert isinstance(v, VPair)
        return VPair(v.left, t)

    return Lens(source, x, lambda v: v.right, lambda v: v.right, backward, "λ")


def symmetry(x: Space, y: Space) -> Lens:
    """``γ : X ⊗ Y → Y ⊗ X`` (Appendix B.2.3)."""
    source = TensorSpace(x, y)
    target = TensorSpace(y, x)

    def fwd(v: Value) -> Value:
        assert isinstance(v, VPair)
        return VPair(v.right, v.left)

    def backward(v: Value, t: Value) -> Value:
        assert isinstance(t, VPair)
        return VPair(t.right, t.left)

    return Lens(source, target, fwd, fwd, backward, "γ")


def distributor(x: Space, y: Space, z: Space) -> Lens:
    """``Θ : X ⊗ (Y + Z) → (X ⊗ Y) + (X ⊗ Z)`` (Appendix C, +E case).

    Requires finite slacks on Y and Z (the coproduct's constraint).
    """
    source = TensorSpace(x, SumSpace(y, z))
    target = SumSpace(TensorSpace(x, y), TensorSpace(x, z))

    def fwd(v: Value) -> Value:
        assert isinstance(v, VPair)
        if isinstance(v.right, VInl):
            return VInl(VPair(v.left, v.right.body))
        assert isinstance(v.right, VInr)
        return VInr(VPair(v.left, v.right.body))

    def backward(v: Value, t: Value) -> Value:
        if isinstance(t, VInl):
            assert isinstance(t.body, VPair)
            return VPair(t.body.left, VInl(t.body.right))
        assert isinstance(t, VInr) and isinstance(t.body, VPair)
        return VPair(t.body.left, VInr(t.body.right))

    return Lens(source, target, fwd, fwd, backward, "Θ")


def grade_lens(lens: Lens, r) -> Lens:
    """``D_r`` on morphisms: identical maps between shifted spaces."""
    return Lens(
        GradedSpace(lens.source, r),
        GradedSpace(lens.target, r),
        lens.forward,
        lens.approx,
        lens.backward,
        f"D_{r}({lens.label})",
    )


# ---------------------------------------------------------------------------
# Lens-law checking (used by the property-based tests)
# ---------------------------------------------------------------------------


def check_property_1(lens: Lens, x: Value, y: Value) -> Optional[str]:
    """Check Property 1 at ``(x, y)``; returns an error message or None.

    Vacuously true when ``d(f̃(x), y) = ∞`` (the backward map need not be
    defined there).  A small Decimal tolerance absorbs the 60-digit
    working precision of distance computations.
    """
    approx_out = lens.approx(x)
    if lens.target.distance(approx_out, y) == INF:
        return None
    back = lens.backward(x, y)
    lhs = lens.source.excess(x, back)
    rhs = lens.target.excess(approx_out, y)
    if lhs == INF and rhs != INF:
        return f"excess ∞ on source side: x={x!r} y={y!r} b={back!r}"
    if lhs == INF or rhs == INF:
        return None if rhs == INF else f"infinite lhs: {x!r} {y!r}"
    import decimal

    with decimal.localcontext() as ctx:
        # Compare at full distance precision: the default 28-digit
        # context would round the right-hand side and fabricate
        # last-digit "violations".
        from .spaces import DISTANCE_PRECISION

        ctx.prec = DISTANCE_PRECISION
        slack_tolerance = abs(lhs) * _TOLERANCE + _TOLERANCE
        if lhs > rhs + slack_tolerance:
            return (
                f"Property 1 violated: {lhs} > {rhs} at x={x!r}, y={y!r}, "
                f"b(x,y)={back!r}"
            )
    return None


def check_property_2(lens: Lens, x: Value, y: Value) -> Optional[str]:
    """Check Property 2 at ``(x, y)``; returns an error message or None."""
    approx_out = lens.approx(x)
    if lens.target.distance(approx_out, y) == INF:
        return None
    back = lens.backward(x, y)
    result = lens.forward(back)
    if not values_close(result, y):
        return f"Property 2 violated: f(b({x!r}, {y!r})) = {result!r} ≠ {y!r}"
    return None


# Keep the unit value import referenced (copair of units etc.).
_ = UNIT_VALUE
