"""Interpreting Bean programs as backward error lenses (Definition 6.2).

Every well-typed term ``Φ | Γ ⊢ e : τ`` denotes a lens ``⟦e⟧ : ⟦Φ⟧ ⊗ ⟦Γ⟧ →
⟦τ⟧``.  Rather than composing positional category morphisms, this
interpreter works with *named environments* — dictionaries from variable
names to values — which are isomorphic to the tensor-of-contexts objects
(the structural symmetry/associativity isos of Appendix B become dict
bookkeeping).  Every syntax case implements exactly the composite of
Appendix C:

* the **ideal map** evaluates under exact (high-precision Decimal)
  arithmetic;
* the **approximate map** evaluates under IEEE binary64;
* the **backward map** threads targets backwards through the program,
  re-running the approximate semantics for the intermediate values that
  lens composition requires (``b(x, z) = b₁(x, b₂(f̃₁(x), z))``,
  Equation 18) and applying the primitive witness constructions of
  :mod:`repro.semantics.primitives` at arithmetic operations.

Discrete variables are never perturbed: the backward map of a
contraction/discrete object is the identity (Lemma B.2), so the
perturbation dictionaries only ever mention linear variables.

The headline API is :class:`BeanLens` (via :func:`lens_of_definition`):
an executable packaging of Theorem 3.1, used by
:mod:`repro.semantics.witness` to produce checkable backward error
witnesses for concrete runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import ast_nodes as A
from ..core.checker import Judgment, check_program
from ..core.types import is_discrete
from ..ir import lower as L
from ..ir.cache import semantic_definition_ir
from ..lam_s.eval import _Interp, _IRInterp
from ..lam_s.values import (
    Value,
    VInl,
    VInr,
    VNum,
    VPair,
    values_close,
)
from .lens import LensDomainError
from .primitives import (
    add_backward,
    div_backward,
    dmul_backward,
    mul_backward,
    sub_backward,
)

__all__ = ["BeanLens", "lens_of_definition", "lens_of_program"]

Env = Dict[str, Value]
Mods = Dict[str, Value]


class _LensInterp:
    """Backward-map interpreter for (call-bearing) Bean terms."""

    def __init__(
        self,
        program: Optional[A.Program],
        precision: int,
        rounding: str = "nearest",
        seed: int = 0,
        precision_bits: int = 53,
    ) -> None:
        self.program = program
        self.rounding = rounding
        self.seed = seed
        self.precision_bits = precision_bits
        self.approx_interp = _Interp(
            "approx", program, precision, rounding, seed, precision_bits
        )

    def approx(self, expr: A.Expr, env: Env) -> Value:
        # A fresh interpreter per query keeps stochastic rounding a pure
        # function of (expr, env): re-running inside the backward map
        # must reproduce the same rounding decisions.
        interp = _Interp(
            "approx", self.program, self.approx_interp.precision,
            self.rounding, self.seed, self.precision_bits,
        )
        return interp.run(expr, env)

    # The backward map returns only the *modified* (linear) bindings; the
    # caller merges them over the original environment.  ``discrete`` is
    # the set of names currently bound discretely.

    def backward(self, expr: A.Expr, env: Env, target: Value, discrete: frozenset) -> Mods:
        if isinstance(expr, A.Var):
            if expr.name in discrete:
                current = env[expr.name]
                if not values_close(current, target):
                    raise LensDomainError(
                        f"discrete variable {expr.name!r} cannot absorb error: "
                        f"{current!r} vs target {target!r}"
                    )
                return {}
            return {expr.name: target}

        if isinstance(expr, A.UnitVal):
            return {}

        if isinstance(expr, A.Bang):
            # ⟦!e⟧ = η ∘ ⟦e⟧ with η the identity (Definition B.2).
            return self.backward(expr.body, env, target, discrete)

        if isinstance(expr, A.Rnd):
            # L_rnd = (id, fl, b) with b(x, y) = y: the perturbed input
            # *is* the target (f(y) = y, and d(x, y) ≤ ε + d(fl x, y)
            # by the RP triangle inequality).
            return self.backward(expr.body, env, target, discrete)

        if isinstance(expr, A.Pair):
            if not isinstance(target, VPair):
                raise LensDomainError(f"pair target expected, got {target!r}")
            mods = self.backward(expr.left, env, target.left, discrete)
            mods.update(self.backward(expr.right, env, target.right, discrete))
            return mods

        if isinstance(expr, A.Inl):
            if isinstance(target, VInl):
                return self.backward(expr.body, env, target.body, discrete)
            raise LensDomainError("inl value vs. non-inl target (infinite distance)")

        if isinstance(expr, A.Inr):
            if isinstance(target, VInr):
                return self.backward(expr.body, env, target.body, discrete)
            raise LensDomainError("inr value vs. non-inr target (infinite distance)")

        if isinstance(expr, A.Let):
            bound_approx = self.approx(expr.bound, env)
            inner_env = dict(env)
            inner_env[expr.name] = bound_approx
            mods = self.backward(expr.body, inner_env, target, discrete)
            bound_target = mods.pop(expr.name, bound_approx)
            mods.update(self.backward(expr.bound, env, bound_target, discrete))
            return mods

        if isinstance(expr, A.DLet):
            bound_approx = self.approx(expr.bound, env)
            inner_env = dict(env)
            inner_env[expr.name] = bound_approx
            mods = self.backward(
                expr.body, inner_env, target, discrete | {expr.name}
            )
            # The bound expression's target is its own approximant; by
            # Definition B.2 this perturbs nothing, but running it keeps
            # the composition faithful (identity-valued modifications).
            mods.update(self.backward(expr.bound, env, bound_approx, discrete))
            return mods

        if isinstance(expr, A.LetPair):
            bound_approx = self.approx(expr.bound, env)
            if not isinstance(bound_approx, VPair):
                raise LensDomainError(f"let-pair of non-pair {bound_approx!r}")
            inner_env = dict(env)
            inner_env[expr.left] = bound_approx.left
            inner_env[expr.right] = bound_approx.right
            mods = self.backward(expr.body, inner_env, target, discrete)
            left_target = mods.pop(expr.left, bound_approx.left)
            right_target = mods.pop(expr.right, bound_approx.right)
            mods.update(
                self.backward(
                    expr.bound, env, VPair(left_target, right_target), discrete
                )
            )
            return mods

        if isinstance(expr, A.DLetPair):
            bound_approx = self.approx(expr.bound, env)
            if not isinstance(bound_approx, VPair):
                raise LensDomainError(f"dlet-pair of non-pair {bound_approx!r}")
            inner_env = dict(env)
            inner_env[expr.left] = bound_approx.left
            inner_env[expr.right] = bound_approx.right
            mods = self.backward(
                expr.body, inner_env, target, discrete | {expr.left, expr.right}
            )
            mods.update(self.backward(expr.bound, env, bound_approx, discrete))
            return mods

        if isinstance(expr, A.Case):
            scrut_approx = self.approx(expr.scrutinee, env)
            if isinstance(scrut_approx, VInl):
                branch, name, payload = expr.left, expr.left_name, scrut_approx.body
                rebuild = VInl
            elif isinstance(scrut_approx, VInr):
                branch, name, payload = expr.right, expr.right_name, scrut_approx.body
                rebuild = VInr
            else:
                raise LensDomainError(f"case scrutinee not a sum: {scrut_approx!r}")
            inner_env = dict(env)
            inner_env[name] = payload
            mods = self.backward(branch, inner_env, target, discrete)
            payload_target = mods.pop(name, payload)
            mods.update(
                self.backward(expr.scrutinee, env, rebuild(payload_target), discrete)
            )
            return mods

        if isinstance(expr, A.PrimOp):
            left_approx = self.approx(expr.left, env)
            right_approx = self.approx(expr.right, env)
            if not isinstance(left_approx, VNum) or not isinstance(right_approx, VNum):
                raise LensDomainError("arithmetic on non-numbers")
            x1 = left_approx.as_decimal()
            x2 = right_approx.as_decimal()
            if expr.op is A.Op.ADD:
                b1, b2 = add_backward(x1, x2, target.as_decimal())
            elif expr.op is A.Op.SUB:
                b1, b2 = sub_backward(x1, x2, target.as_decimal())
            elif expr.op is A.Op.MUL:
                b1, b2 = mul_backward(x1, x2, target.as_decimal())
            elif expr.op is A.Op.DMUL:
                b1, b2 = dmul_backward(x1, x2, target.as_decimal())
            elif expr.op is A.Op.DIV:
                b1, b2 = div_backward(x1, x2, target)
            else:  # pragma: no cover - exhaustive
                raise LensDomainError(f"unknown op {expr.op}")
            mods = self.backward(expr.left, env, VNum(b1), discrete)
            mods.update(self.backward(expr.right, env, VNum(b2), discrete))
            return mods

        if isinstance(expr, A.Call):
            if self.program is None or expr.name not in self.program:
                raise LensDomainError(f"call to unknown definition {expr.name!r}")
            callee = self.program[expr.name]
            arg_approx = [self.approx(a, env) for a in expr.args]
            frame: Env = {
                p.name: v for p, v in zip(callee.params, arg_approx)
            }
            callee_discrete = frozenset(
                p.name for p in callee.params if is_discrete(p.ty)
            )
            frame_mods = self.backward(callee.body, frame, target, callee_discrete)
            mods: Mods = {}
            for param, arg, approx_val in zip(callee.params, expr.args, arg_approx):
                arg_target = frame_mods.pop(param.name, approx_val)
                mods.update(self.backward(arg, env, arg_target, discrete))
            return mods

        raise LensDomainError(f"cannot interpret {expr!r}")


class _PartialPair:
    """A pair target under construction (projections arrive separately).

    The reverse sweep meets ``snd`` before ``fst``; each contributes one
    component.  Unset components default to the forward value when the
    target is materialized — exactly the ``mods.pop(x, approx.left)``
    defaults of the recursive interpreter.
    """

    __slots__ = ("left", "right")

    def __init__(self):
        self.left = None
        self.right = None


class _IRBackward:
    """The backward lens pass as a reverse sweep over the flat IR.

    One forward sweep records every slot's approximate value; one reverse
    sweep threads targets from the result slot back to the parameter
    slots, applying the primitive witness constructions of
    :mod:`repro.semantics.primitives` at arithmetic ops.  This replaces
    the mutual recursion of :class:`_LensInterp` — and its per-``let``
    re-evaluation of the approximate semantics, which made the recursive
    backward map quadratic in program depth — with two linear passes.
    Targets, defaults, discrete-variable domain checks, and the values
    produced are identical to the recursive interpreter's (same Decimal
    kernels, same operand values, same composition order).
    """

    def __init__(
        self,
        program: Optional[A.Program],
        precision: int,
        rounding: str = "nearest",
        seed: int = 0,
        precision_bits: int = 53,
    ) -> None:
        self.program = program
        self.interp = _IRInterp(
            "approx", program, precision, rounding, seed, precision_bits
        )

    def run(self, ir, env: Env, target: Value) -> Mods:
        vals = self.interp.run_ir_vals(ir, dict(env))
        targets: List = [None] * ir.n_slots
        targets[ir.result] = target
        self._sweep(ir.ops, vals, targets)
        mods: Mods = {}
        for p in ir.params:
            if p.discrete:
                continue
            t = targets[p.slot]
            if t is not None:
                mods[p.name] = _materialize(t, vals[p.slot])
        return mods

    def _sweep(self, ops, vals: List, targets: List) -> None:
        for op in reversed(ops):
            code = op.code
            dest = op.dest
            if L.ADD <= code <= L.DMUL:
                t = _get_target(targets, vals, dest)
                left, right = vals[op.a], vals[op.b]
                if not isinstance(left, VNum) or not isinstance(right, VNum):
                    raise LensDomainError("arithmetic on non-numbers")
                x1 = left.as_decimal()
                x2 = right.as_decimal()
                if code == L.ADD:
                    b1, b2 = add_backward(x1, x2, t.as_decimal())
                elif code == L.SUB:
                    b1, b2 = sub_backward(x1, x2, t.as_decimal())
                elif code == L.MUL:
                    b1, b2 = mul_backward(x1, x2, t.as_decimal())
                elif code == L.DMUL:
                    b1, b2 = dmul_backward(x1, x2, t.as_decimal())
                else:
                    b1, b2 = div_backward(x1, x2, t)
                targets[op.a] = VNum(b1)
                targets[op.b] = VNum(b2)
            elif code == L.DVAR:
                t = targets[dest]
                if t is not None:
                    current = vals[dest]
                    t = _materialize(t, current)
                    if not values_close(current, t):
                        raise LensDomainError(
                            f"discrete variable {op.aux!r} cannot absorb "
                            f"error: {current!r} vs target {t!r}"
                        )
            elif code == L.BANG or code == L.RND:
                # ⟦!e⟧ = η ∘ ⟦e⟧ with η the identity (Definition B.2);
                # L_rnd = (id, fl, b) with b(x, y) = y.
                targets[op.a] = _get_target(targets, vals, dest)
            elif code == L.PAIR:
                t = _get_target(targets, vals, dest)
                if not isinstance(t, VPair):
                    raise LensDomainError(f"pair target expected, got {t!r}")
                targets[op.a] = t.left
                targets[op.b] = t.right
            elif code == L.FST or code == L.SND:
                partial = targets[op.a]
                if not isinstance(partial, _PartialPair):
                    partial = _PartialPair()
                    targets[op.a] = partial
                component = _get_target(targets, vals, dest)
                if code == L.FST:
                    partial.left = component
                else:
                    partial.right = component
            elif code == L.INL or code == L.INR:
                t = _get_target(targets, vals, dest)
                if code == L.INL:
                    if not isinstance(t, VInl):
                        raise LensDomainError(
                            "inl value vs. non-inl target (infinite distance)"
                        )
                else:
                    if not isinstance(t, VInr):
                        raise LensDomainError(
                            "inr value vs. non-inr target (infinite distance)"
                        )
                targets[op.a] = t.body
            elif code == L.CASE:
                scrut = vals[op.a]
                if isinstance(scrut, VInl):
                    region, rebuild = op.aux[0], VInl
                elif isinstance(scrut, VInr):
                    region, rebuild = op.aux[1], VInr
                else:
                    raise LensDomainError(f"case scrutinee not a sum: {scrut!r}")
                targets[region.result] = _get_target(targets, vals, dest)
                self._sweep(region.ops, vals, targets)
                payload_t = _get_target(targets, vals, region.payload)
                targets[op.a] = rebuild(payload_t)
            elif code == L.CALL:
                self._call(op, vals, targets)
            # UNIT / CONST: nothing flows backward.

    def _call(self, op, vals: List, targets: List) -> None:
        name, arg_slots = op.aux
        if self.program is None or name not in self.program:
            raise LensDomainError(f"call to unknown definition {name!r}")
        callee = self.program[name]
        callee_ir = semantic_definition_ir(callee)
        frame = {
            p.name: vals[s] for p, s in zip(callee.params, arg_slots)
        }
        callee_vals = self.interp.run_ir_vals(callee_ir, frame)
        callee_targets: List = [None] * callee_ir.n_slots
        callee_targets[callee_ir.result] = _get_target(targets, vals, op.dest)
        self._sweep(callee_ir.ops, callee_vals, callee_targets)
        for ir_param, arg_slot in zip(callee_ir.params, arg_slots):
            t = callee_targets[ir_param.slot]
            if t is None or ir_param.discrete:
                # Discrete parameters absorb nothing (Definition B.2):
                # the argument's target is its own approximant.
                targets[arg_slot] = callee_vals[ir_param.slot]
            else:
                targets[arg_slot] = _materialize(t, callee_vals[ir_param.slot])


def _get_target(targets: List, vals: List, slot: int) -> Value:
    t = targets[slot]
    if t is None:
        return vals[slot]
    if isinstance(t, _PartialPair):
        return _materialize(t, vals[slot])
    return t


def _materialize(t, fallback: Value) -> Value:
    if t is None:
        return fallback
    if isinstance(t, _PartialPair):
        if not isinstance(fallback, VPair):
            raise LensDomainError(f"let-pair of non-pair {fallback!r}")
        return VPair(
            _materialize(t.left, fallback.left),
            _materialize(t.right, fallback.right),
        )
    return t


class BeanLens:
    """The executable lens of a checked Bean definition.

    Environments are dictionaries mapping parameter names to
    :class:`~repro.lam_s.values.Value` trees matching the parameter types.

    ``engine`` selects the implementation of the three maps: ``"ir"``
    (default) runs iterative sweeps over the flat IR — no deep-stack
    worker, linear-time backward map; ``"recursive"`` runs the structural
    reference interpreters.  The two are value-identical.
    """

    def __init__(
        self,
        definition: A.Definition,
        judgment: Judgment,
        program: Optional[A.Program] = None,
        precision: int = 50,
        rounding: str = "nearest",
        seed: int = 0,
        precision_bits: int = 53,
        engine: str = "ir",
    ) -> None:
        self.definition = definition
        self.judgment = judgment
        self.program = program
        self.precision = precision
        self.rounding = rounding
        self.seed = seed
        self.precision_bits = precision_bits
        self.engine = engine
        self.discrete_params = frozenset(
            p.name for p in definition.params if is_discrete(p.ty)
        )
        self.linear_params = tuple(
            p.name for p in definition.params if not is_discrete(p.ty)
        )

    @property
    def ir(self):
        """The (cached) semantic IR of this lens's definition."""
        return semantic_definition_ir(self.definition)

    # -- the three maps -------------------------------------------------------

    def ideal(self, env: Env) -> Value:
        """``f`` — exact real (high-precision) evaluation."""
        if self.engine == "recursive":
            from ..core.deepstack import call_with_deep_stack

            interp = _Interp("ideal", self.program, self.precision)
            return call_with_deep_stack(interp.run, self.definition.body, dict(env))
        interp = _IRInterp("ideal", self.program, self.precision)
        return interp.run_ir(self.ir, dict(env))

    def approx(self, env: Env) -> Value:
        """``f̃`` — IEEE binary64 evaluation (seeded stochastic rounding
        if configured)."""
        if self.engine == "recursive":
            from ..core.deepstack import call_with_deep_stack

            interp = _Interp(
                "approx", self.program, self.precision, self.rounding,
                self.seed, self.precision_bits,
            )
            return call_with_deep_stack(interp.run, self.definition.body, dict(env))
        interp = _IRInterp(
            "approx", self.program, self.precision, self.rounding, self.seed,
            self.precision_bits,
        )
        return interp.run_ir(self.ir, dict(env))

    def backward(self, env: Env, target: Value) -> Env:
        """``b`` — the backward error witness constructor.

        Returns a *complete* perturbed environment: discrete parameters
        unchanged, linear parameters possibly perturbed.
        """
        if self.engine == "recursive":
            from ..core.deepstack import call_with_deep_stack

            interp = _LensInterp(
                self.program, self.precision, self.rounding, self.seed,
                self.precision_bits,
            )
            mods = call_with_deep_stack(
                interp.backward,
                self.definition.body,
                dict(env),
                target,
                self.discrete_params,
            )
        else:
            sweep = _IRBackward(
                self.program, self.precision, self.rounding, self.seed,
                self.precision_bits,
            )
            mods = sweep.run(self.ir, env, target)
        perturbed = dict(env)
        for name, value in mods.items():
            if name not in perturbed:
                raise LensDomainError(f"backward map produced unknown name {name!r}")
            perturbed[name] = value
        return perturbed


def lens_of_definition(
    definition: A.Definition,
    judgment: Optional[Judgment] = None,
    program: Optional[A.Program] = None,
    precision: int = 50,
    rounding: str = "nearest",
    seed: int = 0,
    precision_bits: int = 53,
    engine: str = "ir",
) -> BeanLens:
    """Build the executable lens of a single (checked) definition."""
    if judgment is None:
        if program is not None:
            judgments = check_program(program)
            judgment = judgments[definition.name]
        else:
            from ..core.checker import check_definition

            judgment = check_definition(definition)
    return BeanLens(
        definition, judgment, program, precision, rounding, seed,
        precision_bits, engine,
    )


def lens_of_program(
    program: A.Program,
    name: Optional[str] = None,
    precision: int = 50,
    engine: str = "ir",
) -> BeanLens:
    """Build the executable lens of ``name`` (default: last definition)."""
    judgments = check_program(program)
    definition = program[name] if name else program.main
    return BeanLens(
        definition, judgments[definition.name], program, precision, engine=engine
    )
