"""Persistent shard workers: a warm, crash-safe process pool.

:func:`~repro.semantics.shard.run_witness_sharded` spawns a fresh
``ProcessPoolExecutor`` per audit: every call pays process startup,
re-pickles the definition/program ASTs on a deep stack, and has each
worker re-lower semantic + inlined IR from scratch.  For a server whose
fleet deliberately routes repeat fingerprints to the same node (so its
prepared tables stay hot), that fixed cost lands on *every* ``--workers``
request.

:class:`ShardWorkerPool` amortizes all three across audits:

* **long-lived spawn-safe workers** — each worker is one
  ``multiprocessing`` process (default start method: ``spawn``; nothing
  relies on forked state) holding a **fingerprint-keyed prepared-program
  table**: a bounded LRU of unpickled ASTs plus the engines built from
  them.  Because the tables preserve object identity, a warm worker's
  engine rebuilds hit the identity-keyed IR caches
  (:mod:`repro.ir.cache`) — a repeat audit of a known fingerprint skips
  unpickling *and* re-lowering; the dispatch message is just
  ``(fingerprint, row slice, config)``.
* **shared-memory row transport** — input columns travel as one
  ``multiprocessing.shared_memory`` float64 block the workers slice
  in place, and the per-row ``sound``/``exact`` verdict bits come back
  through a shared output block; only the non-float payloads (captured
  exceptions, exact ``Decimal`` distances, schema-v4 row tuples) ride
  the pipe as pickles.  When shared memory is unavailable the pool
  falls back to whole-payload pickling automatically — results are
  byte-identical either way.
* **crash safety** — a worker dying mid-shard (OOM kill, segfault,
  operator ``kill -9``) is detected on its pipe, restarted, and its
  slice re-dispatched with the program blob; the merged report is
  byte-identical to an undisturbed run, the same discipline the fleet
  applies to node death.

The pool is shared: :class:`repro.api.session.Session` lazily owns one
(``Session(pool=True)``, shut down by ``Session.close()``/``with``),
``repro serve --pool`` shares a single pool across all sharded requests,
and ``/stats`` exposes the counters from :meth:`ShardWorkerPool.stats`.
Spawn-per-audit remains the default — a pool only pays off when audits
repeat.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import signal
import sys
import threading
from collections import OrderedDict
from decimal import Decimal
from multiprocessing import get_context
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import ast_nodes as A
from ..core.deepstack import call_with_deep_stack

__all__ = ["ShardWorkerPool", "default_pool", "close_default_pool"]

#: What one shard hands back for merging — the exact shape of
#: :func:`repro.semantics.shard._run_shard`'s return value.
ShardResult = Tuple[
    np.ndarray,  # sound  (bool, one slot per slice row)
    np.ndarray,  # exact  (bool)
    Dict[int, BaseException],  # slice-local row -> captured error
    Dict[str, Decimal],  # parameter -> max exact distance
    int,  # fallback rows
    Optional[List[Tuple[Any, ...]]],  # schema-v4 row tuples (collect_rows)
]

#: Columns layout inside the packed input block: (name, offset, width).
_Layout = List[Tuple[str, int, int]]


def _attach_shm(name: str) -> SharedMemory:
    """Attach to a parent-owned segment without adopting its lifetime.

    The parent creates and unlinks every segment; a child that merely
    attaches must keep the ``resource_tracker`` out of the loop, or
    several children registering/unregistering the same name floods the
    (shared) tracker with duplicate-remove errors and double-unlink
    attempts.  3.13 has ``track=False`` for exactly this; earlier
    interpreters suppress the registration call during the attach.
    """
    if sys.version_info >= (3, 13):
        return SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shm(res_name: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original(res_name, rtype)

    resource_tracker.register = _skip_shm  # type: ignore[assignment]
    try:
        return SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


def _read_columns(task: Dict[str, Any]) -> Dict[str, np.ndarray]:
    """The worker's row slice, from shared memory or the pickled task."""
    lo, hi = task["lo"], task["hi"]
    if task.get("shm") is None:
        columns: Dict[str, np.ndarray] = task["columns"]
        return {name: arr[lo:hi] for name, arr in columns.items()}
    name, n_rows, layout = task["shm"]
    total = sum(k for (_n, _o, k) in layout)
    shm = _attach_shm(name)
    try:
        packed = np.ndarray((n_rows, total), dtype=np.float64, buffer=shm.buf)
        # Copy out: the slice must survive the segment being unlinked.
        return {
            col: np.array(packed[lo:hi, off: off + k], dtype=np.float64)
            for (col, off, k) in layout
        }
    finally:
        shm.close()


def _write_verdicts(
    task: Dict[str, Any], sound: np.ndarray, exact: np.ndarray
) -> bool:
    """Write the slice's verdict bits to the shared output block.

    Returns ``False`` when the audit runs on the pickle fallback (no
    output block) and the verdicts must ride the pipe instead.
    """
    if task.get("out") is None:
        return False
    name, n_rows = task["out"]
    lo, hi = task["lo"], task["hi"]
    shm = _attach_shm(name)
    try:
        verdicts = np.ndarray((n_rows, 2), dtype=np.bool_, buffer=shm.buf)
        verdicts[lo:hi, 0] = sound
        verdicts[lo:hi, 1] = exact
    finally:
        shm.close()
    return True


def _build_engine(
    definition: A.Definition,
    program: Optional[A.Program],
    u: float,
    engine_options: Dict[str, Any],
    compose: bool,
) -> Any:
    """One configured engine; composed audits plan their execution IR.

    Under ``compose`` the worker re-plans
    :func:`repro.compose.engine.compose_execution_ir` from locally built
    summaries — planning is deterministic, so every worker (and the
    parent) lands on the same IR without shipping a possibly
    multi-million-op object graph across the pipe, and a warm worker's
    summary store makes the re-plan a cache hit.
    """
    from .batch import BatchWitnessEngine

    options = dict(engine_options)
    if compose and program is not None:
        from ..compose.engine import compose_execution_ir, composed_judgments

        composed = composed_judgments(program)
        ir, _execution = compose_execution_ir(
            definition, program, composed.summaries
        )
        options["inlined_ir"] = ir
    return BatchWitnessEngine(definition, program, u=u, **options)


def _run_task(
    task: Dict[str, Any],
    programs: "OrderedDict[str, Tuple[A.Definition, Optional[A.Program]]]",
    engines: "OrderedDict[Tuple[str, str], Any]",
    max_prepared: int,
) -> Tuple[str, Dict[str, Any]]:
    """Worker body for one ``run`` message."""
    if task.get("cache_dir"):
        from ..service.cache import activate

        activate(task["cache_dir"])
    fingerprint: str = task["fingerprint"]
    transient: bool = task["transient"]
    evictions = 0
    prepared_hit = fingerprint in programs and not transient
    if prepared_hit:
        programs.move_to_end(fingerprint)
        definition, program = programs[fingerprint]
    else:
        if task.get("blob") is None:
            # Parent thought we still had this program; the LRU evicted
            # it.  Ask for the blob rather than failing the shard.
            return ("need-program", {"fingerprint": fingerprint})
        definition, program = call_with_deep_stack(
            pickle.loads, task["blob"]
        )
        if not transient:
            programs[fingerprint] = (definition, program)
            while len(programs) > max_prepared:
                evicted, _ = programs.popitem(last=False)
                for key in [k for k in engines if k[0] == evicted]:
                    del engines[key]
                evictions += 1

    engine_key = (fingerprint, task["config_key"])
    engine = None if transient else engines.get(engine_key)
    if engine is None:
        engine = _build_engine(
            definition, program, task["u"], task["engine_options"],
            task["compose"],
        )
        if not transient:
            engines[engine_key] = engine
            while len(engines) > max_prepared:
                engines.popitem(last=False)
    else:
        engines.move_to_end(engine_key)

    columns = _read_columns(task)
    report = engine.run(columns)
    sound = np.asarray(report.sound)
    exact = np.asarray(report.exact)
    in_shm = _write_verdicts(task, sound, exact)
    reply: Dict[str, Any] = {
        "prepared_hit": prepared_hit,
        "evictions": evictions,
        "errors": report.errors,
        "dist": report.param_max_distance,
        "fallback_rows": report.fallback_rows,
        "rows": report.rows,
    }
    if not in_shm:
        reply["sound"] = sound
        reply["exact"] = exact
    return ("ok", reply)


def _worker_main(conn: Connection, max_prepared: int) -> None:
    """The long-lived worker loop (spawn-imported; must stay top-level)."""
    programs: "OrderedDict[str, Tuple[A.Definition, Optional[A.Program]]]"
    programs = OrderedDict()
    engines: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op = msg[0]
        if op == "stop":
            break
        if op == "crash":
            # Test seam: die the way an OOM-killed worker dies.
            os.kill(os.getpid(), signal.SIGKILL)
        if op != "run":
            continue
        reply: Tuple[str, Any]
        try:
            reply = _run_task(msg[1], programs, engines, max_prepared)
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            try:
                pickle.dumps(exc)
            except Exception:
                exc = RuntimeError(
                    f"unpicklable worker error: {exc!r}"
                )
            reply = ("err", exc)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class ShardWorkerPool:
    """A persistent pool of prepared shard workers.

    ``workers=None`` sizes the pool to ``os.cpu_count()``.
    ``max_prepared`` bounds each worker's fingerprint-keyed
    prepared-program LRU, mirroring the server's ``--max-prepared``.
    ``mp_context`` selects the start method (default ``spawn`` — the
    workers never rely on forked state, and spawn is the one method
    that is safe from a threaded server).

    Workers start lazily on the first :meth:`run_shards`;
    :meth:`close` (or the context manager) shuts them down.  One audit
    runs at a time — a :class:`threading.Lock` serializes concurrent
    callers such as the server's heavy lane — but each audit still fans
    its shards across every worker.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        mp_context: str = "spawn",
        max_prepared: int = 32,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("need at least one pool worker")
        if max_prepared < 1:
            raise ValueError("max_prepared must be positive")
        self.workers = int(workers)
        self.max_prepared = int(max_prepared)
        self._ctx = get_context(mp_context)
        self._procs: List[Optional[BaseProcess]] = [None] * self.workers
        self._conns: List[Optional[Connection]] = [None] * self.workers
        #: Parent-side view of each worker's prepared fingerprints.  It
        #: may run ahead of the worker's own LRU (the worker evicts on
        #: its side too); the ``need-program`` round-trip reconciles.
        self._known: List["OrderedDict[str, None]"] = [
            OrderedDict() for _ in range(self.workers)
        ]
        #: Pickled (definition, program) blobs by fingerprint, so a
        #: repeat audit never re-pickles a deep AST.
        self._blobs: "OrderedDict[str, bytes]" = OrderedDict()
        self._anon = itertools.count()
        self._lock = threading.Lock()
        self._closed = False
        #: Test seam: index of a worker to SIGKILL just before its next
        #: dispatch, exercising the restart + re-dispatch path.
        self._test_crash_next: Optional[int] = None
        #: Test seam: force the pickle transport even when shared
        #: memory is available.
        self._force_pickle = False
        #: Segment names of the most recent audit (leak assertions).
        self._last_segments: List[str] = []
        self._stats: Dict[str, int] = {
            "audits": 0,
            "prepared_hits": 0,
            "prepared_misses": 0,
            "prepared_evictions": 0,
            "restarts": 0,
            "shm_bytes_in_flight": 0,
            "pickle_fallbacks": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    def _start_worker(self, i: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.max_prepared),
            daemon=True,
            name=f"repro-pool-{i}",
        )
        proc.start()
        child_conn.close()
        self._procs[i] = proc
        self._conns[i] = parent_conn
        self._known[i] = OrderedDict()

    def _ensure_started(self) -> None:
        if self._closed:
            raise RuntimeError("ShardWorkerPool is closed")
        for i in range(self.workers):
            if self._procs[i] is None:
                self._start_worker(i)

    def _restart(self, i: int) -> None:
        """Replace a dead worker; its prepared table starts empty."""
        conn = self._conns[i]
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        proc = self._procs[i]
        if proc is not None:
            proc.terminate()
            proc.join(timeout=5)
        self._procs[i] = None
        self._start_worker(i)
        self._stats["restarts"] += 1

    def close(self) -> None:
        """Stop every worker and release the pipes (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for conn in self._conns:
                if conn is None:
                    continue
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for proc in self._procs:
                if proc is not None:
                    proc.join(timeout=5)
                    if proc.is_alive():
                        proc.kill()
                        proc.join(timeout=5)
            for conn in self._conns:
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass
            self._procs = [None] * self.workers
            self._conns = [None] * self.workers

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            if not self._closed:
                self.close()
        except Exception:
            pass

    # -- stats -------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """A point-in-time counter snapshot (the ``/stats`` pool section)."""
        snapshot = dict(self._stats)
        snapshot["workers"] = self.workers
        snapshot["workers_alive"] = sum(
            1 for p in self._procs if p is not None and p.is_alive()
        )
        return snapshot

    # -- program identity --------------------------------------------------

    def _program_key(
        self, definition: A.Definition, program: Optional[A.Program]
    ) -> Tuple[str, bool]:
        """``(fingerprint, reusable)`` for one audit's program.

        Unfingerprintable ASTs (nodes outside the kernel grammar) get a
        fresh anonymous key: they are dispatched with the blob every
        time and never enter a prepared table, so identity confusion is
        impossible.
        """
        from ..service.fingerprint import (
            UnfingerprintableError,
            fingerprint_definition,
        )

        try:
            return (
                fingerprint_definition(definition, program, kind="pool"),
                True,
            )
        except UnfingerprintableError:
            return (f"anon:{next(self._anon)}", False)

    # -- dispatch ----------------------------------------------------------

    def _send_task(
        self, i: int, task: Dict[str, Any], blob: bytes
    ) -> Dict[str, Any]:
        """Send one ``run`` message, restarting through dead pipes."""
        for _attempt in range(3):
            conn = self._conns[i]
            assert conn is not None
            try:
                conn.send(("run", task))
                return task
            except (BrokenPipeError, OSError):
                self._restart(i)
                task = dict(task, blob=blob)
        raise RuntimeError(f"pool worker {i} died {3} times during dispatch")

    def _collect(
        self, i: int, task: Dict[str, Any], blob: bytes
    ) -> Tuple[str, Any]:
        """Receive one reply, re-dispatching through crashes/evictions."""
        attempts = 0
        while True:
            conn = self._conns[i]
            assert conn is not None
            try:
                reply = conn.recv()
            except (EOFError, ConnectionResetError, OSError):
                attempts += 1
                if attempts > 3:
                    raise RuntimeError(
                        f"pool worker {i} died {attempts} times on one shard"
                    ) from None
                self._restart(i)
                task = self._send_task(i, dict(task, blob=blob), blob)
                continue
            if reply[0] == "need-program":
                task = self._send_task(i, dict(task, blob=blob), blob)
                continue
            return reply

    def run_shards(
        self,
        definition: A.Definition,
        program: Optional[A.Program],
        columns: Dict[str, np.ndarray],
        bounds: Sequence[int],
        *,
        u: float,
        engine_options: Dict[str, Any],
        cache_dir: Optional[str] = None,
        compose: bool = False,
    ) -> List[ShardResult]:
        """Certify ``bounds``-sliced row shards across the warm workers.

        Returns one :data:`ShardResult` per shard, in shard order —
        exactly what spawn-per-audit workers return, so
        :func:`repro.semantics.shard.run_witness_sharded` merges both
        paths with the same code (and the same bytes).
        """
        shards = len(bounds) - 1
        if shards < 1:
            raise ValueError("need at least one shard")
        if shards > self.workers:
            raise ValueError(
                f"{shards} shards exceed the pool's {self.workers} workers"
            )
        with self._lock:
            return self._run_shards_locked(
                definition, program, columns, bounds, shards,
                u=u, engine_options=engine_options, cache_dir=cache_dir,
                compose=compose,
            )

    def _run_shards_locked(
        self,
        definition: A.Definition,
        program: Optional[A.Program],
        columns: Dict[str, np.ndarray],
        bounds: Sequence[int],
        shards: int,
        *,
        u: float,
        engine_options: Dict[str, Any],
        cache_dir: Optional[str],
        compose: bool,
    ) -> List[ShardResult]:
        self._ensure_started()
        self._stats["audits"] += 1
        fingerprint, reusable = self._program_key(definition, program)
        blob = self._blob_for(fingerprint, reusable, definition, program)
        config_key = self._config_key(u, engine_options, compose)
        n_rows = int(bounds[-1])

        in_shm: Optional[SharedMemory] = None
        out_shm: Optional[SharedMemory] = None
        shm_bytes = 0
        self._last_segments = []
        try:
            in_spec: Optional[Tuple[str, int, _Layout]] = None
            out_spec: Optional[Tuple[str, int]] = None
            if not self._force_pickle:
                try:
                    in_shm, layout = self._pack_columns(columns, n_rows)
                    out_shm = SharedMemory(
                        create=True, size=max(1, n_rows * 2)
                    )
                    in_spec = (in_shm.name, n_rows, layout)
                    out_spec = (out_shm.name, n_rows)
                    shm_bytes = in_shm.size + out_shm.size
                    self._stats["shm_bytes_in_flight"] += shm_bytes
                    self._last_segments = [in_shm.name, out_shm.name]
                except (OSError, ValueError):
                    # No usable /dev/shm (or segment limit): fall back
                    # to pickling whole slices through the pipes.
                    for seg in (in_shm, out_shm):
                        if seg is not None:
                            seg.close()
                            seg.unlink()
                    in_shm = out_shm = None
                    in_spec = out_spec = None
                    shm_bytes = 0
                    self._last_segments = []
            if in_spec is None:
                self._stats["pickle_fallbacks"] += 1

            tasks: List[Dict[str, Any]] = []
            for i in range(shards):
                lo, hi = int(bounds[i]), int(bounds[i + 1])
                known = self._known[i]
                task: Dict[str, Any] = {
                    "fingerprint": fingerprint,
                    "transient": not reusable,
                    "blob": None if fingerprint in known else blob,
                    "config_key": config_key,
                    "u": u,
                    "engine_options": engine_options,
                    "compose": compose,
                    "cache_dir": cache_dir,
                    "lo": lo,
                    "hi": hi,
                    "shm": in_spec,
                    "out": out_spec,
                }
                if in_spec is None:
                    task["columns"] = {
                        name: arr[lo:hi] for name, arr in columns.items()
                    }
                    task["lo"], task["hi"] = 0, hi - lo
                tasks.append(task)

            for i in range(shards):
                if self._test_crash_next == i:
                    self._test_crash_next = None
                    conn = self._conns[i]
                    assert conn is not None
                    try:
                        conn.send(("crash",))
                    except (BrokenPipeError, OSError):
                        pass
                tasks[i] = self._send_task(i, tasks[i], blob)

            replies: List[Tuple[str, Any]] = []
            for i in range(shards):
                replies.append(self._collect(i, tasks[i], blob))

            failure: Optional[BaseException] = None
            for i, (tag, payload) in enumerate(replies):
                if tag == "err":
                    failure = failure or payload
                    continue
                if payload["prepared_hit"]:
                    self._stats["prepared_hits"] += 1
                else:
                    self._stats["prepared_misses"] += 1
                self._stats["prepared_evictions"] += payload["evictions"]
                if reusable:
                    known = self._known[i]
                    known[fingerprint] = None
                    known.move_to_end(fingerprint)
                    while len(known) > self.max_prepared:
                        known.popitem(last=False)
            if failure is not None:
                raise failure

            results: List[ShardResult] = []
            verdicts: Optional[np.ndarray] = None
            if out_shm is not None:
                verdicts = np.ndarray(
                    (n_rows, 2), dtype=np.bool_, buffer=out_shm.buf
                )
            for i, (_tag, payload) in enumerate(replies):
                lo, hi = int(bounds[i]), int(bounds[i + 1])
                if verdicts is not None:
                    # Copy out before the finally-block unlinks.
                    sound = np.array(verdicts[lo:hi, 0], dtype=bool)
                    exact = np.array(verdicts[lo:hi, 1], dtype=bool)
                else:
                    sound = np.asarray(payload["sound"])
                    exact = np.asarray(payload["exact"])
                results.append(
                    (
                        sound,
                        exact,
                        payload["errors"],
                        payload["dist"],
                        payload["fallback_rows"],
                        payload["rows"],
                    )
                )
            return results
        finally:
            for seg in (in_shm, out_shm):
                if seg is not None:
                    try:
                        seg.close()
                        seg.unlink()
                    except OSError:
                        pass
            if shm_bytes:
                self._stats["shm_bytes_in_flight"] -= shm_bytes

    # -- transport helpers -------------------------------------------------

    def _blob_for(
        self,
        fingerprint: str,
        reusable: bool,
        definition: A.Definition,
        program: Optional[A.Program],
    ) -> bytes:
        """The pickled AST pair, cached per fingerprint across audits."""
        if reusable and fingerprint in self._blobs:
            self._blobs.move_to_end(fingerprint)
            return self._blobs[fingerprint]
        blob: bytes = call_with_deep_stack(
            pickle.dumps, (definition, program), pickle.HIGHEST_PROTOCOL
        )
        if reusable:
            self._blobs[fingerprint] = blob
            while len(self._blobs) > self.max_prepared:
                self._blobs.popitem(last=False)
        return blob

    @staticmethod
    def _config_key(
        u: float, engine_options: Dict[str, Any], compose: bool
    ) -> str:
        """A stable engine-configuration key (primitive options only)."""
        return repr(
            (u, compose, sorted(engine_options.items()))
        )

    @staticmethod
    def _pack_columns(
        columns: Dict[str, np.ndarray], n_rows: int
    ) -> Tuple[SharedMemory, _Layout]:
        """All input columns as one shared float64 block plus its layout."""
        layout: _Layout = []
        offset = 0
        for name, arr in columns.items():
            width = int(arr.shape[1])
            layout.append((name, offset, width))
            offset += width
        shm = SharedMemory(
            create=True, size=max(1, n_rows * offset * 8)
        )
        packed = np.ndarray(
            (n_rows, offset), dtype=np.float64, buffer=shm.buf
        )
        for name, off, width in layout:
            packed[:, off: off + width] = columns[name]
        return shm, layout


# --------------------------------------------------------------------------
# The process-default pool (REPRO_POOL=1 runs, e.g. nightly soak)
# --------------------------------------------------------------------------

_DEFAULT_POOL: Optional[ShardWorkerPool] = None


def default_pool() -> ShardWorkerPool:
    """The lazily-created process-wide pool (``REPRO_POOL=1`` runs).

    Sized by ``REPRO_POOL_WORKERS`` (default: ``os.cpu_count()``);
    closed automatically at interpreter exit.
    """
    global _DEFAULT_POOL
    if _DEFAULT_POOL is None or _DEFAULT_POOL._closed:
        workers_env = os.environ.get("REPRO_POOL_WORKERS")
        _DEFAULT_POOL = ShardWorkerPool(
            int(workers_env) if workers_env else None
        )
        atexit.register(close_default_pool)
    return _DEFAULT_POOL


def close_default_pool() -> None:
    """Shut down the process-default pool, if one was created."""
    global _DEFAULT_POOL
    if _DEFAULT_POOL is not None:
        _DEFAULT_POOL.close()
        _DEFAULT_POOL = None
