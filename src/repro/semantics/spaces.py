"""Slack distance spaces — the objects of the category Bel (Definition 6.1).

A slack distance space is ``(X, d_X, r_X)``: a carrier, a distance
function into ``R≥0 ∪ {∞}``, and a *slack* constant.  This module builds
the spaces Bean's semantics needs:

* ``num`` ↦ the reals with the relative precision metric RP (Equation 5),
* ``m(σ)`` ↦ the discrete space (distinct points infinitely far apart),
* ``σ ⊗ τ`` and ``σ + τ`` ↦ the combinators of Appendix B.2/B.4,
* the graded comonad ``D_r`` ↦ the same space with slack shifted by ``r``
  (Appendix B.5),
* the monoidal unit ``I`` (slack ∞) and terminal-ish ``1`` (slack 0).

Distances are computed on :class:`~repro.lam_s.values.Value` points, in
``Decimal`` arithmetic, with ``Decimal("Infinity")`` for ∞.  The paper's
convention ``a - ∞ = -∞``, ``∞ - a = ∞`` is implemented by
:func:`ext_sub`, and the key derived quantity ``excess(a, b) = d(a, b) -
slack`` (the left/right sides of lens Property 1, cf. Equation 22) is a
method on every space.
"""

from __future__ import annotations

import decimal
from decimal import Decimal
from typing import Union

from ..core.grades import Grade, eps_from_roundoff
from ..core.types import Discrete, Num, Sum, Tensor, Type, Unit
from ..lam_s.values import Value, VInl, VInr, VNum, VPair, VUnit, to_decimal

__all__ = [
    "INF",
    "NEG_INF",
    "ext_sub",
    "rp_distance",
    "Space",
    "NumSpace",
    "DiscreteSpace",
    "UnitSpace",
    "UnitObjectI",
    "TensorSpace",
    "SumSpace",
    "GradedSpace",
    "space_of_type",
    "type_distance",
    "grade_bound",
    "DISTANCE_PRECISION",
]

INF = Decimal("Infinity")
NEG_INF = Decimal("-Infinity")

#: Working precision for distance computations.
DISTANCE_PRECISION = 60


def ext_sub(d: Decimal, r: Decimal) -> Decimal:
    """Extended-real subtraction with the paper's conventions.

    ``∞ - a = ∞`` for any ``a`` (including ∞), and ``a - ∞ = -∞`` for
    finite ``a`` (Definition 6.1's footnote).
    """
    if d == INF:
        return INF
    if r == INF:
        return NEG_INF
    with decimal.localcontext() as ctx:
        ctx.prec = DISTANCE_PRECISION
        return d - r


def rp_distance(x: Value, y: Value) -> Decimal:
    """The relative precision metric RP (Equation 5) on numeric values.

    ``RP(x, y) = |ln(x/y)|`` when x and y share a sign and are non-zero,
    ``0`` when both are zero, ``∞`` otherwise.
    """
    if not isinstance(x, VNum) or not isinstance(y, VNum):
        raise TypeError("RP distance is defined on numbers")
    dx, dy = x.as_decimal(), y.as_decimal()
    if dx == 0 and dy == 0:
        return Decimal(0)
    if dx == 0 or dy == 0 or (dx > 0) != (dy > 0):
        return INF
    with decimal.localcontext() as ctx:
        ctx.prec = DISTANCE_PRECISION
        return abs((dx / dy).ln())


class Space:
    """Base class of slack distance spaces.

    Subclasses provide ``distance`` and a ``slack``; the property-1
    quantity ``excess = distance - slack`` has a generic implementation
    but is overridden where a simpler compositional form exists
    (Equation 22).
    """

    slack: Decimal = Decimal(0)

    def distance(self, a: Value, b: Value) -> Decimal:
        raise NotImplementedError

    def excess(self, a: Value, b: Value) -> Decimal:
        return ext_sub(self.distance(a, b), self.slack)

    def contains(self, v: Value) -> bool:
        """Shallow structural membership check (used by tests)."""
        raise NotImplementedError


class NumSpace(Space):
    """Reals with the RP metric and zero slack: the meaning of ``num``."""

    def distance(self, a: Value, b: Value) -> Decimal:
        return rp_distance(a, b)

    def contains(self, v: Value) -> bool:
        return isinstance(v, VNum)

    def __repr__(self) -> str:
        return "NumSpace"


class DiscreteSpace(Space):
    """A discrete space: distance 0 on equal points, ∞ otherwise."""

    def __init__(self, inner: Space) -> None:
        self.inner = inner

    def distance(self, a: Value, b: Value) -> Decimal:
        # Use the inner space's notion of "the same point": two numeric
        # values are the same point of M(num) iff their RP distance is 0.
        return Decimal(0) if self.inner.distance(a, b) == 0 else INF

    def contains(self, v: Value) -> bool:
        return self.inner.contains(v)

    def __repr__(self) -> str:
        return f"DiscreteSpace({self.inner!r})"


class UnitSpace(Space):
    """The singleton space with zero slack: the ``unit`` type."""

    def distance(self, a: Value, b: Value) -> Decimal:
        if isinstance(a, VUnit) and isinstance(b, VUnit):
            return Decimal(0)
        raise TypeError("unit distance is defined on unit values")

    def contains(self, v: Value) -> bool:
        return isinstance(v, VUnit)

    def __repr__(self) -> str:
        return "UnitSpace"


class UnitObjectI(Space):
    """The monoidal unit I: a singleton with slack ∞ (Appendix B.2)."""

    slack = INF

    def distance(self, a: Value, b: Value) -> Decimal:
        return Decimal(0)

    def contains(self, v: Value) -> bool:
        return isinstance(v, VUnit)

    def __repr__(self) -> str:
        return "UnitObjectI"


class TensorSpace(Space):
    """The monoidal product X ⊗ Y (Equation 21)."""

    def __init__(self, left: Space, right: Space) -> None:
        self.left = left
        self.right = right
        rl, rr = left.slack, right.slack
        with decimal.localcontext() as ctx:
            ctx.prec = DISTANCE_PRECISION
            if rr == INF:
                self.slack = rl
            elif rl == INF:
                self.slack = rr
            else:
                self.slack = rl + rr

    def distance(self, a: Value, b: Value) -> Decimal:
        if not (isinstance(a, VPair) and isinstance(b, VPair)):
            raise TypeError("tensor distance is defined on pairs")
        dl = self.left.distance(a.left, b.left)
        dr = self.right.distance(a.right, b.right)
        if dl == INF or dr == INF:
            return INF
        if self.right.slack == INF:
            return dl
        if self.left.slack == INF:
            return dr
        with decimal.localcontext() as ctx:
            ctx.prec = DISTANCE_PRECISION
            return max(dl + self.right.slack, dr + self.left.slack)

    def excess(self, a: Value, b: Value) -> Decimal:
        # Equation 22: excess of a tensor is the max of component excesses.
        if not (isinstance(a, VPair) and isinstance(b, VPair)):
            raise TypeError("tensor excess is defined on pairs")
        return max(self.left.excess(a.left, b.left), self.right.excess(a.right, b.right))

    def contains(self, v: Value) -> bool:
        return (
            isinstance(v, VPair)
            and self.left.contains(v.left)
            and self.right.contains(v.right)
        )

    def __repr__(self) -> str:
        return f"TensorSpace({self.left!r}, {self.right!r})"


class SumSpace(Space):
    """The coproduct X + Y (Equation 35); requires finite slacks."""

    def __init__(self, left: Space, right: Space) -> None:
        if left.slack == INF or right.slack == INF:
            raise ValueError("coproducts require finite slack (Appendix B.4)")
        self.left = left
        self.right = right
        with decimal.localcontext() as ctx:
            ctx.prec = DISTANCE_PRECISION
            self.slack = left.slack + right.slack

    def distance(self, a: Value, b: Value) -> Decimal:
        with decimal.localcontext() as ctx:
            ctx.prec = DISTANCE_PRECISION
            if isinstance(a, VInl) and isinstance(b, VInl):
                d = self.left.distance(a.body, b.body)
                return INF if d == INF else d + self.right.slack
            if isinstance(a, VInr) and isinstance(b, VInr):
                d = self.right.distance(a.body, b.body)
                return INF if d == INF else d + self.left.slack
            return INF

    def contains(self, v: Value) -> bool:
        if isinstance(v, VInl):
            return self.left.contains(v.body)
        if isinstance(v, VInr):
            return self.right.contains(v.body)
        return False

    def __repr__(self) -> str:
        return f"SumSpace({self.left!r}, {self.right!r})"


class GradedSpace(Space):
    """``D_r X``: the graded comonad on objects (Appendix B.5).

    Same carrier and distance as ``X``; slack shifted by ``r``.  The shift
    is what turns lens Property 1 into a backward error *budget*.
    """

    def __init__(self, inner: Space, r: Union[Decimal, float, int]) -> None:
        self.inner = inner
        self.r = Decimal(r) if not isinstance(r, Decimal) else r
        with decimal.localcontext() as ctx:
            ctx.prec = DISTANCE_PRECISION
            self.slack = INF if inner.slack == INF else inner.slack + self.r

    def distance(self, a: Value, b: Value) -> Decimal:
        return self.inner.distance(a, b)

    def excess(self, a: Value, b: Value) -> Decimal:
        return ext_sub(self.inner.excess(a, b), self.r)

    def contains(self, v: Value) -> bool:
        return self.inner.contains(v)

    def __repr__(self) -> str:
        return f"GradedSpace({self.inner!r}, {self.r})"


def space_of_type(ty: Type) -> Space:
    """Interpret a Bean type as a space with zero slack (Section 6.1.2)."""
    if isinstance(ty, Num):
        return NumSpace()
    if isinstance(ty, Unit):
        return UnitSpace()
    if isinstance(ty, Discrete):
        return DiscreteSpace(space_of_type(ty.inner))
    if isinstance(ty, Tensor):
        return TensorSpace(space_of_type(ty.left), space_of_type(ty.right))
    if isinstance(ty, Sum):
        return SumSpace(space_of_type(ty.left), space_of_type(ty.right))
    raise TypeError(f"no space for type {ty!r}")


def type_distance(ty: Type, a: Value, b: Value) -> Decimal:
    """``d_{⟦ty⟧}(a, b)`` — the distance used by Theorem 3.1."""
    return space_of_type(ty).distance(a, b)


def grade_bound(grade: Grade, u: float) -> Decimal:
    """A grade's numeric bound ``coeff · u/(1-u)`` as an exact Decimal."""
    with decimal.localcontext() as ctx:
        ctx.prec = DISTANCE_PRECISION
        du = to_decimal(u)
        eps = du / (1 - du)
        return (
            Decimal(grade.coeff.numerator) * eps / Decimal(grade.coeff.denominator)
        )


# Re-exported convenience: numeric eps for floats.
_ = eps_from_roundoff
