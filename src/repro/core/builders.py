"""Fluent helpers for building Bean ASTs programmatically.

The benchmark generators build programs with thousands of operations;
writing raw constructor calls for those is noisy.  These helpers keep
generator code close to the paper's pseudocode::

    body = let_("v", mul(var("x0"), var("y0")),
           let_("w", mul(var("x1"), var("y1")),
           add(var("v"), var("w"))))
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

from . import ast_nodes as A
from .types import Type

__all__ = [
    "var",
    "unit",
    "bang",
    "pair",
    "tuple_",
    "inl",
    "inr",
    "let_",
    "dlet",
    "let_pair",
    "dlet_pair",
    "case",
    "add",
    "sub",
    "mul",
    "dmul",
    "div",
    "rnd",
    "call",
    "let_chain",
    "destructure_vector",
]

ExprLike = Union[A.Expr, str]


def _expr(e: ExprLike) -> A.Expr:
    return A.Var(e) if isinstance(e, str) else e


def var(name: str) -> A.Var:
    return A.Var(name)


def unit() -> A.UnitVal:
    return A.UnitVal()


def bang(e: ExprLike) -> A.Bang:
    return A.Bang(_expr(e))


def pair(left: ExprLike, right: ExprLike) -> A.Pair:
    return A.Pair(_expr(left), _expr(right))


def tuple_(*parts: ExprLike) -> A.Expr:
    """A balanced n-ary tuple (matches ``types.tensor_of``)."""
    exprs = [_expr(p) for p in parts]
    if not exprs:
        raise ValueError("empty tuple")
    return _balanced(exprs)


def _balanced(parts: List[A.Expr]) -> A.Expr:
    if len(parts) == 1:
        return parts[0]
    mid = len(parts) // 2
    return A.Pair(_balanced(parts[:mid]), _balanced(parts[mid:]))


def inl(e: ExprLike, other: Type = None) -> A.Inl:  # type: ignore[assignment]
    from .types import UNIT

    return A.Inl(_expr(e), UNIT if other is None else other)


def inr(e: ExprLike, other: Type = None) -> A.Inr:  # type: ignore[assignment]
    from .types import UNIT

    return A.Inr(_expr(e), UNIT if other is None else other)


def let_(name: str, bound: ExprLike, body: ExprLike) -> A.Let:
    return A.Let(name, _expr(bound), _expr(body))


def dlet(name: str, bound: ExprLike, body: ExprLike) -> A.DLet:
    return A.DLet(name, _expr(bound), _expr(body))


def let_pair(left: str, right: str, bound: ExprLike, body: ExprLike) -> A.LetPair:
    return A.LetPair(left, right, _expr(bound), _expr(body))


def dlet_pair(left: str, right: str, bound: ExprLike, body: ExprLike) -> A.DLetPair:
    return A.DLetPair(left, right, _expr(bound), _expr(body))


def case(
    scrutinee: ExprLike,
    left_name: str,
    left: ExprLike,
    right_name: str,
    right: ExprLike,
) -> A.Case:
    return A.Case(_expr(scrutinee), left_name, _expr(left), right_name, _expr(right))


def add(left: ExprLike, right: ExprLike) -> A.PrimOp:
    return A.PrimOp(A.Op.ADD, _expr(left), _expr(right))


def sub(left: ExprLike, right: ExprLike) -> A.PrimOp:
    return A.PrimOp(A.Op.SUB, _expr(left), _expr(right))


def mul(left: ExprLike, right: ExprLike) -> A.PrimOp:
    return A.PrimOp(A.Op.MUL, _expr(left), _expr(right))


def dmul(left: ExprLike, right: ExprLike) -> A.PrimOp:
    return A.PrimOp(A.Op.DMUL, _expr(left), _expr(right))


def div(left: ExprLike, right: ExprLike) -> A.PrimOp:
    return A.PrimOp(A.Op.DIV, _expr(left), _expr(right))


def rnd(body: ExprLike) -> A.Rnd:
    return A.Rnd(_expr(body))


def call(name: str, *args: ExprLike) -> A.Call:
    return A.Call(name, [_expr(a) for a in args])


def let_chain(bindings: Iterable[Tuple[str, ExprLike]], body: ExprLike) -> A.Expr:
    """``let n1 = e1 in ... let nk = ek in body`` from a binding list."""
    result = _expr(body)
    for name, bound in reversed(list(bindings)):
        result = A.Let(name, _expr(bound), result)
    return result


def destructure_vector(
    source: str,
    names: Sequence[str],
    body: A.Expr,
    *,
    discrete: bool = False,
) -> A.Expr:
    """Bind the ``n`` leaves of a balanced vector ``source`` to ``names``.

    Emits the log-depth cascade of pair eliminations matching
    :func:`repro.core.types.vector`.
    """
    names = list(names)
    if not names:
        raise ValueError("cannot destructure into zero names")

    def go(current: str, leaves: List[str], wrapped: A.Expr) -> A.Expr:
        if len(leaves) == 1:
            # A single leaf: rebind via the kernel let so the name matches.
            if leaves[0] == current:
                return wrapped
            ctor = A.DLet if discrete else A.Let
            return ctor(leaves[0], A.Var(current), wrapped)
        mid = len(leaves) // 2
        left_leaves, right_leaves = leaves[:mid], leaves[mid:]
        left_name = left_leaves[0] if len(left_leaves) == 1 else A.fresh_name("v")
        right_name = right_leaves[0] if len(right_leaves) == 1 else A.fresh_name("v")
        inner = wrapped
        if len(right_leaves) > 1:
            inner = go(right_name, right_leaves, inner)
        if len(left_leaves) > 1:
            inner = go(left_name, left_leaves, inner)
        ctor = A.DLetPair if discrete else A.LetPair
        return ctor(left_name, right_name, A.Var(current), inner)

    return go(source, names, body)
