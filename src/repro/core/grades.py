"""Exact grade arithmetic for Bean's coeffect system.

Grades in Bean (Section 3.2 of the paper) are elements of the preordered
monoid ``(R_{>=0}, +, 0)``; they annotate linear variable bindings and mean
"this variable may absorb at most this much relative backward error".

Every grade that Bean's typing rules can produce is a non-negative rational
multiple of the machine constant ``eps = u / (1 - u)`` (the primitive rules
only ever add ``eps`` or ``eps/2``), so we represent grades *exactly* as a
:class:`fractions.Fraction` coefficient of ``eps``.  This keeps inference
exact — the tool reports ``3ε/2`` rather than an approximation — and defers
floating point to the moment a numeric bound is printed for a concrete unit
roundoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

__all__ = [
    "Grade",
    "ZERO",
    "EPS",
    "HALF_EPS",
    "unit_roundoff",
    "eps_from_roundoff",
]

#: Unit roundoff of IEEE-754 binary64 with round-to-nearest.
BINARY64_UNIT_ROUNDOFF = 2.0**-53

_CoeffLike = Union["Grade", Fraction, int]


def unit_roundoff(precision_bits: int = 53) -> float:
    """Unit roundoff ``u = 2**-p`` for a binary format with ``p`` bits.

    For IEEE binary64 with round-to-nearest this is ``2**-53``
    (Definition 2.1 of the paper).
    """
    if precision_bits <= 0:
        raise ValueError("precision must be a positive number of bits")
    return 2.0**-precision_bits


def eps_from_roundoff(u: float) -> float:
    """Olver's model constant ``eps = u / (1 - u)`` (Equation 4)."""
    if not 0.0 < u < 1.0:
        raise ValueError(f"unit roundoff must lie in (0, 1), got {u!r}")
    return u / (1.0 - u)


@dataclass(frozen=True, order=False)
class Grade:
    """A backward error grade ``coeff * eps`` with an exact coefficient.

    Supports the operations Bean's type system needs: sum (monoid
    operation), ``max`` via comparison, and the preorder ``<=``.
    """

    coeff: Fraction

    def __init__(self, coeff: _CoeffLike = 0) -> None:
        if isinstance(coeff, Grade):
            coeff = coeff.coeff
        coeff = Fraction(coeff)
        if coeff < 0:
            raise ValueError(f"grades must be non-negative, got {coeff}")
        object.__setattr__(self, "coeff", coeff)

    # -- monoid ------------------------------------------------------------

    def __add__(self, other: _CoeffLike) -> "Grade":
        return Grade(self.coeff + Grade(other).coeff)

    __radd__ = __add__

    def __mul__(self, scalar: Union[int, Fraction]) -> "Grade":
        return Grade(self.coeff * Fraction(scalar))

    __rmul__ = __mul__

    # -- preorder ----------------------------------------------------------

    def __le__(self, other: _CoeffLike) -> bool:
        return self.coeff <= Grade(other).coeff

    def __lt__(self, other: _CoeffLike) -> bool:
        return self.coeff < Grade(other).coeff

    def __ge__(self, other: _CoeffLike) -> bool:
        return self.coeff >= Grade(other).coeff

    def __gt__(self, other: _CoeffLike) -> bool:
        return self.coeff > Grade(other).coeff

    # -- rendering & evaluation ---------------------------------------------

    @property
    def is_zero(self) -> bool:
        return self.coeff == 0

    def evaluate(self, u: float = BINARY64_UNIT_ROUNDOFF) -> float:
        """Numeric value of this grade for unit roundoff ``u``.

        This mirrors the OCaml prototype, which computes bounds with
        IEEE-754 double arithmetic from the fixed parameter ``eps``.
        """
        return float(self.coeff) * eps_from_roundoff(u)

    def __str__(self) -> str:
        c = self.coeff
        if c == 0:
            return "0"
        if c == 1:
            return "ε"
        if c.denominator == 1:
            return f"{c.numerator}ε"
        if c.numerator == 1:
            return f"ε/{c.denominator}"
        return f"{c.numerator}ε/{c.denominator}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Grade({self.coeff!r})"


#: The zero grade (no backward error may be assigned).
ZERO = Grade(0)
#: The grade ``ε`` used by Add/Sub/DMul (Figure 3).
EPS = Grade(1)
#: The grade ``ε/2`` used by Mul/Div (Figure 3).
HALF_EPS = Grade(Fraction(1, 2))
