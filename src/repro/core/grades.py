"""Exact grade arithmetic for Bean's coeffect system.

Grades in Bean (Section 3.2 of the paper) are elements of the preordered
monoid ``(R_{>=0}, +, 0)``; they annotate linear variable bindings and mean
"this variable may absorb at most this much relative backward error".

Every grade that Bean's typing rules can produce is a non-negative rational
multiple of the machine constant ``eps = u / (1 - u)`` (the primitive rules
only ever add ``eps`` or ``eps/2``), so we represent grades *exactly* as a
:class:`fractions.Fraction` coefficient of ``eps``.  This keeps inference
exact — the tool reports ``3ε/2`` rather than an approximation — and defers
floating point to the moment a numeric bound is printed for a concrete unit
roundoff.

Grade arithmetic is the checker's inner loop (one shift per primitive
operation, millions of them on the deep benchmarks), so the class is tuned
accordingly: ``__slots__`` instances, a lazily cached hash, fast paths in
``__add__``/comparisons that skip re-validation when both operands are
already grades, and an intern table for the small half-integer coefficients
the primitive rules actually produce, so ``Grade(0) is ZERO`` and repeated
shifts reuse one object instead of allocating a ``Fraction`` per op.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

__all__ = [
    "Grade",
    "ZERO",
    "EPS",
    "HALF_EPS",
    "unit_roundoff",
    "eps_from_roundoff",
]

#: Unit roundoff of IEEE-754 binary64 with round-to-nearest.
BINARY64_UNIT_ROUNDOFF = 2.0**-53

_CoeffLike = Union["Grade", Fraction, int]


def unit_roundoff(precision_bits: int = 53) -> float:
    """Unit roundoff ``u = 2**-p`` for a binary format with ``p`` bits.

    For IEEE binary64 with round-to-nearest this is ``2**-53``
    (Definition 2.1 of the paper).
    """
    if precision_bits <= 0:
        raise ValueError("precision must be a positive number of bits")
    return 2.0**-precision_bits


def eps_from_roundoff(u: float) -> float:
    """Olver's model constant ``eps = u / (1 - u)`` (Equation 4)."""
    if not 0.0 < u < 1.0:
        raise ValueError(f"unit roundoff must lie in (0, 1), got {u!r}")
    return u / (1.0 - u)


class Grade:
    """A backward error grade ``coeff * eps`` with an exact coefficient.

    Supports the operations Bean's type system needs: sum (monoid
    operation), ``max`` via comparison, and the preorder ``<=``.
    Instances are immutable; common small coefficients are interned.
    """

    __slots__ = ("coeff", "_hash")

    def __new__(cls, coeff: _CoeffLike = 0) -> "Grade":
        if type(coeff) is Grade:
            return coeff
        if isinstance(coeff, Grade):  # a subclass instance: copy the coeff
            coeff = coeff.coeff
        if type(coeff) is not Fraction:
            coeff = Fraction(coeff)
        if coeff < 0:
            raise ValueError(f"grades must be non-negative, got {coeff}")
        interned = _INTERNED.get(coeff)
        if interned is not None:
            return interned
        return cls._build(coeff)

    @classmethod
    def _build(cls, coeff: Fraction) -> "Grade":
        self = object.__new__(cls)
        object.__setattr__(self, "coeff", coeff)
        object.__setattr__(self, "_hash", None)
        return self

    @staticmethod
    def _make(coeff: Fraction) -> "Grade":
        """Internal fast constructor for already-validated coefficients."""
        interned = _INTERNED.get(coeff)
        if interned is not None:
            return interned
        return Grade._build(coeff)

    # -- immutability ------------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError(f"Grade is immutable; cannot set {name!r}")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"Grade is immutable; cannot delete {name!r}")

    # -- equality / hashing ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if isinstance(other, Grade):
            return self.coeff == other.coeff
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, Grade):
            return self.coeff != other.coeff
        return NotImplemented

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((Grade, self.coeff))
            object.__setattr__(self, "_hash", h)
        return h

    # -- monoid ------------------------------------------------------------

    def __add__(self, other: _CoeffLike) -> "Grade":
        if type(other) is Grade:
            if other.coeff == 0:
                return self
            if self.coeff == 0:
                return other
            return Grade._make(self.coeff + other.coeff)
        return Grade._make(self.coeff + Grade(other).coeff)

    __radd__ = __add__

    def __mul__(self, scalar: Union[int, Fraction]) -> "Grade":
        return Grade(self.coeff * Fraction(scalar))

    __rmul__ = __mul__

    # -- preorder ----------------------------------------------------------

    def __le__(self, other: _CoeffLike) -> bool:
        if type(other) is Grade:
            return self.coeff <= other.coeff
        return self.coeff <= Grade(other).coeff

    def __lt__(self, other: _CoeffLike) -> bool:
        if type(other) is Grade:
            return self.coeff < other.coeff
        return self.coeff < Grade(other).coeff

    def __ge__(self, other: _CoeffLike) -> bool:
        if type(other) is Grade:
            return self.coeff >= other.coeff
        return self.coeff >= Grade(other).coeff

    def __gt__(self, other: _CoeffLike) -> bool:
        if type(other) is Grade:
            return self.coeff > other.coeff
        return self.coeff > Grade(other).coeff

    # -- rendering & evaluation ---------------------------------------------

    @property
    def is_zero(self) -> bool:
        return self.coeff == 0

    def evaluate(self, u: float = BINARY64_UNIT_ROUNDOFF) -> float:
        """Numeric value of this grade for unit roundoff ``u``.

        This mirrors the OCaml prototype, which computes bounds with
        IEEE-754 double arithmetic from the fixed parameter ``eps``.
        """
        return float(self.coeff) * eps_from_roundoff(u)

    def __str__(self) -> str:
        c = self.coeff
        if c == 0:
            return "0"
        if c == 1:
            return "ε"
        if c.denominator == 1:
            return f"{c.numerator}ε"
        if c.numerator == 1:
            return f"ε/{c.denominator}"
        return f"{c.numerator}ε/{c.denominator}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Grade({self.coeff!r})"

    def __reduce__(self):
        return (Grade, (self.coeff,))


#: Interned grades: the half-integer coefficients the primitive rules emit.
#: (Shifts on deep programs revisit these constantly; larger sums fall out
#: of the table and allocate normally.)
_INTERNED = {}
for _n in range(0, 129):
    for _d in (1, 2):
        _f = Fraction(_n, _d)
        if _f not in _INTERNED:
            _INTERNED[_f] = Grade._build(_f)
del _n, _d, _f

#: The zero grade (no backward error may be assigned).
ZERO = Grade(0)
#: The grade ``ε`` used by Add/Sub/DMul (Figure 3).
EPS = Grade(1)
#: The grade ``ε/2`` used by Mul/Div (Figure 3).
HALF_EPS = Grade(Fraction(1, 2))
