"""Bean types (Figure 2 of the paper).

The grammar is::

    σ, τ ::= unit | num | σ ⊗ σ | σ + σ | α      (types)
    α    ::= m(σ)                                (discrete types)

Types wrapped in the modality ``m`` are *discrete*: they denote spaces with
the discrete metric, carry no backward error, and may be duplicated freely.
All other types are *linear*.

Types are immutable and structurally hashable.  Helper constructors build
the vector/matrix shorthands used throughout Section 4 (``R^n`` as balanced
tensor trees, so that deep benchmark programs keep type depth ``O(log n)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = [
    "Type",
    "Unit",
    "Num",
    "Tensor",
    "Sum",
    "Discrete",
    "UNIT",
    "NUM",
    "DNUM",
    "tensor_of",
    "vector",
    "matrix",
    "tensor_leaves",
    "is_discrete",
    "strip_discrete",
]


class Type:
    """Base class for Bean types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class Unit(Type):
    """The unit type with a single inhabitant ``()``."""

    def __str__(self) -> str:
        return "unit"


@dataclass(frozen=True)
class Num(Type):
    """The numeric base type ``num`` (reals with the RP metric)."""

    def __str__(self) -> str:
        return "num"


@dataclass(frozen=True)
class Tensor(Type):
    """Tensor (monoidal) product ``left ⊗ right``."""

    left: Type
    right: Type

    def __str__(self) -> str:
        return f"({self.left} ⊗ {self.right})"


@dataclass(frozen=True)
class Sum(Type):
    """Coproduct ``left + right`` (e.g. ``num + unit`` for division)."""

    left: Type
    right: Type

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"


@dataclass(frozen=True)
class Discrete(Type):
    """The discrete modality ``m(σ)``: duplicable, error-free data."""

    inner: Type

    def __str__(self) -> str:
        return f"m({self.inner})"


UNIT = Unit()
NUM = Num()
#: Discrete numbers ``m(num)`` — the type of the second argument of dmul.
DNUM = Discrete(NUM)


def tensor_of(parts: Tuple[Type, ...] | list) -> Type:
    """Combine ``parts`` into a balanced tensor tree.

    A balanced shape keeps both type depth and pattern-match depth
    logarithmic, which matters for the size-1000 benchmarks.
    """
    parts = tuple(parts)
    if not parts:
        raise ValueError("cannot build a tensor of zero components")
    if len(parts) == 1:
        return parts[0]
    mid = len(parts) // 2
    return Tensor(tensor_of(parts[:mid]), tensor_of(parts[mid:]))


def vector(n: int, base: Type = NUM) -> Type:
    """The type ``R^n`` as a balanced tensor of ``n`` copies of ``base``."""
    if n <= 0:
        raise ValueError("vector length must be positive")
    return tensor_of((base,) * n)


def matrix(rows: int, cols: int, base: Type = NUM) -> Type:
    """The type ``R^{rows x cols}`` in row-major order (Section 4)."""
    return tensor_of(tuple(vector(cols, base) for _ in range(rows)))


def tensor_leaves(ty: Type) -> Iterator[Type]:
    """Yield the leaf types of a tensor tree, left to right."""
    stack = [ty]
    while stack:
        t = stack.pop()
        if isinstance(t, Tensor):
            stack.append(t.right)
            stack.append(t.left)
        else:
            yield t


def is_discrete(ty: Type) -> bool:
    """Whether ``ty`` is a discrete type ``m(σ)``."""
    return isinstance(ty, Discrete)


def strip_discrete(ty: Type) -> Type:
    """Remove a single layer of the discrete modality, if present."""
    return ty.inner if isinstance(ty, Discrete) else ty
