"""The declarative typing relation of Figure 3, as a decision procedure.

The declarative system allows weakening grades (e.g. the Add rule types
``add x y`` in any context granting *at least* ``ε`` to each operand), so a
single term admits many judgments.  By algorithmic soundness and
completeness (Theorems 5.1 and 5.2), the judgment ``Φ | Γ ⊢ e : σ`` is
derivable **iff** inference succeeds on the skeleton of Γ and produces a
subcontext of Γ with result type σ.  That equivalence is exactly how we
decide derivability here.

An *independent* second implementation of bound inference (used for
differential testing of the checker itself) lives in
:mod:`repro.core.pathcost`.
"""

from __future__ import annotations

from typing import Mapping, Optional

from . import ast_nodes as A
from .checker import InferenceEngine, Judgment
from .context import DiscreteContext, LinearContext
from .deepstack import call_with_deep_stack
from .errors import BeanError
from .types import Type

__all__ = ["is_derivable"]


def is_derivable(
    phi: DiscreteContext,
    gamma: LinearContext,
    expr: A.Expr,
    ty: Type,
    judgments: Optional[Mapping[str, Judgment]] = None,
) -> bool:
    """Decide whether ``Φ | Γ ⊢ e : ty`` holds in the system of Figure 3."""
    engine = InferenceEngine(judgments)
    try:
        inferred_ctx, inferred_ty = call_with_deep_stack(
            engine.infer, expr, phi, gamma.skeleton()
        )
    except BeanError:
        return False
    return inferred_ty == ty and inferred_ctx.is_subcontext_of(gamma)
