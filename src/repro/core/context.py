"""Typing contexts for Bean (Section 3.2).

A judgment ``Φ | Γ ⊢ e : τ`` uses two contexts:

* ``Φ`` — the *discrete* context: reusable variables that can carry **no**
  backward error.  Bindings ``z : α`` have no grade.
* ``Γ`` — the *linear* context: restricted-use variables.  Bindings
  ``x :_r σ`` carry a grade ``r`` bounding the backward error the program
  may assign to ``x``.

The operations implemented here are exactly those the type system needs:
disjoint union ``Γ, Δ``; the grade shift ``q + Γ`` that pushes ``q``
backward error through a judgment; pointwise ``max`` (used by the
algorithmic ``case`` rule); the subcontext order ``Γ ⊑ Δ``; and *skeletons*
(grade-erased contexts, the input of the inference algorithm in §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from .errors import BeanTypeError, LinearityError
from .grades import Grade, ZERO
from .types import Type

__all__ = ["Binding", "LinearContext", "DiscreteContext", "Skeleton"]


@dataclass(frozen=True)
class Binding:
    """A graded linear binding ``x :_grade ty``."""

    grade: Grade
    ty: Type


class LinearContext:
    """An immutable linear typing context ``x1 :_r1 σ1, ..., xn :_rn σn``."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Optional[Mapping[str, Binding]] = None) -> None:
        self._bindings: Dict[str, Binding] = dict(bindings or {})

    # -- construction --------------------------------------------------------

    @classmethod
    def of(cls, **named: Tuple[Grade, Type]) -> "LinearContext":
        """Build a context from ``name=(grade, type)`` keyword pairs."""
        return cls({k: Binding(g, t) for k, (g, t) in named.items()})

    def bind(self, name: str, grade: Grade, ty: Type) -> "LinearContext":
        """Extend with a fresh binding; the name must not already occur."""
        if name in self._bindings:
            raise LinearityError(f"variable {name!r} already bound linearly")
        new = dict(self._bindings)
        new[name] = Binding(grade, ty)
        return LinearContext(new)

    def remove(self, *names: str) -> "LinearContext":
        """Drop ``names`` (missing names are ignored — Γ \\ {x, y})."""
        new = {k: v for k, v in self._bindings.items() if k not in names}
        return LinearContext(new)

    # -- queries --------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __getitem__(self, name: str) -> Binding:
        return self._bindings[name]

    def get(self, name: str) -> Optional[Binding]:
        return self._bindings.get(name)

    def __len__(self) -> int:
        return len(self._bindings)

    def __iter__(self) -> Iterator[str]:
        return iter(self._bindings)

    def items(self) -> Iterable[Tuple[str, Binding]]:
        return self._bindings.items()

    def domain(self) -> frozenset:
        return frozenset(self._bindings)

    # -- context algebra ------------------------------------------------------

    def disjoint_union(self, other: "LinearContext") -> "LinearContext":
        """``Γ, Δ`` — fails with :class:`LinearityError` on shared names."""
        overlap = self._bindings.keys() & other._bindings.keys()
        if overlap:
            shared = ", ".join(sorted(overlap))
            raise LinearityError(
                f"linear variable(s) used in two subexpressions: {shared}"
            )
        # Copy the larger side: benchmark programs union a tiny context into
        # a large one thousands of times.
        small, large = self._bindings, other._bindings
        if len(small) > len(large):
            small, large = large, small
        new = dict(large)
        new.update(small)
        return LinearContext(new)

    def shift(self, grade: Grade) -> "LinearContext":
        """``q + Γ`` — add ``q`` to every grade (pushes backward error)."""
        if grade.is_zero:
            return self
        return LinearContext(
            {k: Binding(b.grade + grade, b.ty) for k, b in self._bindings.items()}
        )

    def merge_max(self, other: "LinearContext") -> "LinearContext":
        """Pointwise max of grades over the union of domains.

        Shared names must agree on their type.  Used by the algorithmic
        ``case`` rule: ``max{Γ2 \\ {x}, Γ3 \\ {y}}`` (Figure 7).
        """
        new = dict(self._bindings)
        for name, b in other._bindings.items():
            cur = new.get(name)
            if cur is None:
                new[name] = b
            else:
                if cur.ty != b.ty:
                    raise BeanTypeError(
                        f"variable {name!r} has conflicting types "
                        f"{cur.ty} and {b.ty} across case branches"
                    )
                new[name] = Binding(max(cur.grade, b.grade, key=lambda g: g.coeff), b.ty)
        return LinearContext(new)

    def is_subcontext_of(self, other: "LinearContext") -> bool:
        """``self ⊑ other``: same-or-smaller domain with tighter grades."""
        for name, b in self._bindings.items():
            ob = other.get(name)
            if ob is None or ob.ty != b.ty or not b.grade <= ob.grade:
                return False
        return True

    def skeleton(self) -> "Skeleton":
        """Erase grades, yielding the inference algorithm's input."""
        return Skeleton({k: b.ty for k, b in self._bindings.items()})

    # -- rendering -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearContext):
            return NotImplemented
        return self._bindings == other._bindings

    def __str__(self) -> str:
        if not self._bindings:
            return "∅"
        parts = [f"{k} :{b.grade} {b.ty}" for k, b in sorted(self._bindings.items())]
        return ", ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinearContext({self._bindings!r})"


class DiscreteContext:
    """An immutable discrete typing context ``z1 : α1, ..., zn : αn``."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Optional[Mapping[str, Type]] = None) -> None:
        self._bindings: Dict[str, Type] = dict(bindings or {})

    def bind(self, name: str, ty: Type) -> "DiscreteContext":
        new = dict(self._bindings)
        new[name] = ty
        return DiscreteContext(new)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __getitem__(self, name: str) -> Type:
        return self._bindings[name]

    def get(self, name: str) -> Optional[Type]:
        return self._bindings.get(name)

    def __len__(self) -> int:
        return len(self._bindings)

    def __iter__(self) -> Iterator[str]:
        return iter(self._bindings)

    def items(self) -> Iterable[Tuple[str, Type]]:
        return self._bindings.items()

    def domain(self) -> frozenset:
        return frozenset(self._bindings)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteContext):
            return NotImplemented
        return self._bindings == other._bindings

    def __str__(self) -> str:
        if not self._bindings:
            return "∅"
        parts = [f"{k} : {t}" for k, t in sorted(self._bindings.items())]
        return ", ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiscreteContext({self._bindings!r})"


class Skeleton:
    """A grade-erased linear context ``Γ•`` — the inference input (§5.1)."""

    __slots__ = ("_types",)

    def __init__(self, types: Optional[Mapping[str, Type]] = None) -> None:
        self._types: Dict[str, Type] = dict(types or {})

    def bind(self, name: str, ty: Type) -> "Skeleton":
        new = dict(self._types)
        new[name] = ty
        return Skeleton(new)

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __getitem__(self, name: str) -> Type:
        return self._types[name]

    def get(self, name: str) -> Optional[Type]:
        return self._types.get(name)

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterator[str]:
        return iter(self._types)

    def items(self) -> Iterable[Tuple[str, Type]]:
        return self._types.items()

    def with_zero_grades(self) -> LinearContext:
        """View the skeleton as a context with all grades zero."""
        return LinearContext({k: Binding(ZERO, t) for k, t in self._types.items()})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Skeleton):
            return NotImplemented
        return self._types == other._types

    def __str__(self) -> str:
        if not self._types:
            return "∅"
        return ", ".join(f"{k} : {t}" for k, t in sorted(self._types.items()))
