"""Recursive-descent parser for Bean's concrete syntax.

Grammar (expressions follow the paper's Figure 2, with the Section 4
conveniences: calls, tuple patterns, and n-ary tuples)::

    program    ::= definition+
    definition ::= NAME param* (':' type)? ':=' expr
    param      ::= '(' pattern ':' type ')'
    pattern    ::= NAME | '(' pattern (',' pattern)+ ')'

    type       ::= tensor ('+' tensor)?
    tensor     ::= atomtype (('*' | '⊗') atomtype)*        (right assoc)
    atomtype   ::= 'num' | 'R' | 'unit' | '!' atomtype
                 | 'vec' '(' INT ')' | 'mat' '(' INT ',' INT ')'
                 | '(' type ')'

    expr       ::= 'let' pattern '=' expr 'in' expr
                 | 'dlet' pattern '=' expr 'in' expr
                 | 'case' expr 'of' 'inl' bname '=>' expr
                                '|' 'inr' bname '=>' expr
                 | op atom atom                 (op ∈ add sub mul dmul div)
                 | 'inl' ('{' type '}')? atom
                 | 'inr' ('{' type '}')? atom
                 | '!' atom
                 | NAME atom+                   (call)
                 | atom
    atom       ::= NAME | '(' ')' | '(' expr (',' expr)* ')'

Tuple patterns and n-ary tuples are desugared to *balanced* nested pairs,
matching :func:`repro.core.types.tensor_of`, so pattern depth stays
logarithmic in the tuple width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from fractions import Fraction

from . import ast_nodes as A
from .errors import BeanSyntaxError
from .grades import Grade
from .lexer import Token, TokenKind, tokenize
from .types import NUM, UNIT, Discrete, Sum, Tensor, Type, is_discrete, matrix, vector

__all__ = ["parse_program", "parse_expression", "parse_type"]

_OPS = {
    "add": A.Op.ADD,
    "sub": A.Op.SUB,
    "mul": A.Op.MUL,
    "dmul": A.Op.DMUL,
    "div": A.Op.DIV,
}

#: Pattern = a variable name or a tuple of sub-patterns.
Pattern = Union[str, Tuple["Pattern", ...]]


@dataclass
class _Parser:
    tokens: List[Token]
    pos: int = 0

    # -- token plumbing -------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != TokenKind.EOF:
            self.pos += 1
        return tok

    def expect_symbol(self, sym: str) -> Token:
        tok = self.advance()
        if not tok.is_symbol(sym):
            raise BeanSyntaxError(
                f"expected {sym!r}, found {tok.describe()}", tok.line, tok.column
            )
        return tok

    def expect_keyword(self, word: str) -> Token:
        tok = self.advance()
        if not tok.is_keyword(word):
            raise BeanSyntaxError(
                f"expected keyword {word!r}, found {tok.describe()}",
                tok.line,
                tok.column,
            )
        return tok

    def expect_ident(self) -> Token:
        tok = self.advance()
        if tok.kind != TokenKind.IDENT:
            raise BeanSyntaxError(
                f"expected an identifier, found {tok.describe()}",
                tok.line,
                tok.column,
            )
        return tok

    def expect_int(self) -> int:
        tok = self.advance()
        if tok.kind != TokenKind.INT:
            raise BeanSyntaxError(
                f"expected an integer, found {tok.describe()}", tok.line, tok.column
            )
        return int(tok.text)

    def fail(self, message: str) -> BeanSyntaxError:
        tok = self.peek()
        return BeanSyntaxError(message, tok.line, tok.column)

    # -- types ----------------------------------------------------------------

    def parse_type(self) -> Type:
        left = self.parse_tensor_type()
        if self.peek().is_symbol("+"):
            self.advance()
            right = self.parse_type()
            return Sum(left, right)
        return left

    def parse_tensor_type(self) -> Type:
        left = self.parse_atom_type()
        if self.peek().is_symbol("*") or self.peek().is_symbol("⊗"):
            self.advance()
            right = self.parse_tensor_type()
            return Tensor(left, right)
        return left

    def parse_atom_type(self) -> Type:
        tok = self.peek()
        if tok.is_keyword("num") or tok.is_keyword("R"):
            self.advance()
            return NUM
        if tok.is_keyword("unit"):
            self.advance()
            return UNIT
        if tok.is_symbol("!"):
            self.advance()
            return Discrete(self.parse_atom_type())
        if tok.is_keyword("vec"):
            self.advance()
            self.expect_symbol("(")
            n = self.expect_int()
            self.expect_symbol(")")
            return vector(n)
        if tok.is_keyword("mat"):
            self.advance()
            self.expect_symbol("(")
            rows = self.expect_int()
            self.expect_symbol(",")
            cols = self.expect_int()
            self.expect_symbol(")")
            return matrix(rows, cols)
        if tok.is_symbol("("):
            self.advance()
            inner = self.parse_type()
            self.expect_symbol(")")
            return inner
        raise self.fail(f"expected a type, found {tok.describe()}")

    # -- patterns --------------------------------------------------------------

    def parse_pattern(self) -> Pattern:
        tok = self.peek()
        if tok.kind == TokenKind.IDENT:
            return self.advance().text
        if tok.is_symbol("("):
            self.advance()
            parts: List[Pattern] = [self.parse_pattern()]
            while self.peek().is_symbol(","):
                self.advance()
                parts.append(self.parse_pattern())
            self.expect_symbol(")")
            if len(parts) == 1:
                return parts[0]
            return tuple(parts)
        raise self.fail(f"expected a pattern, found {tok.describe()}")

    # -- expressions -------------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        tok = self.peek()
        if tok.is_keyword("let") or tok.is_keyword("dlet"):
            # Iterate over the let-spine instead of recursing: benchmark
            # programs chain thousands of binders, and the rest of the
            # pipeline (IR lowering, sweeps) is iterative too.
            frames = []
            while True:
                tok = self.peek()
                if not (tok.is_keyword("let") or tok.is_keyword("dlet")):
                    break
                discrete = tok.is_keyword("dlet")
                self.advance()  # let / dlet
                pattern = self.parse_pattern()
                self.expect_symbol("=")
                bound = self.parse_expr()
                self.expect_keyword("in")
                frames.append((pattern, bound, discrete))
            expr = self.parse_expr()
            for pattern, bound, discrete in reversed(frames):
                expr = bind_pattern(pattern, bound, expr, discrete=discrete)
            return expr
        if tok.is_keyword("case"):
            return self.parse_case()
        if tok.kind == TokenKind.KEYWORD and tok.text in _OPS:
            self.advance()
            left = self.parse_atom()
            right = self.parse_atom()
            return A.PrimOp(_OPS[tok.text], left, right)
        if tok.is_keyword("rnd"):
            self.advance()
            return A.Rnd(self.parse_atom())
        if tok.is_keyword("inl") or tok.is_keyword("inr"):
            return self.parse_injection()
        if tok.is_symbol("!"):
            self.advance()
            return A.Bang(self.parse_atom())
        if (
            tok.kind == TokenKind.IDENT
            and self._starts_atom(self.peek(1))
            and not self._begins_definition(self.pos + 1)
        ):
            name = self.advance().text
            args = [self.parse_atom()]
            while self._starts_atom(self.peek()) and not self._begins_definition(
                self.pos
            ):
                args.append(self.parse_atom())
            return A.Call(name, args)
        return self.parse_atom()

    @staticmethod
    def _starts_atom(tok: Token) -> bool:
        return tok.kind == TokenKind.IDENT or tok.is_symbol("(")

    def _begins_definition(self, idx: int) -> bool:
        """Whether the token at ``idx`` starts a new top-level definition.

        Definitions look like ``NAME (pat : type) ... :=``; the telltale is
        a ``:`` or ``:=`` after the name (possibly inside the first
        parenthesized parameter), which no expression can produce.
        """
        tok = self.tokens[min(idx, len(self.tokens) - 1)]
        if tok.kind != TokenKind.IDENT:
            return False
        after = self.tokens[min(idx + 1, len(self.tokens) - 1)]
        if after.is_symbol(":=") or after.is_symbol(":"):
            return True
        if not after.is_symbol("("):
            return False
        depth = 0
        for j in range(idx + 1, len(self.tokens)):
            t = self.tokens[j]
            if t.is_symbol("("):
                depth += 1
            elif t.is_symbol(")"):
                depth -= 1
                if depth == 0:
                    return False
            elif t.is_symbol(":") or t.is_symbol(":="):
                return True
            elif t.kind == TokenKind.EOF:
                return False
        return False

    def parse_case(self) -> A.Expr:
        self.expect_keyword("case")
        scrutinee = self.parse_expr()
        self.expect_keyword("of")
        self.expect_keyword("inl")
        left_name = self.parse_branch_name()
        self.expect_symbol("=>")
        left = self.parse_expr()
        self.expect_symbol("|")
        self.expect_keyword("inr")
        right_name = self.parse_branch_name()
        self.expect_symbol("=>")
        right = self.parse_expr()
        return A.Case(scrutinee, left_name, left, right_name, right)

    def parse_branch_name(self) -> str:
        if self.peek().is_symbol("("):
            self.advance()
            name = self.expect_ident().text
            self.expect_symbol(")")
            return name
        return self.expect_ident().text

    def parse_injection(self) -> A.Expr:
        tok = self.advance()
        other: Type = UNIT
        if self.peek().is_symbol("{"):
            self.advance()
            other = self.parse_type()
            self.expect_symbol("}")
        body = self.parse_atom()
        if tok.is_keyword("inl"):
            return A.Inl(body, other)
        return A.Inr(body, other)

    def parse_atom(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == TokenKind.IDENT:
            return A.Var(self.advance().text)
        if tok.is_symbol("("):
            self.advance()
            if self.peek().is_symbol(")"):
                self.advance()
                return A.UnitVal()
            parts = [self.parse_expr()]
            while self.peek().is_symbol(","):
                self.advance()
                parts.append(self.parse_expr())
            self.expect_symbol(")")
            if len(parts) == 1:
                return parts[0]
            return balanced_tuple(parts)
        raise self.fail(f"expected an expression, found {tok.describe()}")

    # -- definitions -----------------------------------------------------------

    def parse_grade_annotation(self) -> Grade:
        """``@ n`` or ``@ n/d``: a declared bound in units of ε."""
        numerator = self.expect_int()
        denominator = 1
        if self.peek().is_symbol("/"):
            self.advance()
            denominator = self.expect_int()
        if denominator == 0:
            raise self.fail("grade annotation denominator cannot be zero")
        return Grade(Fraction(numerator, denominator))

    def parse_definition(self) -> A.Definition:
        name = self.expect_ident().text
        raw_params: List[Tuple[Pattern, Type, Optional[Grade]]] = []
        while self.peek().is_symbol("("):
            self.advance()
            pattern = self.parse_pattern()
            self.expect_symbol(":")
            ty = self.parse_type()
            declared_grade: Optional[Grade] = None
            if self.peek().is_symbol("@"):
                self.advance()
                declared_grade = self.parse_grade_annotation()
            self.expect_symbol(")")
            raw_params.append((pattern, ty, declared_grade))
        declared: Optional[Type] = None
        if self.peek().is_symbol(":"):
            self.advance()
            declared = self.parse_type()
        self.expect_symbol(":=")
        body = self.parse_expr()
        params: List[A.Param] = []
        for pattern, ty, declared_grade in reversed(raw_params):
            if isinstance(pattern, str):
                params.append(A.Param(pattern, ty, declared_grade))
            else:
                fresh = A.fresh_name("arg")
                params.append(A.Param(fresh, ty, declared_grade))
                body = destructure(pattern, fresh, ty, body)
        params.reverse()
        return A.Definition(name, params, body, declared_result=declared)

    def parse_program(self) -> A.Program:
        definitions = []
        while self.peek().kind != TokenKind.EOF:
            definitions.append(self.parse_definition())
        if not definitions:
            raise self.fail("a program must contain at least one definition")
        return A.Program(definitions)


# ---------------------------------------------------------------------------
# Pattern desugaring
# ---------------------------------------------------------------------------


def balanced_tuple(parts: Sequence[A.Expr]) -> A.Expr:
    """Combine expressions into balanced nested pairs (like tensor_of)."""
    parts = list(parts)
    if len(parts) == 1:
        return parts[0]
    mid = len(parts) // 2
    return A.Pair(balanced_tuple(parts[:mid]), balanced_tuple(parts[mid:]))


def _split_pattern(pattern: Tuple) -> Tuple[Pattern, Pattern]:
    """Split a tuple pattern the same way balanced tensors split."""
    if len(pattern) == 2:
        return pattern[0], pattern[1]
    mid = len(pattern) // 2
    left = pattern[:mid] if mid > 1 else pattern[0]
    right = pattern[mid:] if len(pattern) - mid > 1 else pattern[mid]
    return left, right


def bind_pattern(
    pattern: Pattern, bound: A.Expr, body: A.Expr, *, discrete: bool
) -> A.Expr:
    """Desugar ``let pattern = bound in body`` (or ``dlet``)."""
    if isinstance(pattern, str):
        if discrete:
            return A.DLet(pattern, bound, body)
        return A.Let(pattern, bound, body)
    left, right = _split_pattern(pattern)
    left_name = left if isinstance(left, str) else A.fresh_name("l")
    right_name = right if isinstance(right, str) else A.fresh_name("r")
    if not isinstance(right, str):
        body = bind_pattern(right, A.Var(right_name), body, discrete=discrete)
    if not isinstance(left, str):
        body = bind_pattern(left, A.Var(left_name), body, discrete=discrete)
    if discrete:
        return A.DLetPair(left_name, right_name, bound, body)
    return A.LetPair(left_name, right_name, bound, body)


def destructure(pattern: Pattern, name: str, ty: Type, body: A.Expr) -> A.Expr:
    """Destructure parameter ``name : ty`` against a tuple pattern.

    Discrete parameter types (``m(...)`` or tensors of discrete components)
    are eliminated with ``dlet``; everything else with ``let``.
    """
    discrete = _eliminates_discretely(ty)
    return bind_pattern(pattern, A.Var(name), body, discrete=discrete)


def _eliminates_discretely(ty: Type) -> bool:
    if is_discrete(ty):
        return True
    if isinstance(ty, Tensor):
        return is_discrete(ty.left) and is_discrete(ty.right)
    return False


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def parse_program(source: str) -> A.Program:
    """Parse a whole Bean source file into a :class:`Program`."""
    return _Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> A.Expr:
    """Parse a single Bean expression (no definitions)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expr()
    tok = parser.peek()
    if tok.kind != TokenKind.EOF:
        raise BeanSyntaxError(
            f"unexpected trailing input: {tok.describe()}", tok.line, tok.column
        )
    return expr


def parse_type(source: str) -> Type:
    """Parse a Bean type."""
    parser = _Parser(tokenize(source))
    ty = parser.parse_type()
    tok = parser.peek()
    if tok.kind != TokenKind.EOF:
        raise BeanSyntaxError(
            f"unexpected trailing input: {tok.describe()}", tok.line, tok.column
        )
    return ty
