"""The Bean language front end: syntax, types, and bound inference."""

from . import ast_nodes, builders
from .ast_nodes import (
    Bang,
    Call,
    Case,
    Definition,
    DLet,
    DLetPair,
    Expr,
    Inl,
    Inr,
    Let,
    LetPair,
    Op,
    Pair,
    Param,
    PrimOp,
    Program,
    UnitVal,
    Var,
    count_flops,
    free_variables,
)
from .checker import Judgment, check_definition, check_program, infer
from .context import Binding, DiscreteContext, LinearContext, Skeleton
from .errors import (
    BeanError,
    BeanSyntaxError,
    BeanTypeError,
    LinearityError,
    UnboundVariableError,
)
from .grades import EPS, HALF_EPS, ZERO, Grade, eps_from_roundoff, unit_roundoff
from .parser import parse_expression, parse_program, parse_type
from .pretty import pretty_definition, pretty_expr, pretty_program, pretty_type
from .types import (
    DNUM,
    NUM,
    UNIT,
    Discrete,
    Num,
    Sum,
    Tensor,
    Type,
    Unit,
    is_discrete,
    matrix,
    tensor_of,
    vector,
)

__all__ = [name for name in dir() if not name.startswith("_")]
