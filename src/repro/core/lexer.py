"""Tokenizer for Bean's concrete syntax.

The surface syntax mirrors the paper's listings (Section 4)::

    // comments run to end of line
    ScaleVec (a : !R) (x : vec(2)) : vec(2) :=
      let (x0, x1) = x in
      let u = dmul a x0 in
      let v = dmul a x1 in
      (u, v)

Keywords: ``let dlet in case of inl inr add sub mul dmul div
num R unit vec mat``.  ``!`` marks discrete types / promotion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .errors import BeanSyntaxError

__all__ = ["Token", "TokenKind", "tokenize"]

KEYWORDS = frozenset(
    {
        "let",
        "dlet",
        "in",
        "case",
        "of",
        "inl",
        "inr",
        "add",
        "sub",
        "mul",
        "dmul",
        "div",
        "rnd",
        "num",
        "R",
        "unit",
        "vec",
        "mat",
    }
)

# Multi-character symbols must come before their prefixes.
SYMBOLS = (
    ":=",
    "=>",
    "(",
    ")",
    "{",
    "}",
    ",",
    ":",
    "=",
    "|",
    "!",
    "+",
    "*",
    "⊗",
    "@",
    "/",
)


class TokenKind:
    """Token kinds (simple string constants)."""

    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    INT = "INT"
    SYMBOL = "SYMBOL"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    """A lexed token with 1-based source position."""

    kind: str
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == word

    def is_symbol(self, sym: str) -> bool:
        return self.kind == TokenKind.SYMBOL and self.text == sym

    def describe(self) -> str:
        if self.kind == TokenKind.EOF:
            return "end of input"
        return repr(self.text)


def _ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _ident_continue(ch: str) -> bool:
    return ch.isalnum() or ch in "_'"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`BeanSyntaxError` on bad input."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "/" and source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if _ident_start(ch):
            start = i
            while i < n and _ident_continue(source[i]):
                i += 1
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            yield Token(kind, text, line, col)
            col += i - start
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            yield Token(TokenKind.INT, source[start:i], line, col)
            col += i - start
            continue
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                yield Token(TokenKind.SYMBOL, sym, line, col)
                i += len(sym)
                col += len(sym)
                break
        else:
            raise BeanSyntaxError(f"unexpected character {ch!r}", line, col)
    yield Token(TokenKind.EOF, "", line, col)
