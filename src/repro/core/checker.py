"""Backward error bound inference for Bean.

This module implements the type checking / coeffect inference algorithm of
Section 5.1 (Figure 7, Appendix G).  Given a program without grade
annotations, the algorithm simultaneously

* checks that the program is well-formed (types match, strict linearity is
  respected),
* outputs the program's type, and
* infers the **tightest** per-variable relative backward error bound,
  written ``Φ | Γ•; e ⇒ Γ; σ`` in the paper.

The algorithm is bottom-up: the inferred context of a compound expression
is assembled from the inferred contexts of its parts via disjoint union
``Γ, Δ`` (whose failure is exactly a strict-linearity violation), the grade
shift ``r + Γ`` from the Let/⊗E/+E rules, and pointwise ``max`` across case
branches.  It is sound and complete for the declarative system of Figure 3
(Theorems 5.1 and 5.2); ``tests/test_algorithm_theorems.py`` checks both
properties on randomized programs.

Beyond the paper's kernel the checker supports two conveniences used by
the paper's own examples (Section 4):

* arithmetic on general subexpressions, typed as the evident
  ``let``-expansion;
* calls to earlier top-level definitions, typed compositionally from the
  callee's inferred judgment (equivalent to typing the inlined body).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from . import ast_nodes as A
from .context import Binding, DiscreteContext, LinearContext, Skeleton
from .deepstack import call_with_deep_stack
from .errors import BeanTypeError, LinearityError, UnboundVariableError
from .grades import EPS, HALF_EPS, ZERO, Grade
from .types import (
    NUM,
    UNIT,
    Discrete,
    Num,
    Sum,
    Tensor,
    Type,
    is_discrete,
)

__all__ = ["Judgment", "infer", "check_definition", "check_program", "InferenceEngine"]


@dataclass(frozen=True)
class Judgment:
    """An inferred judgment ``Φ | Γ ⊢ Name p1 .. pn : τ`` for a definition.

    ``linear`` is the tightest inferred context: it contains exactly the
    linear parameters the body *uses*, each with its least grade.  Unused
    linear parameters admit grade 0 (see :meth:`grade_of`).
    """

    name: str
    params: Tuple[A.Param, ...]
    discrete: DiscreteContext
    linear: LinearContext
    result: Type

    def grade_of(self, param: str) -> Grade:
        """The inferred backward error bound for a linear parameter."""
        binding = self.linear.get(param)
        if binding is not None:
            return binding.grade
        for p in self.params:
            if p.name == param:
                if is_discrete(p.ty):
                    raise BeanTypeError(
                        f"{param!r} is a discrete parameter of {self.name!r}; "
                        "discrete variables carry no backward error bound"
                    )
                return ZERO
        raise KeyError(f"{self.name!r} has no parameter {param!r}")

    def max_linear_grade(self) -> Grade:
        """The largest grade over all linear parameters (0 if none)."""
        grades = [b.grade for _, b in self.linear.items()]
        return max(grades, key=lambda g: g.coeff, default=ZERO)

    def format(self, u: Optional[float] = None) -> str:
        """Human-readable judgment, optionally with numeric bounds."""
        phi = str(self.discrete)
        parts = []
        for p in self.params:
            if is_discrete(p.ty):
                continue
            grade = self.grade_of(p.name)
            if u is None:
                parts.append(f"{p.name} :{grade} {p.ty}")
            else:
                parts.append(f"{p.name} :{grade} (= {grade.evaluate(u):.3e}) {p.ty}")
        gamma = ", ".join(parts) if parts else "∅"
        return f"{phi} | {gamma} ⊢ {self.name} : {self.result}"


class InferenceEngine:
    """Stateful driver holding the judgments of previously checked defs."""

    def __init__(self, judgments: Optional[Mapping[str, Judgment]] = None) -> None:
        self.judgments: Dict[str, Judgment] = dict(judgments or {})

    # -- the algorithm -------------------------------------------------------

    def infer(
        self,
        expr: A.Expr,
        phi: DiscreteContext,
        skeleton: Skeleton,
    ) -> Tuple[LinearContext, Type]:
        """``Φ | Γ•; e ⇒ Γ; σ`` — see the module docstring."""
        method = self._DISPATCH[type(expr)]
        return method(self, expr, phi, skeleton)

    # Each rule below mirrors one rule of Figure 7.

    def _infer_var(self, expr: A.Var, phi, skel):
        ty = skel.get(expr.name)
        if ty is not None:  # (Var): x :_0 σ with the least grade 0
            return LinearContext({expr.name: Binding(ZERO, ty)}), ty
        dty = phi.get(expr.name)
        if dty is not None:  # (DVar): discrete variables cost nothing
            return LinearContext(), dty
        raise UnboundVariableError(f"unbound variable {expr.name!r}")

    def _infer_unit(self, expr: A.UnitVal, phi, skel):
        return LinearContext(), UNIT

    def _infer_bang(self, expr: A.Bang, phi, skel):
        # (Disc): Φ | Γ ⊢ e : σ  gives  Φ | Γ ⊢ !e : m(σ)
        ctx, ty = self.infer(expr.body, phi, skel)
        return ctx, Discrete(ty)

    def _infer_pair(self, expr: A.Pair, phi, skel):
        # (⊗I) — disjoint union enforces strict linearity.
        ctx1, ty1 = self.infer(expr.left, phi, skel)
        ctx2, ty2 = self.infer(expr.right, phi, skel)
        return ctx1.disjoint_union(ctx2), Tensor(ty1, ty2)

    def _infer_inl(self, expr: A.Inl, phi, skel):
        ctx, ty = self.infer(expr.body, phi, skel)
        return ctx, Sum(ty, expr.other)

    def _infer_inr(self, expr: A.Inr, phi, skel):
        ctx, ty = self.infer(expr.body, phi, skel)
        return ctx, Sum(expr.other, ty)

    def _infer_let(self, expr: A.Let, phi, skel):
        # (Let): Γ• ; e ⇒ Γ1 ; τ   and   Γ•, x : τ ; f ⇒ Γ2 ; σ
        #        result (r + Γ1), Γ2 \ {x}  where  x :_r τ ∈ Γ2 else r = 0
        ctx1, ty1 = self.infer(expr.bound, phi, skel)
        self._check_fresh(expr.name, phi, skel)
        ctx2, ty2 = self.infer(expr.body, phi, skel.bind(expr.name, ty1))
        r = self._grade_and_drop(ctx2, expr.name)
        return ctx1.shift(r).disjoint_union(ctx2.remove(expr.name)), ty2

    def _infer_dlet(self, expr: A.DLet, phi, skel):
        # (DLet): the bound expression must have discrete type; no shift.
        ctx1, ty1 = self.infer(expr.bound, phi, skel)
        if not is_discrete(ty1):
            raise BeanTypeError(
                f"dlet requires a discrete (m-typed) bound expression, got {ty1}"
            )
        self._check_fresh(expr.name, phi, skel)
        ctx2, ty2 = self.infer(expr.body, phi.bind(expr.name, ty1), skel)
        return ctx1.disjoint_union(ctx2), ty2

    def _infer_letpair(self, expr: A.LetPair, phi, skel):
        # (⊗E_σ): eliminate a linear tensor; the shift r is the max of the
        # grades the body assigns to the two components.
        ctx1, ty1 = self.infer(expr.bound, phi, skel)
        if not isinstance(ty1, Tensor):
            raise BeanTypeError(f"let-pair requires a tensor type, got {ty1}")
        self._check_fresh(expr.left, phi, skel)
        self._check_fresh(expr.right, phi, skel)
        if expr.left == expr.right:
            raise LinearityError(
                f"pair pattern binds {expr.left!r} twice; components must be distinct"
            )
        inner = skel.bind(expr.left, ty1.left).bind(expr.right, ty1.right)
        ctx2, ty2 = self.infer(expr.body, phi, inner)
        r_left = self._grade_and_drop(ctx2, expr.left)
        r_right = self._grade_and_drop(ctx2, expr.right)
        r = max(r_left, r_right, key=lambda g: g.coeff)
        body_ctx = ctx2.remove(expr.left, expr.right)
        return ctx1.shift(r).disjoint_union(body_ctx), ty2

    def _infer_dletpair(self, expr: A.DLetPair, phi, skel):
        # (⊗E_α): eliminate a pair of discrete components.  We accept both
        # encodings of a "discrete pair": a tensor of discrete types
        # α1 ⊗ α2, and a discrete tensor m(σ1 ⊗ σ2) (the two are isomorphic
        # in Bel — both carry the discrete metric on pairs).
        ctx1, ty1 = self.infer(expr.bound, phi, skel)
        if isinstance(ty1, Tensor) and is_discrete(ty1.left) and is_discrete(ty1.right):
            left_ty, right_ty = ty1.left, ty1.right
        elif isinstance(ty1, Discrete) and isinstance(ty1.inner, Tensor):
            left_ty = Discrete(ty1.inner.left)
            right_ty = Discrete(ty1.inner.right)
        else:
            raise BeanTypeError(
                f"dlet-pair requires a pair of discrete components, got {ty1}"
            )
        self._check_fresh(expr.left, phi, skel)
        self._check_fresh(expr.right, phi, skel)
        if expr.left == expr.right:
            raise LinearityError(
                f"pair pattern binds {expr.left!r} twice; components must be distinct"
            )
        inner_phi = phi.bind(expr.left, left_ty).bind(expr.right, right_ty)
        ctx2, ty2 = self.infer(expr.body, inner_phi, skel)
        return ctx1.disjoint_union(ctx2), ty2

    def _infer_case(self, expr: A.Case, phi, skel):
        # (+E): the scrutinee context is shifted by the max grade either
        # branch assigns to its bound variable; branch contexts are merged
        # with pointwise max (a variable needs only the worse of the two
        # bounds, since exactly one branch runs).
        ctx1, scrut_ty = self.infer(expr.scrutinee, phi, skel)
        if not isinstance(scrut_ty, Sum):
            raise BeanTypeError(f"case requires a sum-typed scrutinee, got {scrut_ty}")
        self._check_fresh(expr.left_name, phi, skel)
        ctx2, left_ty = self.infer(
            expr.left, phi, skel.bind(expr.left_name, scrut_ty.left)
        )
        self._check_fresh(expr.right_name, phi, skel)
        ctx3, right_ty = self.infer(
            expr.right, phi, skel.bind(expr.right_name, scrut_ty.right)
        )
        if left_ty != right_ty:
            raise BeanTypeError(
                f"case branches disagree: {left_ty} vs {right_ty}"
            )
        q_left = self._grade_and_drop(ctx2, expr.left_name)
        q_right = self._grade_and_drop(ctx3, expr.right_name)
        q = max(q_left, q_right, key=lambda g: g.coeff)
        branches = ctx2.remove(expr.left_name).merge_max(ctx3.remove(expr.right_name))
        return ctx1.shift(q).disjoint_union(branches), left_ty

    def _infer_primop(self, expr: A.PrimOp, phi, skel):
        # (Add, Sub, Mul, Div, DMul) generalized to subexpressions: the
        # operand grade from Figure 3 is pushed onto the operand's context,
        # exactly as the let-expansion would.
        op = expr.op
        if op is A.Op.DMUL:
            ctx1, ty1 = self.infer(expr.left, phi, skel)
            if ty1 != Discrete(NUM):
                raise BeanTypeError(
                    f"dmul's first operand must be discrete m(num), got {ty1}"
                )
            ctx2, ty2 = self.infer(expr.right, phi, skel)
            self._require_num(ty2, "dmul")
            return ctx1.disjoint_union(ctx2.shift(EPS)), NUM
        grade = EPS if op in (A.Op.ADD, A.Op.SUB) else HALF_EPS
        ctx1, ty1 = self.infer(expr.left, phi, skel)
        self._require_num(ty1, str(op))
        ctx2, ty2 = self.infer(expr.right, phi, skel)
        self._require_num(ty2, str(op))
        merged = ctx1.shift(grade).disjoint_union(ctx2.shift(grade))
        result: Type = Sum(NUM, UNIT) if op is A.Op.DIV else NUM
        return merged, result

    def _infer_rnd(self, expr: A.Rnd, phi, skel):
        # (Rnd, derived): an explicit rounding charges its operand ε —
        # the extension the paper sketches in Section 2.2.1.
        ctx, ty = self.infer(expr.body, phi, skel)
        self._require_num(ty, "rnd")
        return ctx.shift(EPS), NUM

    def _infer_call(self, expr: A.Call, phi, skel):
        judgment = self.judgments.get(expr.name)
        if judgment is None:
            raise UnboundVariableError(
                f"call to unknown definition {expr.name!r} "
                "(definitions must appear before their uses)"
            )
        if len(expr.args) != len(judgment.params):
            raise BeanTypeError(
                f"{expr.name!r} expects {len(judgment.params)} argument(s), "
                f"got {len(expr.args)}"
            )
        combined = LinearContext()
        for param, arg in zip(judgment.params, expr.args):
            ctx, ty = self.infer(arg, phi, skel)
            if ty != param.ty:
                raise BeanTypeError(
                    f"argument for {param.name!r} of {expr.name!r} has type "
                    f"{ty}, expected {param.ty}"
                )
            if not is_discrete(param.ty):
                ctx = ctx.shift(judgment.grade_of(param.name))
            combined = combined.disjoint_union(ctx)
        return combined, judgment.result

    # -- helpers ----------------------------------------------------------------

    @staticmethod
    def _require_num(ty: Type, op: str) -> None:
        if not isinstance(ty, Num):
            raise BeanTypeError(f"{op} requires num operands, got {ty}")

    @staticmethod
    def _grade_and_drop(ctx: LinearContext, name: str) -> Grade:
        binding = ctx.get(name)
        return binding.grade if binding is not None else ZERO

    @staticmethod
    def _check_fresh(name: str, phi: DiscreteContext, skel: Skeleton) -> None:
        if name in phi or name in skel:
            raise BeanTypeError(
                f"binding {name!r} shadows a variable already in scope; "
                "Bean programs must use distinct names"
            )

    _DISPATCH = {
        A.Var: _infer_var,
        A.UnitVal: _infer_unit,
        A.Bang: _infer_bang,
        A.Pair: _infer_pair,
        A.Inl: _infer_inl,
        A.Inr: _infer_inr,
        A.Let: _infer_let,
        A.DLet: _infer_dlet,
        A.LetPair: _infer_letpair,
        A.DLetPair: _infer_dletpair,
        A.Case: _infer_case,
        A.PrimOp: _infer_primop,
        A.Rnd: _infer_rnd,
        A.Call: _infer_call,
    }


def infer(
    expr: A.Expr,
    phi: Optional[DiscreteContext] = None,
    skeleton: Optional[Skeleton] = None,
    judgments: Optional[Mapping[str, Judgment]] = None,
) -> Tuple[LinearContext, Type]:
    """Infer the tightest context and type of a bare expression.

    This entry point runs the recursive reference engine (the rule-by-rule
    transcription of Figure 7); whole definitions go through the iterative
    IR path of :func:`check_definition` instead.
    """
    engine = InferenceEngine(judgments)
    return call_with_deep_stack(
        engine.infer, expr, phi or DiscreteContext(), skeleton or Skeleton()
    )


#: Identity-keyed cache of judgments for call-free checks (lazy import of
#: repro.ir avoids a module cycle).  Behind it sits the optional
#: persistent artifact layer (repro.ir.cache.set_persistent_cache), so
#: inferred grades survive process restarts alongside the lowered IR.
_JUDGMENT_CACHE = None


def _build_judgment(definition: A.Definition) -> "Judgment":
    from ..ir.cache import persistent_cache

    def build() -> "Judgment":
        return _check_definition_uncached(definition, None, "ir")

    persistent = persistent_cache()
    if persistent is None:
        return build()
    return persistent.get("judgment", definition, None, build)


def _judgment_cache():
    global _JUDGMENT_CACHE
    if _JUDGMENT_CACHE is None:
        from ..ir.cache import IdentityCache

        _JUDGMENT_CACHE = IdentityCache(_build_judgment)
    return _JUDGMENT_CACHE


def clear_judgment_caches() -> None:
    """Drop the identity-keyed judgment caches (cache layer switches)."""
    global _JUDGMENT_CACHE, _PROGRAM_CACHE
    if _JUDGMENT_CACHE is not None:
        _JUDGMENT_CACHE.clear()
    if _PROGRAM_CACHE is not None:
        _PROGRAM_CACHE.clear()


def check_definition(
    definition: A.Definition,
    judgments: Optional[Mapping[str, Judgment]] = None,
    *,
    engine: str = "ir",
) -> Judgment:
    """Check one definition and infer its judgment.

    Parameters annotated with a discrete type enter Φ; the rest form the
    skeleton Γ• whose tightest grades the algorithm infers.

    ``engine`` selects the inference implementation: ``"ir"`` (default)
    compiles the body to the flat IR and runs grade inference as a single
    reverse sweep — fully iterative, so Sum 10000 checks under the default
    recursion limit; ``"recursive"`` runs the structural reference engine
    on a deep auxiliary stack.  Both produce identical judgments.
    """
    if engine == "ir" and not judgments:
        return _judgment_cache().get(definition)
    return _check_definition_uncached(definition, judgments, engine)


def _check_definition_uncached(
    definition: A.Definition,
    judgments: Optional[Mapping[str, Judgment]],
    engine: str,
) -> Judgment:
    phi = DiscreteContext()
    skel = Skeleton()
    for p in definition.params:
        if p.name in phi or p.name in skel:
            raise BeanTypeError(
                f"duplicate parameter {p.name!r} in {definition.name!r}"
            )
        if is_discrete(p.ty):
            phi = phi.bind(p.name, p.ty)
        else:
            skel = skel.bind(p.name, p.ty)
    if engine == "ir":
        from ..ir.infer import infer_definition_ir

        ctx, ty, _ir = infer_definition_ir(definition, judgments)
    elif engine == "recursive":
        rec = InferenceEngine(judgments)
        ctx, ty = call_with_deep_stack(rec.infer, definition.body, phi, skel)
    else:
        raise ValueError(f"unknown inference engine {engine!r}")
    if definition.declared_result is not None and definition.declared_result != ty:
        raise BeanTypeError(
            f"{definition.name!r} declares result type "
            f"{definition.declared_result} but its body has type {ty}"
        )
    judgment = Judgment(definition.name, definition.params, phi, ctx, ty)
    for p in definition.params:
        if p.declared_grade is None:
            continue
        if is_discrete(p.ty):
            raise BeanTypeError(
                f"{definition.name!r}: discrete parameter {p.name!r} cannot "
                "carry a backward error contract (it absorbs no error)"
            )
        inferred = judgment.grade_of(p.name)
        if not inferred <= p.declared_grade:
            raise BeanTypeError(
                f"{definition.name!r}: stability contract violated for "
                f"{p.name!r}: declared at most {p.declared_grade} but the "
                f"body assigns {inferred}"
            )
    return judgment


#: Identity-keyed cache of whole-program check results.
_PROGRAM_CACHE = None


def check_program(program: A.Program, *, engine: str = "ir") -> Dict[str, Judgment]:
    """Check every definition in order; later defs may call earlier ones.

    Results for the default engine are cached by program identity, so
    repeatedly building lenses / witnesses over the same parsed program
    re-checks nothing.
    """
    if engine == "ir":
        global _PROGRAM_CACHE
        if _PROGRAM_CACHE is None:
            from ..ir.cache import IdentityCache

            _PROGRAM_CACHE = IdentityCache(_build_program_judgments)
        return _PROGRAM_CACHE.get(program)
    return _check_program_uncached(program, engine=engine)


def _build_program_judgments(program: A.Program) -> Dict[str, Judgment]:
    from ..ir.cache import persistent_cache

    def build() -> Dict[str, Judgment]:
        return _check_program_uncached(program)

    persistent = persistent_cache()
    if persistent is None:
        return build()
    return persistent.get("judgments", None, program, build)


def _check_program_uncached(
    program: A.Program, engine: str = "ir"
) -> Dict[str, Judgment]:
    judgments: Dict[str, Judgment] = {}
    for definition in program:
        judgments[definition.name] = check_definition(
            definition, judgments, engine=engine
        )
    return judgments
