"""Abstract syntax for Bean (Figure 2 of the paper).

Expressions::

    e, f ::= x | z | () | !e | (e, f) | inl e | inr e
           | let x = e in f          | let (x, y) = e in f
           | dlet z = e in f         | dlet (z1, z2) = e in f
           | case e' of (inl x. e | inr y. f)
           | add e f | sub e f | mul e f | dmul e f | div e f

Two extensions beyond the paper's kernel grammar, both used by the paper's
own examples:

* **Calls.**  Section 4 relies on "user-defined abbreviations" (``SVecAdd``
  calls ``ScaleVec``).  We model these as first-order :class:`Call` nodes;
  the checker types a call compositionally from the callee's inferred
  judgment, which is exactly what typing the ``let``-inlined body would
  produce.
* **Arithmetic on subexpressions.**  Figure 3 states the primitive rules on
  variables; ``add e f`` for general ``e`` abbreviates
  ``let x = e in let y = f in add x y`` and the checker types it that way.

Variables are plain names; whether a name is linear or discrete is resolved
against the typing context (the paper's ``x`` vs ``z`` convention is purely
notational).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Optional, Sequence, Tuple

from .grades import Grade
from .types import Type, UNIT

__all__ = [
    "Expr",
    "Var",
    "UnitVal",
    "Bang",
    "Pair",
    "Inl",
    "Inr",
    "Let",
    "LetPair",
    "DLet",
    "DLetPair",
    "Case",
    "Op",
    "PrimOp",
    "Rnd",
    "Call",
    "Param",
    "Definition",
    "Program",
    "subexpressions",
    "free_variables",
    "count_flops",
    "fresh_name",
]


_FRESH = itertools.count()


def fresh_name(hint: str = "t") -> str:
    """A program-unique variable name (used by desugaring).

    The leading underscore keeps generated names lexable (so printed
    programs re-parse) while staying out of the way of ordinary user
    names; the global counter makes collisions with *other generated*
    names impossible, and the checker's no-shadowing rule flags any
    collision with user code.
    """
    return f"_{hint}{next(_FRESH)}"


class Expr:
    """Base class for Bean expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Var(Expr):
    """A variable occurrence (linear or discrete, resolved by context)."""

    name: str


@dataclass(frozen=True)
class UnitVal(Expr):
    """The unit value ``()``."""


@dataclass(frozen=True)
class Bang(Expr):
    """``!e`` — promote a linear expression to discrete type (Disc rule)."""

    body: Expr


@dataclass(frozen=True)
class Pair(Expr):
    """``(left, right)`` — tensor introduction."""

    left: Expr
    right: Expr


@dataclass(frozen=True)
class Inl(Expr):
    """``inl e`` with the *right* summand type annotated (defaults unit)."""

    body: Expr
    other: Type = UNIT


@dataclass(frozen=True)
class Inr(Expr):
    """``inr e`` with the *left* summand type annotated (defaults unit)."""

    body: Expr
    other: Type = UNIT


@dataclass(frozen=True)
class Let(Expr):
    """``let name = bound in body`` — linear let (Let rule)."""

    name: str
    bound: Expr
    body: Expr


@dataclass(frozen=True)
class LetPair(Expr):
    """``let (left, right) = bound in body`` — linear pair elimination."""

    left: str
    right: str
    bound: Expr
    body: Expr


@dataclass(frozen=True)
class DLet(Expr):
    """``dlet name = bound in body`` — discrete let (DLet rule)."""

    name: str
    bound: Expr
    body: Expr


@dataclass(frozen=True)
class DLetPair(Expr):
    """``dlet (left, right) = bound in body`` — discrete pair elimination."""

    left: str
    right: str
    bound: Expr
    body: Expr


@dataclass(frozen=True)
class Case(Expr):
    """``case scrutinee of (inl x. left | inr y. right)``."""

    scrutinee: Expr
    left_name: str
    left: Expr
    right_name: str
    right: Expr


class Op(Enum):
    """Primitive floating-point operations (Section 2.2.1)."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    DMUL = "dmul"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class PrimOp(Expr):
    """``op left right`` for op in add/sub/mul/div/dmul.

    For ``dmul`` the *left* operand must have discrete type ``m(num)``
    and receives no backward error (DMul rule).
    """

    op: Op
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Rnd(Expr):
    """``rnd e`` — the unary rounding operation the paper suggests as an
    extension (Section 2.2.1): it makes a rounding step explicit,
    charging its operand ``ε`` backward error.

    Typing rule (derived in the same style as Add/Mul)::

        Φ | Γ, x :_{ε+r} num ⊢ rnd x : num

    since ``fl(x) = x·e^δ = x̃`` with ``|δ| ≤ ε`` exhibits the rounded
    result as the exact value of a perturbed input.
    """

    body: Expr


@dataclass(frozen=True)
class Call(Expr):
    """``Name arg1 .. argN`` — application of a top-level definition."""

    name: str
    args: Tuple[Expr, ...]

    def __init__(self, name: str, args: Sequence[Expr]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))


@dataclass(frozen=True)
class Param:
    """A formal parameter of a definition.

    ``ty`` being a :class:`~repro.core.types.Discrete` type places the
    parameter in the discrete context Φ; otherwise it is linear (Γ).
    ``declared_grade`` is an optional *stability contract*: the largest
    backward error grade (in ε units) the caller is willing to accept;
    the checker verifies the inferred grade against it.
    """

    name: str
    ty: Type
    declared_grade: Optional["Grade"] = None


@dataclass(frozen=True)
class Definition:
    """A top-level definition ``Name (p1 : T1) .. (pn : Tn) := body``.

    ``declared_result`` records an optional result-type annotation from the
    source; the checker verifies it against the inferred type if present.
    """

    name: str
    params: Tuple[Param, ...]
    body: Expr
    declared_result: Optional[Type] = None

    def __init__(
        self,
        name: str,
        params: Sequence[Param],
        body: Expr,
        declared_result: Optional[Type] = None,
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "params", tuple(params))
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "declared_result", declared_result)


@dataclass
class Program:
    """An ordered collection of definitions; later ones may call earlier."""

    definitions: Tuple[Definition, ...] = field(default_factory=tuple)

    def __init__(self, definitions: Sequence[Definition] = ()) -> None:
        self.definitions = tuple(definitions)
        by_name = {}
        for d in self.definitions:
            if d.name in by_name:
                raise ValueError(f"duplicate definition of {d.name!r}")
            by_name[d.name] = d
        self._by_name = by_name

    def __getitem__(self, name: str) -> Definition:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Definition]:
        return iter(self.definitions)

    @property
    def main(self) -> Definition:
        """The last definition — the entry point, by convention."""
        if not self.definitions:
            raise ValueError("empty program has no main definition")
        return self.definitions[-1]


# ---------------------------------------------------------------------------
# Traversals (iterative, so size-5000-op benchmark programs are fine)
# ---------------------------------------------------------------------------

_CHILD_FIELDS = {
    Bang: ("body",),
    Rnd: ("body",),
    Pair: ("left", "right"),
    Inl: ("body",),
    Inr: ("body",),
    Let: ("bound", "body"),
    LetPair: ("bound", "body"),
    DLet: ("bound", "body"),
    DLetPair: ("bound", "body"),
    Case: ("scrutinee", "left", "right"),
    PrimOp: ("left", "right"),
}


def _children(expr: Expr) -> Tuple[Expr, ...]:
    fields = _CHILD_FIELDS.get(type(expr))
    if fields is not None:
        return tuple(getattr(expr, f) for f in fields)
    if isinstance(expr, Call):
        return expr.args
    return ()


def subexpressions(expr: Expr) -> Iterator[Expr]:
    """All subexpressions of ``expr``, including itself (pre-order)."""
    stack = [expr]
    while stack:
        e = stack.pop()
        yield e
        stack.extend(reversed(_children(e)))


def free_variables(expr: Expr) -> set:
    """Free variable names of ``expr`` (linear and discrete alike)."""
    free: set = set()
    # (expr, bound-so-far) pairs; bound sets are small frozensets.
    stack: list = [(expr, frozenset())]
    while stack:
        e, bound = stack.pop()
        if isinstance(e, Var):
            if e.name not in bound:
                free.add(e.name)
        elif isinstance(e, (Let, DLet)):
            stack.append((e.bound, bound))
            stack.append((e.body, bound | {e.name}))
        elif isinstance(e, (LetPair, DLetPair)):
            stack.append((e.bound, bound))
            stack.append((e.body, bound | {e.left, e.right}))
        elif isinstance(e, Case):
            stack.append((e.scrutinee, bound))
            stack.append((e.left, bound | {e.left_name}))
            stack.append((e.right, bound | {e.right_name}))
        else:
            for child in _children(e):
                stack.append((child, bound))
    return free


def count_flops(expr: Expr, program: Optional[Program] = None) -> int:
    """Number of floating-point operations in ``expr``.

    Calls are counted by (transitively) counting the callee body, matching
    the paper's "Ops" column in Table 1.
    """
    cache: dict = {}

    def def_flops(name: str) -> int:
        if name not in cache:
            if program is None or name not in program:
                raise ValueError(f"cannot count flops of unknown call {name!r}")
            cache[name] = _flops_of(program[name].body)
        return cache[name]

    def _flops_of(e: Expr) -> int:
        total = 0
        for sub in subexpressions(e):
            if isinstance(sub, PrimOp):
                total += 1
            elif isinstance(sub, Call):
                total += def_flops(sub.name)
        return total

    return _flops_of(expr)
