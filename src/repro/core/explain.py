"""Blame traces: *where* a variable's backward error bound comes from.

Inference says DotProd's vector absorbs ``n·ε``; this module says *why*,
by walking the variable's (unique, by linearity) dataflow path to the
program result and recording every charge along it — the same traversal
as :mod:`repro.core.pathcost`, instrumented:

    >>> trace = explain_variable(check_definition(d), d, "a0")
    >>> print(format_trace(trace))
    a0 : 2ε
      ε    add a0 y1            (operand of add)
      ε    add x y2             (operand of add, via x)

Charges through ``let`` indirection are attributed to the operation
that consumed the bound variable, with a "via" note.  The CLI surface
is ``repro-bean explain FILE --var NAME``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from . import ast_nodes as A
from .checker import Judgment
from .deepstack import call_with_deep_stack
from .errors import BeanTypeError
from .grades import EPS, HALF_EPS, ZERO, Grade
from .pretty import pretty_expr

__all__ = ["Charge", "BlameTrace", "explain_variable", "format_trace"]


@dataclass(frozen=True)
class Charge:
    """One contribution to a variable's bound."""

    grade: Grade
    site: str  # rendered source of the charging construct
    reason: str  # e.g. "operand of add", "max over pair components"
    via: Optional[str] = None  # intermediate variable carrying the flow


@dataclass(frozen=True)
class BlameTrace:
    """The full accounting for one variable."""

    variable: str
    total: Grade
    charges: List[Charge]

    def check(self) -> bool:
        """The charges must sum to the total (up to max-joins, which are
        recorded as single charges)."""
        acc = ZERO
        for c in self.charges:
            acc = acc + c.grade
        return acc.coeff == self.total.coeff


def _clip(expr: A.Expr, limit: int = 40) -> str:
    text = pretty_expr(expr).replace("\n", " ")
    return text if len(text) <= limit else text[: limit - 3] + "..."


class _Explainer:
    """pathcost's traversal, instrumented to record charges."""

    def __init__(self) -> None:
        self._fv: Dict[int, frozenset] = {}

    def fv(self, expr: A.Expr) -> frozenset:
        key = id(expr)
        if key not in self._fv:
            self._fv[key] = frozenset(A.free_variables(expr))
        return self._fv[key]

    def demand(
        self, expr: A.Expr, var: str, via: Optional[str], out: List[Charge]
    ) -> Grade:
        if isinstance(expr, A.Var):
            return ZERO
        if isinstance(expr, (A.Bang, A.Inl, A.Inr)):
            return self.demand(expr.body, var, via, out)
        if isinstance(expr, A.Rnd):
            out.append(Charge(EPS, _clip(expr), "explicit rounding", via))
            return self.demand(expr.body, var, via, out) + EPS
        if isinstance(expr, A.Pair):
            side = expr.left if var in self.fv(expr.left) else expr.right
            return self.demand(side, var, via, out)
        if isinstance(expr, A.PrimOp):
            in_left = var in self.fv(expr.left)
            if expr.op is A.Op.DMUL:
                charge = ZERO if in_left else EPS
            elif expr.op in (A.Op.ADD, A.Op.SUB):
                charge = EPS
            else:
                charge = HALF_EPS
            if not charge.is_zero:
                out.append(
                    Charge(charge, _clip(expr), f"operand of {expr.op}", via)
                )
            side = expr.left if in_left else expr.right
            return self.demand(side, var, via, out) + charge
        if isinstance(expr, A.Let):
            if var in self.fv(expr.bound):
                inner = self.demand(expr.bound, var, via, out)
                if expr.name in self.fv(expr.body):
                    carried = self.demand(
                        expr.body, expr.name, via or expr.name, out
                    )
                    return inner + carried
                return inner
            return self.demand(expr.body, var, via, out)
        if isinstance(expr, A.DLet):
            if var in self.fv(expr.bound):
                return self.demand(expr.bound, var, via, out)
            return self.demand(expr.body, var, via, out)
        if isinstance(expr, (A.LetPair, A.DLetPair)):
            return self._explain_letpair(expr, var, via, out)
        if isinstance(expr, A.Case):
            return self._explain_case(expr, var, via, out)
        if isinstance(expr, A.Call):
            raise BeanTypeError(
                "explain requires a call-free body (inline calls first)"
            )
        raise BeanTypeError(f"{var!r} does not occur in {expr!r}")

    def _explain_letpair(self, expr, var, via, out) -> Grade:
        discrete = isinstance(expr, A.DLetPair)
        if var in self.fv(expr.bound):
            inner = self.demand(expr.bound, var, via, out)
            if discrete:
                return inner
            body_fv = self.fv(expr.body)
            best = ZERO
            best_charges: List[Charge] = []
            for component in (expr.left, expr.right):
                if component not in body_fv:
                    continue
                candidate: List[Charge] = []
                grade = self.demand(
                    expr.body, component, via or component, candidate
                )
                if grade.coeff > best.coeff or not best_charges:
                    best, best_charges = grade, candidate
            out.extend(best_charges)
            return inner + best
        return self.demand(expr.body, var, via, out)

    def _explain_case(self, expr: A.Case, var, via, out) -> Grade:
        if var in self.fv(expr.scrutinee):
            inner = self.demand(expr.scrutinee, var, via, out)
            best = ZERO
            best_charges: List[Charge] = []
            for name, branch in (
                (expr.left_name, expr.left),
                (expr.right_name, expr.right),
            ):
                if name not in self.fv(branch):
                    continue
                candidate: List[Charge] = []
                grade = self.demand(branch, name, via or name, candidate)
                if grade.coeff > best.coeff or not best_charges:
                    best, best_charges = grade, candidate
            out.extend(best_charges)
            return inner + best
        # Worst branch containing the variable.
        best = None
        best_charges: List[Charge] = []
        for branch in (expr.left, expr.right):
            if var not in self.fv(branch):
                continue
            candidate: List[Charge] = []
            grade = self.demand(branch, var, via, candidate)
            if best is None or grade.coeff > best.coeff:
                best, best_charges = grade, candidate
        if best is None:
            raise BeanTypeError(f"{var!r} does not occur in {expr!r}")
        out.extend(best_charges)
        return best


def explain_variable(
    judgment: Judgment,
    definition: A.Definition,
    variable: str,
    *,
    program: Optional[A.Program] = None,
) -> BlameTrace:
    """Trace the charges making up ``variable``'s inferred bound.

    Bodies containing calls are inlined first (hygienically), so the
    trace shows the actual operations.
    """
    body = definition.body
    if any(isinstance(e, A.Call) for e in A.subexpressions(body)):
        from ..lam_s.syntax import inline_calls

        body = inline_calls(body, program)
    explainer = _Explainer()
    charges: List[Charge] = []
    if variable in explainer.fv(body):
        total = call_with_deep_stack(
            explainer.demand, body, variable, None, charges
        )
    else:
        total = ZERO
    expected = judgment.grade_of(variable)
    if total.coeff != expected.coeff:
        raise AssertionError(
            f"blame trace for {variable!r} sums to {total}, but inference "
            f"says {expected} — explainer bug"
        )
    return BlameTrace(variable, total, charges)


def format_trace(trace: BlameTrace) -> str:
    """Render a trace like the module docstring's example."""
    lines = [f"{trace.variable} : {trace.total}"]
    if not trace.charges:
        lines.append("  (no backward error assigned)")
    for c in trace.charges:
        via = f", via {c.via}" if c.via else ""
        lines.append(f"  {str(c.grade):>5}  {c.site:<42} ({c.reason}{via})")
    return "\n".join(lines)
