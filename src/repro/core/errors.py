"""Diagnostics raised by the Bean front end."""

from __future__ import annotations

__all__ = [
    "BeanError",
    "BeanSyntaxError",
    "BeanTypeError",
    "LinearityError",
    "UnboundVariableError",
]


class BeanError(Exception):
    """Base class for all Bean front-end errors."""


class BeanSyntaxError(BeanError):
    """Lexing or parsing failure, with source position information."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class BeanTypeError(BeanError):
    """A term does not type-check under Figure 3 / Figure 7."""


class LinearityError(BeanTypeError):
    """A linear variable was duplicated across subexpressions.

    This is the condition Bean's strict linearity exists to reject
    (Section 2.2.3): duplicated linear variables could accumulate
    incompatible backward error requirements.
    """


class UnboundVariableError(BeanTypeError):
    """A variable was used without being bound in either context."""
