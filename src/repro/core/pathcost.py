"""An independent re-derivation of Bean's inferred bounds, per variable.

:mod:`repro.core.checker` computes all bounds simultaneously, bottom-up,
with context algebra.  This module computes the bound of **one** variable
at a time by following its dataflow path to the program result and summing
the grades charged along the way:

* each primitive charges its operand grade from Figure 3 (``ε`` for
  add/sub and for dmul's linear operand, ``ε/2`` for mul/div, ``0`` for
  dmul's discrete operand);
* a ``let`` charges the grade its body assigns to the bound variable
  (computed recursively);
* pair elimination and ``case`` charge the *max* over the bound
  components/branches — exactly the ``r = max{r1, r2}`` side conditions of
  Figure 7.

Because strict linearity guarantees a variable flows into at most one
subexpression, the path is unique and the recursion is well-defined.  The
two implementations share no code paths, which makes agreement between
them a meaningful differential test (``tests/test_pathcost_oracle.py``).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from . import ast_nodes as A
from .deepstack import call_with_deep_stack
from .errors import BeanTypeError
from .grades import EPS, HALF_EPS, ZERO, Grade

__all__ = ["variable_demand", "definition_demands"]


class _DemandOracle:
    def __init__(self, param_demands: Mapping[str, Dict[str, Grade]]) -> None:
        # Demands of previously analyzed definitions: name -> param -> grade.
        self.param_demands = dict(param_demands)
        self._fv_cache: Dict[int, frozenset] = {}

    def free_vars(self, expr: A.Expr) -> frozenset:
        key = id(expr)
        cached = self._fv_cache.get(key)
        if cached is None:
            cached = frozenset(A.free_variables(expr))
            self._fv_cache[key] = cached
        return cached

    def demand(self, expr: A.Expr, var: str) -> Grade:
        """The grade ``expr`` assigns to ``var`` (which must occur free)."""
        if isinstance(expr, A.Var):
            if expr.name != var:
                raise BeanTypeError(f"{var!r} does not occur in {expr!r}")
            return ZERO
        if isinstance(expr, (A.Bang, A.Inl, A.Inr)):
            return self.demand(expr.body, var)
        if isinstance(expr, A.Rnd):
            return self.demand(expr.body, var) + EPS
        if isinstance(expr, A.Pair):
            side = expr.left if var in self.free_vars(expr.left) else expr.right
            return self.demand(side, var)
        if isinstance(expr, A.PrimOp):
            return self._demand_primop(expr, var)
        if isinstance(expr, A.Let):
            return self._demand_let(expr, var)
        if isinstance(expr, A.DLet):
            return self._demand_dlet(expr, var)
        if isinstance(expr, A.LetPair):
            return self._demand_letpair(expr, var, discrete=False)
        if isinstance(expr, A.DLetPair):
            return self._demand_letpair(expr, var, discrete=True)
        if isinstance(expr, A.Case):
            return self._demand_case(expr, var)
        if isinstance(expr, A.Call):
            return self._demand_call(expr, var)
        raise BeanTypeError(f"{var!r} does not occur in {expr!r}")

    def _demand_primop(self, expr: A.PrimOp, var: str) -> Grade:
        in_left = var in self.free_vars(expr.left)
        if expr.op is A.Op.DMUL:
            left_charge, right_charge = ZERO, EPS
        elif expr.op in (A.Op.ADD, A.Op.SUB):
            left_charge = right_charge = EPS
        else:
            left_charge = right_charge = HALF_EPS
        if in_left:
            return self.demand(expr.left, var) + left_charge
        return self.demand(expr.right, var) + right_charge

    def _demand_let(self, expr: A.Let, var: str) -> Grade:
        if var in self.free_vars(expr.bound):
            binder_charge = (
                self.demand(expr.body, expr.name)
                if expr.name in self.free_vars(expr.body)
                else ZERO
            )
            return self.demand(expr.bound, var) + binder_charge
        return self.demand(expr.body, var)

    def _demand_dlet(self, expr: A.DLet, var: str) -> Grade:
        if var in self.free_vars(expr.bound):
            return self.demand(expr.bound, var)
        return self.demand(expr.body, var)

    def _demand_letpair(self, expr, var: str, *, discrete: bool) -> Grade:
        if var in self.free_vars(expr.bound):
            base = self.demand(expr.bound, var)
            if discrete:
                return base
            body_fv = self.free_vars(expr.body)
            charges = [
                self.demand(expr.body, component)
                for component in (expr.left, expr.right)
                if component in body_fv
            ]
            charge = max(charges, key=lambda g: g.coeff, default=ZERO)
            return base + charge
        return self.demand(expr.body, var)

    def _demand_case(self, expr: A.Case, var: str) -> Grade:
        if var in self.free_vars(expr.scrutinee):
            charges = []
            if expr.left_name in self.free_vars(expr.left):
                charges.append(self.demand(expr.left, expr.left_name))
            if expr.right_name in self.free_vars(expr.right):
                charges.append(self.demand(expr.right, expr.right_name))
            charge = max(charges, key=lambda g: g.coeff, default=ZERO)
            return self.demand(expr.scrutinee, var) + charge
        # A variable may occur in either branch (they do not both run).
        demands = []
        if var in self.free_vars(expr.left):
            demands.append(self.demand(expr.left, var))
        if var in self.free_vars(expr.right):
            demands.append(self.demand(expr.right, var))
        if not demands:
            raise BeanTypeError(f"{var!r} does not occur in {expr!r}")
        return max(demands, key=lambda g: g.coeff)

    def _demand_call(self, expr: A.Call, var: str) -> Grade:
        demands = self.param_demands.get(expr.name)
        if demands is None:
            raise BeanTypeError(f"call to unanalyzed definition {expr.name!r}")
        param_names = list(demands)
        for param_name, arg in zip(param_names, expr.args):
            if var in self.free_vars(arg):
                return self.demand(arg, var) + demands[param_name]
        raise BeanTypeError(f"{var!r} does not occur in {expr!r}")


def variable_demand(
    expr: A.Expr,
    var: str,
    param_demands: Optional[Mapping[str, Dict[str, Grade]]] = None,
) -> Grade:
    """The backward error grade ``expr`` assigns to free variable ``var``."""
    oracle = _DemandOracle(param_demands or {})
    return call_with_deep_stack(oracle.demand, expr, var)


def definition_demands(program: A.Program) -> Dict[str, Dict[str, Grade]]:
    """Per-parameter grades for every definition, via the path oracle.

    Discrete parameters and unused parameters get grade 0, mirroring how
    :class:`~repro.core.checker.Judgment` reports them.
    """
    all_demands: Dict[str, Dict[str, Grade]] = {}

    def analyze(definition: A.Definition) -> Dict[str, Grade]:
        oracle = _DemandOracle(all_demands)
        fv = oracle.free_vars(definition.body)
        demands: Dict[str, Grade] = {}
        for param in definition.params:
            if param.name in fv:
                demands[param.name] = oracle.demand(definition.body, param.name)
            else:
                demands[param.name] = ZERO
        return demands

    for definition in program:
        all_demands[definition.name] = call_with_deep_stack(analyze, definition)
    return all_demands
