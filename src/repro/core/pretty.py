"""Pretty-printer from Bean ASTs back to concrete syntax.

``parse_program(pretty(program))`` round-trips up to desugaring: the
printer emits the kernel forms (binary pairs, single-variable patterns), so
re-parsing a printed program yields a structurally identical AST.  This is
checked by property tests.
"""

from __future__ import annotations

from typing import List

from . import ast_nodes as A
from .types import (
    NUM,
    UNIT,
    Discrete,
    Sum,
    Tensor,
    Type,
)

__all__ = ["pretty_expr", "pretty_type", "pretty_definition", "pretty_program"]


def pretty_type(ty: Type) -> str:
    """Render a type in concrete syntax."""
    if ty == NUM:
        return "num"
    if ty == UNIT:
        return "unit"
    if isinstance(ty, Discrete):
        return f"!{_atom_type(ty.inner)}"
    if isinstance(ty, Tensor):
        return f"({pretty_type(ty.left)} * {pretty_type(ty.right)})"
    if isinstance(ty, Sum):
        return f"({pretty_type(ty.left)} + {pretty_type(ty.right)})"
    raise TypeError(f"unknown type {ty!r}")


def _atom_type(ty: Type) -> str:
    text = pretty_type(ty)
    if text.startswith("("):
        return text
    if isinstance(ty, (Tensor, Sum)):
        return f"({text})"
    return text


def _atom(expr: A.Expr, out: List[str]) -> None:
    """Emit ``expr`` parenthesized unless it is already atomic."""
    if isinstance(expr, (A.Var, A.UnitVal, A.Pair)):
        _emit(expr, out)
    else:
        out.append("(")
        _emit(expr, out)
        out.append(")")


def _emit(expr: A.Expr, out: List[str]) -> None:
    if isinstance(expr, A.Var):
        out.append(expr.name)
    elif isinstance(expr, A.UnitVal):
        out.append("()")
    elif isinstance(expr, A.Bang):
        out.append("!")
        _atom(expr.body, out)
    elif isinstance(expr, A.Pair):
        out.append("(")
        _emit(expr.left, out)
        out.append(", ")
        _emit(expr.right, out)
        out.append(")")
    elif isinstance(expr, A.Inl):
        out.append("inl")
        if expr.other != UNIT:
            out.append("{" + pretty_type(expr.other) + "}")
        out.append(" ")
        _atom(expr.body, out)
    elif isinstance(expr, A.Inr):
        out.append("inr")
        if expr.other != UNIT:
            out.append("{" + pretty_type(expr.other) + "}")
        out.append(" ")
        _atom(expr.body, out)
    elif isinstance(expr, (A.Let, A.DLet, A.LetPair, A.DLetPair)):
        # Iterate down the spine of let-bindings: benchmark programs chain
        # thousands of lets, and recursing on the body would overflow.
        while True:
            if isinstance(expr, A.Let):
                out.append(f"let {expr.name} = ")
            elif isinstance(expr, A.DLet):
                out.append(f"dlet {expr.name} = ")
            elif isinstance(expr, A.LetPair):
                out.append(f"let ({expr.left}, {expr.right}) = ")
            elif isinstance(expr, A.DLetPair):
                out.append(f"dlet ({expr.left}, {expr.right}) = ")
            else:
                _emit(expr, out)
                break
            _emit(expr.bound, out)
            out.append(" in\n")
            expr = expr.body
    elif isinstance(expr, A.Case):
        out.append("case ")
        _emit(expr.scrutinee, out)
        out.append(f" of\n  inl ({expr.left_name}) => ")
        _emit(expr.left, out)
        out.append(f"\n| inr ({expr.right_name}) => ")
        _emit(expr.right, out)
    elif isinstance(expr, A.PrimOp):
        out.append(f"{expr.op} ")
        _atom(expr.left, out)
        out.append(" ")
        _atom(expr.right, out)
    elif isinstance(expr, A.Rnd):
        out.append("rnd ")
        _atom(expr.body, out)
    elif isinstance(expr, A.Call):
        out.append(expr.name)
        for arg in expr.args:
            out.append(" ")
            _atom(arg, out)
    else:
        raise TypeError(f"unknown expression {expr!r}")


def pretty_expr(expr: A.Expr) -> str:
    """Render an expression in concrete syntax."""
    out: List[str] = []
    _emit(expr, out)
    return "".join(out)


def _pretty_param(p: A.Param) -> str:
    grade = ""
    if p.declared_grade is not None:
        coeff = p.declared_grade.coeff
        grade = f" @ {coeff.numerator}"
        if coeff.denominator != 1:
            grade += f"/{coeff.denominator}"
    return f"({p.name} : {pretty_type(p.ty)}{grade})"


def pretty_definition(definition: A.Definition) -> str:
    """Render one top-level definition."""
    params = " ".join(_pretty_param(p) for p in definition.params)
    header = f"{definition.name} {params}".rstrip()
    if definition.declared_result is not None:
        header += f" : {pretty_type(definition.declared_result)}"
    return f"{header} :=\n{pretty_expr(definition.body)}"


def pretty_program(program: A.Program) -> str:
    """Render a whole program."""
    return "\n\n".join(pretty_definition(d) for d in program)
