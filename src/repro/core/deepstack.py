"""Run recursive analyses on very deep ASTs safely.

The Table 1 benchmarks type-check programs with let-chains ~1000 bindings
deep (Sum 1000) and ~5000 floating-point operations (PolyVal 100).  A
straightforward structural recursion is by far the clearest way to write
the checker and the interpreters, but CPython's default recursion limit
(and, more importantly, its default C stack) cannot handle such depths.

:func:`call_with_deep_stack` runs a callable inside a worker thread with a
large explicit stack and a raised recursion limit, and re-raises whatever
the callable raised.  The overhead is a fraction of a millisecond, which is
negligible next to checking even a tiny program.
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Callable, TypeVar

__all__ = ["call_with_deep_stack", "DEEP_RECURSION_LIMIT", "DEEP_STACK_BYTES"]

T = TypeVar("T")

#: Recursion limit used inside the worker thread.
DEEP_RECURSION_LIMIT = 1_000_000
#: Thread stack size: 512 MiB accommodates ~10^6 small frames.
DEEP_STACK_BYTES = 512 * 1024 * 1024


def call_with_deep_stack(fn: Callable[..., T], *args: Any, **kwargs: Any) -> T:
    """Invoke ``fn(*args, **kwargs)`` on a thread with a very deep stack."""
    result: list = []
    failure: list = []

    def runner() -> None:
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(DEEP_RECURSION_LIMIT)
        try:
            result.append(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            failure.append(exc)
        finally:
            sys.setrecursionlimit(old_limit)

    old_stack = threading.stack_size()
    try:
        threading.stack_size(DEEP_STACK_BYTES)
        thread = threading.Thread(target=runner, name="repro-deepstack")
        thread.start()
    finally:
        threading.stack_size(old_stack)
    thread.join()
    if failure:
        raise failure[0]
    return result[0]
